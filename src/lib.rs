//! # svm-restructure
//!
//! A full Rust reproduction of Jiang, Shan & Singh, *Application
//! Restructuring and Performance Portability on Shared Virtual Memory and
//! Hardware-Coherent Multiprocessors* (PPoPP 1997).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — the deterministic direct-execution simulation framework;
//! * [`svm`] — the home-based lazy-release-consistency (HLRC) shared
//!   virtual memory platform;
//! * [`dsm`] — the directory-based CC-NUMA hardware-coherent platform;
//! * [`smp`] — the bus-based centralized-memory platform (SGI Challenge
//!   class);
//! * [`apps`] — the seven applications in all their restructured versions;
//! * [`figures`] — the experiment harness that regenerates every figure and
//!   table in the paper.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; `EXPERIMENTS.md` records paper-vs-measured results.

pub use apps;
pub use cc_numa as dsm;
pub use figures;
pub use sim_core as sim;
pub use smp_bus as smp;
pub use svm_hlrc as svm;

/// Convenient glob-import surface for examples and integration tests.
pub mod prelude {
    pub use apps::{AppSpec, Platform as PlatformKind, Scale};
    pub use sim_core::{run, Bucket, Placement, Proc, RunConfig, RunStats};
}
