//! Result-equivalence matrix: the same application version must produce an
//! identical output checksum on every platform — five coherence
//! implementations (HLRC, TreadMarks-LRC, SMP-node HLRC, directory CC-NUMA,
//! snooping bus) agreeing bit-for-bit on real application output.

use apps::barnes::{self, BarnesParams, BarnesVersion};
use apps::kvstore::{self, KvParams, KvVersion};
use apps::lu::{self, LuParams, LuVersion};
use apps::ocean::{self, OceanParams, OceanVersion};
use apps::radix::{self, RadixParams, RadixVersion};
use apps::raytrace::{self, RaytraceParams, RaytraceVersion};
use apps::shearwarp::{self, ShearWarpParams, ShearWarpVersion};
use apps::volrend::{self, VolrendParams, VolrendVersion};
use apps::Platform;
use apps::{App, AppSpec, OptClass, Scale};
use sim_core::RunConfig;

const PLATFORMS: [Platform; 5] = [
    Platform::Svm,
    Platform::Tmk,
    Platform::SvmSmpNodes { ppn: 2 },
    Platform::Dsm,
    Platform::Smp,
];

#[test]
fn lu_checksums_agree_everywhere() {
    let params = LuParams {
        n: 32,
        block: 8,
        seed: 3,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| lu::run_params(pf, 4, &params, LuVersion::Contig4d).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn ocean_checksums_agree_everywhere() {
    let params = OceanParams {
        n: 16,
        steps: 1,
        sweeps: 2,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| ocean::run_params(pf, 4, &params, OceanVersion::RowWise).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn radix_checksums_agree_everywhere() {
    let params = RadixParams {
        n: 1 << 10,
        passes: 2,
        seed: 5,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| radix::run_params(pf, 4, &params, RadixVersion::Orig).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn volrend_checksums_agree_everywhere() {
    let params = VolrendParams {
        v: 16,
        frames: 1,
        term: 0.95,
        seed: 11,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| volrend::run_params(pf, 4, &params, VolrendVersion::Orig).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn shearwarp_checksums_agree_everywhere() {
    let params = ShearWarpParams {
        v: 16,
        frames: 1,
        term: 0.95,
        seed: 11,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| shearwarp::run_params(pf, 4, &params, ShearWarpVersion::Repartitioned).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn raytrace_checksums_agree_everywhere() {
    let params = RaytraceParams {
        img: 16,
        flake_depth: 1,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| raytrace::run_params(pf, 4, &params, RaytraceVersion::SplitQueues).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn kv_checksums_agree_everywhere() {
    let params = KvParams {
        keys: 128,
        reqs_per_proc: 48,
        theta: 0.9,
        read_pct: 70,
        seed: 11,
        racy_headers: false,
    };
    let sums: Vec<u64> = PLATFORMS
        .iter()
        .map(|&pf| kvstore::run_params(pf, 4, &params, KvVersion::Stealing).checksum)
        .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

#[test]
fn barnes_runs_on_every_platform() {
    // Barnes checksums vary in the last float bits across platforms
    // (mass-summation order differs with scheduling); each platform is
    // already verified against the sequential reference inside run_params,
    // so here we only require successful verified completion everywhere.
    let params = BarnesParams {
        n: 64,
        steps: 2,
        theta: 0.9,
        dt: 0.025,
        seed: 42,
    };
    for pf in PLATFORMS {
        let r = barnes::run_params(pf, 4, &params, BarnesVersion::SharedTree);
        assert!(r.stats.total_cycles() > 0);
    }
}

// ---- scalar-vs-bulk equivalence ----
//
// The bulk fast path (`Proc::load_slice` & friends, `RunConfig::bulk`) must
// be *bit-identical* in simulated time to the word-at-a-time scalar path:
// same clocks, same per-phase bucket breakdowns, same protocol counters,
// same race reports. One test per application sweeps every optimization
// class x the three study platforms x detector on/off.

fn assert_scalar_bulk_identical(app: App) {
    for class in OptClass::ALL {
        for pf in apps::Platform::ALL {
            for detect in [false, true] {
                let spec = AppSpec { app, class };
                let mk = || {
                    let mut cfg = RunConfig::new(4);
                    if detect {
                        cfg = cfg.with_race_detection();
                    }
                    cfg
                };
                let bulk = spec.run_cfg(pf, 4, Scale::Test, mk());
                let scalar = spec.run_cfg(pf, 4, Scale::Test, mk().scalar_reference());
                assert_eq!(
                    bulk,
                    scalar,
                    "bulk and scalar RunStats diverge: {}/{} on {:?} detector={}",
                    app.name(),
                    class.label(),
                    pf,
                    detect
                );
            }
        }
    }
}

#[test]
fn scalar_vs_bulk_lu() {
    assert_scalar_bulk_identical(App::Lu);
}

#[test]
fn scalar_vs_bulk_ocean() {
    assert_scalar_bulk_identical(App::Ocean);
}

#[test]
fn scalar_vs_bulk_volrend() {
    assert_scalar_bulk_identical(App::Volrend);
}

#[test]
fn scalar_vs_bulk_shearwarp() {
    assert_scalar_bulk_identical(App::ShearWarp);
}

#[test]
fn scalar_vs_bulk_raytrace() {
    assert_scalar_bulk_identical(App::Raytrace);
}

#[test]
fn scalar_vs_bulk_barnes() {
    assert_scalar_bulk_identical(App::Barnes);
}

#[test]
fn scalar_vs_bulk_radix() {
    assert_scalar_bulk_identical(App::Radix);
}

#[test]
fn scalar_vs_bulk_kv() {
    assert_scalar_bulk_identical(App::Kv);
}

#[test]
fn version_checksums_agree_within_a_platform() {
    // Different restructured versions compute the same answer.
    let params = VolrendParams {
        v: 16,
        frames: 1,
        term: 0.95,
        seed: 11,
    };
    let sums: Vec<u64> = [
        VolrendVersion::Orig,
        VolrendVersion::PadQueues,
        VolrendVersion::Image4d,
        VolrendVersion::Balanced,
        VolrendVersion::BalancedNoSteal,
    ]
    .iter()
    .map(|&v| volrend::run_params(Platform::Svm, 4, &params, v).checksum)
    .collect();
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}
