//! End-to-end tests of the happens-before race detector (tentpole of the
//! self-checking test harness): seeded racy kernels must be flagged and
//! their correctly-synchronized twins must pass, on all three platform
//! models; every application version must be data-race-free; and enabling
//! detection must not perturb timing by a single cycle.

use apps::{App, AppSpec, OptClass};
use sim_core::HEAP_BASE;
use svm_restructure::prelude::*;

const PLATFORMS: [PlatformKind; 3] = [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp];

fn detecting(nprocs: usize, label: &str) -> RunConfig {
    RunConfig::new(nprocs).with_race_detection().named(label)
}

/// Two processors increment a shared counter with no synchronization.
fn unsync_counter(pf: PlatformKind, locked: bool) -> RunStats {
    run(
        pf.boxed(2),
        detecting(
            2,
            if locked {
                "counter-locked"
            } else {
                "counter-racy"
            },
        ),
        |p| {
            if p.pid() == 0 {
                let a = p.alloc_shared_labeled("counter", 8, 8, Placement::Node(0));
                p.store(a, 8, 0);
            }
            p.barrier(0);
            if locked {
                p.lock(7);
            }
            let v = p.load(HEAP_BASE, 8);
            p.work(50);
            p.store(HEAP_BASE, 8, v + 1);
            if locked {
                p.unlock(7);
            }
            p.barrier(1);
        },
    )
}

#[test]
fn unsynchronized_counter_is_flagged_on_every_platform() {
    for pf in PLATFORMS {
        let stats = unsync_counter(pf, false);
        assert!(
            stats.races() > 0,
            "{}: unsynchronized counter not flagged",
            pf.name()
        );
        // The report names the allocation and the run.
        let text = stats.race_summary();
        assert!(text.contains("counter"), "unhelpful report: {text}");
        assert!(text.contains("counter-racy"), "missing run label: {text}");
    }
}

#[test]
fn locked_counter_twin_is_clean_on_every_platform() {
    for pf in PLATFORMS {
        let stats = unsync_counter(pf, true);
        assert_eq!(
            stats.races(),
            0,
            "{}: locked counter flagged:\n{}",
            pf.name(),
            stats.race_summary()
        );
    }
}

/// A producer fills an array; consumers read it. `synced` inserts the
/// barrier between the phases; without it every consumer read races.
fn producer_consumer(pf: PlatformKind, synced: bool) -> RunStats {
    const WORDS: u64 = 64;
    run(pf.boxed(4), detecting(4, "producer-consumer"), |p| {
        if p.pid() == 0 {
            p.alloc_shared_labeled("feed", WORDS * 8, 8, Placement::RoundRobin);
        }
        p.barrier(0);
        if p.pid() == 0 {
            for i in 0..WORDS {
                p.store(HEAP_BASE + i * 8, 8, i * 3);
            }
        }
        if synced {
            p.barrier(1);
        }
        if p.pid() != 0 {
            for i in 0..WORDS {
                p.load(HEAP_BASE + i * 8, 8);
            }
        }
        p.barrier(2);
    })
}

#[test]
fn missing_barrier_is_flagged_on_every_platform() {
    for pf in PLATFORMS {
        let stats = producer_consumer(pf, false);
        assert!(
            stats.races() > 0,
            "{}: missing barrier not flagged",
            pf.name()
        );
        assert!(stats.race_summary().contains("feed"));
    }
}

#[test]
fn barrier_synchronized_twin_is_clean_on_every_platform() {
    for pf in PLATFORMS {
        let stats = producer_consumer(pf, true);
        assert_eq!(
            stats.races(),
            0,
            "{}: synchronized producer/consumer flagged:\n{}",
            pf.name(),
            stats.race_summary()
        );
    }
}

/// One side takes the lock, the other writes bare: the classic
/// inconsistently-protected variable.
fn lock_one_side(pf: PlatformKind, both: bool) -> RunStats {
    run(pf.boxed(2), detecting(2, "one-sided-lock"), |p| {
        if p.pid() == 0 {
            p.alloc_shared_labeled("flag", 8, 8, Placement::Node(0));
        }
        p.barrier(0);
        if p.pid() == 0 || both {
            p.lock(3);
            let v = p.load(HEAP_BASE, 8);
            p.store(HEAP_BASE, 8, v + 1);
            p.unlock(3);
        } else {
            let v = p.load(HEAP_BASE, 8);
            p.store(HEAP_BASE, 8, v + 1);
        }
        p.barrier(1);
    })
}

#[test]
fn one_sided_locking_is_flagged_on_every_platform() {
    for pf in PLATFORMS {
        assert!(
            lock_one_side(pf, false).races() > 0,
            "{}: one-sided locking not flagged",
            pf.name()
        );
        assert_eq!(
            lock_one_side(pf, true).races(),
            0,
            "{}: two-sided locking flagged",
            pf.name()
        );
    }
}

/// The load-bearing claim behind the simulator's determinism argument: the
/// whole application suite, in every optimization class, really is
/// data-race-free on every platform model.
#[test]
fn every_app_and_class_is_race_free_on_every_platform() {
    for pf in PLATFORMS {
        for app in App::ALL {
            for class in OptClass::ALL {
                let spec = AppSpec { app, class };
                let stats =
                    spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_race_detection());
                assert_eq!(
                    stats.races(),
                    0,
                    "{} on {} raced:\n{}",
                    spec.label(),
                    pf.name(),
                    stats.race_summary()
                );
            }
        }
    }
}

/// Sharding must not blind the detector: the seeded racy counter is still
/// flagged when the run executes on the generate/replay engine (the op
/// streams of these kernels are value-independent, so the access pattern
/// the detector sees is the classic one).
#[test]
fn racy_kernels_are_still_flagged_under_sharding() {
    for pf in PLATFORMS {
        let stats = run(
            pf.boxed(2),
            RunConfig::new(2)
                .with_shards(2)
                .with_race_detection()
                .named("counter-racy-sharded"),
            |p| {
                if p.pid() == 0 {
                    let a = p.alloc_shared_labeled("counter", 8, 8, Placement::Node(0));
                    p.store(a, 8, 0);
                }
                p.barrier(0);
                let v = p.load(HEAP_BASE, 8);
                p.work(50);
                p.store(HEAP_BASE, 8, v + 1);
                p.barrier(1);
            },
        );
        assert!(
            stats.races() > 0,
            "{}: sharded engine lost the race report",
            pf.name()
        );
        assert!(stats.race_summary().contains("counter-racy-sharded"));
    }
}

/// Satellite invariance under sharding: with shards > 1, a detector-on run
/// must be bit-identical (timed `RunStats`, race list empty) to the
/// detector-off sharded run — the observer property holds on the parallel
/// engine too.
#[test]
fn detection_is_invisible_under_sharding() {
    for pf in PLATFORMS {
        for app in [App::Lu, App::Ocean] {
            let spec = AppSpec {
                app,
                class: OptClass::Orig,
            };
            let off = spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_shards(4));
            let on = spec.run_cfg(
                pf,
                4,
                Scale::Test,
                RunConfig::new(4).with_shards(4).with_race_detection(),
            );
            assert!(on.races.is_empty());
            assert_eq!(
                off,
                on,
                "{} on {}: detector perturbed the sharded run",
                app.name(),
                pf.name()
            );
        }
    }
}

/// Detection must be an observer: enabling it cannot move a single cycle of
/// virtual time or any counter.
#[test]
fn detection_does_not_perturb_timing() {
    for pf in PLATFORMS {
        for app in [App::Lu, App::Ocean, App::Radix] {
            let spec = AppSpec {
                app,
                class: OptClass::Orig,
            };
            let off = spec.run(pf, 4, Scale::Test);
            let on = spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_race_detection());
            assert!(on.races.is_empty());
            // Full structural equality: clocks, buckets, phases, counters.
            assert_eq!(
                off,
                on,
                "{} on {}: detector perturbed the run",
                app.name(),
                pf.name()
            );
        }
    }
}
