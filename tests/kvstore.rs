//! End-to-end grid for the KV-store workload (the suite's server-shaped
//! member): the Orig → P/A → DS → Alg journey must actually pay off at
//! default scale on every platform model, the workload must be bit-identical
//! under the sharded engine (fused and classic) against the sequential
//! oracle, and the race detector must hold the line — zero races on the
//! data-race-free configuration, a guaranteed catch on the seeded racy twin.

use apps::kvstore::{self, KvParams, KvVersion};
use apps::{App, AppSpec, OptClass, Platform, Scale};
use sim_core::RunConfig;

const ALL_FOUR: [Platform; 4] = [Platform::Svm, Platform::Tmk, Platform::Dsm, Platform::Smp];

/// Small-but-contended parameters for grid tests (32 buckets, so the
/// bucket count divides every processor count the grids use).
fn test_params() -> KvParams {
    KvParams::at(Scale::Test)
}

/// The restructuring journey delivers at default scale: each class is at
/// least as fast as the one before on every platform, and the algorithmic
/// end point beats the original by a wide margin (the acceptance
/// criterion). Simulated virtual time, P = 8.
#[test]
fn default_scale_journey_improves_on_every_platform() {
    let params = KvParams::at(Scale::Default);
    for pf in ALL_FOUR {
        let cycles: Vec<u64> = [
            KvVersion::Dense,
            KvVersion::Padded,
            KvVersion::Sharded,
            KvVersion::Stealing,
        ]
        .iter()
        .map(|&v| kvstore::run_params(pf, 8, &params, v).stats.total_cycles())
        .collect();
        assert!(
            cycles.windows(2).all(|w| w[1] <= w[0]),
            "{}: journey not monotone: {cycles:?}",
            pf.name()
        );
        let (orig, alg) = (cycles[0], cycles[3]);
        assert!(
            alg * 2 < orig,
            "{}: Alg ({alg}) does not beat Orig ({orig}) at default scale",
            pf.name()
        );
    }
}

/// The tentpole differential criterion: every class on every platform,
/// shards ∈ {2, 4}, fused and classic replay engines — all bit-identical
/// to the sequential oracle.
#[test]
fn shard_engines_are_bit_identical_for_every_class_and_platform() {
    for pf in ALL_FOUR {
        for class in OptClass::ALL {
            let spec = AppSpec {
                app: App::Kv,
                class,
            };
            let oracle = spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_shards(1));
            for shards in [2, 4] {
                for fused in [true, false] {
                    let cfg = RunConfig::new(4)
                        .with_shards(shards)
                        .with_shard_fused(fused);
                    let sharded = spec.run_cfg(pf, 4, Scale::Test, cfg);
                    assert_eq!(
                        oracle,
                        sharded,
                        "KV/{} on {}: shards={shards} fused={fused} diverged from oracle",
                        class.label(),
                        pf.name()
                    );
                }
            }
        }
    }
}

/// Every optimization class of the KV store is data-race-free under the
/// happens-before detector on all three study platforms.
#[test]
fn drf_configuration_has_zero_races() {
    for pf in [Platform::Svm, Platform::Dsm, Platform::Smp] {
        for class in OptClass::ALL {
            let spec = AppSpec {
                app: App::Kv,
                class,
            };
            let stats = spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_race_detection());
            assert_eq!(
                stats.races(),
                0,
                "{} on {} raced:\n{}",
                spec.label(),
                pf.name(),
                stats.race_summary()
            );
        }
    }
}

/// The seeded racy twin (bucket statistics header bumped outside the
/// bucket lock) is flagged on every study platform, and the report names
/// the offending allocation.
#[test]
fn racy_header_twin_is_flagged() {
    let params = KvParams {
        racy_headers: true,
        ..test_params()
    };
    for pf in [Platform::Svm, Platform::Dsm, Platform::Smp] {
        let r = kvstore::run_params_cfg(
            pf,
            4,
            &params,
            KvVersion::Dense,
            RunConfig::new(4)
                .with_race_detection()
                .named("kv-racy-twin"),
        );
        assert!(
            r.stats.races() > 0,
            "{}: racy header twin not flagged",
            pf.name()
        );
        let text = r.stats.race_summary();
        assert!(
            text.contains("kv_headers"),
            "{}: report does not name the header allocation: {text}",
            pf.name()
        );
    }
}

/// Checksums agree across all five coherence implementations and across
/// all four versions within a platform (every run is additionally verified
/// against the sequential reference inside `run_params`).
#[test]
fn checksums_agree_across_platforms_and_versions() {
    let params = test_params();
    let mut sums = Vec::new();
    for pf in [
        Platform::Svm,
        Platform::Tmk,
        Platform::SvmSmpNodes { ppn: 2 },
        Platform::Dsm,
        Platform::Smp,
    ] {
        sums.push(kvstore::run_params(pf, 4, &params, KvVersion::Stealing).checksum);
    }
    for v in [KvVersion::Dense, KvVersion::Padded, KvVersion::Sharded] {
        sums.push(kvstore::run_params(Platform::Svm, 4, &params, v).checksum);
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}

/// The workload degenerates gracefully to one processor (every version,
/// including the stealing loop, which then has nobody to steal from).
#[test]
fn uniprocessor_runs_every_version() {
    for v in [
        KvVersion::Dense,
        KvVersion::Padded,
        KvVersion::Sharded,
        KvVersion::Stealing,
    ] {
        let r = kvstore::run_params(Platform::Svm, 1, &test_params(), v);
        assert!(r.stats.total_cycles() > 0, "{v:?}");
    }
}
