//! Event-trace invariants: tracing must be invisible (statistics
//! bit-identical with it on or off), deterministic, structurally sound
//! (phase events nest and cover the timed region), and populated on every
//! platform family; the Chrome export must be well-formed JSON.

use apps::{App, AppSpec, OptClass};
use sim_core::{EventKind, RunConfig};
use svm_restructure::prelude::*;

fn run_cell(pf: PlatformKind, cfg: RunConfig) -> RunStats {
    AppSpec {
        app: App::Ocean,
        class: OptClass::Orig,
    }
    .run_cfg(pf, 4, Scale::Test, cfg)
}

#[test]
fn tracing_is_invisible_on_all_platforms() {
    for pf in [
        PlatformKind::Svm,
        PlatformKind::Dsm,
        PlatformKind::Smp,
        PlatformKind::Tmk,
    ] {
        let plain = run_cell(pf, RunConfig::new(4));
        let mut traced = run_cell(pf, RunConfig::new(4).with_trace());
        let tr = traced.trace.take().expect("tracing was requested");
        assert!(tr.total_events() > 0, "{pf:?}: empty trace");
        assert_eq!(tr.dropped_events(), 0, "{pf:?}: default cap overflowed");
        // With the trace stripped, the runs must be bit-identical.
        assert_eq!(traced, plain, "{pf:?}: tracing perturbed the run");
    }
}

#[test]
fn traced_runs_are_deterministic() {
    let a = run_cell(PlatformKind::Svm, RunConfig::new(4).with_trace());
    let b = run_cell(PlatformKind::Svm, RunConfig::new(4).with_trace());
    assert_eq!(a, b, "same traced run twice must match, trace included");
}

#[test]
fn phase_events_nest_and_cover_the_timed_region() {
    // Barnes switches phases every timestep; the per-proc event streams
    // must bracket the whole timed region in matched Begin/End pairs.
    let mut stats = AppSpec {
        app: App::Barnes,
        class: OptClass::Algorithm,
    }
    .run_cfg(
        PlatformKind::Svm,
        4,
        Scale::Test,
        RunConfig::new(4).with_trace(),
    );
    let tr = stats.trace.take().expect("tracing was requested");
    assert_eq!(tr.phase_name(0), "tree-build", "app names not registered");
    for (pid, p) in tr.procs.iter().enumerate() {
        let mut depth = 0i64;
        let mut begins = 0u64;
        let mut ends = 0u64;
        let mut current: Option<usize> = None;
        for e in &p.events {
            assert!(e.ts <= p.end, "p{pid}: event after the proc's clock");
            match e.kind {
                EventKind::PhaseBegin { phase } => {
                    depth += 1;
                    begins += 1;
                    current = Some(phase);
                }
                EventKind::PhaseEnd { phase } => {
                    depth -= 1;
                    ends += 1;
                    assert_eq!(
                        Some(phase),
                        current,
                        "p{pid}: PhaseEnd does not match the open phase"
                    );
                }
                _ => {}
            }
            assert!((0..=1).contains(&depth), "p{pid}: phases must not nest");
        }
        assert_eq!(depth, 0, "p{pid}: unterminated phase");
        assert_eq!(begins, ends);
        assert!(begins >= 2, "p{pid}: Barnes must switch phases");
        let first = p.events.first().expect("nonempty");
        assert!(
            matches!(first.kind, EventKind::PhaseBegin { .. }) && first.ts == 0,
            "p{pid}: timed region must open with a PhaseBegin at cycle 0"
        );
        let last_phase_end = p
            .events
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EventKind::PhaseEnd { .. }))
            .expect("has a PhaseEnd");
        assert_eq!(
            last_phase_end.ts, p.end,
            "p{pid}: final PhaseEnd must close at the settled clock"
        );
    }
}

#[test]
fn wait_histograms_populate_on_all_platform_families() {
    for pf in [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp] {
        let mut stats = run_cell(pf, RunConfig::new(4).with_trace());
        let tr = stats.trace.take().expect("tracing was requested");
        let (fetch, lock, barrier) = tr.merged_hists();
        assert!(fetch.count() > 0, "{pf:?}: no data-latency samples");
        assert!(lock.count() > 0, "{pf:?}: no lock-wait samples");
        assert!(barrier.count() > 0, "{pf:?}: no barrier-wait samples");
        // The histogram totals are real latencies: bounded by the run.
        assert!(fetch.max() <= tr.end());
        assert!(barrier.max() <= tr.end());
    }
}

#[test]
fn chrome_export_is_well_formed_for_ocean_on_svm() {
    let mut stats = run_cell(PlatformKind::Svm, RunConfig::new(4).with_trace());
    let tr = stats.trace.take().expect("tracing was requested");
    let json = tr.to_chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    // Metadata, duration, and instant records must all be present.
    for ph in ["\"ph\":\"M\"", "\"ph\":\"X\"", "\"ph\":\"i\""] {
        assert!(json.contains(ph), "missing {ph} records");
    }
    // Ocean takes locks: the export must carry flow arrows for handoffs.
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "missing lock-handoff flow arrows"
    );
    // Brace/bracket balance outside string literals — a structural JSON
    // check with no parser dependency.
    let (mut depth, mut in_str, mut esc_next) = (0i64, false, false);
    for c in json.chars() {
        if esc_next {
            esc_next = false;
            continue;
        }
        match c {
            '\\' if in_str => esc_next = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces");
    assert!(!in_str, "unterminated string");
}

#[test]
fn tracing_is_invisible_under_sharding() {
    // The trace layer must stay an observer on the generate/replay engine:
    // a traced sharded run, trace stripped, equals the untraced sharded
    // run — and the trace itself is the classic engine's (asserted
    // stream-for-stream in tests/shard_equivalence.rs).
    for pf in [
        PlatformKind::Svm,
        PlatformKind::Dsm,
        PlatformKind::Smp,
        PlatformKind::Tmk,
    ] {
        let plain = run_cell(pf, RunConfig::new(4).with_shards(4));
        let mut traced = run_cell(pf, RunConfig::new(4).with_shards(4).with_trace());
        let tr = traced.trace.take().expect("tracing was requested");
        assert!(tr.total_events() > 0, "{pf:?}: empty sharded trace");
        assert_eq!(traced, plain, "{pf:?}: tracing perturbed the sharded run");
    }
}

#[test]
fn drop_counters_are_shard_count_independent_at_equal_caps() {
    // Audit result, pinned by regression: event and edge buffers (and
    // their drop counters) live solely in the replay-side TraceSink — the
    // sharded engine adds no per-shard buffers — so at equal caps the
    // dropped totals cannot depend on the shard count.
    let tight = |shards: usize| {
        RunConfig::new(4)
            .with_shards(shards)
            .with_trace()
            .with_trace_cap(8)
            .with_edge_cap(4)
    };
    let seq = run_cell(PlatformKind::Svm, tight(1))
        .trace
        .expect("tracing was requested");
    for shards in [2, 4] {
        let shd = run_cell(PlatformKind::Svm, tight(shards))
            .trace
            .expect("tracing was requested");
        assert!(seq.dropped_events() > 0, "cap of 8 should overflow");
        assert!(seq.edges_dropped > 0, "edge cap of 4 should overflow");
        assert_eq!(
            seq.dropped_events(),
            shd.dropped_events(),
            "shards={shards}: event-drop total depends on shard count"
        );
        assert_eq!(
            seq.edges_dropped, shd.edges_dropped,
            "shards={shards}: edge-drop total depends on shard count"
        );
    }
}

#[test]
fn trace_cap_drops_events_without_perturbing_the_run() {
    let plain = run_cell(PlatformKind::Svm, RunConfig::new(4));
    let mut traced = run_cell(
        PlatformKind::Svm,
        RunConfig::new(4).with_trace().with_trace_cap(8),
    );
    let tr = traced.trace.take().expect("tracing was requested");
    assert!(tr.dropped_events() > 0, "cap of 8 should overflow");
    for p in &tr.procs {
        assert!(p.events.len() <= 8, "cap not enforced");
    }
    assert_eq!(traced, plain, "a full buffer must not perturb the run");
}
