//! Paper-scale smoke tests (ignored by default: the simulator executes
//! every shared access, so these take minutes each). Run with
//! `cargo test --release --test paper_scale -- --ignored`.

use apps::{App, AppSpec, OptClass};
use svm_restructure::prelude::*;

#[test]
#[ignore = "minutes-long: full paper problem sizes"]
fn lu_paper_scale_runs_and_verifies() {
    // 1024x1024 matrix, 32x32 blocks — the paper's exact configuration.
    let stats = AppSpec {
        app: App::Lu,
        class: OptClass::Algorithm,
    }
    .run(PlatformKind::Svm, 16, Scale::Paper);
    assert!(stats.total_cycles() > 0);
}

#[test]
#[ignore = "minutes-long: full paper problem sizes"]
fn radix_paper_scale_runs_and_verifies() {
    // 4M integers, radix 1024 — the paper's exact configuration.
    let stats = AppSpec {
        app: App::Radix,
        class: OptClass::Orig,
    }
    .run(PlatformKind::Svm, 16, Scale::Paper);
    assert!(stats.total_cycles() > 0);
}

#[test]
#[ignore = "minutes-long: full paper problem sizes"]
fn barnes_paper_scale_runs_and_verifies() {
    // 16K particles — the paper's exact configuration.
    let stats = AppSpec {
        app: App::Barnes,
        class: OptClass::Algorithm,
    }
    .run(PlatformKind::Svm, 16, Scale::Paper);
    assert!(stats.total_cycles() > 0);
}
