//! Time-accounting invariants: every cycle of every simulated processor's
//! clock must be attributed to exactly one breakdown bucket, total time must
//! equal the slowest processor, and protocol counters must be consistent.

use apps::{App, OptClass};
use svm_restructure::prelude::*;

fn run_one(app: App, class: OptClass, pf: PlatformKind, n: usize) -> RunStats {
    AppSpec { app, class }.run(pf, n, Scale::Test)
}

#[test]
fn buckets_partition_the_clock_exactly() {
    for pf in [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp] {
        let stats = run_one(App::Ocean, OptClass::Algorithm, pf, 4);
        for (pid, p) in stats.procs.iter().enumerate() {
            assert_eq!(
                p.total(),
                stats.clocks[pid],
                "{:?} p{pid}: bucket sum must equal the virtual clock",
                pf
            );
        }
    }
}

#[test]
fn total_cycles_is_the_maximum_clock() {
    let stats = run_one(App::Lu, OptClass::Orig, PlatformKind::Svm, 4);
    assert_eq!(stats.total_cycles(), *stats.clocks.iter().max().unwrap());
}

#[test]
fn phase_times_sum_to_total() {
    // A multi-phase application on all three platform families: the
    // per-phase ledger must partition both each bucket and the total.
    for pf in [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp] {
        let stats = run_one(App::Barnes, OptClass::Algorithm, pf, 4);
        for (pid, p) in stats.procs.iter().enumerate() {
            let phases: u64 = (0..sim_core::MAX_PHASES).map(|ph| p.phase_total(ph)).sum();
            assert_eq!(phases, p.total(), "{pf:?} p{pid}: phase sum != total");
            for bucket in sim_core::Bucket::ALL {
                let by_phase: u64 = (0..sim_core::MAX_PHASES)
                    .map(|ph| p.get_phase(ph, bucket))
                    .sum();
                assert_eq!(
                    by_phase,
                    p.get(bucket),
                    "{pf:?} p{pid}: phase split of {bucket:?} != bucket total"
                );
            }
            assert_eq!(p.phase_overflows(), 0, "{pf:?} p{pid}: phase overflowed");
        }
    }
}

#[test]
fn svm_counters_are_consistent() {
    let stats = run_one(App::Radix, OptClass::Orig, PlatformKind::Svm, 4);
    let c = stats.sum_counters();
    // Radix write-shares the destination array: the run must have exercised
    // the whole protocol machinery.
    assert!(c.remote_fetches > 0, "no page fetches?");
    assert!(c.twins_created > 0, "no twins?");
    assert!(c.diffs_created > 0, "no diffs?");
    assert!(c.invalidations > 0, "no invalidations?");
    assert!(c.bytes_transferred > c.remote_fetches * 4096 / 2);
    // Every diff has a twin.
    assert!(c.twins_created >= c.diffs_created);
    // Every diff created somewhere is applied somewhere (at its home).
    assert_eq!(c.diffs_created, c.diffs_applied);
}

#[test]
fn tmk_counters_are_consistent() {
    let stats = run_one(App::Radix, OptClass::Orig, PlatformKind::Tmk, 4);
    let c = stats.sum_counters();
    assert!(c.diffs_created > 0, "no diffs?");
    // Archival into the page chain is this protocol's application.
    assert_eq!(c.diffs_created, c.diffs_applied);
    assert!(c.twins_created >= c.diffs_created);
}

#[test]
fn hardware_platforms_create_no_twins() {
    for pf in [PlatformKind::Dsm, PlatformKind::Smp] {
        let stats = run_one(App::Radix, OptClass::Orig, pf, 4);
        let c = stats.sum_counters();
        assert_eq!(c.twins_created, 0);
        assert_eq!(c.diffs_created, 0);
    }
}

#[test]
fn barrier_counts_match_across_processors() {
    let stats = run_one(App::Ocean, OptClass::Orig, PlatformKind::Svm, 4);
    let barriers: Vec<u64> = stats.procs.iter().map(|p| p.counters.barriers).collect();
    assert!(barriers.windows(2).all(|w| w[0] == w[1]), "{barriers:?}");
    assert!(barriers[0] > 0);
}

#[test]
fn timed_region_excludes_initialization() {
    // Initialization writes the whole matrix; if it were counted, Compute
    // would dwarf everything at uniprocessor scale. Check the timed access
    // count is close to the algorithmic requirement, not init-inflated.
    let stats = run_one(App::Radix, OptClass::Orig, PlatformKind::Smp, 1);
    let accesses = stats.sum_counters().accesses;
    let n = 4 << 10; // Scale::Test key count
                     // 2 passes x (read + hist + read + write) ~ O(10 n); init alone is 2n
                     // writes and extraction 2n reads, so anything over ~40n would indicate
                     // leakage of untimed phases.
    assert!(
        accesses < 40 * n,
        "timed accesses {accesses} look init-inflated"
    );
}
