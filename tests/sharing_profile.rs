//! Sharing-profiler invariants: protocol diff counters pair up on every
//! page-based cell, the profiler never perturbs statistics, profiles are
//! deterministic (including under the parallel sweep driver), the
//! true/false-sharing classifier is right on synthetic kernels, and the
//! paper's Ocean restructuring story reproduces at default scale.

use apps::{App, AppSpec, OptClass, Scale};
use figures::sweep;
use svm_restructure::prelude::*;

/// The page-based platforms: diffs are created and applied only here.
const PAGE_BASED: [PlatformKind; 3] = [
    PlatformKind::Svm,
    PlatformKind::Tmk,
    PlatformKind::SvmSmpNodes { ppn: 2 },
];

#[test]
fn diffs_created_equals_diffs_applied_on_every_page_based_cell() {
    let mut cells: Vec<(App, OptClass, PlatformKind)> = Vec::new();
    for app in App::ALL {
        for class in OptClass::ALL {
            for pf in PAGE_BASED {
                cells.push((app, class, pf));
            }
        }
    }
    let counters = sweep::parallel_map(&cells, |&(app, class, pf)| {
        AppSpec { app, class }
            .run(pf, 4, Scale::Test)
            .sum_counters()
    });
    let mut total_created = 0u64;
    for ((app, class, pf), c) in cells.iter().zip(&counters) {
        assert_eq!(
            c.diffs_created,
            c.diffs_applied,
            "created/applied mismatch: {}/{} on {pf:?}",
            app.name(),
            class.label()
        );
        total_created += c.diffs_created;
    }
    // The sweep as a whole must actually exercise the diff machinery.
    assert!(total_created > 0, "no diffs created anywhere in the sweep");
}

#[test]
fn profiler_on_never_changes_statistics() {
    for (app, pf) in [
        (App::Ocean, PlatformKind::Svm),
        (App::Radix, PlatformKind::Tmk),
        (App::Lu, PlatformKind::SvmSmpNodes { ppn: 2 }),
    ] {
        let spec = AppSpec {
            app,
            class: OptClass::Orig,
        };
        let off = spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4));
        let on = spec.run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_sharing_profile());
        assert!(off.sharing.is_none());
        let profile = on.sharing.as_ref().expect("page-based platforms profile");
        assert!(
            !profile.pages.is_empty(),
            "{}/{pf:?}: no pages in profile",
            app.name()
        );
        // Everything except the profile itself is bit-identical.
        let mut stripped = on.clone();
        stripped.sharing = None;
        assert_eq!(
            stripped,
            off,
            "{}/{pf:?}: profiler perturbed stats",
            app.name()
        );
    }
}

#[test]
fn profile_is_deterministic_even_under_parallel_sweep() {
    let cell = || {
        AppSpec {
            app: App::Ocean,
            class: OptClass::Orig,
        }
        .run_cfg(
            PlatformKind::Svm,
            4,
            Scale::Test,
            RunConfig::new(4).with_sharing_profile(),
        )
        .sharing
        .expect("svm profiles")
    };
    let serial = cell();
    let swept = sweep::parallel_map(&[(); 4], |_| cell());
    for (i, prof) in swept.iter().enumerate() {
        assert_eq!(*prof, serial, "sweep slot {i} diverged");
    }
}

#[test]
fn classifier_separates_true_and_false_sharing() {
    use sim_core::sharing::SharingClass;
    let page = sim_core::PAGE_SIZE;
    // Four processors on SVM; everything is homed at node 0, so processors
    // 1 and 2 are always remote writers whose stores must flow as diffs.
    let stats = {
        let platform = PlatformKind::Svm.boxed(4);
        let cfg = RunConfig::new(4).with_sharing_profile();
        run(platform, cfg, move |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("fs", page, page, Placement::Node(0));
                p.alloc_shared_labeled("ts", page, page, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            let fs = sim_core::HEAP_BASE;
            let ts = sim_core::HEAP_BASE + page;
            // Disjoint words of the same page: pure false sharing.
            if p.pid() == 1 {
                p.store(fs, 4, 11);
            }
            if p.pid() == 2 {
                p.store(fs + page / 2, 4, 22);
            }
            p.barrier(1);
            // The same word, serialized by a lock: true sharing.
            if p.pid() == 1 || p.pid() == 2 {
                p.lock(0);
                let v = p.load(ts, 4);
                p.store(ts, 4, v + 1);
                p.unlock(0);
            }
            p.barrier(2);
            // A reader to populate the reader sets.
            if p.pid() == 3 {
                assert_eq!(p.load(ts, 4), 2);
            }
            p.barrier(3);
        })
    };
    let profile = stats.sharing.expect("svm profiles");
    let fs = profile
        .pages
        .iter()
        .find(|pg| pg.label == "fs")
        .expect("fs page active");
    assert_eq!(fs.class, SharingClass::FalseSharing, "{fs:?}");
    assert_eq!(fs.writers, vec![1, 2]);
    let ts = profile
        .pages
        .iter()
        .find(|pg| pg.label == "ts")
        .expect("ts page active");
    assert_eq!(ts.class, SharingClass::TrueSharing, "{ts:?}");
    assert_eq!(ts.writers, vec![1, 2]);
    assert!(ts.readers.contains(&3), "{ts:?}");
    // Label aggregation: all of fs's diff traffic is false sharing.
    let agg = profile.label("fs").unwrap();
    assert!(agg.false_share() > 0.99, "{agg:?}");
    assert!(profile.label("ts").unwrap().false_share() < 0.01);
}

#[test]
fn ocean_restructuring_removes_false_sharing_at_default_scale() {
    // The acceptance experiment: at default scale, the DS (Contig4d)
    // restructuring must cut the false-sharing share of at least one
    // allocation label's diff traffic relative to the original layout —
    // the paper's explanation of *why* the restructuring helps on SVM.
    let profiles = sweep::parallel_map(&[OptClass::Orig, OptClass::DataStruct], |&class| {
        AppSpec {
            app: App::Ocean,
            class,
        }
        .run_cfg(
            PlatformKind::Svm,
            4,
            Scale::Default,
            RunConfig::new(4).with_sharing_profile(),
        )
        .sharing
        .expect("svm profiles")
    });
    let (orig, ds) = (&profiles[0], &profiles[1]);
    let improved = orig.labels().iter().any(|l| {
        l.false_share() > 0.10
            && ds
                .label(l.label)
                .map(|d| d.false_share() < l.false_share() / 2.0)
                .unwrap_or(true)
    });
    let render = |p: &sim_core::SharingProfile| {
        p.labels()
            .iter()
            .map(|l| format!("{}={:.1}%", l.label, 100.0 * l.false_share()))
            .collect::<Vec<_>>()
            .join(" ")
    };
    assert!(
        improved,
        "no label's false-sharing share dropped: orig [{}] ds [{}]",
        render(orig),
        render(ds)
    );
}
