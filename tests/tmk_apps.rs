//! The full application suite must also compute correct results through the
//! TreadMarks-style protocol — diff chains, per-writer gathers, GC and all.

use apps::{App, AppSpec, OptClass};
use svm_restructure::prelude::*;

#[test]
fn every_app_runs_correctly_on_tmk() {
    for app in App::ALL {
        for class in [OptClass::Orig, OptClass::Algorithm] {
            let spec = AppSpec { app, class };
            let stats = spec.run(PlatformKind::Tmk, 4, Scale::Test);
            assert!(
                stats.total_cycles() > 0,
                "{} {} on TMK",
                app.name(),
                class.label()
            );
        }
    }
}

#[test]
fn tmk_is_deterministic() {
    let spec = AppSpec {
        app: App::Radix,
        class: OptClass::Orig,
    };
    let a = spec.run(PlatformKind::Tmk, 4, Scale::Test);
    let b = spec.run(PlatformKind::Tmk, 4, Scale::Test);
    assert_eq!(a.clocks, b.clocks);
}

#[test]
fn every_app_runs_correctly_on_smp_node_svm() {
    for app in App::ALL {
        let spec = AppSpec {
            app,
            class: OptClass::Orig,
        };
        let stats = spec.run(PlatformKind::SvmSmpNodes { ppn: 2 }, 4, Scale::Test);
        assert!(stats.total_cycles() > 0, "{} on SVM-SMP", app.name());
    }
}
