//! Workspace integration tests: every application version must compute the
//! same (reference-verified) result on every platform, and simulations must
//! be deterministic.
//!
//! Each `AppSpec::run` internally panics unless the application's output
//! matches its sequential reference, so these tests simultaneously validate
//! the applications, the HLRC protocol (data really flows through twins,
//! diffs and page fetches), and the hardware-coherence models.

use apps::{App, OptClass};
use svm_restructure::prelude::*;

fn all_classes() -> [OptClass; 4] {
    OptClass::ALL
}

#[test]
fn every_app_and_class_runs_correctly_on_svm() {
    for app in App::ALL {
        for class in all_classes() {
            let spec = AppSpec { app, class };
            let stats = spec.run(PlatformKind::Svm, 4, Scale::Test);
            assert!(
                stats.total_cycles() > 0,
                "{} {} produced no timed work",
                app.name(),
                class.label()
            );
        }
    }
}

#[test]
fn every_app_and_class_runs_correctly_on_dsm() {
    for app in App::ALL {
        for class in all_classes() {
            let spec = AppSpec { app, class };
            let stats = spec.run(PlatformKind::Dsm, 4, Scale::Test);
            assert!(
                stats.total_cycles() > 0,
                "{} {} produced no timed work",
                app.name(),
                class.label()
            );
        }
    }
}

#[test]
fn every_app_and_class_runs_correctly_on_smp() {
    for app in App::ALL {
        for class in all_classes() {
            let spec = AppSpec { app, class };
            let stats = spec.run(PlatformKind::Smp, 4, Scale::Test);
            assert!(
                stats.total_cycles() > 0,
                "{} {} produced no timed work",
                app.name(),
                class.label()
            );
        }
    }
}

#[test]
fn simulations_are_deterministic() {
    for app in [App::Lu, App::Barnes, App::Volrend, App::Radix] {
        let spec = AppSpec {
            app,
            class: OptClass::Orig,
        };
        let a = spec.run(PlatformKind::Svm, 4, Scale::Test);
        let b = spec.run(PlatformKind::Svm, 4, Scale::Test);
        assert_eq!(
            a.clocks,
            b.clocks,
            "{}: repeated SVM runs must produce identical clocks",
            app.name()
        );
        for (x, y) in a.procs.iter().zip(&b.procs) {
            for bucket in Bucket::ALL {
                assert_eq!(x.get(bucket), y.get(bucket), "{}", app.name());
            }
        }
    }
}

#[test]
fn replay_produces_bit_identical_stats() {
    // Stronger than `simulations_are_deterministic`: the ENTIRE RunStats
    // value — clocks, every bucket of every phase of every processor, and
    // all protocol counters — must be equal structure-for-structure across
    // replays, on every platform.
    for pf in [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp] {
        let spec = AppSpec {
            app: App::Ocean,
            class: OptClass::DataStruct,
        };
        let a = spec.run(pf, 4, Scale::Test);
        let b = spec.run(pf, 4, Scale::Test);
        assert_eq!(a, b, "{}: replay diverged", pf.name());
    }
}

#[test]
fn uniprocessor_runs_work_everywhere() {
    for pf in [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp] {
        let stats = AppSpec {
            app: App::Ocean,
            class: OptClass::Orig,
        }
        .run(pf, 1, Scale::Test);
        assert!(stats.total_cycles() > 0);
    }
}

#[test]
fn sixteen_processors_work() {
    let stats = AppSpec {
        app: App::Lu,
        class: OptClass::Algorithm,
    }
    .run(PlatformKind::Svm, 16, Scale::Test);
    assert_eq!(stats.nprocs(), 16);
}
