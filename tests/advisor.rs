//! Advisor invariants (diagnostics layer 4+): the rule engine that fuses
//! the sharing profile, critical-path what-ifs and interval trajectories
//! must recommend the transformation family the paper's next
//! hand-restructured class actually implements (pinned for KV, Ocean and
//! the seeded migratory/false-sharing twins on the page-based platforms),
//! its projected bounds must be true upper bounds (>= 1.0, family unions
//! dominating each member's critpath bound), and the report must be
//! field-identical across the sequential, sharded-classic and fused
//! engines and byte-identical as JSON across repeated runs.

use apps::{App, AppSpec, OptClass};
use sim_core::advisor::{advise, Action, AdvisorReport, Family};
use sim_core::{PageTrajectory, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_restructure::prelude::*;

/// Page-based platforms: the paper's SVM tier, where all three layers
/// (sharing profile included) are populated.
const PAGE_BASED: [PlatformKind; 2] = [PlatformKind::Svm, PlatformKind::Tmk];

/// Sampling interval for test-scale cells: must dwarf the serialized
/// page-fetch spread (~16k cycles on SVM) so one round's concurrent
/// writers land in the same interval (see `tests/metrics.rs`).
const IV: u64 = 1 << 17;

fn layered(n: usize, iv: u64) -> RunConfig {
    RunConfig::new(n)
        .with_sharing_profile()
        .with_trace()
        .with_metrics(iv)
}

fn run_cell(pf: PlatformKind, app: App, class: OptClass, cfg: RunConfig) -> RunStats {
    AppSpec { app, class }.run_cfg(pf, 4, Scale::Test, cfg)
}

/// The invariants every advisor report must satisfy, whatever the cell.
fn check_invariants(rep: &AdvisorReport, what: &str) {
    for r in &rep.recs {
        assert!(r.speedup >= 1.0, "{what}: bound < 1.0 for {:?}", r.action);
        assert!(
            r.projected <= rep.end,
            "{what}: projection above end for {:?}",
            r.action
        );
        assert_eq!(r.family, r.action.family(), "{what}: family mismatch");
        assert!(
            !r.evidence.notes.is_empty(),
            "{what}: evidence-free recommendation {:?}",
            r.action
        );
    }
    // A family union zeroes a superset of each member's edges, so its
    // bound must dominate every member's individual critpath bound.
    for f in &rep.families {
        assert!(f.speedup >= 1.0, "{what}: family bound < 1.0");
        for r in rep.recs.iter().filter(|r| r.family == f.family) {
            assert!(
                f.projected <= r.projected && f.speedup >= r.speedup,
                "{what}: family {} bound does not dominate {:?}",
                f.family.label(),
                r.action
            );
        }
    }
}

fn has_action(rep: &AdvisorReport, f: impl Fn(&Action) -> bool) -> bool {
    rep.recs.iter().any(|r| f(&r.action))
}

#[test]
fn kv_orig_gets_padding_and_affinity_homes() {
    // The paper's KV journey: Orig (dense records) -> P/A (grain-padded
    // records) -> DS (owner-sharded, affinity-routed). The advisor on Orig
    // must surface both: pad `kv_headers`, and shard/home by affinity.
    for pf in PAGE_BASED {
        let stats = run_cell(pf, App::Kv, OptClass::Orig, layered(4, IV));
        let rep = advise(&stats);
        check_invariants(&rep, &format!("kv {pf:?}"));
        assert!(rep.has_sharing && rep.has_trace && rep.has_metrics);
        assert!(
            has_action(&rep, |a| matches!(
                a,
                Action::PadAllocation { label } if label == "kv_headers"
            )),
            "{pf:?}: kv_headers padding not recommended:\n{}",
            rep.report()
        );
        assert!(
            has_action(&rep, |a| matches!(
                a,
                Action::MigrateHome { label } if label.starts_with("kv_")
            )),
            "{pf:?}: bucket-affinity homes not recommended:\n{}",
            rep.report()
        );
        // The next hand-written class is P/A and the top recommendation
        // agrees: dense header records crowd one coherence grain.
        assert_eq!(
            rep.next_family(),
            Some(Family::PadAlign),
            "{pf:?}: top recommendation family changed:\n{}",
            rep.report()
        );
        assert_eq!(rep.recs[0].action.label(), Some("kv_headers"));
    }
}

#[test]
fn kv_family_bound_dominates_measured_pa_speedup() {
    // The tentpole's headline: the advisor's combined P/A bound must
    // dominate the speedup the hand-written P/A class actually measures
    // at the same scale (the bound zeroes all protocol traffic on the
    // padded labels; padding can only remove the false-sharing part).
    let orig = run_cell(PlatformKind::Svm, App::Kv, OptClass::Orig, layered(4, IV));
    let rep = advise(&orig);
    let pa = run_cell(
        PlatformKind::Svm,
        App::Kv,
        OptClass::PadAlign,
        RunConfig::new(4),
    );
    let measured = orig.total_cycles() as f64 / pa.total_cycles() as f64;
    let bound = rep
        .family(Family::PadAlign)
        .expect("P/A rules fired on KV Orig");
    assert!(
        bound.speedup >= measured,
        "P/A family bound {:.3}x must dominate measured P/A speedup {:.3}x",
        bound.speedup,
        measured
    );
}

#[test]
fn ocean_orig_psi_routes_to_ds_at_default_scale() {
    // Ocean Orig's unpadded psi grid is the paper's flagship false-sharing
    // case — and the fix that works is the DS-tier 4-d reorganization, not
    // padding, because the sharing regime shifts with the red-black sweep
    // phase (`tests/metrics.rs` pins the PhaseShifting trajectory). The
    // advisor must fuse those two facts into a DS recommendation for psi.
    let stats = AppSpec {
        app: App::Ocean,
        class: OptClass::Orig,
    }
    .run_cfg(PlatformKind::Svm, 16, Scale::Default, layered(16, 1 << 18));
    let rep = advise(&stats);
    check_invariants(&rep, "ocean default");
    let psi = rep.for_label("psi");
    assert!(
        !psi.is_empty(),
        "no recommendation for psi:\n{}",
        rep.report()
    );
    assert!(
        psi.iter().all(|r| r.family == Family::DataStruct),
        "psi must route to the DS tier, not P/A:\n{}",
        rep.report()
    );
    assert!(
        psi.iter()
            .any(|r| matches!(r.action, Action::HomeAlign { .. })),
        "psi fix is the contiguous per-writer reorganization:\n{}",
        rep.report()
    );
    let top = &psi[0];
    assert_eq!(
        top.evidence.trajectory,
        Some(PageTrajectory::PhaseShifting),
        "psi evidence must carry the phase-shifting trajectory"
    );
    assert!(
        top.evidence.false_share.unwrap_or(0.0) > 0.10,
        "psi evidence must carry the false-sharing fraction"
    );
}

#[test]
fn ocean_orig_test_scale_pins_on_page_platforms() {
    // At test scale psi's false sharing is steady (one interior page), so
    // the padding tier is the advisor's first move — matching the paper's
    // class order Orig -> P/A — and psi carries the top recommendation on
    // every page-based platform.
    for pf in PAGE_BASED {
        let stats = run_cell(pf, App::Ocean, OptClass::Orig, layered(4, IV));
        let rep = advise(&stats);
        check_invariants(&rep, &format!("ocean {pf:?}"));
        assert_eq!(
            rep.recs[0].action.label(),
            Some("psi"),
            "{pf:?}: psi dominates Ocean Orig:\n{}",
            rep.report()
        );
        let fams: Vec<Family> = rep.recs.iter().map(|r| r.family).collect();
        assert!(
            fams.contains(&Family::PadAlign) || fams.contains(&Family::DataStruct),
            "{pf:?}: no P/A or DS recommendation:\n{}",
            rep.report()
        );
    }
}

/// The seeded trajectory twins from `tests/metrics.rs`, with all three
/// layers on: turn-taking whole-page writers vs concurrent disjoint-word
/// writers on one labeled page.
fn twin_stats(pf: PlatformKind, false_twin: bool) -> RunStats {
    let n = 4usize;
    run(
        pf.boxed(n),
        layered(n, IV).named(if false_twin {
            "steady-false-twin"
        } else {
            "migratory-kernel"
        }),
        move |p| {
            if p.pid() == 0 {
                let a = p.alloc_shared_labeled("grid", PAGE_SIZE, PAGE_SIZE, Placement::Node(0));
                for w in 0..32u64 {
                    p.store(a + w * 4, 4, 0);
                }
            }
            p.barrier(0);
            p.start_timing();
            for round in 0..12u64 {
                if false_twin {
                    for w in 0..8u64 {
                        let a = HEAP_BASE + (p.pid() as u64 * 8 + w) * 4;
                        p.store(a, 4, round + 1);
                    }
                } else if round % n as u64 == p.pid() as u64 {
                    for w in 0..32u64 {
                        p.store(HEAP_BASE + w * 4, 4, round + 1);
                    }
                }
                p.work(2 * IV);
                p.barrier(1 + round as u32);
            }
            p.stop_timing();
        },
    )
}

#[test]
fn twins_get_different_recommendations() {
    // Whole-run sharing profiles cannot tell the twins apart (both have
    // multiple writers with word-disjoint write sets); the advisor must,
    // by fusing the interval trajectory: turn-taking ownership wants an
    // explicit handoff (DS), concurrent disjoint words want padding (P/A).
    for pf in PAGE_BASED {
        let mig = advise(&twin_stats(pf, false));
        check_invariants(&mig, &format!("migratory {pf:?}"));
        assert!(
            has_action(&mig, |a| matches!(
                a,
                Action::SingleWriterHandoff { label } if label == "grid"
            )),
            "{pf:?}: migratory grid wants a handoff:\n{}",
            mig.report()
        );
        assert!(
            !has_action(
                &mig,
                |a| matches!(a, Action::PadAllocation { label } if label == "grid")
            ),
            "{pf:?}: padding does not help a migratory page:\n{}",
            mig.report()
        );

        let fs = advise(&twin_stats(pf, true));
        check_invariants(&fs, &format!("false-twin {pf:?}"));
        assert!(
            has_action(&fs, |a| matches!(
                a,
                Action::PadAllocation { label } if label == "grid"
            )),
            "{pf:?}: steady false sharing wants padding:\n{}",
            fs.report()
        );
        assert!(
            !has_action(&fs, |a| matches!(
                a,
                Action::SingleWriterHandoff { label } if label == "grid"
            )),
            "{pf:?}: nothing migrates in the false twin:\n{}",
            fs.report()
        );
        assert_ne!(
            mig.recs[0].action, fs.recs[0].action,
            "{pf:?}: twins must get different top recommendations"
        );
    }
}

#[test]
fn seeded_lock_kernels_split_vs_batch() {
    // A convoy (long hold times behind one lock) wants the lock split; a
    // chatty lock (many cheap hand-offs) wants work batched per
    // acquisition — the KV Alg class's serve_batch move.
    let kernel = |hold: u64, iters: u64| {
        let stats = run(
            PlatformKind::Svm.boxed(4),
            layered(4, IV).named("lock-kernel"),
            move |p| {
                p.start_timing();
                for _ in 0..iters {
                    p.lock(0);
                    p.work(hold);
                    p.unlock(0);
                    p.work(hold / 4 + 10);
                }
                p.stop_timing();
            },
        );
        advise(&stats)
    };
    let convoy = kernel(20_000, 8);
    check_invariants(&convoy, "convoy");
    assert!(
        has_action(&convoy, |a| matches!(a, Action::SplitLock { lock: 0 })),
        "long holds convoy:\n{}",
        convoy.report()
    );
    let chatty = kernel(60, 300);
    check_invariants(&chatty, "chatty");
    assert!(
        has_action(&chatty, |a| matches!(a, Action::BatchLock { lock: 0 })),
        "cheap hand-offs want batching:\n{}",
        chatty.report()
    );
}

#[test]
fn report_is_engine_identical_and_json_deterministic() {
    // The advisor is a pure function of RunStats, and RunStats is pinned
    // bit-identical across the three engines — so the report (and its
    // JSON) must be too. Byte-identical JSON across repeated runs is the
    // determinism half of the satellite.
    let cfg = || layered(4, IV);
    let seq = run_cell(PlatformKind::Svm, App::Kv, OptClass::Orig, cfg());
    let rep = advise(&seq);
    assert!(!rep.recs.is_empty());
    for shards in [2usize, 4] {
        let classic = run_cell(
            PlatformKind::Svm,
            App::Kv,
            OptClass::Orig,
            cfg().with_shards(shards).with_shard_fused(false),
        );
        let fused = run_cell(
            PlatformKind::Svm,
            App::Kv,
            OptClass::Orig,
            cfg().with_shards(shards).with_shard_fused(true),
        );
        assert_eq!(
            rep,
            advise(&classic),
            "shards={shards}: sharded-classic advisor report differs"
        );
        assert_eq!(
            rep,
            advise(&fused),
            "shards={shards}: fused advisor report differs"
        );
    }
    let again = run_cell(PlatformKind::Svm, App::Kv, OptClass::Orig, cfg());
    assert_eq!(
        rep.to_json(),
        advise(&again).to_json(),
        "JSON not byte-stable"
    );
    assert!(rep.to_json().contains("\"recommendations\""));
}

#[test]
fn hardware_platforms_and_missing_layers_are_tolerated() {
    // Non-page platforms have no sharing profile; the advisor must still
    // produce an invariant-clean report from the remaining layers — and
    // with no layers at all, an empty one.
    for pf in [PlatformKind::Dsm, PlatformKind::Smp] {
        let stats = run_cell(pf, App::Kv, OptClass::Orig, layered(4, IV));
        let rep = advise(&stats);
        check_invariants(&rep, &format!("kv {pf:?}"));
        assert!(rep.has_trace && rep.has_metrics);
    }
    let bare = run_cell(
        PlatformKind::Svm,
        App::Kv,
        OptClass::Orig,
        RunConfig::new(4),
    );
    let rep = advise(&bare);
    assert!(!rep.has_sharing && !rep.has_trace && !rep.has_metrics);
    assert!(rep.recs.is_empty(), "no layers, no evidence, no advice");
}
