//! Interval-metrics invariants (diagnostics layer 4): the metrics engine
//! must be invisible (statistics bit-identical with it on or off, even when
//! its buffers overflow), deterministic, identical field-for-field across
//! the sequential, sharded-classic and fused engines at equal caps, and its
//! trajectory classifier must tell seeded migratory pages from their
//! false-sharing twins on the page-based platforms.

use apps::{App, AppSpec, OptClass};
use sim_core::{PageTrajectory, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_restructure::prelude::*;

const PLATFORMS: [PlatformKind; 4] = [
    PlatformKind::Svm,
    PlatformKind::Dsm,
    PlatformKind::Smp,
    PlatformKind::Tmk,
];

/// Small sampling interval so the test-scale cells span many intervals.
const IV: u64 = 1 << 12;

fn run_cell(pf: PlatformKind, app: App, cfg: RunConfig) -> RunStats {
    AppSpec {
        app,
        class: OptClass::Orig,
    }
    .run_cfg(pf, 4, Scale::Test, cfg)
}

#[test]
fn metrics_are_invisible_on_all_platforms() {
    for pf in PLATFORMS {
        let plain = run_cell(pf, App::Ocean, RunConfig::new(4));
        assert!(plain.metrics.is_none(), "{pf:?}: metrics must be opt-in");
        let mut on = run_cell(pf, App::Ocean, RunConfig::new(4).with_metrics(IV));
        let m = on.metrics.take().expect("metrics were requested");
        assert!(
            m.procs.iter().all(|p| p.samples.len() >= 2),
            "{pf:?}: every proc samples at least start and settle"
        );
        assert_eq!(m.total_dropped(), 0, "{pf:?}: default caps overflowed");
        // With the report stripped, the runs must be bit-identical.
        assert_eq!(on, plain, "{pf:?}: metrics perturbed the run");
    }
}

#[test]
fn metrics_runs_are_deterministic() {
    let a = run_cell(
        PlatformKind::Svm,
        App::Ocean,
        RunConfig::new(4).with_metrics(IV),
    );
    let b = run_cell(
        PlatformKind::Svm,
        App::Ocean,
        RunConfig::new(4).with_metrics(IV),
    );
    assert_eq!(a, b, "same metrics run twice must match, report included");
}

#[test]
fn reports_are_identical_across_engines() {
    // Samples are taken inside the shared step API at virtual times all
    // three engines reproduce exactly, so the whole RunStats — report
    // included — must agree.
    for pf in PLATFORMS {
        let cfg = || RunConfig::new(4).with_metrics(IV);
        let seq = run_cell(pf, App::Ocean, cfg());
        let classic = run_cell(pf, App::Ocean, cfg().with_shards(4).with_shard_fused(false));
        let fused = run_cell(pf, App::Ocean, cfg().with_shards(4).with_shard_fused(true));
        assert!(seq.metrics.is_some());
        assert_eq!(seq, classic, "{pf:?}: sharded-classic report differs");
        assert_eq!(seq, fused, "{pf:?}: fused report differs");
    }
}

#[test]
fn cap_drops_are_counted_and_shard_count_independent() {
    // All metrics buffers live on the replay side, so at equal caps the
    // drop totals cannot depend on the shard count — and a full buffer
    // must not perturb the run.
    let tight = |shards: usize| {
        RunConfig::new(4)
            .with_shards(shards)
            .with_metrics(IV)
            .with_metrics_cap(2)
    };
    let plain = run_cell(PlatformKind::Svm, App::Ocean, RunConfig::new(4));
    let mut seq = run_cell(PlatformKind::Svm, App::Ocean, tight(1));
    let m = seq.metrics.take().expect("metrics were requested");
    assert!(m.total_dropped() > 0, "cap of 2 should overflow");
    for p in &m.procs {
        assert!(p.samples.len() <= 2, "per-proc cap not enforced");
    }
    assert!(
        m.pages.len() <= 2 && m.locks.len() <= 2,
        "caps not enforced"
    );
    assert_eq!(seq, plain, "full metrics buffers perturbed the run");
    for shards in [2, 4] {
        let shd = run_cell(PlatformKind::Svm, App::Ocean, tight(shards))
            .metrics
            .expect("metrics were requested");
        assert_eq!(
            m, shd,
            "shards={shards}: capped report depends on shard count"
        );
    }
}

/// Seeded trajectory kernels on one shared labeled page: in the migratory
/// version, rounds take turns — exactly one processor rewrites the page per
/// round — while in the false-sharing twin every processor writes its own
/// disjoint word range every round. Whole-run sharing profiles cannot tell
/// these apart (both have 4 writers and word-disjoint write sets); the
/// interval classifier must.
fn trajectory_twin(pf: PlatformKind, false_twin: bool) -> sim_core::MetricsReport {
    let n = 4usize;
    // Diffs flush at barrier-entry times, which spread over the serialized
    // page-fetch stalls (~16k cycles on SVM); the interval must dwarf that
    // spread so one round's concurrent writers share an interval.
    const KIV: u64 = 1 << 17;
    let stats = run(
        pf.boxed(n),
        RunConfig::new(n).with_metrics(KIV).named(if false_twin {
            "steady-false-twin"
        } else {
            "migratory-kernel"
        }),
        move |p| {
            if p.pid() == 0 {
                let a = p.alloc_shared_labeled("grid", PAGE_SIZE, PAGE_SIZE, Placement::Node(0));
                for w in 0..32u64 {
                    p.store(a + w * 4, 4, 0);
                }
            }
            p.barrier(0);
            p.start_timing();
            for round in 0..12u64 {
                if false_twin {
                    for w in 0..8u64 {
                        let a = HEAP_BASE + (p.pid() as u64 * 8 + w) * 4;
                        p.store(a, 4, round + 1);
                    }
                } else if round % n as u64 == p.pid() as u64 {
                    for w in 0..32u64 {
                        p.store(HEAP_BASE + w * 4, 4, round + 1);
                    }
                }
                // Two interval lengths of compute: consecutive rounds land
                // in distinct sampling intervals on every processor.
                p.work(2 * KIV);
                p.barrier(1 + round as u32);
            }
            p.stop_timing();
        },
    );
    stats.metrics.expect("metrics were requested")
}

#[test]
fn migratory_and_false_sharing_twins_are_told_apart() {
    for pf in [PlatformKind::Svm, PlatformKind::Tmk] {
        let mig = trajectory_twin(pf, false);
        let pg = mig.page(HEAP_BASE).expect("grid page saw traffic");
        assert_eq!(pg.label, "grid");
        assert!(pg.writers.len() >= 2, "{pf:?}: ownership never migrated");
        assert_eq!(
            pg.trajectory,
            PageTrajectory::Migratory,
            "{pf:?}: turn-taking writers misclassified \
             (single={}, multi={})",
            pg.single_intervals,
            pg.multi_intervals
        );
        assert_eq!(
            mig.label_trajectory("grid"),
            Some(PageTrajectory::Migratory)
        );

        let fs = trajectory_twin(pf, true);
        let pg = fs.page(HEAP_BASE).expect("grid page saw traffic");
        // All four write every round, but on home-based HLRC the page's
        // home node updates its copy in place and never flushes a diff, so
        // it is invisible to the writer footprint.
        assert!(pg.writers.len() >= 3, "{pf:?}: concurrent writers missing");
        assert!(!pg.overlap, "{pf:?}: word ranges are disjoint");
        assert_eq!(
            pg.trajectory,
            PageTrajectory::SteadyFalse,
            "{pf:?}: concurrent disjoint writers misclassified \
             (single={}, multi={})",
            pg.single_intervals,
            pg.multi_intervals
        );
    }
}

#[test]
fn ocean_orig_psi_is_phase_shifting_at_default_scale() {
    // Ocean Orig's unpadded psi grid alternates between migratory interior
    // turns and concurrent boundary writes as red-black sweeps proceed: at
    // an interval matched to the sweep period the classifier must call the
    // label phase-shifting — the signature the whole-run profile (which
    // just says "false sharing") cannot see.
    let stats = AppSpec {
        app: App::Ocean,
        class: OptClass::Orig,
    }
    .run_cfg(
        PlatformKind::Svm,
        16,
        Scale::Default,
        RunConfig::new(16).with_metrics(1 << 18),
    );
    let m = stats.metrics.expect("metrics were requested");
    assert_eq!(
        m.label_trajectory("psi"),
        Some(PageTrajectory::PhaseShifting),
        "psi trajectory changed"
    );
}

#[test]
fn kv_request_events_are_recorded_and_engine_identical() {
    let cfg = || RunConfig::new(4).with_metrics(IV);
    let seq = run_cell(PlatformKind::Svm, App::Kv, cfg());
    let m = seq.metrics.as_ref().expect("metrics were requested");
    let ev = m
        .events
        .iter()
        .find(|e| e.name == "kv_requests")
        .expect("KV store reports served requests");
    assert!(ev.total() > 0);
    // Requests served are workload-conserving: every generated request is
    // served exactly once, whatever the interleaving.
    let fused = run_cell(PlatformKind::Svm, App::Kv, cfg().with_shards(4));
    assert_eq!(seq, fused, "fused KV metrics differ");
}
