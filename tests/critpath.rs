//! Critical-path analyzer invariants and edge provenance.
//!
//! The defining invariant: the reconstructed critical-path length equals
//! the end-to-end virtual time of the run, exactly, in every application ×
//! optimization-class × platform cell — and the category attribution
//! telescopes to the same number. On top of that, seeded kernels with a
//! *known* structure (an imbalanced barrier with a chosen straggler, a
//! lock convoy with a chosen handoff order) must have that structure
//! identified from the recorded dependency edges alone.

use apps::{App, AppSpec, OptClass};
use sim_core::critpath::{analyze, what_if_report, PathCat};
use sim_core::{DepKind, RunConfig, RunTrace};
use svm_restructure::prelude::*;

fn traced(app: App, class: OptClass, pf: PlatformKind) -> RunTrace {
    AppSpec { app, class }
        .run_cfg(pf, 4, Scale::Test, RunConfig::new(4).with_trace())
        .trace
        .expect("tracing was requested")
}

/// Every cell: path length == end-to-end time, attribution sums to the
/// path, the structural what-if baseline reproduces it, nothing dropped.
fn sweep_platform(pf: PlatformKind) {
    for app in App::ALL {
        for class in OptClass::ALL {
            let tr = traced(app, class, pf);
            let cp = analyze(&tr);
            let cell = format!("{}/{} on {}", app.name(), class.label(), pf.name());
            assert_eq!(cp.total, tr.end(), "path != end for {cell}");
            assert_eq!(
                cp.by_cat.iter().sum::<u64>(),
                cp.total,
                "category attribution does not telescope for {cell}"
            );
            let phase_sum: u64 = cp.by_phase.iter().flat_map(|(_, cats)| cats.iter()).sum();
            assert_eq!(phase_sum, cp.total, "phase attribution leaks for {cell}");
            assert_eq!(cp.baseline, tr.end(), "what-if baseline off for {cell}");
            assert_eq!(cp.edges_dropped, 0, "edges dropped for {cell}");
        }
    }
}

#[test]
fn invariants_hold_in_every_cell_on_svm() {
    sweep_platform(PlatformKind::Svm);
}

#[test]
fn invariants_hold_in_every_cell_on_tmk() {
    sweep_platform(PlatformKind::Tmk);
}

#[test]
fn invariants_hold_in_every_cell_on_dsm() {
    sweep_platform(PlatformKind::Dsm);
}

#[test]
fn invariants_hold_in_every_cell_on_smp() {
    sweep_platform(PlatformKind::Smp);
}

/// The analyzer is post-hoc: a traced run's RunStats (trace stripped) are
/// bit-identical to an untraced run, and re-analysis is deterministic.
#[test]
fn analysis_is_deterministic_and_invisible() {
    let spec = AppSpec {
        app: App::Ocean,
        class: OptClass::Orig,
    };
    let plain = spec.run_cfg(PlatformKind::Svm, 4, Scale::Test, RunConfig::new(4));
    let mut t1 = spec.run_cfg(
        PlatformKind::Svm,
        4,
        Scale::Test,
        RunConfig::new(4).with_trace(),
    );
    let tr1 = t1.trace.take().expect("traced");
    assert_eq!(t1, plain, "tracing+analysis input perturbed RunStats");
    let tr2 = traced(App::Ocean, OptClass::Orig, PlatformKind::Svm);
    let (a, b) = (analyze(&tr1), analyze(&tr2));
    assert_eq!(a.steps, b.steps, "path reconstruction is nondeterministic");
    assert_eq!(a.by_cat, b.by_cat);
    assert_eq!(a.total, b.total);
}

/// Zeroing a cost on the DAG can only shorten the path: every projection
/// is an upper bound >= 1.0.
#[test]
fn what_if_projections_are_upper_bounds() {
    for pf in [PlatformKind::Svm, PlatformKind::Smp] {
        let tr = traced(App::Ocean, OptClass::Orig, pf);
        let cp = analyze(&tr);
        let proj = what_if_report(&tr, &cp, 8);
        assert!(!proj.is_empty(), "no projections on {}", pf.name());
        for p in &proj {
            assert!(
                p.speedup >= 1.0,
                "zeroing {:?} slowed the DAG on {}: {}",
                p.target,
                pf.name(),
                p.speedup
            );
            assert!(p.projected <= cp.total, "projection exceeds baseline");
        }
    }
}

/// The paper's Ocean diagnosis, reproduced by the analyzer: the original
/// version's critical path on SVM is dominated by page fetches, and the
/// data-structure reorganization removes most of those fetch cycles from
/// the path (at default scale the path flips to compute-dominated; at test
/// scale the absolute shift is what is measurable).
#[test]
fn ocean_ds_removes_page_fetch_cycles_from_the_path() {
    let orig = analyze(&traced(App::Ocean, OptClass::Orig, PlatformKind::Svm));
    let ds = analyze(&traced(App::Ocean, OptClass::DataStruct, PlatformKind::Svm));
    assert_eq!(
        orig.dominant(),
        PathCat::PageFetch,
        "Ocean/Orig on SVM must be fetch-bound"
    );
    assert!(
        ds.total < orig.total,
        "DS did not shorten the path: {} vs {}",
        ds.total,
        orig.total
    );
    let fetch = PathCat::PageFetch.index();
    assert!(
        ds.by_cat[fetch] < orig.by_cat[fetch],
        "DS did not cut page-fetch cycles on the path: {} vs {}",
        ds.by_cat[fetch],
        orig.by_cat[fetch]
    );
}

const FAMILIES: [PlatformKind; 3] = [PlatformKind::Svm, PlatformKind::Dsm, PlatformKind::Smp];

/// Seeded imbalance: one chosen processor arrives at a barrier 50k cycles
/// late. The recorded release edges must name it as the last arriver, and
/// the critical path must run through its extra compute.
#[test]
fn barrier_straggler_is_identified_on_all_families() {
    let n = 4;
    let slow = n - 1;
    for pf in FAMILIES {
        let stats = sim_core::run(pf.boxed(n), RunConfig::new(n).with_trace(), move |p| {
            p.start_timing();
            p.work(1_000 + if p.pid() == slow { 50_000 } else { 0 });
            p.barrier(9);
            p.work(500);
            p.stop_timing();
        });
        let tr = stats.trace.expect("traced");
        let releases: Vec<_> = tr
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::BarrierRelease { barrier: 9 })
            .collect();
        for e in &releases {
            assert_eq!(e.src, slow, "{}: wrong straggler identified", pf.name());
        }
        // Every waiter's release is provenanced (the straggler itself may
        // get a self-edge for the barrier's own exit overhead).
        let waiters: std::collections::BTreeSet<usize> = releases
            .iter()
            .map(|e| e.dst)
            .filter(|&d| d != slow)
            .collect();
        assert_eq!(waiters.len(), n - 1, "{}: waiters at barrier 9", pf.name());
        let cp = analyze(&tr);
        assert_eq!(cp.total, tr.end(), "{}", pf.name());
        let slow_compute: u64 = cp
            .steps
            .iter()
            .filter(|s| s.pid == slow && s.cat == PathCat::Compute)
            .map(|s| s.cycles())
            .sum();
        assert!(
            slow_compute >= 50_000,
            "{}: path skipped the straggler's extra work ({slow_compute})",
            pf.name()
        );
    }
}

/// Seeded convoy: every processor takes one lock and holds it for 20k
/// cycles, so the run serializes on the handoff chain. The recorded
/// handoffs must link hand to hand (each releaser is the previous holder),
/// every processor must hold exactly once, and the whole chain must appear
/// on the critical path contiguously — consecutive handoffs separated only
/// by the holder's compute.
#[test]
fn lock_convoy_chain_is_contiguous_on_the_path() {
    let n = 4;
    for pf in FAMILIES {
        let stats = sim_core::run(pf.boxed(n), RunConfig::new(n).with_trace(), |p| {
            p.start_timing();
            p.work(p.pid() as u64 * 200 + 1);
            p.lock(0);
            p.work(20_000);
            p.unlock(0);
            p.barrier(0);
            p.stop_timing();
        });
        let tr = stats.trace.expect("traced");
        // Cross handoffs in grant order (edges are (t1, seq)-sorted). An
        // uncontended acquire may record a self-edge for the acquire's own
        // protocol cost; the convoy itself is the cross edges. Grant order
        // is the platform's to choose — the chain structure is not.
        let cross: Vec<_> = tr
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::LockHandoff { lock: 0 } && e.src != e.dst)
            .collect();
        assert_eq!(cross.len(), n - 1, "{}: one handoff per waiter", pf.name());
        for w in cross.windows(2) {
            assert_eq!(
                w[1].src,
                w[0].dst,
                "{}: releaser is not the previous holder",
                pf.name()
            );
        }
        let holders: std::collections::BTreeSet<usize> = cross.iter().map(|e| e.dst).collect();
        assert_eq!(holders.len(), n - 1, "{}: a waiter held twice", pf.name());
        let expected: Vec<(usize, usize)> = cross.iter().map(|e| (e.src, e.dst)).collect();

        let cp = analyze(&tr);
        assert_eq!(cp.total, tr.end(), "{}", pf.name());
        let mut chain = Vec::new();
        let mut between_ok = true;
        let mut in_chain = false;
        for s in &cp.steps {
            match s.edge.map(|i| &tr.edges[i]) {
                Some(e) if matches!(e.kind, DepKind::LockHandoff { lock: 0 }) && e.src != e.dst => {
                    chain.push((e.src, e.dst));
                    in_chain = true;
                }
                _ => {
                    if in_chain && s.cat != PathCat::Compute && chain.len() < n - 1 {
                        between_ok = false;
                    }
                }
            }
        }
        assert_eq!(
            chain,
            expected,
            "{}: handoff chain broken or out of order on the path",
            pf.name()
        );
        assert!(
            between_ok,
            "{}: non-compute step interleaved inside the convoy chain",
            pf.name()
        );
    }
}
