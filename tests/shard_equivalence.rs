//! Differential proof harness for the sharded (generate/replay) engine:
//! `RunConfig::with_shards(n)` must produce **bit-identical** `RunStats` —
//! clocks, every bucket and counter, sharing profiles, full trace event
//! streams — to the classic sequential engine (`shards = 1`), for every
//! application × optimization class × platform cell, for every shard
//! count, with every diagnostic layer enabled, and across randomized
//! platform/scheduler configuration points.
//!
//! The argument for *why* this holds (the replay side *is* the classic
//! engine, consuming operation streams that are deterministic for
//! data-race-free programs) lives in `sim_core::shard`; this file is the
//! evidence.

use apps::{App, AppSpec, OptClass};
use sim_core::critpath::analyze;
use sim_core::util::XorShift64;
use sim_core::{run, Placement, RunConfig, RunStats, HEAP_BASE};
use svm_hlrc::{SvmConfig, SvmPlatform};
use svm_restructure::prelude::*;

const PLATFORMS: [PlatformKind; 4] = [
    PlatformKind::Svm,
    PlatformKind::Dsm,
    PlatformKind::Smp,
    PlatformKind::Tmk,
];

fn cell(app: App, class: OptClass, pf: PlatformKind, cfg: RunConfig) -> RunStats {
    AppSpec { app, class }.run_cfg(pf, cfg.nprocs, Scale::Test, cfg)
}

/// The headline acceptance criterion: the full grid — all 7 applications,
/// all 4 optimization classes, all 4 platform models — with shards ∈
/// {2, 4 = P}, each compared structurally against the sequential oracle.
#[test]
fn full_grid_is_bit_identical_across_shard_counts() {
    for pf in PLATFORMS {
        for app in App::ALL {
            for class in OptClass::ALL {
                let oracle = cell(app, class, pf, RunConfig::new(4).with_shards(1));
                for shards in [2, 4] {
                    let sharded = cell(app, class, pf, RunConfig::new(4).with_shards(shards));
                    assert_eq!(
                        oracle,
                        sharded,
                        "{}/{} on {}: shards={shards} diverged from the sequential oracle",
                        app.name(),
                        class.label(),
                        pf.name()
                    );
                }
            }
        }
    }
}

/// Shard counts above, at, and below the processor count on a wider run
/// (P = 8): oversubscription and undersubscription are both just gate
/// widths and must not be observable.
#[test]
fn shard_count_is_invisible_at_eight_processors() {
    for pf in [PlatformKind::Svm, PlatformKind::Smp] {
        for app in [App::Lu, App::Radix] {
            let oracle = cell(
                app,
                OptClass::Algorithm,
                pf,
                RunConfig::new(8).with_shards(1),
            );
            for shards in [2, 8, 16] {
                let sharded = cell(
                    app,
                    OptClass::Algorithm,
                    pf,
                    RunConfig::new(8).with_shards(shards),
                );
                assert_eq!(
                    oracle,
                    sharded,
                    "{} on {} at P=8: shards={shards} diverged",
                    app.name(),
                    pf.name()
                );
            }
        }
    }
}

/// Every diagnostic layer at once — race detector, per-page sharing
/// profiler, full event trace — under sharding, compared field-for-field
/// (trace event streams and sharing pages included) against the identically
/// instrumented sequential run.
#[test]
fn diagnostics_laden_runs_are_bit_identical_under_sharding() {
    let instrumented = |shards: usize| {
        RunConfig::new(4)
            .with_shards(shards)
            .with_race_detection()
            .with_sharing_profile()
            .with_trace()
    };
    for pf in PLATFORMS {
        for app in [App::Ocean, App::Barnes] {
            let oracle = cell(app, OptClass::Orig, pf, instrumented(1));
            let sharded = cell(app, OptClass::Orig, pf, instrumented(4));
            assert!(
                sharded.trace.as_ref().is_some_and(|t| t.total_events() > 0),
                "{}: sharded run produced an empty trace",
                pf.name()
            );
            assert_eq!(
                oracle,
                sharded,
                "{} on {}: diagnostics diverged under sharding",
                app.name(),
                pf.name()
            );
        }
    }
}

/// The critical-path analyzer's defining invariant (`total == end`) holds
/// on traces recorded under sharding — the dependency-edge stream is the
/// classic engine's, bit for bit.
#[test]
fn critpath_invariant_holds_on_sharded_traces() {
    for pf in PLATFORMS {
        let stats = cell(
            App::Lu,
            OptClass::Algorithm,
            pf,
            RunConfig::new(4).with_shards(4).with_trace(),
        );
        let tr = stats.trace.expect("tracing was requested");
        let cp = analyze(&tr);
        assert_eq!(
            cp.total,
            cp.end,
            "{}: sharded trace broke the critical-path telescoping invariant",
            pf.name()
        );
        assert!(cp.total > 0, "{}: degenerate critical path", pf.name());
    }
}

/// A data-race-free stress kernel, deterministic by construction: the
/// parameter stream is derived from the seed alone (identical on every
/// processor and engine), indices are partitioned by pid, and the shared
/// accumulator is consistently lock-protected.
fn stress_body(seed: u64, words: u64, iters: u64) -> impl Fn(&mut sim_core::Proc) + Sync {
    move |p| {
        let mut rng = XorShift64::new(seed);
        let n = p.nprocs() as u64;
        let pid = p.pid() as u64;
        let acc = HEAP_BASE + words * 8; // word index `words`, see alloc below
        if p.pid() == 0 {
            p.alloc_shared_labeled("stress", (words + 1) * 8, 8, Placement::RoundRobin);
        }
        p.barrier(0);
        p.start_timing();
        for it in 0..iters {
            // Partitioned strided writes over the array body.
            let mut i = pid;
            while i < words {
                p.store(HEAP_BASE + i * 8, 8, i.wrapping_mul(0x9E37) ^ it);
                i += n;
            }
            p.work(rng.below(500));
            p.barrier(10 + it as u32);
            // Bulk-read a rotated partition (written by a neighbour, now
            // visible across the barrier), then charge fused per-element
            // compute for it.
            let mut buf = vec![0u64; (words / n) as usize];
            p.load_slice(HEAP_BASE + ((pid + 1) % n) * 8, n * 8, 8, &mut buf);
            p.work_fused(1 + rng.below(4), buf.len() as u64);
            // Lock-protected read-modify-write of the shared accumulator.
            p.lock(1);
            let v = p.load(acc, 8);
            p.store(acc, 8, v.wrapping_add(buf.iter().sum()));
            p.unlock(1);
            // Occasionally clear a stripe with the bulk fill.
            if rng.below(2) == 0 {
                p.fill(HEAP_BASE + pid * 8, 8, 1 + words / (4 * n), 0);
            }
            p.barrier(100 + it as u32);
        }
        p.stop_timing();
        p.barrier(999);
    }
}

/// The fused (single-thread event-loop) and classic (thread-per-processor)
/// replay engines, explicitly selected, against the sequential oracle with
/// every diagnostic layer stacked: the engines must be mutually — and
/// oracle- — bit-identical on every platform.
#[test]
fn fused_and_classic_replay_engines_are_bit_identical() {
    let instrumented = |shards: usize, fused: bool| {
        RunConfig::new(4)
            .with_shards(shards)
            .with_shard_fused(fused)
            .with_race_detection()
            .with_sharing_profile()
            .with_trace()
    };
    for pf in PLATFORMS {
        for (app, class) in [(App::Lu, OptClass::Algorithm), (App::Radix, OptClass::Orig)] {
            let oracle = cell(app, class, pf, instrumented(1, true));
            let fused = cell(app, class, pf, instrumented(4, true));
            let classic = cell(app, class, pf, instrumented(4, false));
            assert_eq!(
                oracle,
                fused,
                "{}/{} on {}: fused replay diverged from the oracle",
                app.name(),
                class.label(),
                pf.name()
            );
            assert_eq!(
                oracle,
                classic,
                "{}/{} on {}: classic sharded replay diverged from the oracle",
                app.name(),
                class.label(),
                pf.name()
            );
        }
    }
}

/// The descriptor batch size is a pure channel-granularity knob: sweeping
/// it from degenerate (1 descriptor per message) through large must be
/// invisible in the statistics, under both replay engines.
#[test]
fn shard_batch_size_is_invisible() {
    let body = stress_body(0xBA7C4, 256, 2);
    let build = |batch: Option<usize>, fused: bool| {
        let mut c = RunConfig::new(4)
            .with_shards(4)
            .with_shard_fused(fused)
            .with_trace();
        if let Some(b) = batch {
            c = c.with_shard_batch(b);
        }
        c
    };
    let oracle = run(
        SvmPlatform::boxed(SvmConfig::paper(4)),
        RunConfig::new(4).with_shards(1).with_trace(),
        &body,
    );
    for batch in [None, Some(1), Some(7), Some(512), Some(16384)] {
        for fused in [true, false] {
            let sharded = run(
                SvmPlatform::boxed(SvmConfig::paper(4)),
                build(batch, fused),
                &body,
            );
            assert_eq!(
                oracle, sharded,
                "batch={batch:?} fused={fused}: batch size leaked into the statistics"
            );
        }
    }
}

/// Out-of-range batch sizes are rejected at configuration time, not
/// discovered as hangs or misbehavior mid-run.
#[test]
#[should_panic(expected = "shard_batch must be in")]
fn zero_shard_batch_is_rejected() {
    let _ = RunConfig::new(4).with_shard_batch(0);
}

// ---- teardown: panics, poison, deadlock ----
//
// A replay engine that leaks parked generation threads turns an
// application panic into a process hang. These tests pass only if `run`
// unwinds promptly (the harness would time out otherwise) with the same
// panic message the classic engine produces.

/// An application panic mid-timed-phase under the fused engine: the
/// `Poison` descriptor must propagate through replay, unwind the event
/// loop, abort every generation thread, and re-raise with the classic
/// message format.
#[test]
fn app_panic_mid_phase_unwinds_cleanly_under_fused_replay() {
    for fused in [true, false] {
        let result = std::panic::catch_unwind(|| {
            run(
                SvmPlatform::boxed(SvmConfig::paper(4)),
                RunConfig::new(4).with_shards(2).with_shard_fused(fused),
                |p| {
                    p.barrier(0);
                    p.start_timing();
                    p.work(500);
                    p.barrier(1);
                    if p.pid() == 2 {
                        panic!("injected failure in phase");
                    }
                    // The survivors head for a barrier the panicked
                    // processor will never reach.
                    p.barrier(2);
                    p.stop_timing();
                },
            )
        });
        let payload = result.expect_err("the simulated panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("simulated processor panicked") && msg.contains("injected failure"),
            "fused={fused}: unexpected panic message: {msg}"
        );
        assert!(
            msg.contains("p2"),
            "fused={fused}: panic not attributed to the failing processor: {msg}"
        );
    }
}

/// A simulated deadlock (lock held by a finished processor) under the
/// fused engine: detected, reported with the classic message, and all
/// generation threads released.
#[test]
fn deadlock_is_detected_under_fused_replay() {
    for fused in [true, false] {
        let result = std::panic::catch_unwind(|| {
            run(
                SvmPlatform::boxed(SvmConfig::paper(2)),
                RunConfig::new(2).with_shards(2).with_shard_fused(fused),
                |p| {
                    p.barrier(0);
                    p.start_timing(); // clocks live: the order below is forced
                    if p.pid() == 0 {
                        p.lock(1); // acquired at clock 0, never unlocked
                    } else {
                        p.work(10_000); // guarantees p0 wins the lock race
                        p.lock(1); // waits forever: the holder is done
                        p.unlock(1);
                    }
                },
            )
        });
        let payload = result.expect_err("the deadlock must be detected");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("simulated deadlock: no runnable processor"),
            "fused={fused}: unexpected deadlock message: {msg}"
        );
    }
}

/// A panic before the application emits a single descriptor (early drop of
/// the run): the replay side sees only a `Poison` stream and must still
/// unwind without stranding the other generation threads mid-stream.
#[test]
fn immediate_panic_unwinds_cleanly_under_fused_replay() {
    for fused in [true, false] {
        let result = std::panic::catch_unwind(|| {
            run(
                SvmPlatform::boxed(SvmConfig::paper(4)),
                RunConfig::new(4).with_shards(4).with_shard_fused(fused),
                |p| {
                    if p.pid() == 0 {
                        panic!("failed before first op");
                    }
                    // The other generators keep streaming large batches so
                    // the unwind races live channel traffic.
                    for i in 0..50_000u64 {
                        p.store(HEAP_BASE + (i % 512) * 8, 8, i);
                    }
                    p.barrier(0);
                },
            )
        });
        let payload = result.expect_err("the simulated panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("simulated processor panicked") && msg.contains("failed before first op"),
            "fused={fused}: unexpected panic message: {msg}"
        );
    }
}

/// Seeded randomized sweep over platform and scheduler configuration
/// points — processors per node, latencies, page sizes, quanta, trace
/// caps — comparing sharded against sequential on the stress kernel. A
/// failure names the seed so the point can be replayed in isolation.
#[test]
fn randomized_config_points_stay_bit_identical() {
    for case in 0..12u64 {
        let seed = 0x5AD_C0DE ^ (case << 16);
        let mut rng = XorShift64::new(seed);
        let nprocs = [2usize, 4, 8][rng.below(3) as usize];
        let mut svm = SvmConfig::paper(nprocs);
        // Random platform point.
        svm.procs_per_node = *[1usize, 2, nprocs]
            .iter()
            .filter(|&&ppn| nprocs.is_multiple_of(ppn))
            .nth(rng.below(2) as usize % 2)
            .unwrap();
        svm.wire_latency = 50 + rng.below(400);
        svm.handler_cost = 100 + rng.below(500);
        svm.fault_trap = 200 + rng.below(1500);
        svm.page_size = 1024 << rng.below(3);
        svm.barrier_manager_salt = rng.below(16) as u32;
        // Random scheduler point.
        let quantum = 100 + rng.below(4000);
        let trace_cap = 32 + rng.below(512) as usize;
        let words = 128 + rng.below(768);
        let iters = 2 + rng.below(3);
        let shards = [2usize, 4, nprocs][rng.below(3) as usize];
        let build = |s: usize| {
            let mut c = RunConfig::new(nprocs)
                .with_shards(s)
                .with_trace()
                .with_trace_cap(trace_cap)
                .named(format!("stress-{seed:#x}"));
            c.quantum = quantum;
            c
        };
        let body = stress_body(seed, words, iters);
        let oracle = run(SvmPlatform::boxed(svm.clone()), build(1), &body);
        let sharded = run(SvmPlatform::boxed(svm), build(shards), &body);
        assert_eq!(
            oracle, sharded,
            "seed {seed:#x} (case {case}, nprocs={nprocs}, shards={shards}): \
             sharded run diverged — replay with XorShift64::new({seed:#x})"
        );
    }
}
