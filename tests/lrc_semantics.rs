//! Lazy-release-consistency semantics litmus tests run through the public
//! facade: the HLRC platform must deliver exactly the guarantees
//! data-race-free programs rely on.

use sim_core::{run, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_hlrc::{SvmConfig, SvmPlatform};

fn svm<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
    run(
        SvmPlatform::boxed(SvmConfig::paper(n)),
        RunConfig::new(n),
        f,
    )
}

#[test]
fn message_passing_through_a_lock_chain() {
    // p0 -> p1 -> p2 -> p3: each forwards a value one page over, all under
    // the same lock. Causality must carry all previous writes.
    let final_val = std::sync::Mutex::new(0u64);
    svm(4, |p| {
        if p.pid() == 0 {
            p.alloc_shared(4 * PAGE_SIZE, 8, Placement::RoundRobin);
        }
        p.barrier(0);
        p.start_timing();
        let slot = |i: usize| HEAP_BASE + (i as u64) * PAGE_SIZE;
        if p.pid() == 0 {
            p.lock(1);
            p.store(slot(0), 8, 1000);
            p.unlock(1);
        }
        // Token-style handoff via barriers between stages, writes via lock.
        for stage in 1..4 {
            p.barrier(stage as u32);
            if p.pid() == stage {
                p.lock(1);
                let v = p.load(slot(stage - 1), 8);
                p.store(slot(stage), 8, v + 1);
                p.unlock(1);
            }
        }
        p.barrier(9);
        if p.pid() == 3 {
            *final_val.lock().unwrap() = p.load(slot(3), 8);
        }
        p.barrier(10);
    });
    assert_eq!(final_val.into_inner().unwrap(), 1003);
}

#[test]
fn concurrent_writers_on_one_page_never_lose_updates() {
    // Heavy word-level false sharing: 8 processors repeatedly increment
    // disjoint counters that all live on one page, under distinct locks,
    // across several barrier epochs.
    let n = 8;
    let sums = std::sync::Mutex::new(vec![0u64; n]);
    svm(n, |p| {
        if p.pid() == 0 {
            p.alloc_shared(PAGE_SIZE, 8, Placement::Node(3));
        }
        p.barrier(0);
        p.start_timing();
        let mine = HEAP_BASE + 8 * p.pid() as u64;
        for epoch in 0..5u32 {
            for _ in 0..3 {
                let v = p.load(mine, 8);
                p.store(mine, 8, v + 1);
            }
            p.barrier(1 + epoch);
        }
        // NB: perform the simulated load *before* taking the host-side
        // mutex — Proc operations may suspend the calling OS thread to
        // schedule another simulated processor, and that processor might
        // itself be blocked on the host mutex.
        let v = p.load(mine, 8);
        sums.lock().unwrap()[p.pid()] = v;
        p.barrier(100);
    });
    assert_eq!(*sums.into_inner().unwrap(), vec![15u64; 8]);
}

#[test]
fn reader_sees_all_prior_epochs_after_barrier() {
    // Each epoch a different writer appends; after each barrier all
    // processors must observe the full history.
    let n = 4;
    svm(n, |p| {
        if p.pid() == 0 {
            p.alloc_shared(PAGE_SIZE, 8, Placement::Node(1));
        }
        p.barrier(0);
        p.start_timing();
        for epoch in 0..4usize {
            if p.pid() == epoch {
                p.store(HEAP_BASE + 8 * epoch as u64, 8, 70 + epoch as u64);
            }
            p.barrier(1 + epoch as u32);
            for k in 0..=epoch {
                assert_eq!(
                    p.load(HEAP_BASE + 8 * k as u64, 8),
                    70 + k as u64,
                    "p{} epoch {epoch} slot {k}",
                    p.pid()
                );
            }
        }
    });
}

#[test]
fn lock_grant_order_is_fair_in_virtual_time() {
    // With a tight quantum, lock grants follow virtual request order.
    let order = std::sync::Mutex::new(Vec::new());
    run(
        SvmPlatform::boxed(SvmConfig::paper(4)),
        RunConfig {
            quantum: 50,
            ..RunConfig::new(4)
        },
        |p| {
            p.start_timing();
            p.work(1 + 5_000 * p.pid() as u64);
            p.lock(2);
            order.lock().unwrap().push(p.pid());
            p.work(60_000);
            p.unlock(2);
            p.barrier(0);
        },
    );
    assert_eq!(*order.into_inner().unwrap(), vec![0, 1, 2, 3]);
}

#[test]
fn home_pages_are_never_fetched_by_their_owner() {
    let stats = svm(2, |p| {
        if p.pid() == 0 {
            p.alloc_shared(8 * PAGE_SIZE, 8, Placement::Node(0));
        }
        p.barrier(0);
        p.start_timing();
        if p.pid() == 0 {
            for i in 0..8u64 {
                p.store(HEAP_BASE + i * PAGE_SIZE, 8, i);
            }
        }
        p.barrier(1);
    });
    assert_eq!(stats.procs[0].counters.remote_fetches, 0);
    assert_eq!(
        stats.procs[0].counters.twins_created, 0,
        "home writes in place"
    );
}
