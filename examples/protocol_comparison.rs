//! Two real SVM protocols, one application: watch home-based (HLRC) and
//! non-home-based (TreadMarks-style) lazy release consistency service the
//! same multi-writer workload.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use apps::radix::{self, RadixParams, RadixVersion};
use apps::Platform;
use sim_core::Bucket;

fn main() {
    let params = RadixParams {
        n: 16 << 10,
        passes: 2,
        seed: 99,
    };
    println!("Radix sort, 16K keys, 8 processors — the multi-writer stress test\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "proto", "cycles", "DataWait%", "fetches", "diffs", "twins"
    );
    for pf in [Platform::Svm, Platform::Tmk] {
        let r = radix::run_params(pf, 8, &params, RadixVersion::Orig);
        let st = &r.stats;
        let c = st.sum_counters();
        println!(
            "{:<8} {:>12} {:>9.1}% {:>10} {:>10} {:>8}",
            pf.name(),
            st.total_cycles(),
            100.0 * st.sum(Bucket::DataWait) as f64 / (8 * st.total_cycles()) as f64,
            c.remote_fetches,
            c.diffs_created,
            c.twins_created,
        );
    }
    println!(
        "\nSame sorted output, verified against the same reference — but the\n\
         non-home-based protocol pays one round trip per *writer* on every\n\
         fault of a multi-writer page, which is precisely why the paper's\n\
         platform (and ours) is home-based."
    );
}
