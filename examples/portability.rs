//! Performance portability in one screen: the same two Barnes versions on
//! all three platforms. The SVM-motivated restructuring (Barnes-Spatial) is
//! decisive on SVM and much less important on hardware coherence.
//!
//! ```text
//! cargo run --release --example portability
//! ```

use apps::barnes::{self, BarnesVersion};
use apps::{Platform, Scale};

fn main() {
    let scale = Scale::Default;
    let nprocs = 16;
    println!("Barnes, {nprocs} processors (default scale; ~2 min)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "Platform", "SharedTree", "Spatial", "gain"
    );
    for pf in [Platform::Svm, Platform::Smp, Platform::Dsm] {
        let base = barnes::run(pf, 1, scale, BarnesVersion::SharedTree)
            .stats
            .total_cycles();
        let orig = barnes::run(pf, nprocs, scale, BarnesVersion::SharedTree)
            .stats
            .total_cycles();
        let spatial = barnes::run(pf, nprocs, scale, BarnesVersion::Spatial)
            .stats
            .total_cycles();
        println!(
            "{:<10} {:>13.2}x {:>13.2}x {:>9.2}x",
            pf.name(),
            base as f64 / orig as f64,
            base as f64 / spatial as f64,
            orig as f64 / spatial as f64,
        );
    }
    println!(
        "\nThe paper's conclusion: optimizations that rescue SVM are\n\
         performance-portable (they do not hurt hardware-coherent machines)\n\
         but their impact there is dramatically smaller."
    );
}
