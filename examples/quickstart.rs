//! Quickstart: run one application on the SVM platform and read the
//! paper-style execution time breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use apps::{App, AppSpec, OptClass, Platform, Scale};
use sim_core::Bucket;

fn main() {
    // LU with the paper's final data structure (4-d blocks, page-aligned,
    // owner-homed), on 8 simulated SVM nodes at the test problem size.
    let spec = AppSpec {
        app: App::Lu,
        class: OptClass::Algorithm,
    };
    println!(
        "running {} ({:?}) on SVM with 8 processors...",
        spec.app.name(),
        spec.class
    );
    let stats = spec.run(Platform::Svm, 8, Scale::Test);

    println!(
        "\nexecution time: {} cycles (200 MHz -> {:.2} ms)",
        stats.total_cycles(),
        stats.total_cycles() as f64 / 200_000.0,
    );
    println!("\nper-processor breakdown (cycles):");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "proc", "Compute", "DataWait", "LockWait", "Barrier", "Handler", "CacheStall"
    );
    for (pid, p) in stats.procs.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            pid,
            p.get(Bucket::Compute),
            p.get(Bucket::DataWait),
            p.get(Bucket::LockWait),
            p.get(Bucket::BarrierWait),
            p.get(Bucket::HandlerCompute),
            p.get(Bucket::CacheStall),
        );
    }
    let c = stats.sum_counters();
    println!(
        "\nprotocol activity: {} page fetches, {} twins, {} diffs, {} invalidations",
        c.remote_fetches, c.twins_created, c.diffs_created, c.invalidations
    );
}
