//! Writing your own application against the simulation API: a parallel
//! histogram with a deliberately bad and a better shared-memory layout,
//! to see HLRC protocol behaviour first-hand.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use sim_core::util::XorShift64;
use sim_core::{run, Bucket, Placement, Proc, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_hlrc::{SvmConfig, SvmPlatform};

const NPROCS: usize = 8;
const BUCKETS: usize = 64;
const SAMPLES_PER_PROC: usize = 4_000;

/// Build one shared histogram under a lock (bad: every update is a
/// critical section, and all counters share one page).
fn shared_histogram(p: &mut Proc, hist: u64) {
    let mut rng = XorShift64::new(7 + p.pid() as u64);
    for _ in 0..SAMPLES_PER_PROC {
        let b = (rng.next_u64() % BUCKETS as u64) as usize;
        p.work(20); // "compute" the sample
        p.lock(1);
        let v = p.load(hist + (b * 8) as u64, 8);
        p.store(hist + (b * 8) as u64, 8, v + 1);
        p.unlock(1);
    }
    p.barrier(1);
}

/// Per-processor partial histograms on locally-homed pages, merged once
/// (good: no locks in the hot loop, one coarse merge).
fn partial_histograms(p: &mut Proc, partials: u64, hist: u64) {
    let mut rng = XorShift64::new(7 + p.pid() as u64);
    let mine = partials + (p.pid() as u64) * PAGE_SIZE;
    for _ in 0..SAMPLES_PER_PROC {
        let b = (rng.next_u64() % BUCKETS as u64) as usize;
        p.work(20);
        let v = p.load(mine + (b * 8) as u64, 8);
        p.store(mine + (b * 8) as u64, 8, v + 1);
    }
    p.barrier(1);
    // Processor 0 merges.
    if p.pid() == 0 {
        for q in 0..p.nprocs() {
            for b in 0..BUCKETS {
                let v = p.load(partials + (q as u64) * PAGE_SIZE + (b * 8) as u64, 8);
                let h = p.load(hist + (b * 8) as u64, 8);
                p.store(hist + (b * 8) as u64, 8, h + v);
            }
        }
    }
    p.barrier(2);
}

fn main() {
    for (name, use_partials) in [("lock-per-update", false), ("partial histograms", true)] {
        let stats = run(
            SvmPlatform::boxed(SvmConfig::paper(NPROCS)),
            RunConfig::new(NPROCS),
            |p| {
                if p.pid() == 0 {
                    let hist = p.alloc_shared((BUCKETS * 8) as u64, PAGE_SIZE, Placement::Node(0));
                    assert_eq!(hist, HEAP_BASE);
                    p.alloc_shared(NPROCS as u64 * PAGE_SIZE, PAGE_SIZE, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                if use_partials {
                    partial_histograms(p, HEAP_BASE + PAGE_SIZE, HEAP_BASE);
                } else {
                    shared_histogram(p, HEAP_BASE);
                }
                p.stop_timing();
                // Check the result: total count must equal all samples.
                if p.pid() == 0 {
                    let mut total = 0u64;
                    for b in 0..BUCKETS {
                        total += p.load(HEAP_BASE + (b * 8) as u64, 8);
                    }
                    assert_eq!(total, (NPROCS * SAMPLES_PER_PROC) as u64);
                }
            },
        );
        let c = stats.sum_counters();
        println!(
            "{name:<20} {:>12} cycles | lock wait {:>5.1}% | {} locks, {} page fetches",
            stats.total_cycles(),
            100.0 * stats.sum(Bucket::LockWait) as f64
                / (NPROCS as u64 * stats.total_cycles()) as f64,
            c.lock_acquires,
            c.remote_fetches,
        );
    }
    println!("\nSame computation, ~two orders of magnitude apart on SVM: the\npaper's 'synchronization is very expensive on SVM' in miniature.");
}
