//! The paper's core narrative on one application: walk Ocean through the
//! optimization classes (original 2-d arrays → padding → 4-d arrays →
//! row-wise partitioning) on the SVM platform and watch the speedup move.
//!
//! ```text
//! cargo run --release --example optimization_journey
//! ```

use apps::ocean::{self, OceanVersion};
use apps::{Platform, Scale};
use sim_core::Bucket;

fn main() {
    let scale = Scale::Default;
    let nprocs = 16;

    println!("Ocean on SVM, {nprocs} processors (default scale; ~1 min)\n");
    let base = ocean::run(Platform::Svm, 1, scale, OceanVersion::Orig2d)
        .stats
        .total_cycles();
    println!("uniprocessor (original 2-d): {base} cycles\n");

    for (version, note) in [
        (OceanVersion::Orig2d, "square partitions on 2-d arrays"),
        (OceanVersion::PadAlign, "page-padded rows (P/A)"),
        (OceanVersion::Contig4d, "4-d arrays, owner-homed (DS)"),
        (OceanVersion::RowWise, "row-wise partitions (Alg)"),
    ] {
        let stats = ocean::run(Platform::Svm, nprocs, scale, version).stats;
        let t = stats.total_cycles();
        println!(
            "{:<12} speedup {:>5.2}  (barrier {:>4.1}%, data wait {:>4.1}%)   <- {note}",
            format!("{version:?}"),
            base as f64 / t as f64,
            100.0 * stats.sum(Bucket::BarrierWait) as f64 / (nprocs as u64 * t) as f64,
            100.0 * stats.sum(Bucket::DataWait) as f64 / (nprocs as u64 * t) as f64,
        );
    }
    println!(
        "\nThe paper's result at 16 processors and full scale: 8.5 with the\n\
         4-d data structure, 13.2 with row-wise partitioning — interactions\n\
         with page granularity matter more than the inherent communication-\n\
         to-computation ratio."
    );
}
