//! HLRC data-plane micro-benchmarks.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_core::cache::{Cache, CacheGeom, LineState};
use sim_core::Resource;
use svm_hlrc::Diff;

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    let twin = vec![0u8; 4096];
    // Scattered: every 16th word differs.
    let mut scattered = twin.clone();
    for i in (0..4096).step_by(64) {
        scattered[i] = 1;
    }
    // Contiguous: first quarter differs.
    let mut contiguous = twin.clone();
    for b in contiguous.iter_mut().take(1024) {
        *b = 1;
    }
    g.bench_function("create_scattered", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&scattered)))
    });
    g.bench_function("create_contiguous", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&contiguous)))
    });
    let d = Diff::create(&twin, &contiguous);
    g.bench_function("apply", |b| {
        let mut target = twin.clone();
        b.iter(|| d.apply(black_box(&mut target)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let geom = CacheGeom {
        size: 512 << 10,
        line: 32,
        ways: 2,
    };
    g.bench_function("hit", |b| {
        let mut cache = Cache::new(geom);
        cache.fill(0x1000_0000, LineState::Exclusive);
        b.iter(|| cache.access(black_box(0x1000_0000), false))
    });
    g.bench_function("streaming_misses", |b| {
        let mut cache = Cache::new(geom);
        let mut a = 0x1000_0000u64;
        b.iter(|| {
            a += 32;
            let r = cache.access(black_box(a), true);
            cache.fill(a, LineState::Modified);
            r
        })
    });
    g.finish();
}

fn bench_resource(c: &mut Criterion) {
    c.bench_function("resource_serve", |b| {
        let mut r = Resource::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            r.serve(black_box(t), 7)
        })
    });
}

criterion_group!(benches, bench_diff, bench_cache, bench_resource);
criterion_main!(benches);
