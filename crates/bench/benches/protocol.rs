//! HLRC data-plane micro-benchmarks.
//!
//! Plain `std::time` timing loops (originally criterion harnesses): the
//! workspace must build with no external crates. Run with
//! `cargo bench -p bench --bench protocol`.

use sim_core::cache::{Cache, CacheGeom, LineState};
use sim_core::Resource;
use std::hint::black_box;
use std::time::Instant;
use svm_hlrc::Diff;

fn report(name: &str, iters: u64, mut f: impl FnMut()) {
    // Warm up, then time.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let dt = t0.elapsed();
    println!(
        "{name:<28} {:>10.1} ns/iter ({iters} iters)",
        dt.as_nanos() as f64 / iters as f64
    );
}

fn bench_diff() {
    let twin = vec![0u8; 4096];
    // Scattered: every 16th word differs.
    let mut scattered = twin.clone();
    for i in (0..4096).step_by(64) {
        scattered[i] = 1;
    }
    // Contiguous: first quarter differs.
    let mut contiguous = twin.clone();
    for b in contiguous.iter_mut().take(1024) {
        *b = 1;
    }
    report("diff/create_scattered", 100_000, || {
        black_box(Diff::create(black_box(&twin), black_box(&scattered)));
    });
    report("diff/create_contiguous", 100_000, || {
        black_box(Diff::create(black_box(&twin), black_box(&contiguous)));
    });
    let d = Diff::create(&twin, &contiguous);
    let mut target = twin.clone();
    report("diff/apply", 100_000, || {
        d.apply(black_box(&mut target));
    });
}

fn bench_cache() {
    let geom = CacheGeom {
        size: 512 << 10,
        line: 32,
        ways: 2,
    };
    let mut cache = Cache::new(geom);
    cache.fill(0x1000_0000, LineState::Exclusive);
    report("cache/hit", 1_000_000, || {
        black_box(cache.access(black_box(0x1000_0000), false));
    });
    let mut cache = Cache::new(geom);
    let mut a = 0x1000_0000u64;
    report("cache/streaming_misses", 1_000_000, || {
        a += 32;
        black_box(cache.access(black_box(a), true));
        cache.fill(a, LineState::Modified);
    });
}

fn bench_resource() {
    let mut r = Resource::new();
    let mut t = 0u64;
    report("resource_serve", 1_000_000, || {
        t += 10;
        black_box(r.serve(black_box(t), 7));
    });
}

fn main() {
    bench_diff();
    bench_cache();
    bench_resource();
}
