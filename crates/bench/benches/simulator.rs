//! Scheduler and synchronization-path benchmarks: wall-clock cost of the
//! simulation machinery itself.
//!
//! Plain `std::time` timing loops (originally criterion harnesses). Run with
//! `cargo bench -p bench --bench simulator`.

use bench::{dsm, smp, svm};
use sim_core::{run, Placement, RunConfig, HEAP_BASE};
use std::time::Instant;

fn report(name: &str, iters: u64, mut f: impl FnMut()) {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let dt = t0.elapsed();
    println!(
        "{name:<32} {:>10.2} ms/iter ({iters} iters)",
        dt.as_secs_f64() * 1e3 / iters as f64
    );
}

fn bench_access_path() {
    for (name, mk) in [
        ("svm", svm as fn(usize) -> Box<dyn sim_core::Platform>),
        ("dsm", dsm),
        ("smp", smp),
    ] {
        report(&format!("100k_local_loads_{name}"), 10, || {
            run(mk(1), RunConfig::new(1), |p| {
                p.alloc_shared(1 << 16, 8, Placement::Node(0));
                p.start_timing();
                for i in 0..100_000u64 {
                    p.load(HEAP_BASE + (i % 8192) * 8, 8);
                }
            });
        });
    }
}

fn bench_sync() {
    report("barrier_1k_x4procs_svm", 10, || {
        run(svm(4), RunConfig::new(4), |p| {
            p.start_timing();
            for i in 0..1000 {
                p.barrier(i % 7);
            }
        });
    });
    report("lock_pingpong_1k_x2procs_svm", 10, || {
        run(svm(2), RunConfig::new(2), |p| {
            p.start_timing();
            for _ in 0..1000 {
                p.lock(1);
                p.work(10);
                p.unlock(1);
            }
            p.barrier(0);
        });
    });
}

fn main() {
    bench_access_path();
    bench_sync();
}
