//! Scheduler and synchronization-path benchmarks: wall-clock cost of the
//! simulation machinery itself.
use bench::{dsm, smp, svm};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::{run, Placement, RunConfig, HEAP_BASE};

fn bench_access_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_path");
    g.sample_size(10);
    for (name, mk) in [
        ("svm", svm as fn(usize) -> Box<dyn sim_core::Platform>),
        ("dsm", dsm),
        ("smp", smp),
    ] {
        g.bench_function(format!("100k_local_loads_{name}"), |b| {
            b.iter(|| {
                run(mk(1), RunConfig::new(1), |p| {
                    p.alloc_shared(1 << 16, 8, Placement::Node(0));
                    p.start_timing();
                    for i in 0..100_000u64 {
                        p.load(HEAP_BASE + (i % 8192) * 8, 8);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    g.sample_size(10);
    g.bench_function("barrier_1k_x4procs_svm", |b| {
        b.iter(|| {
            run(svm(4), RunConfig::new(4), |p| {
                p.start_timing();
                for i in 0..1000 {
                    p.barrier(i % 7);
                }
            })
        })
    });
    g.bench_function("lock_pingpong_1k_x2procs_svm", |b| {
        b.iter(|| {
            run(svm(2), RunConfig::new(2), |p| {
                p.start_timing();
                for _ in 0..1000 {
                    p.lock(1);
                    p.work(10);
                    p.unlock(1);
                }
                p.barrier(0);
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_access_path, bench_sync);
criterion_main!(benches);
