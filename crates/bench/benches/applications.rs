//! End-to-end application runs at test scale: simulator throughput per
//! whole simulated execution (build/verify included).
use apps::{App, AppSpec, OptClass, Platform, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_test_scale");
    g.sample_size(10);
    for app in [App::Lu, App::Ocean, App::Barnes, App::Radix] {
        for pf in [Platform::Svm, Platform::Dsm] {
            g.bench_function(format!("{}_{}", app.name(), pf.name()), |b| {
                let spec = AppSpec {
                    app,
                    class: OptClass::Orig,
                };
                b.iter(|| spec.run(pf, 4, Scale::Test))
            });
        }
    }
    g.finish();
}

fn bench_figures_smoke(c: &mut Criterion) {
    // One figure-style sweep at test scale: how long a harness run costs.
    let mut g = c.benchmark_group("figure_smoke");
    g.sample_size(10);
    g.bench_function("fig2_row_lu", |b| {
        b.iter(|| {
            let spec = AppSpec {
                app: App::Lu,
                class: OptClass::Orig,
            };
            let base = spec.run(Platform::Svm, 1, Scale::Test).total_cycles();
            let par = spec.run(Platform::Svm, 4, Scale::Test).total_cycles();
            base as f64 / par as f64
        })
    });
    g.finish();
}

criterion_group!(benches, bench_apps, bench_figures_smoke);
criterion_main!(benches);
