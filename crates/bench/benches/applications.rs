//! End-to-end application runs at test scale: simulator throughput per
//! whole simulated execution (build/verify included).
//!
//! Plain `std::time` timing loops (originally criterion harnesses). Run with
//! `cargo bench -p bench --bench applications`.

use apps::{App, AppSpec, OptClass, Platform, Scale};
use std::hint::black_box;
use std::time::Instant;

fn report(name: &str, iters: u64, mut f: impl FnMut()) {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let dt = t0.elapsed();
    println!(
        "{name:<28} {:>10.2} ms/iter ({iters} iters)",
        dt.as_secs_f64() * 1e3 / iters as f64
    );
}

fn bench_apps() {
    for app in [App::Lu, App::Ocean, App::Barnes, App::Radix] {
        for pf in [Platform::Svm, Platform::Dsm] {
            let spec = AppSpec {
                app,
                class: OptClass::Orig,
            };
            report(&format!("{}_{}", app.name(), pf.name()), 10, || {
                black_box(spec.run(pf, 4, Scale::Test));
            });
        }
    }
}

fn bench_figures_smoke() {
    // One figure-style sweep at test scale: how long a harness run costs.
    report("fig2_row_lu", 10, || {
        let spec = AppSpec {
            app: App::Lu,
            class: OptClass::Orig,
        };
        let base = spec.run(Platform::Svm, 1, Scale::Test).total_cycles();
        let par = spec.run(Platform::Svm, 4, Scale::Test).total_cycles();
        black_box(base as f64 / par as f64);
    });
}

fn main() {
    bench_apps();
    bench_figures_smoke();
}
