//! perfjson — machine-readable simulator-performance benchmark.
//!
//! Times each benchmark cell (application x platform, default scale, 8
//! simulated processors) twice — once on the word-at-a-time scalar
//! reference path and once on the bulk fast path — and writes
//! `BENCH_simulator.json` with host seconds, the bulk-over-scalar speedup,
//! and simulated-cycles-per-host-second throughput. The two paths produce
//! bit-identical `RunStats` (enforced by `tests/equivalence.rs`); this
//! binary measures only how fast the simulator gets there.
//!
//! One extra cell (Ocean on SVM) runs with the sharing profiler on: its
//! `RunStats` must stay bit-identical to the profiler-off run, its host
//! overhead is recorded in the JSON, and the gathered per-page profile is
//! written to `--profile-out` for CI to archive.
//!
//! A second extra cell re-times Ocean on SVM with the race detector on,
//! scalar vs bulk: the batched shadow-memory checks must produce the same
//! `RunStats` (and zero races) as the per-word path, and the JSON records
//! the detector-on bulk speedup.
//!
//! A third extra cell runs Ocean on SVM with the event tracer on: the
//! `RunStats` with the trace stripped must be bit-identical to the plain
//! run, the default buffer cap must not drop events, and the Chrome
//! `trace_event` export is written to `--trace-out` for CI to archive.
//!
//! A fourth cell runs the critical-path analyzer over that trace: pure
//! post-hoc host work whose reconstructed path length must equal the
//! end-to-end virtual time; the JSON records the analysis cost.
//!
//! A fifth cell runs Ocean on SVM with the interval-metrics engine on:
//! the `RunStats` with the report stripped must be bit-identical to the
//! plain run (metrics never charge cycles), the default caps must not
//! drop, and the JSON records the host overhead next to the other
//! diagnostic layers'.
//!
//! A sixth cell runs Ocean on SVM with all three diagnostic layers on and
//! feeds them to the optimization advisor: the layers together must still
//! be invisible in the timed `RunStats`, every recommendation bound must
//! be `>= 1.0`, and the JSON records the pure post-hoc analysis cost plus
//! the per-family recommendation counts.
//!
//! Every main cell is additionally re-timed on the sharded generate/replay
//! engine (`with_shards(4)`), twice: once with the classic thread-per-
//! processor replay side and once with the fused single-threaded
//! event-loop replay engine (the default). Both sharded `RunStats` are
//! asserted bit-identical to the sequential bulk run right here in the
//! bench, and the JSON records per cell the sequential, classic-sharded
//! and fused-sharded host seconds (`shard_speedup` / `fused_speedup` are
//! relative to sequential) plus the host's CPU count. The speedup columns
//! only mean anything relative to `host_cpus`: generation runs on its own
//! threads, so on a single-CPU host the pipeline serializes and the
//! columns read as pure engine overhead, while multi-core hosts overlap
//! generation with replay.
//!
//! A final section sweeps the descriptor batch size (`with_shard_batch`)
//! on one fused cell: the channel-granularity knob must be invisible in
//! the statistics and its host-time effect is recorded per size.
//!
//! ```text
//! cargo run -p bench --release --bin perfjson [-- --scale test|default|paper \
//!     --procs N --out PATH --profile-out PATH --trace-out PATH]
//! ```

use apps::{App, AppSpec, OptClass, Platform, Scale};
use sim_core::RunConfig;
use std::fmt::Write as _;
use std::time::Instant;

struct Cell {
    app: App,
    platform: Platform,
    host_s_scalar: f64,
    host_s_bulk: f64,
    host_s_shards4: f64,
    host_s_fused: f64,
    sim_cycles: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Default;
    let mut nprocs = 8usize;
    let mut out_path = String::from("BENCH_simulator.json");
    let mut profile_path = String::from("BENCH_sharing_profile.json");
    let mut trace_path = String::from("BENCH_trace.json");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("default") => Scale::Default,
                    Some("paper") => Scale::Paper,
                    other => panic!("unknown scale {other:?} (test|default|paper)"),
                };
            }
            "--procs" => {
                i += 1;
                nprocs = args[i].parse().expect("--procs N");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--profile-out" => {
                i += 1;
                profile_path = args[i].clone();
            }
            "--trace-out" => {
                i += 1;
                trace_path = args[i].clone();
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let scale_name = match scale {
        Scale::Test => "test",
        Scale::Default => "default",
        Scale::Paper => "paper",
    };

    // The three apps the bulk fast path targets hardest, plus the
    // server-shaped KV workload (lock-heavy, bulk-light — the opposite
    // corner of the engine), on all three platforms of the study.
    let apps = [App::Lu, App::Ocean, App::Radix, App::Kv];
    let mut cells = Vec::new();
    for app in apps {
        for platform in Platform::ALL {
            let spec = AppSpec {
                app,
                class: OptClass::Algorithm,
            };
            eprintln!("[perfjson] {} on {}...", app.name(), platform.name());
            let t0 = Instant::now();
            let scalar = spec.run_cfg(
                platform,
                nprocs,
                scale,
                RunConfig::new(nprocs).scalar_reference(),
            );
            let host_s_scalar = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let bulk = spec.run_cfg(platform, nprocs, scale, RunConfig::new(nprocs));
            let host_s_bulk = t1.elapsed().as_secs_f64();
            assert_eq!(
                scalar, bulk,
                "scalar and bulk RunStats diverge for {app:?} on {platform:?}"
            );
            let t2 = Instant::now();
            let sharded = spec.run_cfg(
                platform,
                nprocs,
                scale,
                RunConfig::new(nprocs)
                    .with_shards(4)
                    .with_shard_fused(false),
            );
            let host_s_shards4 = t2.elapsed().as_secs_f64();
            assert_eq!(
                bulk, sharded,
                "classic sharded and sequential RunStats diverge for {app:?} on {platform:?}"
            );
            let t3 = Instant::now();
            let fused = spec.run_cfg(
                platform,
                nprocs,
                scale,
                RunConfig::new(nprocs).with_shards(4).with_shard_fused(true),
            );
            let host_s_fused = t3.elapsed().as_secs_f64();
            assert_eq!(
                bulk, fused,
                "fused sharded and sequential RunStats diverge for {app:?} on {platform:?}"
            );
            cells.push(Cell {
                app,
                platform,
                host_s_scalar,
                host_s_bulk,
                host_s_shards4,
                host_s_fused,
                sim_cycles: bulk.total_cycles(),
            });
        }
    }

    // One profiler-on cell: the sharing profiler must be invisible in the
    // statistics (only the `sharing` field may differ) and cheap on the
    // host. The profile itself is written out for CI to archive.
    let prof_spec = AppSpec {
        app: App::Ocean,
        class: OptClass::Algorithm,
    };
    eprintln!("[perfjson] Ocean on SVM with sharing profiler...");
    let t2 = Instant::now();
    let plain = prof_spec.run_cfg(Platform::Svm, nprocs, scale, RunConfig::new(nprocs));
    let host_s_plain = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let profiled = prof_spec.run_cfg(
        Platform::Svm,
        nprocs,
        scale,
        RunConfig::new(nprocs).with_sharing_profile(),
    );
    let host_s_profiled = t3.elapsed().as_secs_f64();
    let profile = profiled.sharing.clone().expect("SVM produces a profile");
    let mut stripped = profiled;
    stripped.sharing = None;
    assert_eq!(
        stripped, plain,
        "sharing profiler perturbed RunStats for Ocean on SVM"
    );
    std::fs::write(&profile_path, profile.to_json()).expect("write sharing profile json");
    eprintln!("[perfjson] wrote {profile_path}");

    // Detector-on cell: the batched shadow-memory checks in the bulk fast
    // path must match the per-word reference exactly — same RunStats, zero
    // races on a race-free app — and the JSON records what batching buys.
    eprintln!("[perfjson] Ocean on SVM with race detector (scalar vs bulk)...");
    let t4 = Instant::now();
    let det_scalar = prof_spec.run_cfg(
        Platform::Svm,
        nprocs,
        scale,
        RunConfig::new(nprocs)
            .scalar_reference()
            .with_race_detection(),
    );
    let host_s_det_scalar = t4.elapsed().as_secs_f64();
    let t5 = Instant::now();
    let det_bulk = prof_spec.run_cfg(
        Platform::Svm,
        nprocs,
        scale,
        RunConfig::new(nprocs).with_race_detection(),
    );
    let host_s_det_bulk = t5.elapsed().as_secs_f64();
    assert_eq!(
        det_scalar, det_bulk,
        "detector-on scalar and bulk RunStats diverge for Ocean on SVM"
    );
    assert_eq!(det_bulk.races(), 0, "Ocean must be race-free");

    // Traced cell: event tracing must be invisible in the statistics (only
    // the `trace` field may differ), the default buffer cap must hold the
    // whole run, and the Perfetto export is archived by CI.
    eprintln!("[perfjson] Ocean on SVM with event tracer...");
    let t6 = Instant::now();
    let mut traced = prof_spec.run_cfg(
        Platform::Svm,
        nprocs,
        scale,
        RunConfig::new(nprocs).with_trace(),
    );
    let host_s_traced = t6.elapsed().as_secs_f64();
    let tr = traced.trace.take().expect("tracing was requested");
    assert_eq!(
        traced, plain,
        "event tracer perturbed RunStats for Ocean on SVM"
    );
    assert_eq!(tr.dropped_events(), 0, "default trace cap overflowed");
    std::fs::write(&trace_path, tr.to_chrome_json()).expect("write trace json");
    eprintln!(
        "[perfjson] wrote {trace_path} ({} events)",
        tr.total_events()
    );

    // Critical-path cell: the analyzer is pure post-hoc work on the trace —
    // the timed RunStats were already asserted bit-identical above — so
    // this only measures host-side analysis cost and checks the defining
    // invariant (reconstructed path length == end-to-end virtual time).
    eprintln!("[perfjson] critical-path analysis of the traced cell...");
    let t7 = Instant::now();
    let cp = sim_core::critpath::analyze(&tr);
    let host_s_critpath = t7.elapsed().as_secs_f64();
    assert_eq!(
        cp.total,
        tr.end(),
        "critical-path length != end-to-end time for Ocean on SVM"
    );
    assert_eq!(cp.baseline, tr.end(), "what-if baseline != end-to-end time");
    assert_eq!(cp.edges_dropped, 0, "default edge cap overflowed");

    // Metrics-on cell: the interval-metrics engine must be invisible in
    // the statistics (only the `metrics` field may differ) and cheap on
    // the host; the JSON records its overhead next to the other layers'.
    eprintln!("[perfjson] Ocean on SVM with interval metrics...");
    let t8 = Instant::now();
    let mut metered = prof_spec.run_cfg(
        Platform::Svm,
        nprocs,
        scale,
        RunConfig::new(nprocs).with_metrics(sim_core::metrics::DEFAULT_INTERVAL),
    );
    let host_s_metrics = t8.elapsed().as_secs_f64();
    let metrics = metered.metrics.take().expect("metrics were requested");
    assert_eq!(
        metered, plain,
        "interval metrics perturbed RunStats for Ocean on SVM"
    );
    assert_eq!(
        metrics.total_dropped(),
        0,
        "default metrics caps overflowed"
    );

    // Advisor cell: all three diagnostic layers on at once, fused into
    // ranked recommendations. The layers together must still be invisible
    // in the timed statistics, and the advisor itself is pure post-hoc
    // host work; the JSON records its analysis cost and what it found.
    eprintln!("[perfjson] Ocean on SVM with the optimization advisor...");
    let t9 = Instant::now();
    let mut advised = prof_spec.run_cfg(
        Platform::Svm,
        nprocs,
        scale,
        RunConfig::new(nprocs)
            .with_sharing_profile()
            .with_trace()
            .with_metrics(sim_core::metrics::DEFAULT_INTERVAL),
    );
    let host_s_advised = t9.elapsed().as_secs_f64();
    let t10 = Instant::now();
    let rep = sim_core::advise(&advised);
    let host_s_advisor = t10.elapsed().as_secs_f64();
    advised.sharing = None;
    advised.trace = None;
    advised.metrics = None;
    assert_eq!(
        advised, plain,
        "diagnostic layers perturbed RunStats for Ocean on SVM"
    );
    for r in &rep.recs {
        assert!(r.speedup >= 1.0, "advisor bound < 1.0 for {:?}", r.action);
    }
    let rec_count = |fam| rep.recs.iter().filter(|r| r.family == fam).count();

    // Batch sweep: the descriptor batch size is a channel-granularity knob
    // on the generate side — it must be invisible in the statistics, and
    // the sweep records what it costs (or buys) in host time on one fused
    // cell. Sizes bracket the default (512) by 8x in both directions.
    let batch_sizes: [usize; 3] = [64, 512, 4096];
    let mut batch_cells = Vec::new();
    for &b in &batch_sizes {
        eprintln!("[perfjson] Ocean on SVM fused sharded, batch {b}...");
        let tb = Instant::now();
        let got = prof_spec.run_cfg(
            Platform::Svm,
            nprocs,
            scale,
            RunConfig::new(nprocs).with_shards(4).with_shard_batch(b),
        );
        let host_s = tb.elapsed().as_secs_f64();
        assert_eq!(got, plain, "shard batch size {b} perturbed RunStats");
        batch_cells.push((b, host_s));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"simulator-throughput\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"nprocs\": {nprocs},");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    let _ = writeln!(
        json,
        "  \"profiled_cell\": {{\"app\": \"Ocean\", \"platform\": \"SVM\", \
         \"host_s_plain\": {:.4}, \"host_s_profiled\": {:.4}, \
         \"profiler_overhead\": {:.2}}},",
        host_s_plain,
        host_s_profiled,
        host_s_profiled / host_s_plain.max(1e-12)
    );
    let _ = writeln!(
        json,
        "  \"detector_cell\": {{\"app\": \"Ocean\", \"platform\": \"SVM\", \
         \"host_s_scalar\": {:.4}, \"host_s_bulk\": {:.4}, \
         \"bulk_speedup\": {:.2}, \"races\": {}}},",
        host_s_det_scalar,
        host_s_det_bulk,
        host_s_det_scalar / host_s_det_bulk.max(1e-12),
        det_bulk.races()
    );
    let _ = writeln!(
        json,
        "  \"traced_cell\": {{\"app\": \"Ocean\", \"platform\": \"SVM\", \
         \"host_s_plain\": {:.4}, \"host_s_traced\": {:.4}, \
         \"tracer_overhead\": {:.2}, \"events\": {}, \"dropped\": {}}},",
        host_s_plain,
        host_s_traced,
        host_s_traced / host_s_plain.max(1e-12),
        tr.total_events(),
        tr.dropped_events()
    );
    let _ = writeln!(
        json,
        "  \"metrics_cell\": {{\"app\": \"Ocean\", \"platform\": \"SVM\", \
         \"host_s_plain\": {:.4}, \"host_s_metrics\": {:.4}, \
         \"metrics_overhead\": {:.2}, \"intervals\": {}, \"pages\": {}, \
         \"dropped\": {}}},",
        host_s_plain,
        host_s_metrics,
        host_s_metrics / host_s_plain.max(1e-12),
        metrics.max_interval() + 1,
        metrics.pages.len(),
        metrics.total_dropped()
    );
    let _ = writeln!(
        json,
        "  \"advisor_cell\": {{\"app\": \"Ocean\", \"platform\": \"SVM\", \
         \"host_s_plain\": {:.4}, \"host_s_layered\": {:.4}, \
         \"layered_overhead\": {:.2}, \"advise_host_s\": {:.4}, \
         \"recommendations\": {}, \"by_family\": {{\"P/A\": {}, \"DS\": {}, \
         \"Alg\": {}}}}},",
        host_s_plain,
        host_s_advised,
        host_s_advised / host_s_plain.max(1e-12),
        host_s_advisor,
        rep.recs.len(),
        rec_count(sim_core::Family::PadAlign),
        rec_count(sim_core::Family::DataStruct),
        rec_count(sim_core::Family::Algorithm)
    );
    let _ = writeln!(
        json,
        "  \"critpath_cell\": {{\"app\": \"Ocean\", \"platform\": \"SVM\", \
         \"analysis_host_s\": {:.4}, \"path_cycles\": {}, \"edges\": {}, \
         \"edges_dropped\": {}, \"invariant_ok\": {}}},",
        host_s_critpath,
        cp.total,
        cp.edges,
        cp.edges_dropped,
        cp.total == tr.end() && cp.baseline == tr.end()
    );
    json.push_str("  \"batch_sweep\": {\"app\": \"Ocean\", \"platform\": \"SVM\", \"cells\": [");
    for (i, (b, s)) in batch_cells.iter().enumerate() {
        let _ = write!(json, "{{\"batch\": {b}, \"host_s\": {s:.4}}}");
        if i + 1 < batch_cells.len() {
            json.push_str(", ");
        }
    }
    json.push_str("]},\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let speedup = c.host_s_scalar / c.host_s_bulk.max(1e-12);
        let shard_speedup = c.host_s_bulk / c.host_s_shards4.max(1e-12);
        let fused_speedup = c.host_s_bulk / c.host_s_fused.max(1e-12);
        let cps = c.sim_cycles as f64 / c.host_s_bulk.max(1e-12);
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"platform\": \"{}\", \
             \"host_s_scalar\": {:.4}, \"host_s_bulk\": {:.4}, \
             \"bulk_speedup\": {:.2}, \"host_s_shards4\": {:.4}, \
             \"shard_speedup\": {:.2}, \"host_s_fused\": {:.4}, \
             \"fused_speedup\": {:.2}, \"sim_cycles\": {}, \
             \"sim_cycles_per_host_s\": {:.0}}}",
            c.app.name(),
            c.platform.name(),
            c.host_s_scalar,
            c.host_s_bulk,
            speedup,
            c.host_s_shards4,
            shard_speedup,
            c.host_s_fused,
            fused_speedup,
            c.sim_cycles,
            cps
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("[perfjson] wrote {out_path}");
}
