//! Benchmark support crate. The actual benchmarks live in `benches/`:
//!
//! * `protocol` — HLRC data-plane primitives: diff creation/application,
//!   cache tag lookups, resource arbitration.
//! * `simulator` — scheduler hand-off latency, lock round-trips, barrier
//!   episodes on each platform.
//! * `applications` — small end-to-end application runs per platform
//!   (these measure *simulator throughput*, i.e. wall-clock per simulated
//!   run, not application performance — that is what the `figures`
//!   binaries report in virtual cycles).

/// Convenience: a boxed SVM platform at the paper's configuration.
pub fn svm(n: usize) -> Box<dyn sim_core::Platform> {
    svm_hlrc::SvmPlatform::boxed(svm_hlrc::SvmConfig::paper(n))
}

/// Convenience: a boxed CC-NUMA platform at the paper's configuration.
pub fn dsm(n: usize) -> Box<dyn sim_core::Platform> {
    cc_numa::DsmPlatform::boxed(cc_numa::DsmConfig::paper(n))
}

/// Convenience: a boxed SMP platform at the paper's configuration.
pub fn smp(n: usize) -> Box<dyn sim_core::Platform> {
    smp_bus::SmpPlatform::boxed(smp_bus::SmpConfig::paper(n))
}
