//! The cooperative, deterministic, min-virtual-time scheduler and the
//! [`Proc`] handle applications program against.
//!
//! Each simulated processor is an OS thread, but exactly one thread runs at
//! a time. The running thread performs simulated events (memory accesses,
//! synchronization) against the shared scheduler state under a single mutex,
//! then — at yield points — hands the turn to the runnable processor with
//! the minimum virtual clock. Lock queueing and barrier membership are
//! implemented here, generically; the pluggable [`Platform`] prices the
//! protocol actions (see [`crate::platform`]).
//!
//! ## Determinism
//!
//! Every scheduling decision is a pure function of virtual state (clocks,
//! statuses), taken by the currently running thread while holding the global
//! mutex. Repeated runs therefore produce bit-identical statistics, which the
//! integration tests assert.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::alloc::{GlobalAlloc, Placement};
use crate::detector::RaceDetector;
use crate::platform::{Platform, Timing};
use crate::shard::{Desc, Reply};
use crate::stats::{Bucket, ProcStats, RunStats};
use crate::util::FxMap;
use crate::Addr;

/// Run-wide configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of simulated processors.
    pub nprocs: usize,
    /// Run-ahead quantum in cycles: a processor voluntarily yields when its
    /// clock exceeds the minimum runnable clock by more than this. Smaller
    /// values tighten virtual-time ordering at the cost of more hand-offs.
    pub quantum: u64,
    /// Enable the happens-before race detector (see [`crate::detector`]).
    /// Off by default: the fast path then pays only an `Option` test per
    /// access, and timing statistics are bit-identical either way.
    pub detect_races: bool,
    /// Diagnostic name for this run (e.g. `"LU/Alg"`), attached to race
    /// reports.
    pub label: String,
    /// Use the bulk fast path for the slice operations
    /// ([`Proc::load_slice`] and friends). On by default; turning it off
    /// replays every slice word-at-a-time through [`Proc::load`] /
    /// [`Proc::store`] in the same order — the reference the equivalence
    /// tests compare against, and the "before" side of the perf benchmarks.
    pub bulk: bool,
    /// Gather a per-page [`crate::sharing::SharingProfile`] on page-based
    /// platforms (word-granularity write footprints, writer/reader sets,
    /// true-vs-false sharing classification), attached as
    /// [`RunStats::sharing`]. Off by default; `SIM_SHARING=1` in the
    /// environment flips the default. Timing statistics are bit-identical
    /// either way.
    pub sharing_profile: bool,
    /// Record a virtual-time event trace ([`crate::trace`]) of the timed
    /// region, attached as [`RunStats::trace`]. Off by default;
    /// `SIM_TRACE=1` in the environment flips the default. Timing
    /// statistics are bit-identical either way.
    pub trace: bool,
    /// Per-processor event-buffer capacity for the trace (events past the
    /// cap are counted as dropped, never reallocating).
    pub trace_cap: usize,
    /// Run-wide dependency-edge capacity for the trace (edges past the cap
    /// are counted as dropped; the buffer grows on demand up to the cap).
    pub edge_cap: usize,
    /// Application phase names for figures and traces ("tree-build" instead
    /// of "phase 3"); indexed by phase id, may be shorter than the number of
    /// phases used.
    pub phase_names: Vec<String>,
    /// Host parallelism for the run. `1` (the default) selects the classic
    /// sequential engine — the oracle. `n > 1` selects the pipelined
    /// generate/replay engine (see [`crate::shard`]) with up to `n`
    /// application threads generating concurrently; the resulting
    /// [`RunStats`] are bit-identical to `shards = 1` for data-race-free
    /// programs (asserted by `tests/shard_equivalence.rs`). Platforms that
    /// do not report a [`Platform::min_cross_node_latency`] fall back to
    /// the classic engine. Defaults to the `SIM_SHARDS` environment
    /// variable when set.
    pub shards: usize,
    /// Replay engine for sharded runs (`shards > 1`). `true` (the default)
    /// selects the fused engine ([`crate::fused`]): every replay
    /// interpreter is a stackless state machine driven by one host
    /// thread's virtual-time event loop — no scheduler mutex, no condvar
    /// hand-offs. `false` falls back to the classic replay side (one OS
    /// thread per simulated processor). Both are bit-identical to the
    /// sequential oracle; `SIM_SHARD_FUSED=0` in the environment flips the
    /// default for A/B timing.
    pub shard_fused: bool,
    /// Descriptors per channel message in the sharded engine: the
    /// granularity at which generation threads hand operation streams to
    /// replay. Bigger batches amortize channel costs; smaller ones start
    /// replay earlier and tighten the event-bounded lookahead window
    /// (capacity is counted in batches). Defaults to the
    /// `SIM_SHARD_BATCH` environment variable when set, else
    /// [`crate::shard::DEFAULT_BATCH`]. Invisible in the statistics
    /// (asserted across values by `tests/shard_equivalence.rs`).
    pub shard_batch: usize,
    /// Interval metrics sampling period in virtual cycles (see
    /// [`crate::metrics`]). `0` (the default) disables the metrics engine;
    /// a nonzero value snapshots per-proc/page/lock counter series every
    /// that many cycles of virtual time (plus forced samples at phase and
    /// barrier boundaries), attached as [`RunStats::metrics`]. Defaults to
    /// the `SIM_METRICS` environment variable when set. Timing statistics
    /// are bit-identical either way.
    pub metrics: u64,
    /// Per-collection capacity of the metrics engine (samples per
    /// processor, interval bins per page, pages, locks, event names);
    /// entries past a cap are counted as dropped, never reallocating
    /// unbounded.
    pub metrics_cap: usize,
}

/// Largest accepted [`RunConfig::shard_batch`]: past ~a million descriptors
/// per message the channel stops being a pipeline at all.
pub const MAX_SHARD_BATCH: usize = 1 << 20;

/// Largest accepted [`RunConfig::shards`] from the environment — far above
/// any host this will run on; the bound exists so a fat-fingered
/// `SIM_SHARDS=40000000` fails fast instead of spawning a thread army.
pub const MAX_SHARDS: usize = 65_536;

/// Parse a *set* environment value as a `usize` in `range`. A set-but-bad
/// value is a configuration error and panics, naming the variable and the
/// value: silently falling back (the old `.ok()` chains) meant a typoed
/// `SIM_SHARDS` quietly ran the sequential engine instead of the one CI
/// believed it was exercising.
fn parse_env_usize(name: &str, raw: &str, range: std::ops::RangeInclusive<usize>) -> usize {
    let n: usize = raw
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{name}={raw:?} is not a valid integer"));
    assert!(
        range.contains(&n),
        "{name}={raw:?} is out of range {}..={}",
        range.start(),
        range.end()
    );
    n
}

/// Parse a *set* environment value as a boolean. Panics on anything outside
/// the accepted spellings, naming the variable and the value.
fn parse_env_bool(name: &str, raw: &str) -> bool {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => true,
        "0" | "false" | "off" | "no" => false,
        _ => panic!("{name}={raw:?} is not a boolean (1|0|true|false|on|off|yes|no)"),
    }
}

/// Read an optional `usize` environment variable; unset means `default`,
/// set-but-malformed panics via [`parse_env_usize`].
fn env_usize(name: &str, default: usize, range: std::ops::RangeInclusive<usize>) -> usize {
    match std::env::var(name) {
        Ok(raw) => parse_env_usize(name, &raw, range),
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("{name}={raw:?} is not valid unicode")
        }
    }
}

/// Read an optional boolean environment variable; unset means `default`,
/// set-but-malformed panics via [`parse_env_bool`].
fn env_bool(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(raw) => parse_env_bool(name, &raw),
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("{name}={raw:?} is not valid unicode")
        }
    }
}

impl RunConfig {
    /// Default configuration for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        Self {
            nprocs,
            quantum: 2_000,
            detect_races: false,
            label: String::new(),
            bulk: true,
            sharing_profile: env_bool("SIM_SHARING", false),
            trace: env_bool("SIM_TRACE", false),
            trace_cap: crate::trace::DEFAULT_EVENT_CAP,
            edge_cap: crate::trace::DEFAULT_EDGE_CAP,
            phase_names: Vec::new(),
            shards: env_usize("SIM_SHARDS", 1, 1..=MAX_SHARDS),
            shard_fused: env_bool("SIM_SHARD_FUSED", true),
            shard_batch: env_usize(
                "SIM_SHARD_BATCH",
                crate::shard::DEFAULT_BATCH,
                1..=MAX_SHARD_BATCH,
            ),
            metrics: env_usize("SIM_METRICS", 0, 0..=usize::MAX) as u64,
            metrics_cap: crate::metrics::DEFAULT_SERIES_CAP,
        }
    }

    /// Select the engine: `1` = the classic sequential scheduler (exact
    /// current behaviour, and the oracle the differential tests compare
    /// against); `n > 1` = the pipelined parallel engine with up to `n`
    /// concurrently generating application threads.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Select the replay side of the sharded engine: `true` = the fused
    /// single-threaded event loop (default), `false` = the classic
    /// thread-per-processor scheduler. No effect when `shards = 1`.
    pub fn with_shard_fused(mut self, fused: bool) -> Self {
        self.shard_fused = fused;
        self
    }

    /// Override the sharded engine's descriptor batch size (descriptors per
    /// channel message).
    ///
    /// # Panics
    /// If `n` is zero or exceeds [`MAX_SHARD_BATCH`].
    pub fn with_shard_batch(mut self, n: usize) -> Self {
        assert!(
            (1..=MAX_SHARD_BATCH).contains(&n),
            "shard_batch must be in 1..={MAX_SHARD_BATCH}, got {n}"
        );
        self.shard_batch = n;
        self
    }

    /// Disable the bulk fast path: every slice operation degrades to the
    /// word-at-a-time scalar path. Timing must be bit-identical either way;
    /// `tests/equivalence.rs` sweeps this against the default.
    pub fn scalar_reference(mut self) -> Self {
        self.bulk = false;
        self
    }

    /// Enable happens-before race detection for this run.
    pub fn with_race_detection(mut self) -> Self {
        self.detect_races = true;
        self
    }

    /// Enable the per-page sharing profiler for this run (see
    /// [`crate::sharing`]).
    pub fn with_sharing_profile(mut self) -> Self {
        self.sharing_profile = true;
        self
    }

    /// Record a virtual-time event trace for this run (see [`crate::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Override the per-processor trace event-buffer capacity.
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = cap.max(1);
        self
    }

    /// Override the run-wide dependency-edge capacity of the trace.
    pub fn with_edge_cap(mut self, cap: usize) -> Self {
        self.edge_cap = cap.max(1);
        self
    }

    /// Enable the virtual-time interval metrics engine for this run (see
    /// [`crate::metrics`]), sampling every `interval_cycles` of each
    /// processor's virtual clock.
    ///
    /// # Panics
    /// If `interval_cycles` is zero (zero means "off"; use the default
    /// configuration for that).
    pub fn with_metrics(mut self, interval_cycles: u64) -> Self {
        assert!(
            interval_cycles > 0,
            "metrics interval must be nonzero (it is the sampling period)"
        );
        self.metrics = interval_cycles;
        self
    }

    /// Override the metrics engine's per-collection capacity.
    pub fn with_metrics_cap(mut self, cap: usize) -> Self {
        self.metrics_cap = cap.max(1);
        self
    }

    /// Register application phase names (indexed by phase id) so figures
    /// and traces print "tree-build" instead of "phase 3".
    pub fn with_phase_names<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.phase_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Name this run (race reports and diagnostics quote the label).
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Running,
    Ready,
    Blocked,
    Done,
}

/// What a processor does next after one of the [`Inner`] step methods: the
/// engine-independent contract between the per-op state transitions and
/// whichever engine drives them (the classic blocking scheduler or the
/// fused event loop in [`crate::fused`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Keep running, with no quantum yield check (lock fast path,
    /// allocation, rendezvous release — exactly the classic paths that
    /// dropped the guard without calling `maybe_yield`).
    Run,
    /// Keep running, but first check whether a runnable processor has
    /// fallen more than a quantum behind (the classic `maybe_yield` sites).
    MaybeYield,
    /// The processor blocked; its status is already `Blocked` and the
    /// engine must hand the turn to the min-clock runnable processor.
    Block,
}

#[derive(Clone, Copy, Debug)]
struct Waiter {
    pid: usize,
    arrival: u64,
}

#[derive(Default)]
struct LockSt {
    held_by: Option<usize>,
    avail_at: u64,
    waiters: Vec<Waiter>,
    /// Last releaser and its clock at release — the provenance for a
    /// handoff edge when the next acquire finds the lock free but still
    /// pays for `avail_at`.
    last_release: Option<(usize, u64)>,
}

#[derive(Default)]
struct BarSt {
    arrivals: Vec<(usize, u64)>,
}

pub(crate) struct Inner {
    platform: Box<dyn Platform>,
    alloc: GlobalAlloc,
    pub(crate) clocks: Vec<u64>,
    stats: Vec<ProcStats>,
    pub(crate) status: Vec<Status>,
    blocked_at: Vec<u64>,
    locks: FxMap<u32, LockSt>,
    barriers: FxMap<u32, BarSt>,
    start_arrivals: usize,
    stop_arrivals: usize,
    timing_on: bool,
    pub(crate) quantum: u64,
    pub(crate) ndone: usize,
    poisoned: Option<String>,
    /// Min-clock index over `Ready` processors: entries are
    /// `(clock, pid)`, pushed by [`Inner::make_ready`] and discarded
    /// lazily when popped stale (status or clock moved on). Replaces the
    /// O(P) status scan the hot dispatch path used to pay per operation.
    /// Invariant: a `Ready` processor's clock never changes (clocks are
    /// only rewritten at wake-ups, before `make_ready`, or on the running
    /// processor), so every `Ready` processor always has one valid entry.
    ready: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// Present iff `RunConfig::detect_races`: the happens-before analysis
    /// fed by every load/store and synchronization event below.
    detector: Option<RaceDetector>,
    /// Present iff `RunConfig::trace`: the event sink shared with the
    /// platform (which holds a clone of the handle for protocol events).
    trace: Option<crate::trace::TraceHandle>,
    /// Present iff `RunConfig::metrics > 0`: the interval metrics sink
    /// shared with the platform (which holds a clone of the handle for
    /// per-page protocol activity).
    metrics: Option<crate::metrics::MetricsHandle>,
}

struct Shared {
    inner: Mutex<Inner>,
    cvs: Vec<Condvar>,
}

impl Shared {
    /// Lock the scheduler state. Mutex poisoning is ignored: the run has
    /// its own poison protocol (`Inner::poisoned`), set before any panic
    /// that unwinds while parked threads remain.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Inner {
    /// Mark `pid` runnable and index it: the only way a processor enters
    /// `Ready`, so the min-clock heap always covers every `Ready`
    /// processor. Must be called *after* `clocks[pid]` has its resume
    /// value.
    #[inline]
    pub(crate) fn make_ready(&mut self, pid: usize) {
        self.status[pid] = Status::Ready;
        self.ready.push(std::cmp::Reverse((self.clocks[pid], pid)));
    }

    /// Claim the turn for `pid` (which must be `Ready`); its heap entry
    /// goes stale and is lazily discarded.
    #[inline]
    pub(crate) fn set_running(&mut self, pid: usize) {
        debug_assert_eq!(self.status[pid], Status::Ready);
        self.status[pid] = Status::Running;
    }

    /// The `Ready` processor with the minimum clock (lowest pid on ties —
    /// the same selection the old linear scan made, because the heap
    /// orders `(clock, pid)` lexicographically). Pops stale entries
    /// (status or clock moved on since push) from the top; amortized O(1)
    /// against the O(P) scan this replaces.
    pub(crate) fn min_ready(&mut self) -> Option<(usize, u64)> {
        while let Some(&std::cmp::Reverse((clk, pid))) = self.ready.peek() {
            if self.status[pid] == Status::Ready && self.clocks[pid] == clk {
                return Some((pid, clk));
            }
            self.ready.pop();
        }
        None
    }

    /// Virtual time up to which the running processor may advance without
    /// [`Proc::maybe_yield`] handing the turn over. The bulk fast path runs
    /// a batch until the first word that leaves the clock *past* this budget
    /// — exactly where the scalar path's per-word `maybe_yield` would fire —
    /// then re-enters the scheduler, so interleavings are bit-identical.
    /// Constant within a batch: only the running processor mutates clocks
    /// and statuses.
    fn yield_budget(&mut self) -> u64 {
        match self.min_ready() {
            Some((_, clk)) => clk.saturating_add(self.quantum),
            None => u64::MAX,
        }
    }

    /// Emit a trace event for `pid` at virtual time `ts`. No-op unless the
    /// run is traced *and* the timed region is active; never touches clocks
    /// or statistics (tracing is invisible).
    #[inline]
    fn emit(&self, pid: usize, ts: u64, kind: crate::trace::EventKind) {
        if self.timing_on {
            if let Some(h) = &self.trace {
                h.lock().unwrap().push(pid, ts, kind);
            }
        }
    }

    /// Record a dependency edge (same gating as `emit`; zero-length edges
    /// are skipped by the sink). Never touches clocks or statistics.
    #[inline]
    fn emit_edge(
        &self,
        kind: crate::trace::DepKind,
        dst: usize,
        t0: u64,
        t1: u64,
        src: usize,
        src_ts: u64,
    ) {
        if self.timing_on {
            if let Some(h) = &self.trace {
                h.lock().unwrap().push_edge(kind, dst, t0, t1, src, src_ts);
            }
        }
    }

    /// Record a lock-acquire wait sample for `pid` (same gating as `emit`).
    #[inline]
    fn sample_lock(&self, pid: usize, cycles: u64) {
        if self.timing_on {
            if let Some(h) = &self.trace {
                h.lock().unwrap().sample_lock(pid, cycles);
            }
        }
    }

    /// Record a barrier-wait sample for `pid` (same gating as `emit`).
    #[inline]
    fn sample_barrier(&self, pid: usize, cycles: u64) {
        if self.timing_on {
            if let Some(h) = &self.trace {
                h.lock().unwrap().sample_barrier(pid, cycles);
            }
        }
    }

    /// Offer the metrics sink a cumulative per-proc counter snapshot at
    /// `pid`'s current clock. `forced` samples (phase/barrier/timing
    /// boundaries) are always kept; unforced ticks are kept only when the
    /// clock has rolled into a new interval, so the sink stays O(intervals),
    /// not O(operations). Same gating as `emit`: no-op unless the run
    /// records metrics and the timed region is active; never touches clocks
    /// or statistics (metrics are invisible).
    #[inline]
    fn metrics_push(&self, pid: usize, forced: bool) {
        if !self.timing_on {
            return;
        }
        let Some(h) = &self.metrics else { return };
        let s = &self.stats[pid];
        let snap = crate::metrics::ProcSample {
            interval: 0, // overwritten by the sink from `ts`
            ts: self.clocks[pid],
            compute: s.get(Bucket::Compute),
            data_wait: s.get(Bucket::DataWait),
            lock_wait: s.get(Bucket::LockWait),
            barrier_wait: s.get(Bucket::BarrierWait),
            remote_fetches: s.counters.remote_fetches,
        };
        h.lock().unwrap().sample_proc(pid, snap, forced);
    }

    /// Record a lock handoff (ownership transferred between processors) at
    /// virtual time `now`. Same gating as `emit`.
    #[inline]
    fn metrics_lock_handoff(&self, now: u64, lock: u32) {
        if self.timing_on {
            if let Some(h) = &self.metrics {
                h.lock().unwrap().lock_handoff(now, lock);
            }
        }
    }

    /// Count `n` occurrences of the named application-level event for `pid`
    /// at its current clock (e.g. KV requests served). Scheduling-neutral:
    /// touches no clocks, statistics or statuses, so it is invisible to the
    /// simulation and identical across engines.
    pub(crate) fn op_metric_event(&mut self, pid: usize, name: &'static str, n: u64) {
        if self.timing_on {
            if let Some(h) = &self.metrics {
                h.lock().unwrap().event(name, pid, self.clocks[pid], n);
            }
        }
    }

    pub(crate) fn describe(&self) -> String {
        let mut s = String::new();
        for pid in 0..self.status.len() {
            s.push_str(&format!(
                "  p{pid}: {:?} clock={}\n",
                self.status[pid], self.clocks[pid]
            ));
        }
        s
    }

    // ---- the reentrant step API ----
    //
    // Every simulated operation is a non-blocking state transition on
    // `Inner`, shared verbatim by both engines: the classic scheduler
    // calls them under its global mutex and then parks OS threads per the
    // returned `Step`, while the fused event loop ([`crate::fused`]) owns
    // the `Inner` outright and just switches state machines. One
    // implementation of the transitions — clock advance, FCFS lock
    // queues, barrier membership, resource pricing, detector/trace/
    // sharing hooks — is what makes the engines bit-identical by
    // construction rather than by careful duplication.

    /// Charge `cycles` of application compute time to `pid`.
    pub(crate) fn op_work(&mut self, pid: usize, cycles: u64) -> Step {
        if !self.timing_on {
            // Clocks stay mutually equal while timing is off (nothing
            // advances them), so `maybe_yield` could never fire — skip its
            // ready-heap probe entirely.
            return Step::Run;
        }
        self.clocks[pid] += cycles;
        self.stats[pid].add(Bucket::Compute, cycles);
        self.metrics_push(pid, false);
        Step::MaybeYield
    }

    /// One yield-budget chunk of fused per-element compute. Returns the
    /// number of elements (of `left` remaining) consumed, or `None` when
    /// timing is off and the whole operation is a no-op.
    pub(crate) fn op_work_fused_chunk(
        &mut self,
        pid: usize,
        per_elem: u64,
        left: u64,
    ) -> Option<u64> {
        if !self.timing_on {
            return None; // as in `op_work`: nothing to charge, nothing can yield
        }
        let budget = self.yield_budget();
        let now = self.clocks[pid];
        // First element index (1-based) whose completion pushes the
        // clock past the budget — exactly where the scalar path's
        // per-element `maybe_yield` would hand the turn over.
        let k = if now > budget {
            1
        } else {
            match (budget - now).checked_div(per_elem) {
                // per_elem == 0: the batch can never reach the budget
                None => left,
                Some(q) => q.saturating_add(1).min(left),
            }
        };
        self.clocks[pid] += k * per_elem;
        self.stats[pid].add(Bucket::Compute, k * per_elem);
        self.metrics_push(pid, false);
        Some(k)
    }

    /// Set `pid`'s application phase (sticky, saturating; no-op changes
    /// leave the statistics untouched).
    pub(crate) fn op_set_phase(&mut self, pid: usize, phase: usize) {
        let old = self.stats[pid].phase();
        if old != phase {
            self.stats[pid].set_phase(phase);
            let new = self.stats[pid].phase(); // saturated when out of range
            if new != old {
                let ts = self.clocks[pid];
                self.emit(pid, ts, crate::trace::EventKind::PhaseEnd { phase: old });
                self.emit(pid, ts, crate::trace::EventKind::PhaseBegin { phase: new });
                self.metrics_push(pid, true);
            }
        }
    }

    /// Bump-allocate shared memory on behalf of `pid`.
    pub(crate) fn op_alloc(
        &mut self,
        pid: usize,
        label: &'static str,
        bytes: u64,
        align: u64,
        placement: Placement,
    ) -> Addr {
        self.alloc
            .alloc_labeled(label, bytes, align, placement, pid)
    }

    /// Perform one load for `pid`.
    pub(crate) fn op_load(&mut self, pid: usize, addr: Addr, len: u8) -> u64 {
        let v = {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform.load(&mut t, addr, len)
        };
        self.metrics_push(pid, false);
        if let Some(d) = self.detector.as_mut() {
            d.on_read(pid, addr, len, &self.alloc);
        }
        v
    }

    /// Perform one store for `pid`.
    pub(crate) fn op_store(&mut self, pid: usize, addr: Addr, len: u8, val: u64) {
        {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform.store(&mut t, addr, len, val);
        }
        self.metrics_push(pid, false);
        if let Some(d) = self.detector.as_mut() {
            d.on_write(pid, addr, len, &self.alloc);
        }
    }

    /// One yield-budget chunk of a bulk load: loads `len`-byte words at
    /// `base + i*stride` into `out` until the budget is exhausted, feeding
    /// the race detector per word run. Returns how many words were done
    /// (always ≥ 1 for a non-empty `out`).
    pub(crate) fn op_load_chunk(
        &mut self,
        pid: usize,
        base: Addr,
        stride: u64,
        len: u8,
        out: &mut [u64],
    ) -> usize {
        let budget = self.yield_budget();
        let k = {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform
                .load_bulk(&mut t, base, stride, len, out, budget)
        };
        debug_assert!(k >= 1, "load_bulk must perform at least one word");
        self.metrics_push(pid, false);
        if let Some(d) = self.detector.as_mut() {
            d.on_read_run(pid, base, stride, len, k, &self.alloc);
        }
        k
    }

    /// One yield-budget chunk of a bulk store (twin of
    /// [`Inner::op_load_chunk`]).
    pub(crate) fn op_store_chunk(
        &mut self,
        pid: usize,
        base: Addr,
        stride: u64,
        len: u8,
        vals: &[u64],
    ) -> usize {
        let budget = self.yield_budget();
        let k = {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform
                .store_bulk(&mut t, base, stride, len, vals, budget)
        };
        debug_assert!(k >= 1, "store_bulk must perform at least one word");
        self.metrics_push(pid, false);
        if let Some(d) = self.detector.as_mut() {
            d.on_write_run(pid, base, stride, len, k, &self.alloc);
        }
        k
    }

    /// `pid` acquires lock `id`: grant immediately when free (paying
    /// protocol and availability stalls) or join the FCFS wait queue.
    pub(crate) fn op_lock(&mut self, pid: usize, id: u32) -> Step {
        self.stats[pid].counters.lock_acquires += 1;
        self.emit(
            pid,
            self.clocks[pid],
            crate::trace::EventKind::LockAcquireStart { lock: id as u64 },
        );
        let arrival = {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform.acquire_request(&mut t, id)
        };
        let lk = self.locks.entry(id).or_default();
        if lk.held_by.is_none() && lk.waiters.is_empty() {
            lk.held_by = Some(pid);
            let grant_at = lk.avail_at.max(arrival);
            let last_release = lk.last_release;
            let timing_on = self.timing_on;
            let resume = self.platform.acquire_grant(
                pid,
                id,
                grant_at,
                &mut self.stats[pid],
                self.alloc.map(),
                timing_on,
            );
            let mut waited = 0;
            if self.timing_on && resume > self.clocks[pid] {
                let d = resume - self.clocks[pid];
                let t0 = self.clocks[pid];
                self.stats[pid].add(Bucket::LockWait, d);
                self.clocks[pid] = resume;
                waited = d;
                // The lock was free but the acquire still stalled (protocol
                // round trips, or paying off the previous holder's
                // `avail_at`): a handoff edge from the last releaser if one
                // exists, else intrinsic to this processor.
                let (src, src_ts) = last_release.unwrap_or((pid, t0));
                self.emit_edge(
                    crate::trace::DepKind::LockHandoff { lock: id as u64 },
                    pid,
                    t0,
                    resume,
                    src,
                    src_ts,
                );
                // Ownership moved between processors iff the stall was paid
                // to a *different* last releaser.
                if src != pid {
                    self.metrics_lock_handoff(resume, id);
                }
            }
            self.emit(
                pid,
                self.clocks[pid],
                crate::trace::EventKind::LockAcquireGranted { lock: id as u64 },
            );
            self.sample_lock(pid, waited);
            self.metrics_push(pid, false);
            if let Some(det) = self.detector.as_mut() {
                det.on_acquire(pid, id);
            }
            Step::Run
        } else {
            lk.waiters.push(Waiter { pid, arrival });
            self.blocked_at[pid] = self.clocks[pid];
            self.status[pid] = Status::Blocked;
            Step::Block
        }
    }

    /// `pid` releases lock `id`, granting it to the earliest-arrived
    /// waiter (if any), who becomes runnable at its resume time.
    pub(crate) fn op_unlock(&mut self, pid: usize, id: u32) -> Step {
        let avail = {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform.release(&mut t, id)
        };
        self.emit(
            pid,
            self.clocks[pid],
            crate::trace::EventKind::LockRelease { lock: id as u64 },
        );
        if let Some(det) = self.detector.as_mut() {
            det.on_release(pid, id);
        }
        let release_ts = self.clocks[pid];
        let lk = self
            .locks
            .get_mut(&id)
            .expect("unlock of never-locked lock");
        assert_eq!(lk.held_by, Some(pid), "unlock by non-holder p{pid}");
        lk.held_by = None;
        lk.avail_at = avail;
        lk.last_release = Some((pid, release_ts));
        if !lk.waiters.is_empty() {
            // Earliest virtual arrival wins; pid breaks ties deterministically.
            let mut best = 0;
            for (i, w) in lk.waiters.iter().enumerate() {
                let b = &lk.waiters[best];
                if (w.arrival, w.pid) < (b.arrival, b.pid) {
                    best = i;
                }
            }
            let w = lk.waiters.swap_remove(best);
            lk.held_by = Some(w.pid);
            let grant_at = avail.max(w.arrival);
            let timing_on = self.timing_on;
            let resume = self.platform.acquire_grant(
                w.pid,
                id,
                grant_at,
                &mut self.stats[w.pid],
                self.alloc.map(),
                timing_on,
            );
            let resume = resume.max(self.blocked_at[w.pid]);
            if self.timing_on {
                let waited = resume - self.blocked_at[w.pid];
                self.stats[w.pid].add(Bucket::LockWait, waited);
                self.emit(
                    w.pid,
                    resume,
                    crate::trace::EventKind::LockAcquireGranted { lock: id as u64 },
                );
                self.sample_lock(w.pid, waited);
                // Handoff provenance: the waiter's resume was enabled by
                // this release at `release_ts` on the releaser's timeline.
                self.emit_edge(
                    crate::trace::DepKind::LockHandoff { lock: id as u64 },
                    w.pid,
                    self.blocked_at[w.pid],
                    resume,
                    pid,
                    release_ts,
                );
                // A waiter grant is always an ownership transfer from the
                // releasing processor.
                self.metrics_lock_handoff(resume, id);
            }
            self.clocks[w.pid] = resume;
            self.metrics_push(w.pid, false);
            self.make_ready(w.pid);
            if let Some(det) = self.detector.as_mut() {
                det.on_acquire(w.pid, id);
            }
        }
        self.metrics_push(pid, false);
        Step::MaybeYield
    }

    /// `pid` arrives at barrier `id`; the last arrival releases everyone
    /// at their platform-priced resume times.
    pub(crate) fn op_barrier(&mut self, pid: usize, id: u32) -> Step {
        let nprocs = self.status.len();
        self.stats[pid].counters.barriers += 1;
        let t_arr = {
            let mut t = Timing {
                pid,
                now: &mut self.clocks[pid],
                stats: &mut self.stats[pid],
                placement: self.alloc.map(),
                timing_on: self.timing_on,
            };
            self.platform.barrier_arrive(&mut t, id)
        };
        self.blocked_at[pid] = self.clocks[pid];
        self.emit(
            pid,
            self.clocks[pid],
            crate::trace::EventKind::BarrierEnter { barrier: id as u64 },
        );
        let bar = self.barriers.entry(id).or_default();
        bar.arrivals.push((pid, t_arr));
        if bar.arrivals.len() == nprocs {
            let mut arr = vec![0u64; nprocs];
            for &(p, a) in bar.arrivals.iter() {
                arr[p] = a;
            }
            bar.arrivals.clear();
            let timing_on = self.timing_on;
            let resumes = self.platform.barrier_release(
                id,
                &arr,
                &mut self.stats,
                self.alloc.map(),
                timing_on,
            );
            debug_assert_eq!(resumes.len(), nprocs);
            // The last arriver (earliest pid on ties) gates every exit: it
            // is the provenance of the barrier-release edges.
            let mut last = 0usize;
            for q in 1..nprocs {
                if arr[q] > arr[last] {
                    last = q;
                }
            }
            let last_ts = self.blocked_at[last];
            for q in 0..nprocs {
                let resume = resumes[q].max(self.blocked_at[q]);
                if self.timing_on {
                    let waited = resume - self.blocked_at[q];
                    self.stats[q].add(Bucket::BarrierWait, waited);
                    self.emit(
                        q,
                        resume,
                        crate::trace::EventKind::BarrierExit { barrier: id as u64 },
                    );
                    self.sample_barrier(q, waited);
                    self.emit_edge(
                        crate::trace::DepKind::BarrierRelease { barrier: id as u64 },
                        q,
                        self.blocked_at[q],
                        resume,
                        last,
                        last_ts,
                    );
                }
                self.clocks[q] = resume;
                self.metrics_push(q, true);
                if q != pid {
                    debug_assert_eq!(self.status[q], Status::Blocked);
                    self.make_ready(q);
                }
            }
            if let Some(det) = self.detector.as_mut() {
                det.on_barrier();
            }
            Step::MaybeYield
        } else {
            self.status[pid] = Status::Blocked;
            Step::Block
        }
    }

    /// `pid` arrives at the start-of-timed-region rendezvous; the last
    /// arrival resets clocks, statistics and platform resource state.
    pub(crate) fn op_start_timing(&mut self, pid: usize) -> Step {
        let nprocs = self.status.len();
        self.start_arrivals += 1;
        if self.start_arrivals == nprocs {
            self.start_arrivals = 0;
            self.platform.reset_timing();
            self.timing_on = true;
            for q in 0..nprocs {
                self.clocks[q] = 0;
                self.blocked_at[q] = 0;
                self.stats[q].reset();
                if q != pid && self.status[q] == Status::Blocked {
                    self.make_ready(q);
                }
            }
            // Restart the trace so it covers exactly the timed region, and
            // open each processor's current phase at virtual time zero.
            if let Some(h) = &self.trace {
                h.lock().unwrap().reset();
                for q in 0..nprocs {
                    let phase = self.stats[q].phase();
                    self.emit(q, 0, crate::trace::EventKind::PhaseBegin { phase });
                }
            }
            // Restart the metrics series likewise, anchoring every
            // processor with a zero sample at virtual time zero.
            if let Some(h) = &self.metrics {
                h.lock().unwrap().reset();
                for q in 0..nprocs {
                    self.metrics_push(q, true);
                }
            }
            if let Some(det) = self.detector.as_mut() {
                det.on_barrier();
            }
            Step::Run
        } else {
            self.blocked_at[pid] = self.clocks[pid];
            self.status[pid] = Status::Blocked;
            Step::Block
        }
    }

    /// `pid` arrives at the end-of-timed-region rendezvous; the last
    /// arrival settles everyone at the maximum clock and freezes timing.
    pub(crate) fn op_stop_timing(&mut self, pid: usize) -> Step {
        let nprocs = self.status.len();
        self.stop_arrivals += 1;
        if self.stop_arrivals == nprocs {
            self.stop_arrivals = 0;
            // Settle everyone at the maximum clock (a barrier in effect),
            // then freeze. The overall straggler (earliest pid on ties) is
            // the provenance of everyone else's settle wait.
            let max = self.clocks.iter().copied().max().unwrap_or(0);
            let mut straggler = 0usize;
            for q in 1..nprocs {
                if self.clocks[q] > self.clocks[straggler] {
                    straggler = q;
                }
            }
            for q in 0..nprocs {
                if self.timing_on {
                    let d = max - self.clocks[q];
                    self.emit_edge(
                        crate::trace::DepKind::Settle,
                        q,
                        self.clocks[q],
                        max,
                        straggler,
                        max,
                    );
                    self.clocks[q] = max;
                    self.stats[q].add(Bucket::BarrierWait, d);
                    // Close each processor's open phase at the settle point
                    // so phase spans cover the whole timed region.
                    let phase = self.stats[q].phase();
                    self.emit(q, max, crate::trace::EventKind::PhaseEnd { phase });
                    // Final sample at the settle point so every series ends
                    // with the run totals.
                    self.metrics_push(q, true);
                }
                if q != pid && self.status[q] == Status::Blocked {
                    self.make_ready(q);
                }
            }
            self.timing_on = false;
            if let Some(det) = self.detector.as_mut() {
                det.on_barrier();
            }
            Step::Run
        } else {
            self.blocked_at[pid] = self.clocks[pid];
            self.status[pid] = Status::Blocked;
            Step::Block
        }
    }

    /// `pid`'s body returned: mark it done.
    pub(crate) fn op_finish(&mut self, pid: usize) {
        self.status[pid] = Status::Done;
        self.ndone += 1;
    }
}

/// A simulated processor handle: the API applications program against.
///
/// **Host-lock caveat:** every method on `Proc` may suspend the calling OS
/// thread to schedule a different simulated processor. Never invoke a
/// `Proc` method while holding a host-side lock (e.g. a `std::sync::Mutex`
/// used to extract results) that another simulated processor might also
/// take — acquire such locks only around plain host code, after the
/// simulated values have been read into locals.
pub struct Proc {
    pid: usize,
    nprocs: usize,
    bulk: bool,
    backend: Backend,
}

/// What a [`Proc`] handle is attached to: the classic scheduler (both the
/// sequential engine and the replay half of the sharded engine), or a
/// generation context of the sharded engine (see [`crate::shard`]), which
/// records the operation stream instead of simulating it.
enum Backend {
    Classic(Arc<Shared>),
    Gen(Box<crate::shard::GenCtx>),
}

/// Chunk size (words) for the slice convenience wrappers: big enough to
/// amortize a lock round-trip, small enough to live on the stack.
const SLICE_CHUNK: usize = 1024;

impl Proc {
    /// The classic scheduler state. Reachable only from methods (or arms)
    /// that are never entered in generation mode.
    #[inline(always)]
    fn shared(&self) -> &Arc<Shared> {
        match &self.backend {
            Backend::Classic(s) => s,
            Backend::Gen(_) => unreachable!("generation-mode Proc has no scheduler"),
        }
    }

    /// The generation context, if this handle is a sharded-engine
    /// generation front-end.
    #[inline(always)]
    fn gen(&mut self) -> Option<&mut crate::shard::GenCtx> {
        match &mut self.backend {
            Backend::Gen(ctx) => Some(ctx),
            Backend::Classic(_) => None,
        }
    }

    /// This processor's id (0-based).
    #[inline(always)]
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Total number of simulated processors.
    #[inline(always)]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Charge `cycles` of application compute time.
    #[inline]
    pub fn work(&mut self, cycles: u64) {
        if let Some(ctx) = self.gen() {
            // With timing off this is a complete no-op in the classic
            // engine, so nothing needs replaying.
            if ctx.timing {
                ctx.emit(Desc::Work(cycles));
            }
            return;
        }
        let mut g = self.shared().lock();
        let step = g.op_work(self.pid, cycles);
        self.step_end(g, step);
    }

    /// Count `n` occurrences of a named application-level event (e.g.
    /// requests served) in the run's interval metrics (see
    /// [`crate::metrics`]), timestamped at this processor's current virtual
    /// clock. Free when the run does not record metrics or timing is off;
    /// never affects timing, scheduling or statistics either way — the
    /// `name` keys an [`crate::metrics::EventSeries`] in the report.
    pub fn metric_add(&mut self, name: &'static str, n: u64) {
        if let Some(ctx) = self.gen() {
            // Replay needs a descriptor only when a sink exists to count
            // it; metrics-off streams stay byte-identical.
            if ctx.timing && ctx.metrics {
                ctx.emit(Desc::MetricEvent(name, n));
            }
            return;
        }
        let mut g = self.shared().lock();
        g.op_metric_event(self.pid, name, n);
    }

    /// Set the current application phase for per-phase time attribution.
    /// The phase is sticky across `start_timing`, so calls while timing is
    /// off still record it — but a no-op change returns without touching
    /// the statistics.
    pub fn set_phase(&mut self, phase: usize) {
        if let Some(ctx) = self.gen() {
            ctx.emit(Desc::SetPhase(phase));
            return;
        }
        let mut g = self.shared().lock();
        g.op_set_phase(self.pid, phase);
    }

    /// Allocate shared memory (bump allocation; never freed).
    pub fn alloc_shared(&mut self, bytes: u64, align: u64, placement: Placement) -> Addr {
        self.alloc_shared_labeled("", bytes, align, placement)
    }

    /// Allocate shared memory with a diagnostic label; race reports quote
    /// the label of the allocation containing the racy word.
    pub fn alloc_shared_labeled(
        &mut self,
        label: &'static str,
        bytes: u64,
        align: u64,
        placement: Placement,
    ) -> Addr {
        if let Some(ctx) = self.gen() {
            // Round trip: bump addresses depend on allocation order, which
            // only replay (running the classic scheduler) can decide.
            match ctx.roundtrip(Desc::Alloc {
                label,
                bytes,
                align,
                placement,
            }) {
                Reply::Addr(a) => return a,
                Reply::Sync => unreachable!("alloc answered without an address"),
            }
        }
        let mut g = self.shared().lock();
        g.op_alloc(self.pid, label, bytes, align, placement)
    }

    /// Load `len` (1/2/4/8) bytes from the simulated shared address space.
    #[inline]
    pub fn load(&mut self, addr: Addr, len: u8) -> u64 {
        if let Some(ctx) = self.gen() {
            ctx.emit(Desc::Load { addr, len });
            return ctx.plane.load(addr, len);
        }
        let mut g = self.shared().lock();
        let v = g.op_load(self.pid, addr, len);
        self.maybe_yield(g);
        v
    }

    /// Store the low `len` bytes of `val` to the simulated address space.
    #[inline]
    pub fn store(&mut self, addr: Addr, len: u8, val: u64) {
        if let Some(ctx) = self.gen() {
            ctx.plane.store(addr, len, val);
            ctx.emit(Desc::Store { addr, len, val });
            return;
        }
        let mut g = self.shared().lock();
        g.op_store(self.pid, addr, len, val);
        self.maybe_yield(g);
    }

    /// Convenience: load an `f64`.
    #[inline]
    pub fn read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.load(addr, 8))
    }

    /// Convenience: store an `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.store(addr, 8, v.to_bits());
    }

    /// Convenience: load a `u32`.
    #[inline]
    pub fn read_u32(&mut self, addr: Addr) -> u32 {
        self.load(addr, 4) as u32
    }

    /// Convenience: store a `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.store(addr, 4, v as u64);
    }

    // ---- bulk operations ----
    //
    // One scheduler-lock round-trip per *batch* instead of per word. The
    // platform walks its tag arrays / page tables per line-or-page run and
    // stops at the first word that exhausts the yield budget (see
    // `Inner::yield_budget`); the race detector is still fed per word. The
    // result is bit-identical `RunStats` to the scalar path — asserted over
    // every app x class x platform in `tests/equivalence.rs`.

    /// Load `out.len()` values of `len` bytes each from `addr + i*stride`.
    pub fn load_slice(&mut self, addr: Addr, stride: u64, len: u8, out: &mut [u64]) {
        if let Some(ctx) = self.gen() {
            // One descriptor regardless of `bulk`: the replay interpreter's
            // own `load_slice` call degrades to the scalar path when the
            // run is configured scalar.
            ctx.emit(Desc::LoadSlice {
                addr,
                stride,
                len,
                n: out.len(),
            });
            ctx.plane.load_slice(addr, stride, len, out);
            return;
        }
        if !self.bulk {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.load(addr + i as u64 * stride, len);
            }
            return;
        }
        let mut done = 0;
        while done < out.len() {
            let mut g = self.shared().lock();
            let base = addr + done as u64 * stride;
            done += g.op_load_chunk(self.pid, base, stride, len, &mut out[done..]);
            self.maybe_yield(g);
        }
    }

    /// Store `vals[i]` (`len` bytes each) to `addr + i*stride`.
    pub fn store_slice(&mut self, addr: Addr, stride: u64, len: u8, vals: &[u64]) {
        if let Some(ctx) = self.gen() {
            ctx.plane.store_slice(addr, stride, len, vals);
            ctx.emit(Desc::StoreSlice {
                addr,
                stride,
                len,
                vals: vals.to_vec(),
            });
            return;
        }
        if !self.bulk {
            for (i, &v) in vals.iter().enumerate() {
                self.store(addr + i as u64 * stride, len, v);
            }
            return;
        }
        let mut done = 0;
        while done < vals.len() {
            let mut g = self.shared().lock();
            let base = addr + done as u64 * stride;
            done += g.op_store_chunk(self.pid, base, stride, len, &vals[done..]);
            self.maybe_yield(g);
        }
    }

    /// Bulk convenience: load `out.len()` `f64`s spaced `stride` bytes apart.
    pub fn read_f64_slice(&mut self, addr: Addr, stride: u64, out: &mut [f64]) {
        let mut buf = [0u64; SLICE_CHUNK];
        let mut i = 0;
        while i < out.len() {
            let n = (out.len() - i).min(SLICE_CHUNK);
            self.load_slice(addr + i as u64 * stride, stride, 8, &mut buf[..n]);
            for j in 0..n {
                out[i + j] = f64::from_bits(buf[j]);
            }
            i += n;
        }
    }

    /// Bulk convenience: store `vals` as `f64`s spaced `stride` bytes apart.
    pub fn write_f64_slice(&mut self, addr: Addr, stride: u64, vals: &[f64]) {
        let mut buf = [0u64; SLICE_CHUNK];
        let mut i = 0;
        while i < vals.len() {
            let n = (vals.len() - i).min(SLICE_CHUNK);
            for j in 0..n {
                buf[j] = vals[i + j].to_bits();
            }
            self.store_slice(addr + i as u64 * stride, stride, 8, &buf[..n]);
            i += n;
        }
    }

    /// Bulk convenience: load `out.len()` `u32`s spaced `stride` bytes apart.
    pub fn read_u32_slice(&mut self, addr: Addr, stride: u64, out: &mut [u32]) {
        let mut buf = [0u64; SLICE_CHUNK];
        let mut i = 0;
        while i < out.len() {
            let n = (out.len() - i).min(SLICE_CHUNK);
            self.load_slice(addr + i as u64 * stride, stride, 4, &mut buf[..n]);
            for j in 0..n {
                out[i + j] = buf[j] as u32;
            }
            i += n;
        }
    }

    /// Bulk convenience: store `vals` as `u32`s spaced `stride` bytes apart.
    pub fn write_u32_slice(&mut self, addr: Addr, stride: u64, vals: &[u32]) {
        let mut buf = [0u64; SLICE_CHUNK];
        let mut i = 0;
        while i < vals.len() {
            let n = (vals.len() - i).min(SLICE_CHUNK);
            for j in 0..n {
                buf[j] = vals[i + j] as u64;
            }
            self.store_slice(addr + i as u64 * stride, stride, 4, &buf[..n]);
            i += n;
        }
    }

    /// Store `count` copies of the low `len` bytes of `val` contiguously
    /// from `addr` (stride = `len`): the bulk clear/memset.
    pub fn fill(&mut self, addr: Addr, len: u8, count: u64, val: u64) {
        let buf = [val; SLICE_CHUNK];
        let mut i = 0u64;
        while i < count {
            let n = ((count - i) as usize).min(SLICE_CHUNK);
            self.store_slice(addr + i * len as u64, len as u64, len, &buf[..n]);
            i += n as u64;
        }
    }

    /// Charge `count` elements of `per_elem` compute cycles each — the fused
    /// equivalent of calling [`Proc::work`]`(per_elem)` once per element
    /// (e.g. one flop-pair per word streamed), entering the scheduler once
    /// per yield budget instead of once per element.
    pub fn work_fused(&mut self, per_elem: u64, count: u64) {
        if let Some(ctx) = self.gen() {
            if ctx.timing {
                ctx.emit(Desc::WorkFused { per_elem, count });
            }
            return;
        }
        if !self.bulk {
            for _ in 0..count {
                self.work(per_elem);
            }
            return;
        }
        let mut left = count;
        while left > 0 {
            let mut g = self.shared().lock();
            match g.op_work_fused_chunk(self.pid, per_elem, left) {
                None => return, // timing off: nothing to charge, nothing can yield
                Some(k) => left -= k,
            }
            self.maybe_yield(g);
        }
    }

    /// Acquire lock `id` (blocking in virtual time).
    pub fn lock(&mut self, id: u32) {
        if let Some(ctx) = self.gen() {
            // Round trip: the reply arrives only after replay granted this
            // processor the lock, so generation threads enter overlapping
            // critical sections in replay's (virtual-arrival) grant order —
            // the happens-before edge that makes value-plane reads, and
            // hence the streams themselves, deterministic.
            ctx.roundtrip(Desc::Lock(id));
            return;
        }
        let mut g = self.shared().lock();
        let step = g.op_lock(self.pid, id);
        self.step_end(g, step);
    }

    /// Release lock `id`, granting it to the earliest-arrived waiter if any.
    pub fn unlock(&mut self, id: u32) {
        if let Some(ctx) = self.gen() {
            // Fire-and-forget: the next acquirer's reply cannot arrive
            // until replay has consumed this release, so the critical
            // section's plane writes are visible to it on the host.
            ctx.emit(Desc::Unlock(id));
            return;
        }
        let mut g = self.shared().lock();
        let step = g.op_unlock(self.pid, id);
        self.step_end(g, step);
    }

    /// Wait at barrier `id` until all processors arrive.
    pub fn barrier(&mut self, id: u32) {
        if let Some(ctx) = self.gen() {
            ctx.roundtrip(Desc::Barrier(id));
            return;
        }
        let mut g = self.shared().lock();
        let step = g.op_barrier(self.pid, id);
        self.step_end(g, step);
    }

    /// Synchronize all processors, then reset clocks, statistics and
    /// platform resource state: the start of the timed region. Protocol and
    /// cache *state* is preserved (warm start, as in the paper).
    pub fn start_timing(&mut self) {
        if let Some(ctx) = self.gen() {
            ctx.roundtrip(Desc::StartTiming);
            ctx.timing = true;
            return;
        }
        let mut g = self.shared().lock();
        let step = g.op_start_timing(self.pid);
        self.step_end(g, step);
    }

    /// Synchronize all processors and freeze clocks and statistics: the end
    /// of the timed region. Use before reading results out of simulated
    /// memory so the extraction does not pollute the measurements.
    pub fn stop_timing(&mut self) {
        if let Some(ctx) = self.gen() {
            ctx.roundtrip(Desc::StopTiming);
            ctx.timing = false;
            return;
        }
        let mut g = self.shared().lock();
        let step = g.op_stop_timing(self.pid);
        self.step_end(g, step);
    }

    /// True while the timed region is active.
    pub fn timing_on(&self) -> bool {
        match &self.backend {
            // The generation-side mirror: exact, because timing only
            // toggles at all-processor rendezvous this thread round-trips.
            Backend::Gen(ctx) => ctx.timing,
            Backend::Classic(_) => self.shared().lock().timing_on,
        }
    }

    /// Current virtual clock (cycles).
    ///
    /// # Panics
    /// Under the sharded engine (`with_shards(n > 1)`): virtual time exists
    /// only on the replay side, after this thread's operations ran.
    pub fn now(&self) -> u64 {
        match &self.backend {
            Backend::Gen(_) => panic!(
                "Proc::now is not available under the sharded engine \
                 (virtual time is computed by replay, behind this thread)"
            ),
            Backend::Classic(_) => self.shared().lock().clocks[self.pid],
        }
    }

    // ---- scheduling internals ----
    //
    // The OS-thread half of the classic engine: an op method (above)
    // already performed the state transition under the mutex; these park
    // and wake host threads to realize the `Step` it returned.

    /// Realize an op's `Step` on this OS thread: keep running, offer the
    /// turn, or give it up entirely.
    #[inline]
    fn step_end(&self, g: MutexGuard<'_, Inner>, step: Step) {
        match step {
            Step::Run => drop(g),
            Step::MaybeYield => self.maybe_yield(g),
            Step::Block => self.suspend(g),
        }
    }

    /// Hand the turn over if some runnable processor has fallen more than a
    /// quantum behind this one.
    #[inline]
    fn maybe_yield(&self, mut g: MutexGuard<'_, Inner>) {
        let pid = self.pid;
        let quantum = g.quantum;
        if let Some((next, clk)) = g.min_ready() {
            if g.clocks[pid] > clk + quantum {
                g.make_ready(pid);
                g.set_running(next);
                self.shared().cvs[next].notify_one();
                self.wait_for_turn(g);
                return;
            }
        }
        drop(g);
    }

    /// The op already marked this processor non-runnable (Blocked): wake a
    /// successor and park until rescheduled.
    fn suspend(&self, mut g: MutexGuard<'_, Inner>) {
        self.dispatch_next(&mut g);
        self.wait_for_turn(g);
    }

    /// Pick and wake the next runnable processor (caller already gave up the
    /// turn). Panics on deadlock.
    fn dispatch_next(&self, g: &mut MutexGuard<'_, Inner>) {
        if let Some((next, _)) = g.min_ready() {
            g.set_running(next);
            self.shared().cvs[next].notify_one();
        } else if g.ndone < g.status.len() {
            let all_done_or_blocked = g
                .status
                .iter()
                .all(|&s| s == Status::Blocked || s == Status::Done);
            if all_done_or_blocked {
                let msg = format!(
                    "simulated deadlock: no runnable processor\n{}",
                    g.describe()
                );
                g.poisoned = Some(msg.clone());
                for cv in &self.shared().cvs {
                    cv.notify_one();
                }
                panic!("{msg}");
            }
        }
    }

    /// Park until scheduled (status == Running) or the run is poisoned.
    fn wait_for_turn(&self, mut g: MutexGuard<'_, Inner>) {
        let pid = self.pid;
        loop {
            if let Some(msg) = &g.poisoned {
                let msg = msg.clone();
                drop(g);
                panic!("{msg}");
            }
            if g.status[pid] == Status::Running {
                return;
            }
            g = self.shared().cvs[pid]
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Called when the body returns: mark Done and dispatch.
    fn finish(&self) {
        let mut g = self.shared().lock();
        g.op_finish(self.pid);
        self.dispatch_next(&mut g);
    }
}

/// Execute `body` on `cfg.nprocs` simulated processors over `platform` and
/// return the per-processor statistics of the timed region.
///
/// The body is invoked once per processor. The conventional shape is:
///
/// ```text
/// if p.pid() == 0 { allocate + initialize shared data }
/// p.barrier(INIT_BARRIER);
/// p.start_timing();
/// ... parallel computation ...
/// p.barrier(FINAL_BARRIER);
/// ```
pub fn run<F>(platform: Box<dyn Platform>, cfg: RunConfig, body: F) -> RunStats
where
    F: Fn(&mut Proc) + Sync,
{
    run_profiled(platform, cfg, body).0
}

/// Like [`run`], but also returns the platform's diagnostic report (see
/// [`Platform::profile`]) gathered at the end of the run.
pub fn run_profiled<F>(
    platform: Box<dyn Platform>,
    cfg: RunConfig,
    body: F,
) -> (RunStats, Option<String>)
where
    F: Fn(&mut Proc) + Sync,
{
    // The sharded engine requires the platform to certify (via the
    // min-cross-node-latency hook) that all cross-processor interactions
    // are mediated by replayed protocol actions; platforms that do not
    // fall back to the classic engine.
    if cfg.shards > 1 && platform.min_cross_node_latency().is_some() {
        run_sharded_profiled(platform, cfg, body)
    } else {
        run_classic_profiled(platform, cfg, body)
    }
}

/// Build the scheduler state both engines drive: processor 0 running,
/// everyone else ready at clock zero (and already in the ready heap).
pub(crate) fn build_inner(mut platform: Box<dyn Platform>, cfg: &RunConfig) -> Inner {
    let nprocs = cfg.nprocs;
    assert_eq!(
        platform.nprocs(),
        nprocs,
        "platform and RunConfig disagree on processor count"
    );
    assert!(nprocs >= 1);
    platform.set_sharing_profile(cfg.sharing_profile);
    let trace_handle = cfg.trace.then(|| {
        Arc::new(Mutex::new(crate::trace::TraceSink::new(
            nprocs,
            cfg.trace_cap,
            cfg.edge_cap,
        )))
    });
    platform.set_trace(trace_handle.clone());
    let metrics_handle = (cfg.metrics > 0).then(|| {
        Arc::new(Mutex::new(crate::metrics::MetricsSink::new(
            nprocs,
            cfg.metrics,
            cfg.metrics_cap,
        )))
    });
    platform.set_metrics(metrics_handle.clone());
    Inner {
        platform,
        alloc: GlobalAlloc::new(nprocs),
        clocks: vec![0; nprocs],
        stats: vec![ProcStats::default(); nprocs],
        status: {
            let mut v = vec![Status::Ready; nprocs];
            v[0] = Status::Running;
            v
        },
        ready: (1..nprocs).map(|pid| std::cmp::Reverse((0, pid))).collect(),
        blocked_at: vec![0; nprocs],
        locks: FxMap::default(),
        barriers: FxMap::default(),
        start_arrivals: 0,
        stop_arrivals: 0,
        timing_on: false,
        quantum: cfg.quantum,
        ndone: 0,
        poisoned: None,
        detector: cfg
            .detect_races
            .then(|| RaceDetector::new(nprocs, cfg.label.clone())),
        trace: trace_handle,
        metrics: metrics_handle,
    }
}

/// Harvest a completed run's `Inner` into `RunStats` + platform profile:
/// platform finalization, sharing-profile labelling, race reports, and
/// trace extraction. Shared by both engines.
pub(crate) fn collect_stats(mut inner: Inner, cfg: &RunConfig) -> (RunStats, Option<String>) {
    inner.platform.finalize(&mut inner.stats);
    let profile = inner.platform.profile();
    let sharing = cfg.sharing_profile.then(|| {
        let mut prof = inner.platform.sharing_profile().unwrap_or_default();
        for p in &mut prof.pages {
            p.label = inner.alloc.label_of(p.page_base);
        }
        prof
    });
    let races = inner
        .detector
        .map(RaceDetector::into_reports)
        .unwrap_or_default();
    // Drop the platform's clone of the trace handle so the sink can be
    // unwrapped and frozen into the RunStats.
    inner.platform.set_trace(None);
    let trace = inner.trace.take().map(|h| {
        let Ok(sink) = Arc::try_unwrap(h) else {
            panic!("platform released its trace handle")
        };
        sink.into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_trace(
                cfg.label.clone(),
                cfg.phase_names.clone(),
                &inner.clocks,
                inner.alloc.labeled_spans(),
            )
    });
    // Same unwrap-and-freeze dance for the metrics sink.
    inner.platform.set_metrics(None);
    let alloc = &inner.alloc;
    let metrics = inner.metrics.take().map(|h| {
        let Ok(sink) = Arc::try_unwrap(h) else {
            panic!("platform released its metrics handle")
        };
        sink.into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_report(|addr| alloc.label_of(addr))
    });
    (
        RunStats {
            procs: inner.stats,
            clocks: inner.clocks,
            races,
            sharing,
            trace,
            metrics,
            phase_names: cfg.phase_names.clone(),
        },
        profile,
    )
}

/// The classic engine: one OS thread per simulated processor, exactly one
/// running at a time, every simulated event priced inline. Both the
/// `shards = 1` oracle and the replay half of the sharded engine.
fn run_classic_profiled<F>(
    platform: Box<dyn Platform>,
    cfg: RunConfig,
    body: F,
) -> (RunStats, Option<String>)
where
    F: Fn(&mut Proc) + Sync,
{
    let nprocs = cfg.nprocs;
    let bulk = cfg.bulk;
    let shared = Arc::new(Shared {
        inner: Mutex::new(build_inner(platform, &cfg)),
        cvs: (0..nprocs).map(|_| Condvar::new()).collect(),
    });

    let scope_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            for pid in 0..nprocs {
                let shared = Arc::clone(&shared);
                let body = &body;
                std::thread::Builder::new()
                    .name(format!("simproc-{pid}"))
                    .stack_size(16 << 20)
                    .spawn_scoped(s, move || {
                        let mut proc = Proc {
                            pid,
                            nprocs,
                            bulk,
                            backend: Backend::Classic(shared),
                        };
                        // Wait to be scheduled for the first time.
                        {
                            let g = proc.shared().lock();
                            proc.wait_for_turn(g);
                        }
                        // A panic inside a simulated processor (e.g. an
                        // application assertion) must not strand the other
                        // parked threads: poison the run so everyone unwinds.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            body(&mut proc)
                        }));
                        match result {
                            Ok(()) => proc.finish(),
                            Err(payload) => {
                                let msg = payload
                                    .downcast_ref::<String>()
                                    .cloned()
                                    .or_else(|| {
                                        payload.downcast_ref::<&str>().map(|s| s.to_string())
                                    })
                                    .unwrap_or_else(|| "simulated processor panicked".into());
                                let mut g = proc.shared().lock();
                                if g.poisoned.is_none() {
                                    g.poisoned = Some(format!("p{pid}: {msg}"));
                                }
                                for cv in proc.shared().cvs.iter() {
                                    cv.notify_one();
                                }
                                drop(g);
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                    .expect("spawn simulated processor");
            }
        });
    }));
    if scope_result.is_err() {
        // Re-panic with the first simulated processor's message (std's
        // scope reports only "a scoped thread panicked").
        let msg = shared
            .lock()
            .poisoned
            .clone()
            .unwrap_or_else(|| "unknown panic".into());
        panic!("simulated processor panicked: {msg}");
    }

    let inner = Arc::try_unwrap(shared)
        .ok()
        .expect("all processor threads exited")
        .inner
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    collect_stats(inner, &cfg)
}

/// The sharded engine: the application bodies run concurrently on
/// generation threads (at most `cfg.shards` executing at once) against the
/// host-side value plane, streaming operation descriptors to the
/// *unmodified* classic engine, whose per-processor bodies are interpreters
/// re-issuing the identical `Proc` calls. Statistics are therefore
/// bit-identical to `shards = 1` for data-race-free programs — see
/// [`crate::shard`] for the full argument and `tests/shard_equivalence.rs`
/// for the proof harness.
fn run_sharded_profiled<F>(
    platform: Box<dyn Platform>,
    cfg: RunConfig,
    body: F,
) -> (RunStats, Option<String>)
where
    F: Fn(&mut Proc) + Sync,
{
    use crate::shard::{Gate, GenCtx, ShardAbort, ValuePlane, CHANNEL_BATCHES};
    use std::sync::mpsc::{channel, sync_channel, Receiver, Sender};

    /// The interpreter-side halves of one processor's channel pair.
    type ReplayEnd = (Receiver<Vec<Desc>>, Sender<Reply>);

    let nprocs = cfg.nprocs;
    let bulk = cfg.bulk;
    let batch_cap = cfg.shard_batch;
    let metrics_on = cfg.metrics > 0;
    let plane = Arc::new(ValuePlane::new());
    let gate = Arc::new(Gate::new(cfg.shards));

    // Per-processor descriptor and reply channels. The generation ends are
    // moved into the generation threads; the replay ends sit in mutexed
    // slots the interpreter bodies claim by pid (channel halves are `Send`
    // but not `Sync`).
    let mut gen_ends = Vec::with_capacity(nprocs);
    let mut replay_ends: Vec<Mutex<Option<ReplayEnd>>> = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (desc_tx, desc_rx) = sync_channel::<Vec<Desc>>(CHANNEL_BATCHES);
        let (reply_tx, reply_rx) = channel::<Reply>();
        gen_ends.push(Some((desc_tx, reply_rx)));
        replay_ends.push(Mutex::new(Some((desc_rx, reply_tx))));
    }

    let result = std::thread::scope(|s| {
        for (pid, end) in gen_ends.iter_mut().enumerate() {
            let (tx, reply_rx) = end.take().expect("generation end claimed once");
            let plane = Arc::clone(&plane);
            let gate = Arc::clone(&gate);
            let body = &body;
            std::thread::Builder::new()
                .name(format!("simgen-{pid}"))
                .stack_size(16 << 20)
                .spawn_scoped(s, move || {
                    let mut proc = Proc {
                        pid,
                        nprocs,
                        bulk,
                        backend: Backend::Gen(Box::new(GenCtx::new(
                            plane, tx, reply_rx, gate, batch_cap, metrics_on,
                        ))),
                    };
                    if let Some(ctx) = proc.gen() {
                        ctx.unpark();
                    }
                    let r =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut proc)));
                    let Some(ctx) = proc.gen() else {
                        unreachable!()
                    };
                    // Never block on the channel while holding a gate
                    // permit (the final flush may hit backpressure).
                    ctx.park();
                    match r {
                        Ok(()) => {}
                        Err(payload) => {
                            if payload.downcast_ref::<ShardAbort>().is_some() {
                                // Replay terminated first (normally or by
                                // poison); nothing left to report.
                                return;
                            }
                            // A real application panic: forward it so replay
                            // re-raises it through the classic poison
                            // protocol, producing the same outer panic a
                            // non-sharded run would.
                            let msg = payload
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "simulated processor panicked".into());
                            ctx.batch.push(Desc::Poison(msg));
                        }
                    }
                    ctx.flush_quiet();
                    // Dropping `tx` here closes the stream: the interpreter
                    // returns after draining it.
                })
                .expect("spawn generation thread");
        }

        let slots = &replay_ends;
        let out = if cfg.shard_fused {
            // The fused replay engine: all interpreter state machines run in
            // THIS thread's virtual-time event loop (see [`crate::fused`]).
            // Claim every replay end upfront; on unwind the machines drop
            // their channel halves, aborting the generation threads before
            // the scope joins them.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let ends: Vec<ReplayEnd> = slots
                    .iter()
                    .map(|s| {
                        s.lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .take()
                            .expect("replay end claimed once")
                    })
                    .collect();
                crate::fused::replay_fused(platform, &cfg, ends)
            }))
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_classic_profiled(platform, cfg, move |p: &mut Proc| {
                    let (rx, reply_tx) = slots[p.pid()]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("interpreter body entered twice");
                    let mut scratch: Vec<u64> = Vec::new();
                    let (mut n_recvs, mut n_blocked) = (0u64, 0u64);
                    loop {
                        let batch = match rx.try_recv() {
                            Ok(b) => b,
                            Err(std::sync::mpsc::TryRecvError::Empty) => {
                                n_blocked += 1;
                                match rx.recv() {
                                    Ok(b) => b,
                                    Err(_) => break,
                                }
                            }
                            Err(std::sync::mpsc::TryRecvError::Disconnected) => break,
                        };
                        n_recvs += 1;
                        for d in batch {
                            match d {
                                Desc::Work(c) => p.work(c),
                                Desc::WorkFused { per_elem, count } => {
                                    p.work_fused(per_elem, count)
                                }
                                Desc::SetPhase(ph) => p.set_phase(ph),
                                Desc::Alloc {
                                    label,
                                    bytes,
                                    align,
                                    placement,
                                } => {
                                    let a = p.alloc_shared_labeled(label, bytes, align, placement);
                                    let _ = reply_tx.send(Reply::Addr(a));
                                }
                                Desc::Load { addr, len } => {
                                    p.load(addr, len);
                                }
                                Desc::Store { addr, len, val } => p.store(addr, len, val),
                                Desc::LoadSlice {
                                    addr,
                                    stride,
                                    len,
                                    n,
                                } => {
                                    scratch.resize(n, 0);
                                    p.load_slice(addr, stride, len, &mut scratch[..n]);
                                }
                                Desc::StoreSlice {
                                    addr,
                                    stride,
                                    len,
                                    vals,
                                } => p.store_slice(addr, stride, len, &vals),
                                Desc::Lock(id) => {
                                    p.lock(id);
                                    let _ = reply_tx.send(Reply::Sync);
                                }
                                Desc::Unlock(id) => p.unlock(id),
                                Desc::Barrier(id) => {
                                    p.barrier(id);
                                    let _ = reply_tx.send(Reply::Sync);
                                }
                                Desc::StartTiming => {
                                    p.start_timing();
                                    let _ = reply_tx.send(Reply::Sync);
                                }
                                Desc::StopTiming => {
                                    p.stop_timing();
                                    let _ = reply_tx.send(Reply::Sync);
                                }
                                Desc::MetricEvent(name, n) => p.metric_add(name, n),
                                Desc::Poison(msg) => panic!("{msg}"),
                            }
                        }
                    }
                    if std::env::var_os("SIM_SHARD_DEBUG").is_some() {
                        eprintln!(
                            "[shard] p{}: {} batches, {} blocked recvs",
                            p.pid(),
                            n_recvs,
                            n_blocked
                        );
                    }
                })
            }))
        };
        // Drop any unclaimed replay ends (a poisoned run can kill a
        // processor before its interpreter starts) so every generation
        // thread's sends and reply-waits error out and it aborts — the
        // scope is about to join them.
        for slot in slots.iter() {
            slot.lock().unwrap_or_else(PoisonError::into_inner).take();
        }
        out
    });
    match result {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::NullPlatform;
    use crate::HEAP_BASE;

    fn null_run<F: Fn(&mut Proc) + Sync>(n: usize, f: F) -> RunStats {
        run(Box::new(NullPlatform::new(n)), RunConfig::new(n), f)
    }

    #[test]
    fn single_proc_runs_to_completion() {
        let stats = null_run(1, |p| {
            p.start_timing();
            p.work(100);
        });
        assert_eq!(stats.total_cycles(), 100);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let stats = null_run(4, |p| {
            p.start_timing();
            p.work((p.pid() as u64 + 1) * 100);
            p.barrier(0);
        });
        // All procs resume at the max arrival (400).
        for c in &stats.clocks {
            assert_eq!(*c, 400);
        }
        // Proc 0 waited 300 cycles at the barrier.
        assert_eq!(stats.procs[0].get(Bucket::BarrierWait), 300);
        assert_eq!(stats.procs[3].get(Bucket::BarrierWait), 0);
    }

    #[test]
    fn locks_provide_mutual_exclusion_in_virtual_time() {
        // All procs increment a shared counter under a lock; final value must
        // equal nprocs * iters, which only holds if the lock serializes.
        let n = 8;
        let iters = 25;
        let stats = null_run(n, |p| {
            p.start_timing();
            for _ in 0..iters {
                p.lock(7);
                let v = p.load(HEAP_BASE, 8);
                p.work(5);
                p.store(HEAP_BASE, 8, v + 1);
                p.unlock(7);
            }
            p.barrier(1);
        });
        // Re-run to read the value: instead assert via a writer-proc trick.
        // (Value lives inside the platform; verify using observable effects:
        // total lock acquisitions and absence of deadlock.)
        let c = stats.sum_counters();
        assert_eq!(c.lock_acquires, (n * iters) as u64);
    }

    #[test]
    fn lock_serialization_result_is_correct() {
        // Verify the final counter value via an extra read phase.
        let n = 4;
        let iters = 10;
        let observed = std::sync::Mutex::new(0u64);
        null_run(n, |p| {
            p.start_timing();
            for _ in 0..iters {
                p.lock(7);
                let v = p.load(HEAP_BASE, 8);
                p.store(HEAP_BASE, 8, v + 1);
                p.unlock(7);
            }
            p.barrier(1);
            if p.pid() == 0 {
                *observed.lock().unwrap() = p.load(HEAP_BASE, 8);
            }
        });
        assert_eq!(*observed.lock().unwrap(), (n * iters) as u64);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            null_run(6, |p| {
                p.start_timing();
                for i in 0..50u64 {
                    p.work(i % 7);
                    p.store(HEAP_BASE + 8 * (p.pid() as u64), 8, i);
                    if i % 10 == 0 {
                        p.lock(3);
                        p.work(2);
                        p.unlock(3);
                    }
                }
                p.barrier(0);
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.clocks, b.clocks);
        for (x, y) in a.procs.iter().zip(&b.procs) {
            for bkt in Bucket::ALL {
                assert_eq!(x.get(bkt), y.get(bkt));
            }
        }
    }

    #[test]
    fn start_timing_resets_clocks_and_stats() {
        let stats = null_run(2, |p| {
            p.work(10_000); // before timing: ignored (timing off anyway)
            p.barrier(9);
            p.start_timing();
            p.work(50);
            p.barrier(10);
        });
        assert_eq!(stats.total_cycles(), 50);
    }

    #[test]
    fn data_written_before_barrier_is_visible_after() {
        let seen = std::sync::Mutex::new(vec![0u64; 4]);
        null_run(4, |p| {
            p.start_timing();
            p.store(HEAP_BASE + 8 * p.pid() as u64, 8, 100 + p.pid() as u64);
            p.barrier(0);
            let neighbour = (p.pid() + 1) % 4;
            let v = p.load(HEAP_BASE + 8 * neighbour as u64, 8);
            seen.lock().unwrap()[p.pid()] = v;
            p.barrier(1);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, vec![101, 102, 103, 100]);
    }

    #[test]
    fn contended_lock_grants_by_virtual_arrival_order() {
        // Proc 0 grabs the lock first (it starts Running), works a long
        // time inside, and everyone else queues. Order of grants must follow
        // virtual arrival times, which equal request issue times here.
        let order = std::sync::Mutex::new(Vec::new());
        // A tight quantum keeps virtual-time ordering exact for this test.
        let cfg = RunConfig {
            quantum: 10,
            ..RunConfig::new(4)
        };
        run(Box::new(NullPlatform::new(4)), cfg, |p| {
            p.start_timing();
            // Stagger arrivals: pid k issues acquire at ~k*10 cycles.
            p.work(p.pid() as u64 * 10 + 1);
            p.lock(0);
            order.lock().unwrap().push(p.pid());
            p.work(1000); // long critical section forces queueing
            p.unlock(0);
            p.barrier(0);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn work_before_start_timing_is_free() {
        let stats = null_run(2, |p| {
            p.work(1_000_000);
            p.store(HEAP_BASE, 8, 1);
            p.start_timing();
            p.work(10);
            p.barrier(0);
        });
        assert_eq!(stats.total_cycles(), 10);
        // The pre-timing store still took effect on state, not on stats.
        assert_eq!(stats.sum(Bucket::Compute), 20);
    }

    #[test]
    fn stop_timing_freezes_clock() {
        let stats = null_run(2, |p| {
            p.start_timing();
            p.work(100);
            p.stop_timing();
            p.work(1_000_000); // untimed epilogue
            p.load(HEAP_BASE, 8);
        });
        assert_eq!(stats.total_cycles(), 100);
    }

    #[test]
    #[should_panic(expected = "simulated processor panicked")]
    fn deadlock_is_detected() {
        null_run(2, |p| {
            p.start_timing();
            if p.pid() == 0 {
                p.lock(0);
                p.barrier(0); // holds the lock across a barrier p1 never reaches
            } else {
                p.lock(0); // blocks forever
                p.barrier(0);
            }
        });
    }

    // The env parse helpers are tested on string inputs (not by mutating the
    // process environment, which would race with concurrently running
    // tests); the actual env wiring is covered by
    // `crates/sim-core/tests/env_config.rs`, which serializes itself.
    #[test]
    fn env_parse_accepts_valid_values() {
        assert_eq!(parse_env_usize("SIM_SHARDS", "1", 1..=MAX_SHARDS), 1);
        assert_eq!(parse_env_usize("SIM_SHARDS", " 8 ", 1..=MAX_SHARDS), 8);
        assert_eq!(
            parse_env_usize("SIM_SHARD_BATCH", "1048576", 1..=MAX_SHARD_BATCH),
            MAX_SHARD_BATCH
        );
        assert!(parse_env_bool("SIM_SHARD_FUSED", "1"));
        assert!(parse_env_bool("SIM_SHARD_FUSED", "TRUE"));
        assert!(parse_env_bool("SIM_SHARD_FUSED", "on"));
        assert!(!parse_env_bool("SIM_SHARD_FUSED", "0"));
        assert!(!parse_env_bool("SIM_SHARD_FUSED", "off"));
        assert!(!parse_env_bool("SIM_SHARD_FUSED", "False"));
    }

    #[test]
    fn env_parse_accepts_diagnostics_values() {
        // The diagnostics defaults (SIM_SHARING / SIM_TRACE / SIM_METRICS)
        // go through the same helpers; 0 is a valid metrics interval (off).
        assert_eq!(parse_env_usize("SIM_METRICS", "0", 0..=usize::MAX), 0);
        assert_eq!(
            parse_env_usize("SIM_METRICS", "65536", 0..=usize::MAX),
            65536
        );
        assert!(parse_env_bool("SIM_TRACE", "1"));
        assert!(!parse_env_bool("SIM_SHARING", "no"));
    }

    #[test]
    #[should_panic(expected = "SIM_METRICS=\"often\" is not a valid integer")]
    fn env_parse_rejects_garbage_metrics_interval() {
        parse_env_usize("SIM_METRICS", "often", 0..=usize::MAX);
    }

    #[test]
    #[should_panic(expected = "SIM_TRACE=\"yes please\" is not a boolean")]
    fn env_parse_rejects_non_boolean_trace() {
        parse_env_bool("SIM_TRACE", "yes please");
    }

    #[test]
    #[should_panic(expected = "SIM_SHARDS=\"\" is not a valid integer")]
    fn env_parse_rejects_empty_string() {
        parse_env_usize("SIM_SHARDS", "", 1..=MAX_SHARDS);
    }

    #[test]
    #[should_panic(expected = "SIM_SHARDS=\"four\" is not a valid integer")]
    fn env_parse_rejects_garbage() {
        parse_env_usize("SIM_SHARDS", "four", 1..=MAX_SHARDS);
    }

    #[test]
    #[should_panic(expected = "SIM_SHARDS=\"0\" is out of range 1..=65536")]
    fn env_parse_rejects_zero_shards() {
        parse_env_usize("SIM_SHARDS", "0", 1..=MAX_SHARDS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn env_parse_rejects_oversized_batch() {
        parse_env_usize("SIM_SHARD_BATCH", "1048577", 1..=MAX_SHARD_BATCH);
    }

    #[test]
    #[should_panic(expected = "SIM_SHARDS=\"-2\" is not a valid integer")]
    fn env_parse_rejects_negative() {
        parse_env_usize("SIM_SHARDS", "-2", 1..=MAX_SHARDS);
    }

    #[test]
    #[should_panic(expected = "SIM_SHARD_FUSED=\"maybe\" is not a boolean")]
    fn env_parse_rejects_non_boolean() {
        parse_env_bool("SIM_SHARD_FUSED", "maybe");
    }
}
