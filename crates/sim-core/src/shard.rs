//! Support types for the sharded (pipelined generate/replay) engine behind
//! [`RunConfig::with_shards`](crate::RunConfig::with_shards).
//!
//! ## Why not per-node lookahead windows?
//!
//! The textbook conservative-PDES refactor — let each node's processors
//! advance independently inside a window bounded by the minimum cross-node
//! interaction latency — cannot reproduce this simulator's statistics bit
//! for bit. Contended resources ([`crate::Resource`]) price requests in
//! first-come-first-served *execution* order, and under the quantum
//! run-ahead of the classic scheduler the execution order is deliberately
//! not the timestamp order. Any engine that reorders platform calls,
//! however latency-safe, perturbs `busy-until` chains and with them every
//! downstream cycle count.
//!
//! So the parallel engine splits each simulated processor differently, in
//! *pipeline* rather than *space*:
//!
//! * a **generation** thread per processor runs the application body
//!   against a process-wide [`ValuePlane`] (the flat values of simulated
//!   memory) and emits its sequence of simulated operations as a
//!   descriptor stream ([`Desc`]);
//! * the **replay** engine — the unmodified classic scheduler — consumes
//!   the streams, one interpreter per processor, re-issuing exactly the
//!   same `Proc` calls the application would have made, in exactly the
//!   order the classic engine would have chosen.
//!
//! All virtual time, statistics, resource arbitration, tracing, race
//! detection and protocol state live in replay, which is the classic
//! engine; the statistics are therefore a pure function of the streams.
//! The streams themselves are deterministic for data-race-free programs:
//! every value a generation thread reads from the [`ValuePlane`] is fixed
//! by the happens-before order that the round-trip synchronization
//! descriptors (lock, barrier, timing rendezvous, allocation) enforce on
//! the host, mirroring the virtual-time order replay computes. The
//! `tests/shard_equivalence.rs` harness asserts the resulting bit-identity
//! across shard counts, platforms, applications and diagnostics.
//!
//! The lookahead window here is **event-bounded** rather than
//! virtual-time-bounded: a generation thread may run ahead of its replay
//! interpreter by at most the descriptor-channel capacity, and blocks at
//! every cross-processor interaction (which each platform certifies is
//! mediated by the replayed protocol — see
//! [`Platform::min_cross_node_latency`](crate::Platform::min_cross_node_latency)).

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};

use crate::addr::Addr;
use crate::alloc::Placement;
use crate::util::FxMap;

/// Default descriptors per channel message: big enough to amortize channel
/// costs, small enough to keep the replay engine busy early. Overridable
/// per run via [`RunConfig::with_shard_batch`](crate::RunConfig::with_shard_batch)
/// or `SIM_SHARD_BATCH`.
pub(crate) const DEFAULT_BATCH: usize = 512;

/// Channel capacity in *batches*: how far (in events) generation may run
/// ahead of replay before backpressure parks it. Deep enough that a
/// processor's stream stays prefilled across the other processors'
/// scheduling turns, or replay degrades to lock-step with generation.
pub(crate) const CHANNEL_BATCHES: usize = 32;

/// Value-plane chunk size in bytes (a host bookkeeping unit, unrelated to
/// any platform's protocol page size).
const CHUNK: u64 = 4096;

/// Number of independently locked map shards in the value plane.
const PLANE_WAYS: usize = 64;

/// One simulated operation, recorded by a generation thread and re-issued
/// verbatim by its replay interpreter. Loads carry no values (replay's
/// platform state reproduces them); stores carry the generated values so
/// the platform's frames — and hence diff contents, wire bytes and sharing
/// footprints — match the classic engine byte for byte.
pub(crate) enum Desc {
    Work(u64),
    WorkFused {
        per_elem: u64,
        count: u64,
    },
    SetPhase(usize),
    Alloc {
        label: &'static str,
        bytes: u64,
        align: u64,
        placement: Placement,
    },
    Load {
        addr: Addr,
        len: u8,
    },
    Store {
        addr: Addr,
        len: u8,
        val: u64,
    },
    LoadSlice {
        addr: Addr,
        stride: u64,
        len: u8,
        n: usize,
    },
    StoreSlice {
        addr: Addr,
        stride: u64,
        len: u8,
        vals: Vec<u64>,
    },
    Lock(u32),
    Unlock(u32),
    Barrier(u32),
    StartTiming,
    StopTiming,
    /// A named application-level metric count (see
    /// [`Proc::metric_add`](crate::Proc::metric_add)). Emitted only when
    /// the run records metrics, so metrics-off streams are byte-identical
    /// to builds that predate it.
    MetricEvent(&'static str, u64),
    /// The application body panicked in generation; replay re-raises the
    /// message so the classic poison protocol unwinds the run exactly as a
    /// direct panic would have.
    Poison(String),
}

/// Reply sent by a replay interpreter for round-trip descriptors.
pub(crate) enum Reply {
    Addr(Addr),
    Sync,
}

/// Panic payload used to abort a generation thread quietly when the replay
/// side has already terminated (normally or by poison). Swallowed by the
/// generation wrapper; never escapes to the user.
pub(crate) struct ShardAbort;

/// Counting semaphore bounding how many generation threads execute
/// application code concurrently — the user-visible meaning of
/// `with_shards(n)`. Permits are released around every blocking point
/// (channel backpressure, round-trip replies) so the bound can never
/// deadlock the pipeline.
pub(crate) struct Gate {
    slots: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            slots: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn acquire(&self) {
        let mut s = self.slots.lock().unwrap();
        while *s == 0 {
            s = self.cv.wait(s).unwrap();
        }
        *s -= 1;
    }

    pub(crate) fn release(&self) {
        *self.slots.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// The flat current values of simulated shared memory, shared by all
/// generation threads. Chunked and shard-locked; unwritten memory reads as
/// zero, like every platform's zero-filled frames. This is *host* state
/// only — it carries no cycles, no protocol state, and replay never sees
/// it.
pub(crate) struct ValuePlane {
    ways: Vec<Mutex<FxMap<u64, Box<[u8]>>>>,
}

impl ValuePlane {
    pub(crate) fn new() -> Self {
        Self {
            ways: (0..PLANE_WAYS)
                .map(|_| Mutex::new(FxMap::default()))
                .collect(),
        }
    }

    /// Run `f` over the chunk containing byte `chunk * CHUNK`.
    fn with_chunk<R>(&self, chunk: u64, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut m = self.ways[(chunk as usize) & (PLANE_WAYS - 1)]
            .lock()
            .unwrap();
        let buf = m
            .entry(chunk)
            .or_insert_with(|| vec![0u8; CHUNK as usize].into_boxed_slice());
        f(buf)
    }

    fn read_bytes(&self, addr: Addr, out: &mut [u8]) {
        let mut a = addr;
        let mut done = 0;
        while done < out.len() {
            let chunk = a / CHUNK;
            let off = (a % CHUNK) as usize;
            let n = (out.len() - done).min(CHUNK as usize - off);
            self.with_chunk(chunk, |b| {
                out[done..done + n].copy_from_slice(&b[off..off + n])
            });
            done += n;
            a += n as u64;
        }
    }

    fn write_bytes(&self, addr: Addr, data: &[u8]) {
        let mut a = addr;
        let mut done = 0;
        while done < data.len() {
            let chunk = a / CHUNK;
            let off = (a % CHUNK) as usize;
            let n = (data.len() - done).min(CHUNK as usize - off);
            self.with_chunk(chunk, |b| {
                b[off..off + n].copy_from_slice(&data[done..done + n])
            });
            done += n;
            a += n as u64;
        }
    }

    /// Load up to 8 bytes little-endian, zero-extended.
    pub(crate) fn load(&self, addr: Addr, len: u8) -> u64 {
        let mut w = [0u8; 8];
        self.read_bytes(addr, &mut w[..len as usize]);
        u64::from_le_bytes(w)
    }

    /// Store the low `len` bytes of `val` little-endian.
    pub(crate) fn store(&self, addr: Addr, len: u8, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes()[..len as usize]);
    }

    /// Strided bulk load (element width `len`). Grouped chunk-wise: one
    /// lock + map probe per chunk-resident run of elements, not per
    /// element — generation throughput has to outrun the replay engine for
    /// the pipeline to overlap at all.
    pub(crate) fn load_slice(&self, addr: Addr, stride: u64, len: u8, out: &mut [u64]) {
        let lenu = len as u64;
        let mut i = 0;
        while i < out.len() {
            let a = addr + i as u64 * stride;
            let (chunk, off) = (a / CHUNK, a % CHUNK);
            if off + lenu > CHUNK {
                // Element straddles the chunk boundary: byte-wise path.
                out[i] = self.load(a, len);
                i += 1;
                continue;
            }
            // Elements k with off + k*stride + len <= CHUNK stay in-chunk.
            let n = match (CHUNK - off - lenu).checked_div(stride) {
                None => out.len() - i,
                Some(fit) => ((fit + 1).min((out.len() - i) as u64)) as usize,
            };
            self.with_chunk(chunk, |b| {
                for k in 0..n {
                    let o = (off + k as u64 * stride) as usize;
                    let mut w = [0u8; 8];
                    w[..len as usize].copy_from_slice(&b[o..o + len as usize]);
                    out[i + k] = u64::from_le_bytes(w);
                }
            });
            i += n;
        }
    }

    /// Strided bulk store (element width `len`); chunk-grouped like
    /// [`ValuePlane::load_slice`].
    pub(crate) fn store_slice(&self, addr: Addr, stride: u64, len: u8, vals: &[u64]) {
        let lenu = len as u64;
        let mut i = 0;
        while i < vals.len() {
            let a = addr + i as u64 * stride;
            let (chunk, off) = (a / CHUNK, a % CHUNK);
            if off + lenu > CHUNK {
                self.store(a, len, vals[i]);
                i += 1;
                continue;
            }
            let n = match (CHUNK - off - lenu).checked_div(stride) {
                None => vals.len() - i,
                Some(fit) => ((fit + 1).min((vals.len() - i) as u64)) as usize,
            };
            self.with_chunk(chunk, |b| {
                for k in 0..n {
                    let o = (off + k as u64 * stride) as usize;
                    b[o..o + len as usize]
                        .copy_from_slice(&vals[i + k].to_le_bytes()[..len as usize]);
                }
            });
            i += n;
        }
    }
}

/// Per-processor generation context: the value plane, the outgoing
/// descriptor stream, the reply channel, and the concurrency gate.
pub(crate) struct GenCtx {
    pub(crate) plane: Arc<ValuePlane>,
    pub(crate) tx: SyncSender<Vec<Desc>>,
    pub(crate) reply_rx: Receiver<Reply>,
    pub(crate) gate: Arc<Gate>,
    pub(crate) batch: Vec<Desc>,
    /// Flush threshold (descriptors per channel message) for this run; see
    /// [`DEFAULT_BATCH`].
    pub(crate) batch_cap: usize,
    /// Whether this thread currently holds a gate permit (so cleanup after
    /// a panic releases exactly once).
    pub(crate) gate_held: bool,
    /// Generation-side mirror of the timed-region flag, maintained from
    /// this processor's own `start_timing`/`stop_timing` calls (which are
    /// all-processor rendezvous, so the mirror agrees with replay at every
    /// point the application can observe).
    pub(crate) timing: bool,
    /// Whether this run records interval metrics (`RunConfig::metrics > 0`):
    /// gates [`Desc::MetricEvent`] emission so metrics-off descriptor
    /// streams are unchanged.
    pub(crate) metrics: bool,
}

impl GenCtx {
    pub(crate) fn new(
        plane: Arc<ValuePlane>,
        tx: SyncSender<Vec<Desc>>,
        reply_rx: Receiver<Reply>,
        gate: Arc<Gate>,
        batch_cap: usize,
        metrics: bool,
    ) -> Self {
        Self {
            plane,
            tx,
            reply_rx,
            gate,
            batch: Vec::with_capacity(batch_cap),
            batch_cap,
            gate_held: false,
            timing: false,
            metrics,
        }
    }

    pub(crate) fn park(&mut self) {
        if self.gate_held {
            self.gate.release();
            self.gate_held = false;
        }
    }

    pub(crate) fn unpark(&mut self) {
        if !self.gate_held {
            self.gate.acquire();
            self.gate_held = true;
        }
    }

    /// Send the pending batch. Parks around the send so channel
    /// backpressure never stalls the pipeline behind the concurrency gate.
    /// Aborts the generation thread if replay has terminated.
    pub(crate) fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(self.batch_cap));
        self.park();
        if self.tx.send(batch).is_err() {
            std::panic::panic_any(ShardAbort);
        }
        self.unpark();
    }

    /// Best-effort flush for cleanup paths: never panics, never reacquires
    /// the gate.
    pub(crate) fn flush_quiet(&mut self) {
        if !self.batch.is_empty() {
            let batch = std::mem::take(&mut self.batch);
            let _ = self.tx.send(batch);
        }
    }

    /// Record a non-blocking descriptor.
    pub(crate) fn emit(&mut self, d: Desc) {
        self.batch.push(d);
        if self.batch.len() >= self.batch_cap {
            self.flush();
        }
    }

    /// Record a round-trip descriptor and block until replay answers —
    /// the host-side edge of every simulated happens-before edge.
    pub(crate) fn roundtrip(&mut self, d: Desc) -> Reply {
        self.batch.push(d);
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(self.batch_cap));
        self.park();
        if self.tx.send(batch).is_err() {
            std::panic::panic_any(ShardAbort);
        }
        match self.reply_rx.recv() {
            Ok(r) => {
                self.unpark();
                r
            }
            Err(_) => std::panic::panic_any(ShardAbort),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_round_trips_values_across_chunk_boundaries() {
        let p = ValuePlane::new();
        // Straddle the 4 KB chunk boundary.
        let a = 3 * CHUNK - 3;
        p.store(a, 8, 0x1122_3344_5566_7788);
        assert_eq!(p.load(a, 8), 0x1122_3344_5566_7788);
        // Unwritten memory reads zero.
        assert_eq!(p.load(10 * CHUNK, 8), 0);
        // Partial widths do not clobber neighbours.
        p.store(100, 8, u64::MAX);
        p.store(102, 2, 0);
        assert_eq!(p.load(100, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn plane_slices_match_scalar_ops() {
        let p = ValuePlane::new();
        let vals: Vec<u64> = (0..1000u64).map(|i| i * i + 7).collect();
        p.store_slice(CHUNK - 40, 24, 8, &vals);
        let mut out = vec![0u64; vals.len()];
        p.load_slice(CHUNK - 40, 24, 8, &mut out);
        assert_eq!(out, vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.load(CHUNK - 40 + i as u64 * 24, 8), v);
        }
    }

    #[test]
    fn gate_bounds_concurrency() {
        let g = Arc::new(Gate::new(2));
        g.acquire();
        g.acquire();
        // A third acquire must block until a release.
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || {
            g2.acquire();
            g2.release();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_finished(), "gate failed to block");
        g.release();
        h.join().unwrap();
        g.release();
    }
}
