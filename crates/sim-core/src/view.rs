//! Typed views over the simulated shared address space.
//!
//! Applications manipulate shared data through these views so the data
//! structure *layout* — the very thing the paper's restructurings change —
//! is explicit. [`Grid2`] is a row-major 2-d array (the "non-contiguous"
//! SPLASH-2 layout); [`Grid4`] is the blocked 4-d layout where each
//! partition's elements are contiguous in the address space (the
//! "contiguous" layout), with optional page alignment of partitions.

use crate::addr::{align_up, Addr, PAGE_SIZE};
use crate::sched::Proc;

/// A scalar type that can live in simulated shared memory (≤ 8 bytes).
pub trait Word: Copy {
    /// Size in bytes (1, 2, 4 or 8).
    const LEN: u8;
    /// Encode into the low bytes of a u64.
    fn to_bits64(self) -> u64;
    /// Decode from the low bytes of a u64.
    fn from_bits64(v: u64) -> Self;
}

macro_rules! impl_word_int {
    ($($t:ty),*) => {$(
        impl Word for $t {
            const LEN: u8 = std::mem::size_of::<$t>() as u8;
            #[inline(always)]
            fn to_bits64(self) -> u64 { self as u64 }
            #[inline(always)]
            fn from_bits64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_word_int!(u8, u16, u32, u64, usize);

macro_rules! impl_word_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl Word for $t {
            const LEN: u8 = std::mem::size_of::<$t>() as u8;
            #[inline(always)]
            fn to_bits64(self) -> u64 { (self as $u) as u64 }
            #[inline(always)]
            fn from_bits64(v: u64) -> Self { v as $u as $t }
        }
    )*};
}
impl_word_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl Word for f64 {
    const LEN: u8 = 8;
    #[inline(always)]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits64(v: u64) -> Self {
        f64::from_bits(v)
    }
}

impl Word for f32 {
    const LEN: u8 = 4;
    #[inline(always)]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_bits64(v: u64) -> Self {
        f32::from_bits(v as u32)
    }
}

/// A 1-d typed array in shared memory.
#[derive(Clone, Copy, Debug)]
pub struct GArr<T: Word> {
    base: Addr,
    len: usize,
    _t: std::marker::PhantomData<T>,
}

impl<T: Word> GArr<T> {
    /// View `len` elements of `T` starting at `base`.
    pub fn new(base: Addr, len: usize) -> Self {
        Self {
            base,
            len,
            _t: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Address of element `i`.
    #[inline(always)]
    pub fn addr(&self, i: usize) -> Addr {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        self.base + (i as u64) * T::LEN as u64
    }

    /// Load element `i` through the memory system.
    #[inline(always)]
    pub fn get(&self, p: &mut Proc, i: usize) -> T {
        T::from_bits64(p.load(self.addr(i), T::LEN))
    }

    /// Store element `i` through the memory system.
    #[inline(always)]
    pub fn set(&self, p: &mut Proc, i: usize, v: T) {
        p.store(self.addr(i), T::LEN, v.to_bits64());
    }

    /// A sub-view of `count` elements starting at `offset`.
    pub fn slice(&self, offset: usize, count: usize) -> GArr<T> {
        assert!(offset + count <= self.len);
        GArr::new(self.addr_unchecked(offset), count)
    }

    #[inline(always)]
    fn addr_unchecked(&self, i: usize) -> Addr {
        self.base + (i as u64) * T::LEN as u64
    }
}

/// A row-major 2-d array — the SPLASH-2 "non-contiguous" layout. Rows may be
/// padded to `pitch` elements (pitch == cols means unpadded; the paper's P/A
/// optimization pads rows to page multiples).
#[derive(Clone, Copy, Debug)]
pub struct Grid2<T: Word> {
    arr: GArr<T>,
    rows: usize,
    cols: usize,
    pitch: usize,
}

impl<T: Word> Grid2<T> {
    /// Bytes needed for a `rows x cols` grid with row pitch `pitch`.
    pub fn bytes(rows: usize, pitch: usize) -> u64 {
        (rows * pitch) as u64 * T::LEN as u64
    }

    /// Pitch (elements) that pads each row to a whole number of pages.
    pub fn page_pitch(cols: usize) -> usize {
        (align_up((cols as u64) * T::LEN as u64, PAGE_SIZE) / T::LEN as u64) as usize
    }

    /// View a grid at `base`.
    pub fn new(base: Addr, rows: usize, cols: usize, pitch: usize) -> Self {
        assert!(pitch >= cols);
        Self {
            arr: GArr::new(base, rows * pitch),
            rows,
            cols,
            pitch,
        }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Address of `(r, c)`.
    #[inline(always)]
    pub fn addr(&self, r: usize, c: usize) -> Addr {
        debug_assert!(r < self.rows && c < self.cols);
        self.arr.addr(r * self.pitch + c)
    }

    /// Load `(r, c)`.
    #[inline(always)]
    pub fn get(&self, p: &mut Proc, r: usize, c: usize) -> T {
        self.arr.get(p, r * self.pitch + c)
    }

    /// Store `(r, c)`.
    #[inline(always)]
    pub fn set(&self, p: &mut Proc, r: usize, c: usize, v: T) {
        self.arr.set(p, r * self.pitch + c, v);
    }
}

/// The blocked "contiguous" 4-d layout: a `rows x cols` logical grid divided
/// into `br x bc` element blocks, with each block stored contiguously. The
/// paper's DS optimization for LU, Ocean and the Volrend image plane.
#[derive(Clone, Copy, Debug)]
pub struct Grid4<T: Word> {
    base: Addr,
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    blocks_per_row: usize,
    block_stride: u64,
    _t: std::marker::PhantomData<T>,
}

impl<T: Word> Grid4<T> {
    /// Bytes needed for the blocked layout. If `page_align_blocks` is set,
    /// each block is padded to a whole number of pages (the paper's
    /// "aligning the contiguous blocks assigned to the processors to page
    /// boundaries").
    pub fn bytes(rows: usize, cols: usize, br: usize, bc: usize, page_align_blocks: bool) -> u64 {
        let bpr = cols.div_ceil(bc);
        let bprow = rows.div_ceil(br);
        let stride = Self::stride(br, bc, page_align_blocks);
        (bpr * bprow) as u64 * stride
    }

    fn stride(br: usize, bc: usize, page_align_blocks: bool) -> u64 {
        let raw = (br * bc) as u64 * T::LEN as u64;
        if page_align_blocks {
            align_up(raw, PAGE_SIZE)
        } else {
            raw
        }
    }

    /// View a blocked grid at `base` (which must itself be page aligned when
    /// `page_align_blocks` is used).
    pub fn new(
        base: Addr,
        rows: usize,
        cols: usize,
        br: usize,
        bc: usize,
        page_align_blocks: bool,
    ) -> Self {
        Self {
            base,
            rows,
            cols,
            br,
            bc,
            blocks_per_row: cols.div_ceil(bc),
            block_stride: Self::stride(br, bc, page_align_blocks),
            _t: std::marker::PhantomData,
        }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block size (rows, cols).
    pub fn block_dims(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Address of `(r, c)` in the blocked layout.
    #[inline(always)]
    pub fn addr(&self, r: usize, c: usize) -> Addr {
        debug_assert!(r < self.rows && c < self.cols);
        let (bi, bj) = (r / self.br, c / self.bc);
        let (ri, cj) = (r % self.br, c % self.bc);
        self.base
            + (bi * self.blocks_per_row + bj) as u64 * self.block_stride
            + ((ri * self.bc + cj) as u64) * T::LEN as u64
    }

    /// Load `(r, c)`.
    #[inline(always)]
    pub fn get(&self, p: &mut Proc, r: usize, c: usize) -> T {
        T::from_bits64(p.load(self.addr(r, c), T::LEN))
    }

    /// Store `(r, c)`.
    #[inline(always)]
    pub fn set(&self, p: &mut Proc, r: usize, c: usize, v: T) {
        p.store(self.addr(r, c), T::LEN, v.to_bits64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_encodings_round_trip() {
        assert_eq!(f64::from_bits64(3.25f64.to_bits64()), 3.25);
        assert_eq!(f32::from_bits64((-7.5f32).to_bits64()), -7.5);
        assert_eq!(i32::from_bits64((-123i32).to_bits64()), -123);
        assert_eq!(u8::from_bits64(200u8.to_bits64()), 200);
        assert_eq!(i64::from_bits64((-1i64).to_bits64()), -1);
    }

    #[test]
    fn grid2_addresses_are_row_major_with_pitch() {
        let g: Grid2<f64> = Grid2::new(0x1000_0000, 4, 3, 5);
        assert_eq!(g.addr(0, 0), 0x1000_0000);
        assert_eq!(g.addr(0, 2), 0x1000_0000 + 16);
        assert_eq!(g.addr(1, 0), 0x1000_0000 + 5 * 8);
    }

    #[test]
    fn grid4_blocks_are_contiguous() {
        let g: Grid4<f64> = Grid4::new(0x1000_0000, 8, 8, 4, 4, false);
        // Within block (0,0): consecutive addresses.
        assert_eq!(g.addr(0, 1) - g.addr(0, 0), 8);
        assert_eq!(g.addr(1, 0) - g.addr(0, 3), 8);
        // Block (0,1) starts right after block (0,0)'s 16 elements.
        assert_eq!(g.addr(0, 4) - g.addr(0, 0), 16 * 8);
    }

    #[test]
    fn grid4_page_aligned_blocks() {
        let g: Grid4<f64> = Grid4::new(0x1000_0000, 8, 8, 4, 4, true);
        assert_eq!(g.addr(0, 4) - g.addr(0, 0), PAGE_SIZE);
        assert_eq!(Grid4::<f64>::bytes(8, 8, 4, 4, true), 4 * PAGE_SIZE);
    }

    #[test]
    fn grid4_distinct_cells_distinct_addresses() {
        let g: Grid4<f64> = Grid4::new(0x1000_0000, 6, 6, 4, 4, false);
        let mut seen = std::collections::HashSet::new();
        for r in 0..6 {
            for c in 0..6 {
                assert!(seen.insert(g.addr(r, c)), "duplicate address at ({r},{c})");
            }
        }
    }

    #[test]
    fn page_pitch_pads_to_page() {
        let p = Grid2::<f64>::page_pitch(100);
        assert_eq!((p * 8) as u64 % PAGE_SIZE, 0);
        assert!(p >= 100);
    }
}
