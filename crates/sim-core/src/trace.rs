//! Virtual-time protocol event tracing.
//!
//! When a run is configured with [`crate::RunConfig::with_trace`], every
//! simulated processor records virtual-time-stamped [`Event`]s into a
//! bounded per-proc buffer: phase transitions, lock and barrier episodes,
//! page fetches, diff creation/application, invalidations and remote
//! misses. The scheduler emits the synchronization events from its central
//! hooks; the platform crates emit the protocol events from their pricing
//! paths. All timestamps are virtual cycles — no host clocks — so traces
//! are bit-identical across repeated runs.
//!
//! Tracing is **off by default** and **invisible**: a traced run produces a
//! `RunStats` identical to the untraced run apart from the
//! [`crate::RunStats::trace`] field (asserted in `tests/trace.rs`). Buffers
//! are sized once up front and never grow; events past the cap are counted
//! in [`ProcTrace::dropped`] rather than reallocating unbounded. The
//! wait-latency histograms are fixed-size and always complete, even when
//! the event buffer overflows.
//!
//! The finished trace ([`RunTrace`]) renders as Chrome/Perfetto
//! `trace_event` JSON ([`RunTrace::to_chrome_json`] — load in
//! <https://ui.perfetto.dev> or `chrome://tracing`) or as an ASCII timeline
//! for terminals ([`RunTrace::ascii_timeline`]).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default per-processor event-buffer capacity (events beyond this are
/// counted, not stored). Override with [`crate::RunConfig::with_trace_cap`].
pub const DEFAULT_EVENT_CAP: usize = 1 << 16;

/// Default run-wide dependency-edge capacity (edges beyond this are counted
/// in [`RunTrace::edges_dropped`], not stored). Override with
/// [`crate::RunConfig::with_edge_cap`]. The buffer grows on demand up to
/// this cap rather than preallocating it.
pub const DEFAULT_EDGE_CAP: usize = 1 << 20;

/// Number of log2 latency buckets (bucket `i` holds waits with bit-length
/// `i`, i.e. `2^(i-1) <= wait < 2^i`; bucket 0 holds zero-cycle waits).
pub const HIST_BUCKETS: usize = 40;

/// A traced protocol or synchronization event. Addresses (`page`, `line`)
/// are byte base addresses in the simulated address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The processor entered application phase `phase`.
    PhaseBegin { phase: usize },
    /// The processor left application phase `phase`.
    PhaseEnd { phase: usize },
    /// Lock acquire requested (queueing may follow).
    LockAcquireStart { lock: u64 },
    /// Lock acquire granted; the wait since `LockAcquireStart` is also
    /// recorded in the lock-wait histogram.
    LockAcquireGranted { lock: u64 },
    /// Lock released.
    LockRelease { lock: u64 },
    /// Arrived at a barrier.
    BarrierEnter { barrier: u64 },
    /// Released from a barrier.
    BarrierExit { barrier: u64 },
    /// Remote page fetch initiated (SVM platforms).
    PageFetchStart { page: u64, home: usize, bytes: u64 },
    /// Remote page fetch complete; latency also recorded in the fetch-wait
    /// histogram.
    PageFetchDone { page: u64, home: usize, bytes: u64 },
    /// A diff was computed for `page` (SVM platforms).
    DiffCreated { page: u64 },
    /// A diff was applied for `page` (at the HLRC home, or archived at the
    /// writer under TreadMarks-LRC).
    DiffApplied { page: u64 },
    /// A write notice invalidated the local copy of `page`.
    Invalidation { page: u64 },
    /// A hardware coherence miss serviced remotely (directory CC-NUMA) or
    /// cache-to-cache over the bus (SMP).
    RemoteMiss { line: u64, home: usize },
}

/// One trace record: virtual timestamp, global sequence number (total order
/// across processors for same-timestamp events), and the event itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual time (cycles since `start_timing`) at which the event fired.
    pub ts: u64,
    /// Global emission sequence number (deterministic tie-breaker).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The kind of a dependency edge — the provenance of one stall interval on
/// a processor's timeline. *Cross* kinds (lock handoffs, barrier releases,
/// the final settle) name the remote processor whose progress enabled this
/// one to resume; *intrinsic* kinds (page fetches, diffs, remote misses)
/// are protocol service intervals whose `src` is provenance only (the
/// server is a node resource, not a processor timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Lock handoff: the releaser's unlock enabled this acquire.
    LockHandoff { lock: u64 },
    /// Barrier release: the last arriver enabled this exit.
    BarrierRelease { barrier: u64 },
    /// End-of-run settle at `stop_timing`: the overall straggler enabled
    /// everyone else's final clock.
    Settle,
    /// Remote page fetch service (SVM platforms). `page` is the byte base
    /// address, `bytes` the wire traffic.
    PageFetch { page: u64, bytes: u64 },
    /// Diff creation/application work charged at interval close (SVM).
    Diff { page: u64 },
    /// Remote miss service (directory CC-NUMA, or any bus-serviced miss on
    /// SMP). `line` is the byte base address.
    RemoteMiss { line: u64 },
}

impl DepKind {
    /// True for edges whose `src`/`src_ts` name an enabling point on
    /// another processor's timeline (see [`DepKind`]).
    pub fn is_cross(&self) -> bool {
        matches!(
            self,
            DepKind::LockHandoff { .. } | DepKind::BarrierRelease { .. } | DepKind::Settle
        )
    }
}

/// One dependency edge: processor `dst` was stalled over `(t0, t1]` of its
/// own timeline, and (for cross kinds) could not have resumed before
/// `src_ts` on processor `src`'s timeline. Edges with `t1 <= t0` are never
/// recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// What kind of dependence this is.
    pub kind: DepKind,
    /// The stalled (resuming) processor.
    pub dst: usize,
    /// Start of the stall on `dst`'s timeline (virtual cycles).
    pub t0: u64,
    /// End of the stall on `dst`'s timeline (resume point).
    pub t1: u64,
    /// The enabling processor (cross kinds) or serving node's proc-0
    /// (intrinsic kinds, provenance only).
    pub src: usize,
    /// The enabling instant on `src`'s timeline (cross kinds).
    pub src_ts: u64,
    /// Global emission sequence number (deterministic tie-breaker).
    pub seq: u64,
}

/// One labeled allocation span in the simulated address space (byte
/// addresses, inclusive), snapshotted from the global allocator so post-hoc
/// analysis can attribute page/line addresses to data structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSpan {
    /// First byte of the span.
    pub first: u64,
    /// Last byte of the span (inclusive).
    pub last: u64,
    /// The allocation label ("" when the app gave none).
    pub label: &'static str,
}

/// Log2-bucketed wait-latency histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for WaitHist {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl WaitHist {
    /// Record one wait of `cycles` (zero-cycle waits land in bucket 0).
    #[inline]
    pub fn record(&mut self, cycles: u64) {
        let idx = (64 - cycles.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(cycles);
        self.max = self.max.max(cycles);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded waits, in cycles.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded wait, in cycles.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean wait in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in log2 bucket `i` (see [`HIST_BUCKETS`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Upper bound (exclusive) of bucket `i` in cycles: `2^i` (bucket 0 is
    /// exactly zero).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i.min(63)
        }
    }

    /// Approximate quantile: the upper bound of the first bucket at which
    /// the cumulative count reaches `q * count`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target.max(1) {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HIST_BUCKETS - 1)
    }

    /// Fold another histogram into this one (the populations need not
    /// match: counts and sums add, the max is the max of the two).
    pub fn merge(&mut self, other: &WaitHist) {
        for i in 0..HIST_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Machine-readable JSON object: count/sum/max/mean plus the non-empty
    /// buckets as `[bit_length, count]` pairs (shared by `figures trace
    /// --json` and `figures critpath --json`).
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                if !buckets.is_empty() {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{i},{b}]");
            }
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            buckets
        )
    }

    /// One-line summary, e.g. `n=12 mean=4032 p50~4096 max=8122`.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={:.0} p50~{} p90~{} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.max
        )
    }

    /// Render the non-empty buckets as `2^k:count` pairs.
    pub fn dist_line(&self) -> String {
        let mut s = String::new();
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                if !s.is_empty() {
                    s.push(' ');
                }
                if i == 0 {
                    let _ = write!(s, "0:{b}");
                } else {
                    let _ = write!(s, "<2^{i}:{b}");
                }
            }
        }
        if s.is_empty() {
            s.push_str("(empty)");
        }
        s
    }
}

/// Shared, mutable trace state while a run is in flight. One instance per
/// traced run, shared between the scheduler and the platform via
/// [`TraceHandle`]; the mutex is uncontended (everything already runs under
/// the global scheduler lock) and exists only to keep the handle `Send`.
#[derive(Debug)]
pub struct TraceSink {
    cap: usize,
    seq: u64,
    procs: Vec<SinkProc>,
    edge_cap: usize,
    eseq: u64,
    edges: Vec<DepEdge>,
    edges_dropped: u64,
}

#[derive(Debug)]
struct SinkProc {
    events: Vec<Event>,
    dropped: u64,
    fetch: WaitHist,
    lock: WaitHist,
    barrier: WaitHist,
}

/// Handle through which the scheduler and platforms append events.
pub type TraceHandle = Arc<Mutex<TraceSink>>;

impl TraceSink {
    /// Create a sink for `nprocs` processors with a per-proc event cap of
    /// `cap` (buffers are allocated once, up front) and a run-wide
    /// dependency-edge cap of `edge_cap` (that buffer grows on demand).
    pub fn new(nprocs: usize, cap: usize, edge_cap: usize) -> Self {
        Self {
            cap,
            seq: 0,
            procs: (0..nprocs)
                .map(|_| SinkProc {
                    events: Vec::with_capacity(cap),
                    dropped: 0,
                    fetch: WaitHist::default(),
                    lock: WaitHist::default(),
                    barrier: WaitHist::default(),
                })
                .collect(),
            edge_cap,
            eseq: 0,
            edges: Vec::new(),
            edges_dropped: 0,
        }
    }

    /// Append an event to `pid`'s buffer (counted as dropped past the cap;
    /// the buffer never reallocates).
    #[inline]
    pub fn push(&mut self, pid: usize, ts: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let p = &mut self.procs[pid];
        if p.events.len() < self.cap {
            p.events.push(Event { ts, seq, kind });
        } else {
            p.dropped += 1;
        }
    }

    /// Record a dependency edge (counted as dropped past the edge cap;
    /// edges with `t1 <= t0` are silently skipped — no stall, no edge).
    #[inline]
    pub fn push_edge(
        &mut self,
        kind: DepKind,
        dst: usize,
        t0: u64,
        t1: u64,
        src: usize,
        src_ts: u64,
    ) {
        if t1 <= t0 {
            return;
        }
        let seq = self.eseq;
        self.eseq += 1;
        if self.edges.len() < self.edge_cap {
            self.edges.push(DepEdge {
                kind,
                dst,
                t0,
                t1,
                src,
                src_ts,
                seq,
            });
        } else {
            self.edges_dropped += 1;
        }
    }

    /// Record a page-fetch / remote-miss service latency for `pid`.
    #[inline]
    pub fn sample_fetch(&mut self, pid: usize, cycles: u64) {
        self.procs[pid].fetch.record(cycles);
    }

    /// Record a lock-acquire wait for `pid`.
    #[inline]
    pub fn sample_lock(&mut self, pid: usize, cycles: u64) {
        self.procs[pid].lock.record(cycles);
    }

    /// Record a barrier wait for `pid`.
    #[inline]
    pub fn sample_barrier(&mut self, pid: usize, cycles: u64) {
        self.procs[pid].barrier.record(cycles);
    }

    /// Clear all buffers and histograms (called at `start_timing` so the
    /// trace covers exactly the timed region).
    pub fn reset(&mut self) {
        self.seq = 0;
        for p in &mut self.procs {
            p.events.clear();
            p.dropped = 0;
            p.fetch = WaitHist::default();
            p.lock = WaitHist::default();
            p.barrier = WaitHist::default();
        }
        self.eseq = 0;
        self.edges.clear();
        self.edges_dropped = 0;
    }

    /// Freeze into a [`RunTrace`]. `clocks` are the final per-proc virtual
    /// clocks (used to close the per-proc track); `allocs` is the labeled
    /// allocation-span snapshot for address attribution.
    pub fn into_trace(
        mut self,
        label: String,
        phase_names: Vec<String>,
        clocks: &[u64],
        allocs: Vec<AllocSpan>,
    ) -> RunTrace {
        // Edges arrive in emission order; (t1, seq) sorting gives the
        // deterministic resume-time order the critical-path DP needs.
        self.edges.sort_by_key(|e| (e.t1, e.seq));
        RunTrace {
            label,
            phase_names,
            edges: self.edges,
            edges_dropped: self.edges_dropped,
            allocs,
            procs: self
                .procs
                .into_iter()
                .enumerate()
                .map(|(pid, mut p)| {
                    // Per-proc buffers are appended in emission order, which
                    // is monotone for a proc's own activity but not for
                    // events posted to it by others (grants, home-side diff
                    // application); (ts, seq) sorting restores a
                    // deterministic timeline.
                    p.events.sort_by_key(|e| (e.ts, e.seq));
                    ProcTrace {
                        end: clocks.get(pid).copied().unwrap_or(0),
                        events: p.events,
                        dropped: p.dropped,
                        fetch_wait: p.fetch,
                        lock_wait: p.lock,
                        barrier_wait: p.barrier,
                    }
                })
                .collect(),
        }
    }
}

/// Convenience emitter for platform code: no-op unless tracing is on *and*
/// the timed region is active (keeping warm-up traffic out of the trace).
#[inline]
pub fn emit(tr: &Option<TraceHandle>, timing_on: bool, pid: usize, ts: u64, kind: EventKind) {
    if timing_on {
        if let Some(h) = tr {
            h.lock().unwrap().push(pid, ts, kind);
        }
    }
}

/// Convenience fetch-latency sampler for platform code (same gating as
/// [`emit`]).
#[inline]
pub fn sample_fetch(tr: &Option<TraceHandle>, timing_on: bool, pid: usize, cycles: u64) {
    if timing_on {
        if let Some(h) = tr {
            h.lock().unwrap().sample_fetch(pid, cycles);
        }
    }
}

/// Convenience dependency-edge emitter for platform code (same gating as
/// [`emit`]; zero-length edges are skipped by the sink).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn emit_edge(
    tr: &Option<TraceHandle>,
    timing_on: bool,
    kind: DepKind,
    dst: usize,
    t0: u64,
    t1: u64,
    src: usize,
    src_ts: u64,
) {
    if timing_on && t1 > t0 {
        if let Some(h) = tr {
            h.lock().unwrap().push_edge(kind, dst, t0, t1, src, src_ts);
        }
    }
}

/// The finished event trace of one simulated processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcTrace {
    /// Events in (ts, seq) order.
    pub events: Vec<Event>,
    /// Events discarded because the buffer cap was reached.
    pub dropped: u64,
    /// This processor's final virtual clock (cycles in the timed region).
    pub end: u64,
    /// Latency histogram of remote page fetches / remote miss service.
    pub fetch_wait: WaitHist,
    /// Latency histogram of lock-acquire waits.
    pub lock_wait: WaitHist,
    /// Latency histogram of barrier waits.
    pub barrier_wait: WaitHist,
}

/// The finished trace of a run: one [`ProcTrace`] per simulated processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTrace {
    /// The run label (from [`crate::RunConfig::named`]).
    pub label: String,
    /// Application-registered phase names
    /// ([`crate::RunConfig::with_phase_names`]); may be shorter than the
    /// number of phases used.
    pub phase_names: Vec<String>,
    /// Per-processor traces, indexed by pid.
    pub procs: Vec<ProcTrace>,
    /// Dependency edges in (resume time, seq) order — the provenance the
    /// critical-path analyzer ([`crate::critpath`]) walks.
    pub edges: Vec<DepEdge>,
    /// Edges discarded because the run-wide edge cap was reached.
    pub edges_dropped: u64,
    /// Labeled allocation spans (sorted by first byte) for attributing
    /// page/line addresses to data structures.
    pub allocs: Vec<AllocSpan>,
}

impl RunTrace {
    /// Total events captured across all processors.
    pub fn total_events(&self) -> usize {
        self.procs.iter().map(|p| p.events.len()).sum()
    }

    /// Total events dropped (0 unless a buffer hit its cap).
    pub fn dropped_events(&self) -> u64 {
        self.procs.iter().map(|p| p.dropped).sum()
    }

    /// Human name for phase `i` ("phase i" when the app registered none).
    pub fn phase_name(&self, i: usize) -> String {
        self.phase_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("phase {i}"))
    }

    /// End of the run in virtual cycles (max per-proc clock).
    pub fn end(&self) -> u64 {
        self.procs.iter().map(|p| p.end).max().unwrap_or(0)
    }

    /// The allocation label covering byte address `addr`, or `""` when the
    /// address falls outside every labeled span.
    pub fn label_of(&self, addr: u64) -> &'static str {
        let i = self.allocs.partition_point(|s| s.first <= addr);
        if i > 0 && addr <= self.allocs[i - 1].last {
            self.allocs[i - 1].label
        } else {
            ""
        }
    }

    /// Merged wait histograms across processors:
    /// `(fetch, lock, barrier)`.
    pub fn merged_hists(&self) -> (WaitHist, WaitHist, WaitHist) {
        let mut f = WaitHist::default();
        let mut l = WaitHist::default();
        let mut b = WaitHist::default();
        for p in &self.procs {
            f.merge(&p.fetch_wait);
            l.merge(&p.lock_wait);
            b.merge(&p.barrier_wait);
        }
        (f, l, b)
    }

    /// Render as Chrome `trace_event` JSON (the format accepted by
    /// <https://ui.perfetto.dev> and `chrome://tracing`): one track (tid)
    /// per simulated processor, phases and synchronization waits as
    /// duration events, protocol events as instants, and lock handoffs as
    /// flow arrows from the releasing to the granted processor.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with(None)
    }

    /// [`RunTrace::to_chrome_json`], plus counter tracks (`"ph":"C"`
    /// events) rendered from an interval-metrics report taken in the same
    /// run: per-processor cycle-breakdown rates, activity of the hottest
    /// pages, and per-lock hand-off rates, all on the shared virtual-time
    /// axis so the time-series line up under the duration events.
    pub fn to_chrome_json_with(&self, metrics: Option<&crate::metrics::MetricsReport>) -> String {
        let mut out = String::with_capacity(4096 + self.total_events() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push(' ');
            out.push_str(&ev);
        };

        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                 \"args\":{{\"name\":\"sim: {}\"}}}}",
                esc(&self.label)
            ),
        );
        for pid in 0..self.procs.len() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pid},\
                     \"args\":{{\"name\":\"proc {pid}\"}}}}"
                ),
            );
        }

        for (pid, p) in self.procs.iter().enumerate() {
            // Whole-track span for the timed region.
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"timed region\",\"cat\":\"run\",\"ph\":\"X\",\
                     \"pid\":0,\"tid\":{pid},\"ts\":0,\"dur\":{}}}",
                    p.end
                ),
            );
            // Match begin/end pairs into duration events; close unmatched
            // begins at the end of the track.
            let mut phase_stack: Vec<(usize, u64)> = Vec::new();
            let mut lock_start: crate::util::FxMap<u64, u64> = crate::util::FxMap::default();
            let mut barrier_enter: crate::util::FxMap<u64, u64> = crate::util::FxMap::default();
            for e in &p.events {
                match e.kind {
                    EventKind::PhaseBegin { phase } => phase_stack.push((phase, e.ts)),
                    EventKind::PhaseEnd { phase } => {
                        if let Some(pos) = phase_stack.iter().rposition(|&(ph, _)| ph == phase) {
                            let (_, t0) = phase_stack.remove(pos);
                            push(
                                &mut out,
                                &mut first,
                                self.span(pid, &self.phase_name(phase), "phase", t0, e.ts),
                            );
                        }
                    }
                    EventKind::LockAcquireStart { lock } => {
                        lock_start.insert(lock, e.ts);
                    }
                    EventKind::LockAcquireGranted { lock } => {
                        if let Some(t0) = lock_start.remove(&lock) {
                            push(
                                &mut out,
                                &mut first,
                                self.span(pid, &format!("lock {lock} wait"), "lock", t0, e.ts),
                            );
                        }
                    }
                    EventKind::BarrierEnter { barrier } => {
                        barrier_enter.insert(barrier, e.ts);
                    }
                    EventKind::BarrierExit { barrier } => {
                        if let Some(t0) = barrier_enter.remove(&barrier) {
                            push(
                                &mut out,
                                &mut first,
                                self.span(pid, &format!("barrier {barrier}"), "barrier", t0, e.ts),
                            );
                        }
                    }
                    EventKind::LockRelease { lock } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(pid, e.ts, &format!("release lock {lock}"), "lock", ""),
                        );
                    }
                    EventKind::PageFetchStart { page, home, bytes } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(
                                pid,
                                e.ts,
                                &format!("fetch {page:#x}"),
                                "fetch",
                                &format!(
                                    "\"page\":\"{page:#x}\",\"home\":{home},\"bytes\":{bytes}"
                                ),
                            ),
                        );
                    }
                    EventKind::PageFetchDone { page, home, bytes } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(
                                pid,
                                e.ts,
                                &format!("fetched {page:#x}"),
                                "fetch",
                                &format!(
                                    "\"page\":\"{page:#x}\",\"home\":{home},\"bytes\":{bytes}"
                                ),
                            ),
                        );
                    }
                    EventKind::DiffCreated { page } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(
                                pid,
                                e.ts,
                                &format!("diff created {page:#x}"),
                                "diff",
                                &format!("\"page\":\"{page:#x}\""),
                            ),
                        );
                    }
                    EventKind::DiffApplied { page } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(
                                pid,
                                e.ts,
                                &format!("diff applied {page:#x}"),
                                "diff",
                                &format!("\"page\":\"{page:#x}\""),
                            ),
                        );
                    }
                    EventKind::Invalidation { page } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(
                                pid,
                                e.ts,
                                &format!("invalidate {page:#x}"),
                                "inval",
                                &format!("\"page\":\"{page:#x}\""),
                            ),
                        );
                    }
                    EventKind::RemoteMiss { line, home } => {
                        push(
                            &mut out,
                            &mut first,
                            instant(
                                pid,
                                e.ts,
                                &format!("remote miss {line:#x}"),
                                "miss",
                                &format!("\"line\":\"{line:#x}\",\"home\":{home}"),
                            ),
                        );
                    }
                }
            }
            while let Some((phase, t0)) = phase_stack.pop() {
                push(
                    &mut out,
                    &mut first,
                    self.span(pid, &self.phase_name(phase), "phase", t0, p.end),
                );
            }
        }

        // Lock handoffs as flow arrows: a release followed (in global
        // virtual-time order) by the next grant of the same lock on any
        // processor.
        let mut all: Vec<(usize, &Event)> = Vec::new();
        for (pid, p) in self.procs.iter().enumerate() {
            for e in &p.events {
                all.push((pid, e));
            }
        }
        all.sort_by_key(|(_, e)| (e.ts, e.seq));
        let mut last_release: crate::util::FxMap<u64, (usize, u64)> = crate::util::FxMap::default();
        let mut flow_id = 0u64;
        for (pid, e) in all {
            match e.kind {
                EventKind::LockRelease { lock } => {
                    last_release.insert(lock, (pid, e.ts));
                }
                EventKind::LockAcquireGranted { lock } => {
                    if let Some((rpid, rts)) = last_release.remove(&lock) {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"lock {lock} handoff\",\"cat\":\"handoff\",\
                                 \"ph\":\"s\",\"id\":{flow_id},\"pid\":0,\"tid\":{rpid},\
                                 \"ts\":{rts}}}"
                            ),
                        );
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"lock {lock} handoff\",\"cat\":\"handoff\",\
                                 \"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"pid\":0,\
                                 \"tid\":{pid},\"ts\":{}}}",
                                e.ts
                            ),
                        );
                        flow_id += 1;
                    }
                }
                _ => {}
            }
        }

        // Counter tracks from the interval-metrics report: Perfetto draws
        // one stacked area chart per distinct counter name.
        if let Some(m) = metrics {
            let ivlen = m.interval.max(1);
            for (pid, p) in m.procs.iter().enumerate() {
                let mut prev = crate::metrics::ProcSample::default();
                for s in &p.samples {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"proc {pid} cycles\",\"cat\":\"metrics\",\
                             \"ph\":\"C\",\"pid\":0,\"tid\":{pid},\"ts\":{},\
                             \"args\":{{\"compute\":{},\"data_wait\":{},\
                             \"lock_wait\":{},\"barrier_wait\":{}}}}}",
                            s.ts,
                            s.compute.saturating_sub(prev.compute),
                            s.data_wait.saturating_sub(prev.data_wait),
                            s.lock_wait.saturating_sub(prev.lock_wait),
                            s.barrier_wait.saturating_sub(prev.barrier_wait),
                        ),
                    );
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"proc {pid} fetches\",\"cat\":\"metrics\",\
                             \"ph\":\"C\",\"pid\":0,\"tid\":{pid},\"ts\":{},\
                             \"args\":{{\"fetches\":{}}}}}",
                            s.ts,
                            s.remote_fetches.saturating_sub(prev.remote_fetches),
                        ),
                    );
                    prev = *s;
                }
            }
            // The hottest pages by protocol activity, so a big grid does
            // not explode the trace.
            let mut hot: Vec<&crate::metrics::PageSeries> = m.pages.iter().collect();
            hot.sort_by_key(|p| {
                (
                    std::cmp::Reverse(p.total_diff_words() + p.total_fetches()),
                    p.page_base,
                )
            });
            for p in hot.into_iter().take(8) {
                let name = if p.label.is_empty() {
                    format!("page {:#x} [{}]", p.page_base, p.trajectory.label())
                } else {
                    format!(
                        "page {:#x} ({}) [{}]",
                        p.page_base,
                        esc(p.label),
                        p.trajectory.label()
                    )
                };
                for iv in &p.intervals {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{name}\",\"cat\":\"metrics\",\"ph\":\"C\",\
                             \"pid\":0,\"tid\":0,\"ts\":{},\
                             \"args\":{{\"fetches\":{},\"diff_words\":{},\
                             \"invalidations\":{},\"writers\":{}}}}}",
                            iv.interval * ivlen,
                            iv.fetches,
                            iv.diff_words,
                            iv.invalidations,
                            iv.writers.len(),
                        ),
                    );
                }
            }
            for l in &m.locks {
                for &(iv, n) in &l.intervals {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"lock {} handoffs\",\"cat\":\"metrics\",\
                             \"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\
                             \"args\":{{\"handoffs\":{n}}}}}",
                            l.lock,
                            iv * ivlen,
                        ),
                    );
                }
            }
            for e in &m.events {
                // Aggregate an application event across processors into one
                // per-interval series.
                let mut byiv: crate::util::FxMap<u64, u64> = crate::util::FxMap::default();
                for p in &e.procs {
                    for &(iv, n) in p {
                        *byiv.entry(iv).or_insert(0) += n;
                    }
                }
                let mut ivs: Vec<(u64, u64)> = byiv.into_iter().collect();
                ivs.sort_by_key(|&(iv, _)| iv);
                for (iv, n) in ivs {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"metrics\",\"ph\":\"C\",\
                             \"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\"count\":{n}}}}}",
                            esc(e.name),
                            iv * ivlen,
                        ),
                    );
                }
            }
        }

        out.push_str("\n]}\n");
        out
    }

    fn span(&self, pid: usize, name: &str, cat: &str, t0: u64, t1: u64) -> String {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":0,\"tid\":{pid},\
             \"ts\":{t0},\"dur\":{}}}",
            esc(name),
            t1.saturating_sub(t0)
        )
    }

    /// ASCII timeline: one row per processor, `width` columns over the
    /// timed region. `B` = barrier wait, `L` = lock wait, `F` = page fetch
    /// in flight, `.` = everything else, `|` = phase transition.
    pub fn ascii_timeline(&self, width: usize) -> String {
        let width = width.max(16);
        let total = self.end().max(1);
        let col =
            |ts: u64| (((ts as u128 * width as u128) / total as u128) as usize).min(width - 1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline [{}]: {} cycles, {} cols ({} cycles/col)",
            self.label,
            total,
            width,
            total / width as u64
        );
        for (pid, p) in self.procs.iter().enumerate() {
            let mut row = vec![b'.'; width];
            let mut rank = vec![0u8; width];
            let paint = |row: &mut Vec<u8>, rank: &mut Vec<u8>, a: u64, b: u64, ch: u8, r: u8| {
                for c in col(a)..=col(b.max(a)) {
                    if r >= rank[c] {
                        row[c] = ch;
                        rank[c] = r;
                    }
                }
            };
            let mut lock_start: crate::util::FxMap<u64, u64> = crate::util::FxMap::default();
            let mut barrier_enter: crate::util::FxMap<u64, u64> = crate::util::FxMap::default();
            let mut fetch_start: u64 = 0;
            for e in &p.events {
                match e.kind {
                    EventKind::PhaseBegin { .. } => {
                        let c = col(e.ts);
                        row[c] = b'|';
                        rank[c] = 4;
                    }
                    EventKind::LockAcquireStart { lock } => {
                        lock_start.insert(lock, e.ts);
                    }
                    EventKind::LockAcquireGranted { lock } => {
                        if let Some(t0) = lock_start.remove(&lock) {
                            paint(&mut row, &mut rank, t0, e.ts, b'L', 2);
                        }
                    }
                    EventKind::BarrierEnter { barrier } => {
                        barrier_enter.insert(barrier, e.ts);
                    }
                    EventKind::BarrierExit { barrier } => {
                        if let Some(t0) = barrier_enter.remove(&barrier) {
                            paint(&mut row, &mut rank, t0, e.ts, b'B', 3);
                        }
                    }
                    EventKind::PageFetchStart { .. } => fetch_start = e.ts,
                    EventKind::PageFetchDone { .. } => {
                        paint(&mut row, &mut rank, fetch_start, e.ts, b'F', 1);
                    }
                    EventKind::RemoteMiss { .. } => {
                        paint(&mut row, &mut rank, e.ts, e.ts, b'F', 1);
                    }
                    _ => {}
                }
            }
            let _ = writeln!(
                out,
                "p{pid:<3} {}{}",
                String::from_utf8(row).unwrap(),
                if p.dropped > 0 {
                    format!("  ({} dropped)", p.dropped)
                } else {
                    String::new()
                }
            );
        }
        out.push_str(
            "legend: B=barrier wait  L=lock wait  F=fetch/miss  |=phase begin  .=compute\n",
        );
        out
    }

    /// Per-proc wait-latency report: one line per processor plus merged
    /// totals and log2 distributions — the "pages fetched are balanced but
    /// cost is not" check as a one-line-per-proc table.
    pub fn wait_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "wait-latency histograms [{}] (cycles):", self.label);
        for (pid, p) in self.procs.iter().enumerate() {
            let _ = writeln!(
                out,
                "  p{pid:<3} fetch[{}]  lock[{}]  barrier[{}]",
                p.fetch_wait.summary(),
                p.lock_wait.summary(),
                p.barrier_wait.summary()
            );
        }
        let (f, l, b) = self.merged_hists();
        let _ = writeln!(
            out,
            "  all  fetch[{}]  lock[{}]  barrier[{}]",
            f.summary(),
            l.summary(),
            b.summary()
        );
        let _ = writeln!(out, "  fetch dist:   {}", f.dist_line());
        let _ = writeln!(out, "  lock dist:    {}", l.dist_line());
        let _ = writeln!(out, "  barrier dist: {}", b.dist_line());
        out
    }
}

fn instant(pid: usize, ts: u64, name: &str, cat: &str, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
         \"tid\":{pid},\"ts\":{ts},\"args\":{{{args}}}}}",
        esc(name)
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_quantiles() {
        let mut h = WaitHist::default();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1004);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 1); // 3
        assert_eq!(h.bucket(10), 1); // 1000 (512..1024)
        assert_eq!(h.quantile(1.0), 1 << 10);
        let mut m = WaitHist::default();
        m.merge(&h);
        m.merge(&h);
        assert_eq!(m.count(), 8);
        assert_eq!(m.max(), 1000);
    }

    #[test]
    fn hist_edge_cases() {
        // Quantiles and mean on an empty histogram are all zero.
        let h = WaitHist::default();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"max\":0,\"mean\":0.0,\"buckets\":[]}"
        );

        // bucket_bound is monotone, strictly so below the u64 saturation
        // point, and saturates instead of overflowing past it.
        for i in 1..HIST_BUCKETS {
            assert!(WaitHist::bucket_bound(i) >= WaitHist::bucket_bound(i - 1));
            if i < 63 {
                assert!(WaitHist::bucket_bound(i) > WaitHist::bucket_bound(i - 1));
            }
        }
        assert_eq!(WaitHist::bucket_bound(63), 1u64 << 63);
        assert_eq!(WaitHist::bucket_bound(100), 1u64 << 63);

        // Merge with mismatched populations: counts and sums add, max is
        // the max of the two, and merging an empty histogram is identity.
        let mut a = WaitHist::default();
        a.record(5);
        a.record(7);
        a.record(100);
        let mut b = WaitHist::default();
        b.record(0);
        b.merge(&a);
        assert_eq!(b.count(), 4);
        assert_eq!(b.sum(), 112);
        assert_eq!(b.max(), 100);
        let before = a.clone();
        a.merge(&WaitHist::default());
        assert_eq!(a, before);

        // Saturating counts: huge samples clamp the sum at u64::MAX
        // instead of overflowing; max and mean stay meaningful.
        let mut s = WaitHist::default();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), u64::MAX);
        assert_eq!(s.max(), u64::MAX);
        assert!(s.mean() > 0.0);
        assert_eq!(s.bucket(HIST_BUCKETS - 1), 2);
    }

    #[test]
    fn sink_records_and_caps_edges() {
        let mut s = TraceSink::new(2, 8, 2);
        // Zero-length edges are skipped outright.
        s.push_edge(DepKind::Settle, 0, 5, 5, 1, 5);
        s.push_edge(DepKind::LockHandoff { lock: 1 }, 1, 4, 9, 0, 8);
        s.push_edge(DepKind::PageFetch { page: 0, bytes: 64 }, 0, 1, 3, 1, 1);
        // Past the cap: counted, not stored.
        s.push_edge(DepKind::Diff { page: 0 }, 0, 10, 12, 0, 10);
        let tr = s.into_trace("t".into(), vec![], &[12, 12], vec![]);
        assert_eq!(tr.edges.len(), 2);
        assert_eq!(tr.edges_dropped, 1);
        // Sorted by resume time, not emission order.
        assert_eq!(tr.edges[0].t1, 3);
        assert_eq!(tr.edges[1].t1, 9);
        assert!(tr.edges[0].kind == DepKind::PageFetch { page: 0, bytes: 64 });
        assert!(tr.edges[1].kind.is_cross());
        assert!(!tr.edges[0].kind.is_cross());
    }

    #[test]
    fn alloc_labels_resolve_by_address() {
        let s = TraceSink::new(1, 8, 8);
        let allocs = vec![
            AllocSpan {
                first: 0x1000,
                last: 0x1fff,
                label: "psi",
            },
            AllocSpan {
                first: 0x4000,
                last: 0x5fff,
                label: "work",
            },
        ];
        let tr = s.into_trace("t".into(), vec![], &[0], allocs);
        assert_eq!(tr.label_of(0x1000), "psi");
        assert_eq!(tr.label_of(0x1fff), "psi");
        assert_eq!(tr.label_of(0x2000), "");
        assert_eq!(tr.label_of(0x4abc), "work");
        assert_eq!(tr.label_of(0x0), "");
    }

    #[test]
    fn sink_caps_and_counts_drops() {
        let mut s = TraceSink::new(2, 3, DEFAULT_EDGE_CAP);
        for i in 0..5 {
            s.push(0, i, EventKind::DiffCreated { page: i });
        }
        s.push(1, 9, EventKind::DiffApplied { page: 9 });
        let tr = s.into_trace("t".into(), vec![], &[10, 10], vec![]);
        assert_eq!(tr.procs[0].events.len(), 3);
        assert_eq!(tr.procs[0].dropped, 2);
        assert_eq!(tr.procs[1].events.len(), 1);
        assert_eq!(tr.dropped_events(), 2);
        // Sequence numbers are global and strictly increasing.
        assert!(tr.procs[0].events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn chrome_json_shape() {
        let mut s = TraceSink::new(2, 64, DEFAULT_EDGE_CAP);
        s.push(0, 0, EventKind::PhaseBegin { phase: 0 });
        s.push(0, 5, EventKind::LockAcquireStart { lock: 1 });
        s.push(0, 9, EventKind::LockAcquireGranted { lock: 1 });
        s.push(0, 20, EventKind::LockRelease { lock: 1 });
        s.push(1, 22, EventKind::LockAcquireGranted { lock: 1 });
        s.push(0, 30, EventKind::PhaseEnd { phase: 0 });
        let tr = s.into_trace("unit \"q\"".into(), vec!["init".into()], &[30, 30], vec![]);
        let json = tr.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"init\""));
        assert!(json.contains("\\\"q\\\""));
        // One handoff flow pair (release on p0 -> grant on p1).
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        // Balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut escn) = (0i64, false, false);
        for c in json.chars() {
            if escn {
                escn = false;
                continue;
            }
            match c {
                '\\' if in_str => escn = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
