//! Backing storage for the simulated shared address space.
//!
//! [`FlatMem`] is used by the hardware-coherent platforms, where coherence
//! guarantees a single logical copy of every datum; the SVM platform keeps
//! per-node page frames instead (see the `svm-hlrc` crate) because the HLRC
//! protocol's whole point is that nodes hold *different* copies between
//! synchronizations.

use crate::addr::{Addr, HEAP_BASE};

/// A flat, growable byte memory indexed by simulated addresses.
///
/// Addresses below [`HEAP_BASE`] are invalid by construction (the allocator
/// never hands them out), letting us catch stray-null style application bugs.
#[derive(Clone, Debug, Default)]
pub struct FlatMem {
    data: Vec<u8>,
}

impl FlatMem {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn index(&mut self, addr: Addr, len: usize) -> usize {
        assert!(addr >= HEAP_BASE, "access below heap base: {addr:#x}");
        let off = (addr - HEAP_BASE) as usize;
        if off + len > self.data.len() {
            self.data.resize((off + len).next_power_of_two(), 0);
        }
        off
    }

    /// Load up to 8 bytes, little-endian, zero-extended into a u64.
    #[inline]
    pub fn load(&mut self, addr: Addr, len: u8) -> u64 {
        debug_assert!(matches!(len, 1 | 2 | 4 | 8));
        let off = self.index(addr, len as usize);
        let mut w = [0u8; 8];
        w[..len as usize].copy_from_slice(&self.data[off..off + len as usize]);
        u64::from_le_bytes(w)
    }

    /// Store the low `len` bytes of `val`, little-endian.
    #[inline]
    pub fn store(&mut self, addr: Addr, len: u8, val: u64) {
        debug_assert!(matches!(len, 1 | 2 | 4 | 8));
        let off = self.index(addr, len as usize);
        self.data[off..off + len as usize].copy_from_slice(&val.to_le_bytes()[..len as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_round_trips() {
        let mut m = FlatMem::new();
        m.store(HEAP_BASE + 16, 8, f64::to_bits(3.5));
        assert_eq!(f64::from_bits(m.load(HEAP_BASE + 16, 8)), 3.5);
        m.store(HEAP_BASE + 3, 1, 0xab);
        assert_eq!(m.load(HEAP_BASE + 3, 1), 0xab);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut m = FlatMem::new();
        assert_eq!(m.load(HEAP_BASE + 1_000_000, 8), 0);
    }

    #[test]
    fn partial_widths_do_not_clobber_neighbours() {
        let mut m = FlatMem::new();
        m.store(HEAP_BASE, 8, u64::MAX);
        m.store(HEAP_BASE + 2, 2, 0);
        assert_eq!(m.load(HEAP_BASE, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    #[should_panic]
    fn below_heap_base_panics() {
        let mut m = FlatMem::new();
        m.load(0x10, 8);
    }
}
