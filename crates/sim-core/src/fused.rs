//! The fused replay engine: every replay interpreter as a stackless state
//! machine, all of them driven by ONE host thread's virtual-time event loop.
//!
//! ## Why fuse?
//!
//! The sharded engine's replay side (see [`crate::shard`]) originally ran
//! the *unmodified* classic scheduler: one OS thread per simulated
//! processor, each op acquiring the global scheduler mutex, every quantum
//! hand-off a condvar wakeup and an OS context switch. That machinery
//! exists so arbitrary application code — with its real call stack — can
//! suspend mid-computation. But a replay interpreter has no application
//! stack: its entire continuation is "which descriptor comes next plus at
//! most one partially-consumed bulk operation". That continuation fits in
//! a small enum, so the interpreters can be coroutine-style state machines
//! multiplexed onto a single host thread: no mutex per op, no condvar
//! wakeups, no OS context switch per hand-off.
//!
//! ## Bit-identity argument
//!
//! The loop drives the *same* scheduler state ([`Inner`]) through the
//! *same* reentrant step API (`Inner::op_*`) as the classic engine; the
//! only thing replaced is how the returned [`Step`] is realized. The
//! classic engine parks and wakes OS threads such that exactly one
//! processor runs at a time, chosen as: keep the current processor until
//! an op requests a yield check and some ready processor has fallen more
//! than a quantum behind (then switch to the min-clock ready processor),
//! or until it blocks (then dispatch the min-clock ready processor). The
//! event loop below implements precisely that policy on machine indices
//! instead of threads — same transitions, same FCFS resource pricing
//! order, same trace/edge/sharing/detector hook sequence, and therefore
//! bit-identical `RunStats`. `tests/shard_equivalence.rs` runs the full
//! differential grid against both replay engines.
//!
//! A machine whose descriptor batch runs dry blocks on its channel *while
//! holding the turn* — exactly as the classic interpreter thread does on
//! `recv`. This is deterministic (virtual time must advance through this
//! processor; which host thread produces the bytes does not matter) and
//! deadlock-free (round-trip replies owed by this machine are sent before
//! the receive, and every other generation thread keeps streaming
//! independently).

use std::sync::mpsc::{Receiver, Sender, TryRecvError};

use crate::addr::Addr;
use crate::platform::Platform;
use crate::sched::{build_inner, collect_stats, Inner, RunConfig, Step};
use crate::shard::{Desc, Reply};
use crate::stats::RunStats;

/// What the event loop should do after a machine step — [`Step`] plus the
/// end-of-stream case that the classic engine expresses as a returning
/// thread body.
enum Action {
    Run,
    MaybeYield,
    Block,
    Finished,
}

fn step_to_action(s: Step) -> Action {
    match s {
        Step::Run => Action::Run,
        Step::MaybeYield => Action::MaybeYield,
        Step::Block => Action::Block,
    }
}

/// Mid-operation continuation of one interpreter: everything the classic
/// interpreter would keep on its call stack between scheduler entries.
enum MState {
    /// Ready to consume the next descriptor.
    Idle,
    /// A round-trip descriptor completed; the reply is sent the next time
    /// this machine runs — the moment the classic interpreter thread,
    /// rescheduled after the blocking `Proc` call returned, would execute
    /// its `send`.
    OweReply(Reply),
    /// Partially consumed bulk load: `done` of `n` words performed.
    LoadSlice {
        addr: Addr,
        stride: u64,
        len: u8,
        n: usize,
        done: usize,
    },
    /// Partially consumed bulk store.
    StoreSlice {
        addr: Addr,
        stride: u64,
        len: u8,
        vals: Vec<u64>,
        done: usize,
    },
    /// Partially consumed fused compute batch.
    WorkFused { per_elem: u64, left: u64 },
}

/// One replay interpreter as a state machine: its descriptor channel, the
/// batch being drained, and the mid-operation continuation.
struct Machine {
    rx: Receiver<Vec<Desc>>,
    reply_tx: Sender<Reply>,
    batch: std::vec::IntoIter<Desc>,
    st: MState,
    /// Discard buffer for replayed bulk loads (values live on the
    /// generation side's value plane; replay only prices the accesses).
    scratch: Vec<u64>,
    bulk: bool,
    n_recvs: u64,
    n_blocked: u64,
}

/// Panic payload for the no-runnable-processor case, so the outer wrapper
/// can reproduce the classic engine's unprefixed deadlock message.
struct DeadlockMsg(String);

impl Machine {
    fn new(rx: Receiver<Vec<Desc>>, reply_tx: Sender<Reply>, bulk: bool) -> Self {
        Self {
            rx,
            reply_tx,
            batch: Vec::new().into_iter(),
            st: MState::Idle,
            scratch: Vec::new(),
            bulk,
            n_recvs: 0,
            n_blocked: 0,
        }
    }

    /// Advance this machine by one scheduler entry: finish an owed reply
    /// or a bulk chunk, else consume the next descriptor. Mirrors exactly
    /// one `Proc`-method mutex acquisition of the classic interpreter.
    fn step(&mut self, inner: &mut Inner, pid: usize) -> Action {
        match std::mem::replace(&mut self.st, MState::Idle) {
            MState::Idle => {}
            MState::OweReply(r) => {
                // A send error means the generation thread already died
                // (app panic being forwarded); replay just keeps draining,
                // as the classic interpreter's ignored send result does.
                let _ = self.reply_tx.send(r);
                return Action::Run;
            }
            MState::LoadSlice {
                addr,
                stride,
                len,
                n,
                done,
            } => return self.load_slice_step(inner, pid, addr, stride, len, n, done),
            MState::StoreSlice {
                addr,
                stride,
                len,
                vals,
                done,
            } => return self.store_slice_step(inner, pid, addr, stride, len, vals, done),
            MState::WorkFused { per_elem, left } => {
                return self.work_fused_step(inner, pid, per_elem, left)
            }
        }
        let d = match self.batch.next() {
            Some(d) => d,
            None => {
                let batch = match self.rx.try_recv() {
                    Ok(b) => b,
                    Err(TryRecvError::Empty) => {
                        self.n_blocked += 1;
                        match self.rx.recv() {
                            Ok(b) => b,
                            Err(_) => return Action::Finished,
                        }
                    }
                    Err(TryRecvError::Disconnected) => return Action::Finished,
                };
                self.n_recvs += 1;
                self.batch = batch.into_iter();
                match self.batch.next() {
                    Some(d) => d,
                    None => return Action::Run, // defensively: empty batch
                }
            }
        };
        match d {
            Desc::Work(c) => step_to_action(inner.op_work(pid, c)),
            Desc::WorkFused { per_elem, count } => {
                self.work_fused_step(inner, pid, per_elem, count)
            }
            Desc::SetPhase(ph) => {
                inner.op_set_phase(pid, ph);
                Action::Run
            }
            Desc::Alloc {
                label,
                bytes,
                align,
                placement,
            } => {
                let a = inner.op_alloc(pid, label, bytes, align, placement);
                self.st = MState::OweReply(Reply::Addr(a));
                Action::Run
            }
            Desc::Load { addr, len } => {
                inner.op_load(pid, addr, len);
                Action::MaybeYield
            }
            Desc::Store { addr, len, val } => {
                inner.op_store(pid, addr, len, val);
                Action::MaybeYield
            }
            Desc::LoadSlice {
                addr,
                stride,
                len,
                n,
            } => self.load_slice_step(inner, pid, addr, stride, len, n, 0),
            Desc::StoreSlice {
                addr,
                stride,
                len,
                vals,
            } => self.store_slice_step(inner, pid, addr, stride, len, vals, 0),
            Desc::Lock(id) => {
                let s = inner.op_lock(pid, id);
                self.st = MState::OweReply(Reply::Sync);
                step_to_action(s)
            }
            Desc::Unlock(id) => step_to_action(inner.op_unlock(pid, id)),
            Desc::Barrier(id) => {
                let s = inner.op_barrier(pid, id);
                self.st = MState::OweReply(Reply::Sync);
                step_to_action(s)
            }
            Desc::StartTiming => {
                let s = inner.op_start_timing(pid);
                self.st = MState::OweReply(Reply::Sync);
                step_to_action(s)
            }
            Desc::StopTiming => {
                let s = inner.op_stop_timing(pid);
                self.st = MState::OweReply(Reply::Sync);
                step_to_action(s)
            }
            Desc::MetricEvent(name, n) => {
                inner.op_metric_event(pid, name, n);
                Action::Run
            }
            Desc::Poison(msg) => panic!("{msg}"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn load_slice_step(
        &mut self,
        inner: &mut Inner,
        pid: usize,
        addr: Addr,
        stride: u64,
        len: u8,
        n: usize,
        done: usize,
    ) -> Action {
        if n == 0 {
            return Action::Run; // classic: zero-length slice never enters the loop
        }
        if !self.bulk {
            // Scalar reference path: one load (and one yield check) per word.
            inner.op_load(pid, addr + done as u64 * stride, len);
            let done = done + 1;
            if done < n {
                self.st = MState::LoadSlice {
                    addr,
                    stride,
                    len,
                    n,
                    done,
                };
            }
            return Action::MaybeYield;
        }
        self.scratch.resize(n, 0);
        let base = addr + done as u64 * stride;
        let k = inner.op_load_chunk(pid, base, stride, len, &mut self.scratch[done..n]);
        let done = done + k;
        if done < n {
            self.st = MState::LoadSlice {
                addr,
                stride,
                len,
                n,
                done,
            };
        }
        Action::MaybeYield
    }

    #[allow(clippy::too_many_arguments)]
    fn store_slice_step(
        &mut self,
        inner: &mut Inner,
        pid: usize,
        addr: Addr,
        stride: u64,
        len: u8,
        vals: Vec<u64>,
        done: usize,
    ) -> Action {
        if vals.is_empty() {
            return Action::Run;
        }
        if !self.bulk {
            inner.op_store(pid, addr + done as u64 * stride, len, vals[done]);
            let done = done + 1;
            if done < vals.len() {
                self.st = MState::StoreSlice {
                    addr,
                    stride,
                    len,
                    vals,
                    done,
                };
            }
            return Action::MaybeYield;
        }
        let base = addr + done as u64 * stride;
        let k = inner.op_store_chunk(pid, base, stride, len, &vals[done..]);
        let done = done + k;
        if done < vals.len() {
            self.st = MState::StoreSlice {
                addr,
                stride,
                len,
                vals,
                done,
            };
        }
        Action::MaybeYield
    }

    fn work_fused_step(
        &mut self,
        inner: &mut Inner,
        pid: usize,
        per_elem: u64,
        left: u64,
    ) -> Action {
        if left == 0 {
            return Action::Run;
        }
        if !self.bulk {
            // Scalar reference path: one `work(per_elem)` per element. With
            // timing off every element is a no-op (timing cannot toggle
            // mid-batch: the rendezvous needs this processor), so the rest
            // of the batch is skipped wholesale.
            let s = inner.op_work(pid, per_elem);
            if matches!(s, Step::Run) {
                return Action::Run;
            }
            if left > 1 {
                self.st = MState::WorkFused {
                    per_elem,
                    left: left - 1,
                };
            }
            return Action::MaybeYield;
        }
        match inner.op_work_fused_chunk(pid, per_elem, left) {
            None => Action::Run, // timing off: whole batch is free
            Some(k) => {
                if k < left {
                    self.st = MState::WorkFused {
                        per_elem,
                        left: left - k,
                    };
                }
                Action::MaybeYield
            }
        }
    }
}

/// Dispatch after the current machine gave up the turn: switch to the
/// min-clock ready machine, or detect deadlock (classic
/// `dispatch_next`'s panic, with the identical message).
fn dispatch(inner: &mut Inner) -> usize {
    match inner.min_ready() {
        Some((next, _)) => {
            inner.set_running(next);
            next
        }
        None => {
            let msg = format!(
                "simulated deadlock: no runnable processor\n{}",
                inner.describe()
            );
            std::panic::panic_any(DeadlockMsg(msg));
        }
    }
}

/// The single-threaded virtual-time event loop over all machines.
fn event_loop(inner: &mut Inner, machines: &mut [Machine], cur_cell: &std::cell::Cell<usize>) {
    let nprocs = machines.len();
    let mut cur = 0usize; // processor 0 starts Running (see `build_inner`)
    loop {
        cur_cell.set(cur);
        match machines[cur].step(inner, cur) {
            Action::Run => {}
            Action::MaybeYield => {
                // Classic `maybe_yield`: hand over only if some runnable
                // processor has fallen more than a quantum behind.
                if let Some((next, clk)) = inner.min_ready() {
                    if inner.clocks[cur] > clk + inner.quantum {
                        inner.make_ready(cur);
                        inner.set_running(next);
                        cur = next;
                    }
                }
            }
            Action::Block => {
                // The op already marked `cur` non-runnable.
                cur = dispatch(inner);
            }
            Action::Finished => {
                inner.op_finish(cur);
                if inner.ndone == nprocs {
                    return;
                }
                cur = dispatch(inner);
            }
        }
    }
}

/// Run the fused replay engine over the claimed replay channel ends and
/// harvest the run exactly as the classic engine would.
///
/// # Panics
/// Reproduces the classic engine's outer panic protocol: application
/// panics forwarded via `Desc::Poison` (and interpreter-side assertion
/// failures) re-raise as `simulated processor panicked: p{pid}: {msg}`;
/// simulated deadlock re-raises its message unprefixed.
pub(crate) fn replay_fused(
    platform: Box<dyn Platform>,
    cfg: &RunConfig,
    ends: Vec<(Receiver<Vec<Desc>>, Sender<Reply>)>,
) -> (RunStats, Option<String>) {
    assert_eq!(ends.len(), cfg.nprocs);
    let mut inner = build_inner(platform, cfg);
    let mut machines: Vec<Machine> = ends
        .into_iter()
        .map(|(rx, reply_tx)| Machine::new(rx, reply_tx, cfg.bulk))
        .collect();
    let cur = std::cell::Cell::new(0usize);
    let looped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        event_loop(&mut inner, &mut machines, &cur)
    }));
    match looped {
        Ok(()) => {
            if std::env::var_os("SIM_SHARD_DEBUG").is_some() {
                for (pid, m) in machines.iter().enumerate() {
                    eprintln!(
                        "[fused] p{pid}: {} batches, {} blocked recvs",
                        m.n_recvs, m.n_blocked
                    );
                }
            }
            // Close the channels before harvesting; the generation threads
            // have all exited (their streams were drained to completion).
            drop(machines);
            collect_stats(inner, cfg)
        }
        Err(payload) => {
            // `machines` (and with it every channel half) is dropped by
            // this unwind, aborting the generation threads the caller's
            // scope is about to join.
            if let Some(d) = payload.downcast_ref::<DeadlockMsg>() {
                panic!("simulated processor panicked: {}", d.0);
            }
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "simulated processor panicked".into());
            panic!("simulated processor panicked: p{}: {msg}", cur.get());
        }
    }
}
