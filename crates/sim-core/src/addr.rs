//! Simulated shared address space addressing helpers.
//!
//! The simulated address space is a flat 64-bit space. The SVM platform
//! operates at [`PAGE_SIZE`]-byte granularity (4 KB, as in the paper); the
//! hardware platforms operate at their cache line granularity but reuse the
//! page-granular placement map for data distribution.

/// A simulated shared-address-space address (byte granularity).
pub type Addr = u64;

/// log2 of the virtual memory page size (4 KB, as in the paper's SVM system).
pub const PAGE_SHIFT: u32 = 12;

/// Virtual memory page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Base of the simulated shared heap. Nonzero so a zero `Addr` can be used
/// as a sentinel by applications.
pub const HEAP_BASE: Addr = 0x1000_0000;

/// Page number containing `a`.
#[inline(always)]
pub fn page_of(a: Addr) -> u64 {
    a >> PAGE_SHIFT
}

/// First address of page `p`.
#[inline(always)]
pub fn page_base(p: u64) -> Addr {
    p << PAGE_SHIFT
}

/// Offset of `a` within its page.
#[inline(always)]
pub fn page_off(a: Addr) -> usize {
    (a & (PAGE_SIZE - 1)) as usize
}

/// Round `v` up to a multiple of `align` (which must be a power of two).
#[inline(always)]
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math_round_trips() {
        let a: Addr = HEAP_BASE + 5 * PAGE_SIZE + 123;
        assert_eq!(page_base(page_of(a)) + page_off(a) as u64, a);
        assert_eq!(page_off(page_base(page_of(a))), 0);
    }

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(4097, 4096), 8192);
        assert_eq!(align_up(PAGE_SIZE - 1, PAGE_SIZE), PAGE_SIZE);
    }

    #[test]
    fn adjacent_pages_do_not_overlap() {
        for p in 0..64u64 {
            assert_eq!(page_of(page_base(p) + PAGE_SIZE - 1), p);
            assert_eq!(page_of(page_base(p) + PAGE_SIZE), p + 1);
        }
    }
}
