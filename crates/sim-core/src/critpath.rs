//! Virtual-time critical-path analysis with slack attribution and what-if
//! speedup projection.
//!
//! The tracer ([`crate::trace`]) records *dependency edges*: every stall
//! interval on a processor's timeline, tagged with its provenance — the
//! releaser that handed over a lock, the last arriver that released a
//! barrier, the home node that served a page fetch, the final-settle
//! straggler. [`analyze`] reconstructs the run's critical path from those
//! edges with a backward longest-path walk: start at the end of the run on
//! the processor that determined it, and repeatedly ask "what was this
//! processor doing just before this instant?" — computing (attribute the
//! gap to compute), or stalled (attribute the stall to its category and,
//! for cross-processor edges, jump to the enabling instant on the enabling
//! processor). The walk telescopes, so the attributed cycles sum *exactly*
//! to the end-to-end virtual time — the analyzer's core invariant.
//!
//! [`what_if`] answers the complementary question: how fast could the run
//! have been if a chosen cost were free? It replays every processor's
//! timeline forward in resume order with the targeted edges zeroed,
//! re-propagating cross-processor enabling times, and returns the new
//! end-to-end time. With nothing zeroed the replay reproduces the original
//! time exactly (a structural check that the recorded edges are sane), and
//! zeroing can only shrink it, so every projected speedup is an upper bound
//! `>= 1.0`.
//!
//! Everything here is post-hoc on a frozen [`RunTrace`]: clocks and
//! [`crate::RunStats`] are never touched, so tracing stays invisible.

use crate::trace::{DepEdge, DepKind, EventKind, RunTrace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of critical-path cost categories.
pub const NCATS: usize = 6;

/// Where a critical-path cycle went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathCat {
    /// Application compute (all gaps between stalls).
    Compute,
    /// Waiting for a lock held (or recently released) by another processor.
    LockWait,
    /// Waiting at a barrier for the last arriver, or the final settle.
    BarrierImbalance,
    /// Remote page fetch service, including wire time (SVM platforms).
    PageFetch,
    /// Diff creation and application at interval close (SVM platforms).
    Diff,
    /// Remote miss service (directory CC-NUMA, bus-serviced SMP misses).
    RemoteMiss,
}

impl PathCat {
    /// All categories, in display order.
    pub const ALL: [PathCat; NCATS] = [
        PathCat::Compute,
        PathCat::LockWait,
        PathCat::BarrierImbalance,
        PathCat::PageFetch,
        PathCat::Diff,
        PathCat::RemoteMiss,
    ];

    /// Stable index into `[u64; NCATS]` accumulators.
    pub fn index(self) -> usize {
        match self {
            PathCat::Compute => 0,
            PathCat::LockWait => 1,
            PathCat::BarrierImbalance => 2,
            PathCat::PageFetch => 3,
            PathCat::Diff => 4,
            PathCat::RemoteMiss => 5,
        }
    }

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            PathCat::Compute => "compute",
            PathCat::LockWait => "lock wait",
            PathCat::BarrierImbalance => "barrier imbalance",
            PathCat::PageFetch => "page fetch",
            PathCat::Diff => "diff",
            PathCat::RemoteMiss => "remote miss",
        }
    }

    /// The category a dependency edge's stall belongs to.
    pub fn of(kind: &DepKind) -> PathCat {
        match kind {
            DepKind::LockHandoff { .. } => PathCat::LockWait,
            DepKind::BarrierRelease { .. } | DepKind::Settle => PathCat::BarrierImbalance,
            DepKind::PageFetch { .. } => PathCat::PageFetch,
            DepKind::Diff { .. } => PathCat::Diff,
            DepKind::RemoteMiss { .. } => PathCat::RemoteMiss,
        }
    }
}

/// One segment of the critical path, in forward (increasing time) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The processor whose activity (or stall) this segment is.
    pub pid: usize,
    /// Segment start in virtual cycles (exclusive).
    pub t0: u64,
    /// Segment end in virtual cycles (inclusive).
    pub t1: u64,
    /// Where the cycles went.
    pub cat: PathCat,
    /// Index into [`RunTrace::edges`] for stall segments; `None` for
    /// compute gaps.
    pub edge: Option<usize>,
}

impl PathStep {
    /// Segment length in cycles.
    pub fn cycles(&self) -> u64 {
        self.t1 - self.t0
    }
}

/// A critical resource: one lock, barrier, or labeled data structure,
/// with the critical-path cycles attributed to stalls on it.
#[derive(Clone, Debug, PartialEq)]
pub struct CritResource {
    /// Category of the stalls.
    pub cat: PathCat,
    /// Display name: `lock 3`, `barrier 1`, an allocation label, or
    /// `(unlabeled)`.
    pub name: String,
    /// Critical-path cycles attributed to this resource.
    pub cycles: u64,
    /// Number of path segments on this resource.
    pub count: u64,
    /// The what-if target that zeroes exactly this resource's stalls.
    pub target: WhatIf,
}

/// The reconstructed critical path of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct CritPath {
    /// Critical-path length: the telescoped sum of all steps. Equals
    /// [`CritPath::end`] by construction.
    pub total: u64,
    /// End-to-end virtual time of the run ([`RunTrace::end`]).
    pub end: u64,
    /// Forward replay of all edges with nothing zeroed. Equals `end` iff
    /// the recorded edges are self-consistent (non-overlapping per-proc
    /// stalls with in-range provenance) — the analyzer's structural check.
    pub baseline: u64,
    /// Critical-path cycles per category (indexed by [`PathCat::index`]).
    pub by_cat: [u64; NCATS],
    /// Critical-path cycles per (phase id, category), sorted by phase id.
    pub by_phase: Vec<(usize, [u64; NCATS])>,
    /// Critical resources, most expensive first.
    pub resources: Vec<CritResource>,
    /// The path itself, in forward order.
    pub steps: Vec<PathStep>,
    /// Number of dependency edges the trace carried.
    pub edges: usize,
    /// Edges dropped at the trace's edge cap (attribution is only exact
    /// when zero).
    pub edges_dropped: u64,
}

/// A cost to hypothetically eliminate in [`what_if`].
#[derive(Clone, Debug, PartialEq)]
pub enum WhatIf {
    /// Zero every stall in one category.
    Category(PathCat),
    /// Zero every handoff stall on one lock.
    Lock(u64),
    /// Zero every release stall at one barrier.
    Barrier(u64),
    /// Zero every intrinsic protocol stall (page fetch, diff, remote miss)
    /// on addresses under one allocation label.
    Label(String),
}

impl WhatIf {
    /// Human description of the eliminated cost.
    pub fn describe(&self) -> String {
        match self {
            WhatIf::Category(c) => format!("all {}", c.label()),
            WhatIf::Lock(l) => format!("lock {l} handoffs"),
            WhatIf::Barrier(b) => format!("barrier {b} imbalance"),
            WhatIf::Label(l) if l.is_empty() => "traffic on unlabeled data".into(),
            WhatIf::Label(l) => format!("traffic on `{l}`"),
        }
    }

    /// Whether `e`'s stall would be zeroed by this target.
    pub fn matches(&self, tr: &RunTrace, e: &DepEdge) -> bool {
        does_match(tr, e, self)
    }
}

/// One ranked what-if projection.
#[derive(Clone, Debug, PartialEq)]
pub struct Projection {
    /// What was hypothetically eliminated.
    pub target: WhatIf,
    /// Critical-path cycles currently attributed to the target.
    pub path_cycles: u64,
    /// Projected end-to-end time with the target's stalls zeroed.
    pub projected: u64,
    /// Upper-bound speedup: `end / projected` (always `>= 1.0`).
    pub speedup: f64,
}

fn does_match(tr: &RunTrace, e: &DepEdge, w: &WhatIf) -> bool {
    match w {
        WhatIf::Category(c) => PathCat::of(&e.kind) == *c,
        WhatIf::Lock(l) => e.kind == DepKind::LockHandoff { lock: *l },
        WhatIf::Barrier(b) => e.kind == DepKind::BarrierRelease { barrier: *b },
        WhatIf::Label(lbl) => match e.kind {
            DepKind::PageFetch { page, .. } => tr.label_of(page) == lbl,
            DepKind::Diff { page } => tr.label_of(page) == lbl,
            DepKind::RemoteMiss { line } => tr.label_of(line) == lbl,
            _ => false,
        },
    }
}

fn resource_of(tr: &RunTrace, e: &DepEdge) -> (String, WhatIf) {
    let named = |s: &str| {
        if s.is_empty() {
            ("(unlabeled)".to_string(), WhatIf::Label(String::new()))
        } else {
            (s.to_string(), WhatIf::Label(s.to_string()))
        }
    };
    match e.kind {
        DepKind::LockHandoff { lock } => (format!("lock {lock}"), WhatIf::Lock(lock)),
        DepKind::BarrierRelease { barrier } => {
            (format!("barrier {barrier}"), WhatIf::Barrier(barrier))
        }
        DepKind::Settle => (
            "final settle".to_string(),
            WhatIf::Category(PathCat::BarrierImbalance),
        ),
        DepKind::PageFetch { page, .. } => named(tr.label_of(page)),
        DepKind::Diff { page } => named(tr.label_of(page)),
        DepKind::RemoteMiss { line } => named(tr.label_of(line)),
    }
}

/// Reconstruct the critical path of a traced run.
///
/// The walk starts at the end of the run on the processor that determined
/// it (the final-settle straggler, or the processor with the maximum clock
/// when nothing settled) and moves strictly backward in virtual time, so it
/// terminates and its segments telescope: `total == end` by construction.
pub fn analyze(tr: &RunTrace) -> CritPath {
    let n = tr.procs.len();
    // Per-processor edge lists in (t1, seq) order — `tr.edges` is already
    // globally sorted that way.
    let mut by_dst: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in tr.edges.iter().enumerate() {
        if e.dst < n {
            by_dst[e.dst].push(i);
        }
    }
    // Per-processor phase timelines from the event stream (the phase active
    // at time t is the last PhaseBegin at or before t; 0 before any).
    let timelines: Vec<Vec<(u64, usize)>> = tr
        .procs
        .iter()
        .map(|p| {
            p.events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::PhaseBegin { phase } => Some((e.ts, phase)),
                    _ => None,
                })
                .collect()
        })
        .collect();

    // The walk starts on the processor that determined the end of the run:
    // the pre-settle straggler if a settle happened (every settled proc
    // shares the same final clock, so the max alone cannot identify it),
    // else the max-clock processor (earliest pid on ties).
    let start = tr
        .edges
        .iter()
        .find(|e| matches!(e.kind, DepKind::Settle))
        .map(|e| e.src)
        .filter(|&s| s < n)
        .unwrap_or_else(|| {
            let mut best = 0usize;
            for q in 1..n {
                if tr.procs[q].end > tr.procs[best].end {
                    best = q;
                }
            }
            best
        });

    let mut steps_rev: Vec<PathStep> = Vec::new();
    let mut p = start;
    let mut t = tr.procs.get(p).map(|x| x.end).unwrap_or(0);
    while t > 0 {
        let list = &by_dst[p];
        let k = list.partition_point(|&i| tr.edges[i].t1 <= t);
        if k == 0 {
            // Nothing but compute back to time zero on this processor.
            steps_rev.push(PathStep {
                pid: p,
                t0: 0,
                t1: t,
                cat: PathCat::Compute,
                edge: None,
            });
            break;
        }
        let ei = list[k - 1];
        let e = &tr.edges[ei];
        if e.t1 < t {
            steps_rev.push(PathStep {
                pid: p,
                t0: e.t1,
                t1: t,
                cat: PathCat::Compute,
                edge: None,
            });
        }
        let cat = PathCat::of(&e.kind);
        if e.kind.is_cross() && e.src != p && e.src < n && e.src_ts >= e.t0 && e.src_ts < e.t1 {
            // The stall ended because `src` reached `src_ts`: charge the
            // lag and continue the walk there. `src_ts < t1` guarantees
            // strictly decreasing time, hence termination.
            steps_rev.push(PathStep {
                pid: p,
                t0: e.src_ts,
                t1: e.t1,
                cat,
                edge: Some(ei),
            });
            p = e.src;
            t = e.src_ts;
        } else {
            // Intrinsic stall (protocol service), or provenance that
            // cannot move the walk backward: charge the whole interval and
            // stay on this processor.
            steps_rev.push(PathStep {
                pid: p,
                t0: e.t0,
                t1: e.t1,
                cat,
                edge: Some(ei),
            });
            t = e.t0;
        }
    }
    steps_rev.reverse();
    let steps = steps_rev;

    let mut by_cat = [0u64; NCATS];
    let mut by_phase: BTreeMap<usize, [u64; NCATS]> = BTreeMap::new();
    let mut resources: BTreeMap<(usize, String), (u64, u64, WhatIf)> = BTreeMap::new();
    let mut total = 0u64;
    for s in &steps {
        let cycles = s.cycles();
        total += cycles;
        by_cat[s.cat.index()] += cycles;
        if let Some(tl) = timelines.get(s.pid) {
            split_phases(tl, s.t0, s.t1, |phase, c| {
                by_phase.entry(phase).or_insert([0; NCATS])[s.cat.index()] += c;
            });
        }
        if let Some(ei) = s.edge {
            let (name, target) = resource_of(tr, &tr.edges[ei]);
            let entry = resources
                .entry((s.cat.index(), name))
                .or_insert((0, 0, target));
            entry.0 += cycles;
            entry.1 += 1;
        }
    }
    let mut resources: Vec<CritResource> = resources
        .into_iter()
        .map(|((ci, name), (cycles, count, target))| CritResource {
            cat: PathCat::ALL[ci],
            name,
            cycles,
            count,
            target,
        })
        .collect();
    resources.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then(a.cat.cmp(&b.cat))
            .then(a.name.cmp(&b.name))
    });

    CritPath {
        total,
        end: tr.end(),
        baseline: recompute(tr, |_| false),
        by_cat,
        by_phase: by_phase.into_iter().collect(),
        resources,
        steps,
        edges: tr.edges.len(),
        edges_dropped: tr.edges_dropped,
    }
}

/// Call `f(phase, cycles)` for each piece of the interval `(t0, t1]` split
/// at the phase transitions in `tl` (sorted `(begin_ts, phase)` pairs).
fn split_phases(tl: &[(u64, usize)], t0: u64, t1: u64, mut f: impl FnMut(usize, u64)) {
    let mut i = tl.partition_point(|&(ts, _)| ts <= t0);
    let mut phase = if i > 0 { tl[i - 1].1 } else { 0 };
    let mut cur = t0;
    while i < tl.len() && tl[i].0 < t1 {
        let (ts, ph) = tl[i];
        if ts > cur {
            f(phase, ts - cur);
            cur = ts;
        }
        phase = ph;
        i += 1;
    }
    if t1 > cur {
        f(phase, t1 - cur);
    }
}

/// Forward replay of all edges in resume order with `zero`-matching edges'
/// stalls eliminated; returns the new end-to-end time. Compute gaps between
/// stalls are preserved verbatim; cross-processor edges re-propagate their
/// enabling time from the (possibly earlier) replayed clock of the enabling
/// processor. Replaying with nothing zeroed reproduces the original time
/// exactly; zeroing is monotone (can only shrink every clock), so what-if
/// projections are true upper bounds.
fn recompute(tr: &RunTrace, zero: impl Fn(&DepEdge) -> bool) -> u64 {
    let n = tr.procs.len();
    let mut cur = vec![0i128; n]; // replayed clock
    let mut prev_end = vec![0u64; n]; // original-timeline position
    for e in &tr.edges {
        if e.dst >= n {
            continue;
        }
        let p = e.dst;
        // The compute gap since the previous stall is kept as-is.
        cur[p] += e.t0.saturating_sub(prev_end[p]) as i128;
        if zero(e) {
            // The stall vanishes: the processor proceeds immediately.
        } else if e.kind.is_cross() && e.src != p && e.src < n {
            // Where does the enabling instant land on the replayed
            // timeline? src_ts shifts by however much src is ahead/behind.
            let new_src = (cur[e.src] + e.src_ts as i128 - prev_end[e.src] as i128).max(0);
            let dep = e.t0.max(e.src_ts).min(e.t1);
            cur[p] = cur[p].max(new_src) + (e.t1 - dep) as i128;
        } else {
            cur[p] += (e.t1 - e.t0) as i128;
        }
        prev_end[p] = prev_end[p].max(e.t1);
    }
    let mut t_new = 0i128;
    for (p, pt) in tr.procs.iter().enumerate() {
        // Trailing compute after the last stall.
        t_new = t_new.max(cur[p] + pt.end.saturating_sub(prev_end[p]) as i128);
    }
    t_new.max(0) as u64
}

/// Projected end-to-end time with `target`'s stalls zeroed (an upper-bound
/// best case: serialization behind the eliminated stalls is ignored).
pub fn what_if(tr: &RunTrace, target: &WhatIf) -> u64 {
    recompute(tr, |e| does_match(tr, e, target))
}

/// Projected end-to-end time with every edge matching *any* of `targets`
/// zeroed — the combined upper bound for applying a whole family of
/// transformations at once. Zeroing a superset of edges can only shrink
/// the projection, so the union bound dominates each individual bound.
pub fn what_if_all(tr: &RunTrace, targets: &[WhatIf]) -> u64 {
    recompute(tr, |e| targets.iter().any(|w| does_match(tr, e, w)))
}

/// Projected end-to-end time with an arbitrary set of edges zeroed —
/// the generalized form of [`what_if`] for callers (like the advisor)
/// whose targets are not expressible as a single [`WhatIf`], e.g. "all
/// protocol stalls landing in phase 2".
pub fn what_if_edges(tr: &RunTrace, zero: impl Fn(&DepEdge) -> bool) -> u64 {
    recompute(tr, zero)
}

/// Ranked what-if projections: every non-compute category with
/// critical-path presence, plus the top `top` individual resources.
/// Sorted by projected speedup, best first.
pub fn what_if_report(tr: &RunTrace, cp: &CritPath, top: usize) -> Vec<Projection> {
    let mut targets: Vec<(WhatIf, u64)> = Vec::new();
    for cat in PathCat::ALL {
        if cat != PathCat::Compute && cp.by_cat[cat.index()] > 0 {
            targets.push((WhatIf::Category(cat), cp.by_cat[cat.index()]));
        }
    }
    for r in cp.resources.iter().take(top) {
        if !targets.iter().any(|(t, _)| *t == r.target) {
            targets.push((r.target.clone(), r.cycles));
        }
    }
    let end = cp.end;
    let mut out: Vec<Projection> = targets
        .into_iter()
        .map(|(target, path_cycles)| {
            let projected = what_if(tr, &target);
            Projection {
                speedup: end as f64 / projected.max(1) as f64,
                target,
                path_cycles,
                projected,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.speedup
            .partial_cmp(&a.speedup)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.target.describe().cmp(&b.target.describe()))
    });
    out
}

impl CritPath {
    /// Fraction of the critical path spent in `cat` (0.0 when empty).
    pub fn share(&self, cat: PathCat) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.by_cat[cat.index()] as f64 / self.total as f64
        }
    }

    /// The dominant (largest-share) category of the path.
    pub fn dominant(&self) -> PathCat {
        let mut best = PathCat::Compute;
        for cat in PathCat::ALL {
            if self.by_cat[cat.index()] > self.by_cat[best.index()] {
                best = cat;
            }
        }
        best
    }

    /// Human-readable report: composition, per-phase breakdown, and the
    /// top critical resources.
    pub fn report(&self, tr: &RunTrace, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path [{}]: {} cycles over {} steps ({} edges, {} dropped)",
            tr.label,
            self.total,
            self.steps.len(),
            self.edges,
            self.edges_dropped
        );
        let _ = writeln!(out, "  composition:");
        for cat in PathCat::ALL {
            let c = self.by_cat[cat.index()];
            if c > 0 {
                let _ = writeln!(
                    out,
                    "    {:<18} {:>12} cycles  {:>5.1}%",
                    cat.label(),
                    c,
                    100.0 * self.share(cat)
                );
            }
        }
        if self.by_phase.len() > 1 {
            let _ = writeln!(out, "  by phase:");
            for (phase, cats) in &self.by_phase {
                let total: u64 = cats.iter().sum();
                let mut parts = String::new();
                for cat in PathCat::ALL {
                    let c = cats[cat.index()];
                    if c > 0 {
                        let _ = write!(
                            parts,
                            "{}{} {:.0}%",
                            if parts.is_empty() { "" } else { ", " },
                            cat.label(),
                            100.0 * c as f64 / total.max(1) as f64
                        );
                    }
                }
                let _ = writeln!(
                    out,
                    "    {:<14} {:>12} cycles  ({parts})",
                    tr.phase_name(*phase),
                    total
                );
            }
        }
        if !self.resources.is_empty() {
            let _ = writeln!(out, "  top critical resources:");
            for r in self.resources.iter().take(top) {
                let _ = writeln!(
                    out,
                    "    {:<18} {:<20} {:>12} cycles  {:>5.1}%  ({} stalls)",
                    r.cat.label(),
                    r.name,
                    r.cycles,
                    100.0 * r.cycles as f64 / self.total.max(1) as f64,
                    r.count
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AllocSpan, TraceSink, DEFAULT_EDGE_CAP};

    /// Two procs: p0 computes to 100 and releases a lock; p1 blocks at 50,
    /// resumes at 120 via the handoff, then computes to 200.
    fn handoff_trace() -> RunTrace {
        let mut s = TraceSink::new(2, 64, DEFAULT_EDGE_CAP);
        s.push_edge(DepKind::LockHandoff { lock: 7 }, 1, 50, 120, 0, 100);
        s.into_trace("t".into(), vec![], &[150, 200], vec![])
    }

    #[test]
    fn backward_walk_telescopes_exactly() {
        let tr = handoff_trace();
        let cp = analyze(&tr);
        assert_eq!(cp.total, 200);
        assert_eq!(cp.end, 200);
        assert_eq!(cp.baseline, 200);
        assert_eq!(cp.by_cat.iter().sum::<u64>(), cp.total);
        // Path: p0 compute (0,100], handoff lag (100,120], p1 compute
        // (120,200].
        assert_eq!(cp.by_cat[PathCat::Compute.index()], 180);
        assert_eq!(cp.by_cat[PathCat::LockWait.index()], 20);
        assert_eq!(cp.steps.first().unwrap().pid, 0);
        assert_eq!(cp.steps.last().unwrap().pid, 1);
        assert_eq!(cp.resources.len(), 1);
        assert_eq!(cp.resources[0].name, "lock 7");
        assert_eq!(cp.resources[0].target, WhatIf::Lock(7));
    }

    #[test]
    fn what_if_zeroing_is_monotone_and_exact() {
        let tr = handoff_trace();
        // Zeroing the lock: p1's stall (50..120) vanishes, its 80 cycles of
        // trailing compute follow directly: end = max(150, 50+80) = 150.
        assert_eq!(what_if(&tr, &WhatIf::Lock(7)), 150);
        assert_eq!(what_if(&tr, &WhatIf::Category(PathCat::LockWait)), 150);
        // Zeroing something absent changes nothing.
        assert_eq!(what_if(&tr, &WhatIf::Barrier(0)), 200);
        let cp = analyze(&tr);
        for p in what_if_report(&tr, &cp, 8) {
            assert!(p.speedup >= 1.0, "{:?}", p);
            assert!(p.projected <= cp.end);
        }
    }

    #[test]
    fn settle_edges_route_the_walk_to_the_straggler() {
        let mut s = TraceSink::new(3, 64, DEFAULT_EDGE_CAP);
        // p1 is the straggler at 300; p0 and p2 settle up to 300.
        s.push_edge(DepKind::Settle, 0, 120, 300, 1, 300);
        s.push_edge(DepKind::Settle, 2, 180, 300, 1, 300);
        let tr = s.into_trace("t".into(), vec![], &[300, 300, 300], vec![]);
        let cp = analyze(&tr);
        assert_eq!(cp.total, 300);
        assert_eq!(cp.baseline, 300);
        // The whole path is the straggler's compute: the settle edges of
        // the other processors are off-path.
        assert_eq!(cp.by_cat[PathCat::Compute.index()], 300);
        assert!(cp.steps.iter().all(|st| st.pid == 1));
    }

    #[test]
    fn intrinsic_stalls_attribute_by_allocation_label() {
        let mut s = TraceSink::new(2, 64, DEFAULT_EDGE_CAP);
        s.push_edge(
            DepKind::PageFetch {
                page: 0x2000,
                bytes: 4096,
            },
            0,
            100,
            400,
            1,
            100,
        );
        let allocs = vec![AllocSpan {
            first: 0x2000,
            last: 0x2fff,
            label: "psi",
        }];
        let tr = s.into_trace("t".into(), vec![], &[500, 90], allocs);
        let cp = analyze(&tr);
        assert_eq!(cp.total, 500);
        assert_eq!(cp.baseline, 500);
        assert_eq!(cp.by_cat[PathCat::PageFetch.index()], 300);
        assert_eq!(cp.resources[0].name, "psi");
        assert_eq!(cp.resources[0].target, WhatIf::Label("psi".into()));
        // Zeroing psi traffic removes the whole fetch.
        assert_eq!(what_if(&tr, &WhatIf::Label("psi".into())), 200);
    }

    #[test]
    fn phase_splitting_covers_boundaries() {
        let mut s = TraceSink::new(1, 64, DEFAULT_EDGE_CAP);
        s.push(0, 0, EventKind::PhaseBegin { phase: 0 });
        s.push(0, 60, EventKind::PhaseBegin { phase: 1 });
        let tr = s.into_trace("t".into(), vec!["a".into(), "b".into()], &[100], vec![]);
        let cp = analyze(&tr);
        assert_eq!(cp.total, 100);
        assert_eq!(cp.by_phase.len(), 2);
        assert_eq!(
            cp.by_phase[0],
            (0, {
                let mut c = [0; NCATS];
                c[PathCat::Compute.index()] = 60;
                c
            })
        );
        assert_eq!(cp.by_phase[1].1[PathCat::Compute.index()], 40);
        let phase_sum: u64 = cp.by_phase.iter().flat_map(|(_, c)| c.iter()).sum();
        assert_eq!(phase_sum, cp.total);
    }
}
