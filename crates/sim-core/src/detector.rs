//! Dynamic happens-before data-race detection for simulated runs.
//!
//! The scheduler's determinism argument (see the crate docs) rests on every
//! supported application being **data-race-free at the word level**: only
//! then is the bounded virtual-time skew between processors guaranteed to
//! perturb timings and never results. This module checks that claim at run
//! time instead of assuming it.
//!
//! ## Algorithm
//!
//! A classic vector-clock happens-before analysis with FastTrack-style
//! epoch compression (Flanagan & Freund, PLDI'09; lineage back to Eraser):
//!
//! * every processor carries a vector clock `C_p`, advanced at each
//!   release-type operation;
//! * every lock carries the releaser's clock, joined into the acquirer at
//!   grant time; barriers (and the `start_timing`/`stop_timing` rendezvous)
//!   join **all** clocks;
//! * every aligned 4-byte shadow word remembers the epoch of its last write
//!   and either the epoch of its last read or — after concurrent readers —
//!   a full read vector clock ("read-share promotion").
//!
//! An access races when the shadow state it must supersede is not ordered
//! before the accessor's current clock. Word granularity (4 bytes) matches
//! the paper's "data-race-free at the word level" wording: two processors
//! writing different *bytes* of one word unsynchronized is flagged, exactly
//! the property the platforms' diff/merge machinery requires.
//!
//! The detector sees the same access stream every platform charges for —
//! it hooks [`crate::sched`]'s `Proc::load`/`store` and the generic
//! lock/barrier orchestration, so one implementation covers the SVM, DSM,
//! and SMP platform models alike. It never advances clocks or statistics:
//! a run with detection enabled produces bit-identical [`RunStats`] timing
//! to one without (asserted by the workspace tests).
//!
//! [`RunStats`]: crate::stats::RunStats

use crate::addr::{Addr, HEAP_BASE};
use crate::alloc::GlobalAlloc;

/// Shadow-word granularity: the detector tracks aligned 4-byte words.
const WORD_SHIFT: u64 = 2;

/// Cap on retained [`RaceReport`]s per run. Races come in bursts (one racy
/// loop touches thousands of words); the first reports carry all the
/// diagnostic value. The total race count keeps counting past the cap.
const MAX_REPORTS: usize = 64;

/// A vector clock: one logical-time component per processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        VectorClock(vec![0; nprocs])
    }

    /// Component `p`.
    #[inline]
    pub fn get(&self, p: usize) -> u32 {
        self.0[p]
    }

    /// Pointwise maximum with `other`.
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Advance component `p` (a release-type event on processor `p`).
    #[inline]
    pub fn tick(&mut self, p: usize) {
        self.0[p] += 1;
    }
}

/// A FastTrack epoch: one component of a vector clock, `clk @ pid`.
/// `clk == 0` encodes "no such access yet".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Epoch {
    clk: u32,
    pid: u32,
}

impl Epoch {
    const NONE: Epoch = Epoch { clk: 0, pid: 0 };

    /// Does this epoch happen before clock `c` (or is it absent)?
    #[inline]
    fn before(self, c: &VectorClock) -> bool {
        self.clk <= c.get(self.pid as usize)
    }
}

/// Read state of a shadow word: none, one ordered reader, or a read-shared
/// vector clock after concurrent readers.
#[derive(Clone, Debug)]
enum ReadSt {
    One(Epoch),
    Many(Box<VectorClock>),
}

/// Per-word shadow state.
#[derive(Clone, Debug)]
struct Shadow {
    write: Epoch,
    read: ReadSt,
}

impl Shadow {
    const FRESH: Shadow = Shadow {
        write: Epoch::NONE,
        read: ReadSt::One(Epoch::NONE),
    };
}

/// The kind of conflicting access pair behind a race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// A write unordered after a read.
    ReadWrite,
    /// A read unordered after a write.
    WriteRead,
}

impl RaceKind {
    /// Human-readable pair description.
    pub fn describe(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteRead => "write-read",
        }
    }
}

/// One detected race: the first unordered access pair seen on a word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Run label (typically `App/Class`, from [`crate::RunConfig::label`]).
    pub run: String,
    /// Address of the racy aligned word.
    pub addr: Addr,
    /// Conflict kind.
    pub kind: RaceKind,
    /// Processor of the earlier (shadow) access.
    pub prior_pid: usize,
    /// Processor of the later (current) access.
    pub pid: usize,
    /// Label of the allocation containing `addr` (empty if the allocation
    /// was not named or the address is outside every allocation).
    pub alloc: String,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let run = if self.run.is_empty() {
            "<unnamed run>"
        } else {
            &self.run
        };
        let what = if self.alloc.is_empty() {
            "<unlabeled>"
        } else {
            &self.alloc
        };
        write!(
            f,
            "data race: {run}: {} on {:#x} in `{what}` between p{} and p{}",
            self.kind.describe(),
            self.addr,
            self.prior_pid,
            self.pid
        )
    }
}

/// The happens-before race detector attached to one run.
///
/// Owned by the scheduler (`sched::Inner`) when [`crate::RunConfig`]
/// enables `detect_races`; when disabled, no instance exists and the only
/// per-access cost is one `Option` test.
#[derive(Debug)]
pub struct RaceDetector {
    nprocs: usize,
    run_label: String,
    /// Per-processor vector clocks.
    clocks: Vec<VectorClock>,
    /// Clock of the last release of each lock.
    lock_rel: crate::util::FxMap<u32, VectorClock>,
    /// Dense shadow memory, indexed by `(addr - HEAP_BASE) >> WORD_SHIFT`
    /// (the heap is bump-allocated, so the index space is compact).
    shadow: Vec<Shadow>,
    /// Words already reported (one report per word keeps output readable).
    reported: crate::util::FxSet<u64>,
    /// Retained reports (capped at [`MAX_REPORTS`]).
    reports: Vec<RaceReport>,
    /// Total racy words detected, including past the report cap.
    nraces: u64,
}

impl RaceDetector {
    /// A detector for `nprocs` processors; `run_label` tags reports.
    pub fn new(nprocs: usize, run_label: String) -> Self {
        let clocks = (0..nprocs)
            .map(|p| {
                let mut c = VectorClock::new(nprocs);
                // Each processor starts in its own epoch 1: accesses before
                // any synchronization are unordered across processors.
                c.tick(p);
                c
            })
            .collect();
        RaceDetector {
            nprocs,
            run_label,
            clocks,
            lock_rel: Default::default(),
            shadow: Vec::new(),
            reported: Default::default(),
            reports: Vec::new(),
            nraces: 0,
        }
    }

    #[inline]
    fn word_span(addr: Addr, len: u8) -> (u64, u64) {
        debug_assert!(addr >= HEAP_BASE, "detector access below heap base");
        let first = (addr - HEAP_BASE) >> WORD_SHIFT;
        let last = (addr - HEAP_BASE + len as u64 - 1) >> WORD_SHIFT;
        (first, last)
    }

    #[inline]
    fn epoch_of(&self, pid: usize) -> Epoch {
        Epoch {
            clk: self.clocks[pid].get(pid),
            pid: pid as u32,
        }
    }

    fn record(
        &mut self,
        w: u64,
        kind: RaceKind,
        prior_pid: usize,
        pid: usize,
        alloc: &GlobalAlloc,
    ) {
        if !self.reported.insert(w) {
            return;
        }
        self.nraces += 1;
        if self.reports.len() >= MAX_REPORTS {
            return;
        }
        let addr = HEAP_BASE + (w << WORD_SHIFT);
        self.reports.push(RaceReport {
            run: self.run_label.clone(),
            addr,
            kind,
            prior_pid,
            pid,
            alloc: alloc.label_of(addr).to_string(),
        });
    }

    /// A shared-memory write of `len` bytes at `addr` by `pid`.
    pub fn on_write(&mut self, pid: usize, addr: Addr, len: u8, alloc: &GlobalAlloc) {
        let (first, last) = Self::word_span(addr, len);
        let me = self.epoch_of(pid);
        for w in first..=last {
            let c = &self.clocks[pid];
            let sh = {
                // Split-borrow: shadow access needs &mut self.
                let idx = w as usize;
                if idx >= self.shadow.len() {
                    let want = (idx + 1).next_power_of_two();
                    self.shadow.resize(want, Shadow::FRESH);
                }
                &mut self.shadow[idx]
            };
            // Write-write conflict.
            if !sh.write.before(c) {
                let prior = sh.write.pid as usize;
                sh.write = me;
                sh.read = ReadSt::One(Epoch::NONE);
                self.record(w, RaceKind::WriteWrite, prior, pid, alloc);
                continue;
            }
            // Read-write conflicts.
            let racer = match &sh.read {
                ReadSt::One(e) => (!e.before(c)).then_some(e.pid as usize),
                ReadSt::Many(v) => (0..self.nprocs).find(|&q| v.get(q) > c.get(q)),
            };
            // This write supersedes all ordered prior state: later accesses
            // ordered after it are transitively ordered after those, so the
            // read state can be dropped (FastTrack's write fast path).
            sh.write = me;
            sh.read = ReadSt::One(Epoch::NONE);
            if let Some(prior) = racer {
                self.record(w, RaceKind::ReadWrite, prior, pid, alloc);
            }
        }
    }

    /// A shared-memory read of `len` bytes at `addr` by `pid`.
    pub fn on_read(&mut self, pid: usize, addr: Addr, len: u8, alloc: &GlobalAlloc) {
        let (first, last) = Self::word_span(addr, len);
        let me = self.epoch_of(pid);
        for w in first..=last {
            let c = &self.clocks[pid];
            let idx = w as usize;
            if idx >= self.shadow.len() {
                let want = (idx + 1).next_power_of_two();
                self.shadow.resize(want, Shadow::FRESH);
            }
            let sh = &mut self.shadow[idx];
            // Write-read conflict.
            let racy = (!sh.write.before(c)).then_some(sh.write.pid as usize);
            // Update read state: stay in the cheap epoch representation
            // while reads are totally ordered; promote to a full vector
            // clock on the first concurrent reader pair.
            match &mut sh.read {
                ReadSt::One(e) => {
                    if e.pid as usize == pid || e.before(c) {
                        *e = me;
                    } else {
                        let mut v = VectorClock::new(self.nprocs);
                        v.0[e.pid as usize] = e.clk;
                        v.0[pid] = me.clk;
                        sh.read = ReadSt::Many(Box::new(v));
                    }
                }
                ReadSt::Many(v) => {
                    v.0[pid] = me.clk;
                }
            }
            if let Some(prior) = racy {
                self.record(w, RaceKind::WriteRead, prior, pid, alloc);
            }
        }
    }

    // ---- batched (run) checks for the bulk fast path ----
    //
    // The bulk access path performs whole L1-line runs under one scheduler
    // lock acquisition; feeding the detector one `on_read`/`on_write` call
    // per word made the detector the dominant cost of detector-on bulk
    // runs. The run variants below check an entire `base + i*stride`,
    // `i in 0..count` batch in one call: the shadow map is grown once for
    // the whole span, the accessor's epoch and clock are read once (data
    // accesses never advance the detector's clocks, so they are loop
    // constants), words this processor already owns in the current epoch
    // are skipped, and the rare race hits are recorded after the scan.
    //
    // Both must stay *observably identical* to the per-word path — same
    // shadow state, same reports in the same order, same counts —
    // `tests/equivalence.rs` sweeps detector-on runs on the scalar and bulk
    // paths and asserts bit-identical `RunStats` including race reports.

    /// Batched equivalent of calling [`RaceDetector::on_write`] once per
    /// access at `base + i*stride` for `i in 0..count`, in order.
    pub fn on_write_run(
        &mut self,
        pid: usize,
        base: Addr,
        stride: u64,
        len: u8,
        count: usize,
        alloc: &GlobalAlloc,
    ) {
        if count == 0 {
            return;
        }
        let (_, span_last) = Self::word_span(base + (count as u64 - 1) * stride, len);
        if span_last as usize >= self.shadow.len() {
            let want = (span_last as usize + 1).next_power_of_two();
            self.shadow.resize(want, Shadow::FRESH);
        }
        let me = self.epoch_of(pid);
        // (word, kind, prior_pid) hits, recorded after the scan; `record`
        // only touches the report side, so deferring it cannot change what
        // later words observe.
        let mut hits: Vec<(u64, RaceKind, usize)> = Vec::new();
        {
            let c = &self.clocks[pid];
            let nprocs = self.nprocs;
            for i in 0..count {
                let (first, last) = Self::word_span(base + i as u64 * stride, len);
                for w in first..=last {
                    let sh = &mut self.shadow[w as usize];
                    // Same-epoch skip: the word is already in exactly the
                    // post-write state (owned by `me`, read state clear), so
                    // the per-word path would be a no-op.
                    if sh.write == me && matches!(&sh.read, ReadSt::One(e) if *e == Epoch::NONE) {
                        continue;
                    }
                    if !sh.write.before(c) {
                        let prior = sh.write.pid as usize;
                        sh.write = me;
                        sh.read = ReadSt::One(Epoch::NONE);
                        hits.push((w, RaceKind::WriteWrite, prior));
                        continue;
                    }
                    let racer = match &sh.read {
                        ReadSt::One(e) => (!e.before(c)).then_some(e.pid as usize),
                        ReadSt::Many(v) => (0..nprocs).find(|&q| v.get(q) > c.get(q)),
                    };
                    sh.write = me;
                    sh.read = ReadSt::One(Epoch::NONE);
                    if let Some(prior) = racer {
                        hits.push((w, RaceKind::ReadWrite, prior));
                    }
                }
            }
        }
        for (w, kind, prior) in hits {
            self.record(w, kind, prior, pid, alloc);
        }
    }

    /// Batched equivalent of calling [`RaceDetector::on_read`] once per
    /// access at `base + i*stride` for `i in 0..count`, in order.
    pub fn on_read_run(
        &mut self,
        pid: usize,
        base: Addr,
        stride: u64,
        len: u8,
        count: usize,
        alloc: &GlobalAlloc,
    ) {
        if count == 0 {
            return;
        }
        let (_, span_last) = Self::word_span(base + (count as u64 - 1) * stride, len);
        if span_last as usize >= self.shadow.len() {
            let want = (span_last as usize + 1).next_power_of_two();
            self.shadow.resize(want, Shadow::FRESH);
        }
        let me = self.epoch_of(pid);
        let mut hits: Vec<(u64, usize)> = Vec::new();
        {
            let c = &self.clocks[pid];
            let nprocs = self.nprocs;
            for i in 0..count {
                let (first, last) = Self::word_span(base + i as u64 * stride, len);
                for w in first..=last {
                    let sh = &mut self.shadow[w as usize];
                    // Same-epoch skip: this processor is already the word's
                    // recorded reader in the current epoch. Any intervening
                    // write would have cleared the read state, so the write
                    // epoch is unchanged since the earlier (already checked,
                    // already reported-if-racy) read — a no-op on the
                    // per-word path too.
                    if matches!(&sh.read, ReadSt::One(e) if *e == me) {
                        continue;
                    }
                    let racy = (!sh.write.before(c)).then_some(sh.write.pid as usize);
                    match &mut sh.read {
                        ReadSt::One(e) => {
                            if e.pid as usize == pid || e.before(c) {
                                *e = me;
                            } else {
                                let mut v = VectorClock::new(nprocs);
                                v.0[e.pid as usize] = e.clk;
                                v.0[pid] = me.clk;
                                sh.read = ReadSt::Many(Box::new(v));
                            }
                        }
                        ReadSt::Many(v) => {
                            v.0[pid] = me.clk;
                        }
                    }
                    if let Some(prior) = racy {
                        hits.push((w, prior));
                    }
                }
            }
        }
        for (w, prior) in hits {
            self.record(w, RaceKind::WriteRead, prior, pid, alloc);
        }
    }

    /// Lock `id` granted to `pid`: join the last releaser's clock.
    pub fn on_acquire(&mut self, pid: usize, id: u32) {
        if let Some(rel) = self.lock_rel.get(&id) {
            self.clocks[pid].join(rel);
        }
    }

    /// `pid` releases lock `id`: publish its clock and enter a new epoch.
    pub fn on_release(&mut self, pid: usize, id: u32) {
        self.lock_rel.insert(id, self.clocks[pid].clone());
        self.clocks[pid].tick(pid);
    }

    /// A full-membership rendezvous (barrier, `start_timing`,
    /// `stop_timing`): everyone joins everyone, then each processor enters
    /// a new epoch.
    pub fn on_barrier(&mut self) {
        let mut all = VectorClock::new(self.nprocs);
        for c in &self.clocks {
            all.join(c);
        }
        for (p, c) in self.clocks.iter_mut().enumerate() {
            *c = all.clone();
            c.tick(p);
        }
    }

    /// Total number of distinct racy words detected so far.
    pub fn race_count(&self) -> u64 {
        self.nraces
    }

    /// Consume the detector, returning its retained reports.
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Placement;

    fn alloc_with_label(label: &'static str) -> (GlobalAlloc, Addr) {
        let mut a = GlobalAlloc::new(4);
        let base = a.alloc_labeled(label, 4096, 8, Placement::RoundRobin, 0);
        (a, base)
    }

    #[test]
    fn unordered_writes_race() {
        let (a, base) = alloc_with_label("buf");
        let mut d = RaceDetector::new(2, "unit".into());
        d.on_write(0, base, 8, &a);
        d.on_write(1, base, 8, &a);
        assert_eq!(d.race_count(), 2); // both 4-byte words of the 8-byte store
        let r = &d.reports[0];
        assert_eq!(r.kind, RaceKind::WriteWrite);
        assert_eq!(r.alloc, "buf");
        assert_eq!((r.prior_pid, r.pid), (0, 1));
        assert!(r.to_string().contains("write-write"));
    }

    #[test]
    fn barrier_orders_write_then_read() {
        let (a, base) = alloc_with_label("buf");
        let mut d = RaceDetector::new(2, "unit".into());
        d.on_write(0, base, 8, &a);
        d.on_barrier();
        d.on_read(1, base, 8, &a);
        d.on_write(1, base + 8, 4, &a);
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn unordered_read_after_write_races() {
        let (a, base) = alloc_with_label("buf");
        let mut d = RaceDetector::new(2, "unit".into());
        d.on_write(0, base, 4, &a);
        d.on_read(1, base, 4, &a);
        assert_eq!(d.race_count(), 1);
        assert_eq!(d.reports[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn lock_chain_orders_accesses() {
        let (a, base) = alloc_with_label("counter");
        let mut d = RaceDetector::new(3, "unit".into());
        for pid in 0..3 {
            d.on_acquire(pid, 7);
            d.on_read(pid, base, 8, &a);
            d.on_write(pid, base, 8, &a);
            d.on_release(pid, 7);
        }
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn lock_on_only_one_side_races() {
        let (a, base) = alloc_with_label("counter");
        let mut d = RaceDetector::new(2, "unit".into());
        d.on_acquire(0, 7);
        d.on_write(0, base, 8, &a);
        d.on_release(0, 7);
        // p1 writes without the lock.
        d.on_write(1, base, 8, &a);
        assert_eq!(d.race_count(), 2);
    }

    #[test]
    fn concurrent_reads_do_not_race_and_promote() {
        let (a, base) = alloc_with_label("ro");
        let mut d = RaceDetector::new(4, "unit".into());
        d.on_write(0, base, 4, &a);
        d.on_barrier();
        for pid in 0..4 {
            d.on_read(pid, base, 4, &a);
        }
        assert_eq!(d.race_count(), 0);
        // A later unordered write must see all readers through the
        // promoted read vector clock.
        d.on_write(3, base, 4, &a);
        assert_eq!(d.race_count(), 1);
        assert_eq!(d.reports[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn racy_word_is_reported_once() {
        let (a, base) = alloc_with_label("w");
        let mut d = RaceDetector::new(2, "unit".into());
        for _ in 0..10 {
            d.on_write(0, base, 4, &a);
            d.on_write(1, base, 4, &a);
        }
        assert_eq!(d.race_count(), 1);
        assert_eq!(d.into_reports().len(), 1);
    }

    #[test]
    fn report_cap_keeps_counting() {
        let mut a = GlobalAlloc::new(2);
        let base = a.alloc_labeled("big", 64 * 4096, 8, Placement::RoundRobin, 0);
        let mut d = RaceDetector::new(2, "unit".into());
        for i in 0..(MAX_REPORTS as u64 + 50) {
            d.on_write(0, base + i * 4, 4, &a);
            d.on_write(1, base + i * 4, 4, &a);
        }
        assert_eq!(d.race_count(), MAX_REPORTS as u64 + 50);
        assert_eq!(d.into_reports().len(), MAX_REPORTS);
    }

    #[test]
    fn run_batched_checks_match_per_word_oracle() {
        // Randomized access streams (reads/writes/sync, mixed strides and
        // widths, deliberately racy) fed to two detectors: one through the
        // per-word path, one through the batched run path. Reports, counts,
        // and subsequent behaviour must be identical.
        let mut a = GlobalAlloc::new(4);
        let base = a.alloc_labeled("arena", 256 * 1024, 8, Placement::RoundRobin, 0);
        for seed in 1..6u64 {
            let mut rng = crate::util::XorShift64::new(seed);
            let mut scalar = RaceDetector::new(4, "oracle".into());
            let mut batched = RaceDetector::new(4, "oracle".into());
            for _ in 0..400 {
                let pid = rng.below(4) as usize;
                match rng.below(10) {
                    0 => {
                        let id = rng.below(3) as u32;
                        scalar.on_acquire(pid, id);
                        batched.on_acquire(pid, id);
                    }
                    1 => {
                        let id = rng.below(3) as u32;
                        scalar.on_release(pid, id);
                        batched.on_release(pid, id);
                    }
                    2 => {
                        scalar.on_barrier();
                        batched.on_barrier();
                    }
                    k => {
                        let len: u8 = if rng.below(2) == 0 { 4 } else { 8 };
                        let stride = match rng.below(3) {
                            0 => len as u64,     // contiguous
                            1 => len as u64 * 4, // strided
                            _ => len as u64 - 2, // overlapping word spans
                        };
                        let count = 1 + rng.below(40) as usize;
                        let addr = base + rng.below(1024) * 8;
                        if k % 2 == 0 {
                            for i in 0..count {
                                scalar.on_write(pid, addr + i as u64 * stride, len, &a);
                            }
                            batched.on_write_run(pid, addr, stride, len, count, &a);
                        } else {
                            for i in 0..count {
                                scalar.on_read(pid, addr + i as u64 * stride, len, &a);
                            }
                            batched.on_read_run(pid, addr, stride, len, count, &a);
                        }
                    }
                }
                assert_eq!(scalar.race_count(), batched.race_count(), "seed {seed}");
            }
            assert_eq!(scalar.reports, batched.reports, "seed {seed}");
            assert!(scalar.race_count() > 0, "seed {seed} exercised no races");
        }
    }

    #[test]
    fn vector_clock_join_and_tick() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        assert_eq!(b.get(2), 0);
    }
}
