//! Optimization advisor — diagnostics layer 4+: fuse the sharing profile
//! (page-keyed), the trace/critical-path analysis (edge-keyed) and the
//! interval metrics (interval-keyed) into one label/phase-keyed model, run
//! a rule engine over it, and emit ranked, typed restructuring
//! recommendations with evidence and critpath-derived upper-bound speedups.
//!
//! The paper (§6) restructured each application by hand, reading exactly
//! these diagnostics and inferring the fix; the advisor closes that loop.
//! Each rule maps a telemetry signature onto one of the paper's
//! optimization tiers:
//!
//! | action                  | tier | signature                                       |
//! |-------------------------|------|-------------------------------------------------|
//! | [`Action::PadAllocation`]       | P/A | steady false sharing, or many writers' records crowded into single grains |
//! | [`Action::HomeAlign`]           | DS  | phase-shifting false sharing (padding fixes only one regime) or single-writer pages homed remotely |
//! | [`Action::MigrateHome`]         | DS  | records communicated through by many nodes — shard by owner, home at the owner, route by affinity |
//! | [`Action::SingleWriterHandoff`] | DS  | migratory trajectory: turn-taking whole-page writers |
//! | [`Action::SplitLock`]           | Alg | lock-wait path share with long per-handoff stalls (convoy) |
//! | [`Action::BatchLock`]           | Alg | lock-wait path share from many cheap hand-offs (per-item locking) |
//! | [`Action::RestructureTraversal`]| Alg | a phase dominated by protocol stalls with no single-allocation fix |
//!
//! Everything here is pure post-hoc analysis over a frozen
//! [`RunStats`]: no clocks, buffers or statistics are touched, so the
//! advisor is invisible by construction — it only *reads* reports other
//! layers already produced.

use crate::critpath::{analyze, what_if_edges, CritPath, PathCat, WhatIf};
use crate::metrics::{MetricsReport, PageTrajectory};
use crate::sharing::{SharingClass, SharingProfile};
use crate::stats::RunStats;
use crate::trace::{DepKind, EventKind, RunTrace};
use std::fmt::Write as _;

/// A recommendation must account for at least this fraction of the
/// critical path to be emitted at all.
const MIN_PATH_SHARE: f64 = 0.005;
/// A label's whole-run false-sharing diff fraction above this counts as
/// false-sharing evidence even without interval metrics.
const FALSE_SHARE_MIN: f64 = 0.25;
/// Mean per-handoff lock stall (cycles) above which contention looks like
/// a convoy (split the lock) rather than per-item overhead (batch work).
const CONVOY_STALL_CYCLES: u64 = 4096;
/// A phase is fetch-dominated when protocol stalls exceed this fraction
/// of the phase's critical-path cycles...
const PHASE_PROTOCOL_SHARE: f64 = 0.5;
/// ...and the phase itself carries at least this fraction of the path.
const PHASE_PATH_SHARE: f64 = 0.2;
/// "No single-allocation fix": the best per-label bound in the phase
/// projects less than this speedup.
const SINGLE_FIX_SPEEDUP: f64 = 1.25;
/// Example pages listed per recommendation.
const EVIDENCE_PAGES: usize = 4;

/// The paper's optimization tiers, in application order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// Padding/alignment of allocations (no semantic change).
    PadAlign,
    /// Data-structure reorganization: layout, homes, affinity.
    DataStruct,
    /// Algorithmic restructuring: locking discipline, traversal order.
    Algorithm,
}

impl Family {
    /// All families, in tier order.
    pub const ALL: [Family; 3] = [Family::PadAlign, Family::DataStruct, Family::Algorithm];

    /// The paper's tier label.
    pub fn label(self) -> &'static str {
        match self {
            Family::PadAlign => "P/A",
            Family::DataStruct => "DS",
            Family::Algorithm => "Alg",
        }
    }
}

/// A concrete restructuring transformation the advisor recommends.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Pad and align the label's records to the coherence grain (P/A).
    PadAllocation { label: String },
    /// Reorganize the label so each writer's partition is contiguous,
    /// page-aligned and homed at its writer (DS).
    HomeAlign { label: String },
    /// Shard the label's records by their dominant consumer, home each
    /// shard at that node, and route work by affinity (DS).
    MigrateHome { label: String },
    /// Turn-taking writers: pass whole-structure ownership explicitly
    /// instead of faulting it across (DS).
    SingleWriterHandoff { label: String },
    /// Split one contended lock into finer locks (Alg).
    SplitLock { lock: u64 },
    /// Batch work per acquisition of a cheap, chatty lock (Alg).
    BatchLock { lock: u64 },
    /// Restructure the phase's traversal/partitioning: its protocol
    /// traffic has no single-allocation fix (Alg).
    RestructureTraversal { phase: usize },
}

impl Action {
    /// The optimization tier this transformation belongs to.
    pub fn family(&self) -> Family {
        match self {
            Action::PadAllocation { .. } => Family::PadAlign,
            Action::HomeAlign { .. }
            | Action::MigrateHome { .. }
            | Action::SingleWriterHandoff { .. } => Family::DataStruct,
            Action::SplitLock { .. }
            | Action::BatchLock { .. }
            | Action::RestructureTraversal { .. } => Family::Algorithm,
        }
    }

    /// Stable machine-readable kind tag (also the ranking tiebreak order).
    pub fn kind(&self) -> &'static str {
        match self {
            Action::PadAllocation { .. } => "pad-allocation",
            Action::HomeAlign { .. } => "home-align",
            Action::MigrateHome { .. } => "migrate-home",
            Action::SingleWriterHandoff { .. } => "single-writer-handoff",
            Action::SplitLock { .. } => "split-lock",
            Action::BatchLock { .. } => "batch-lock",
            Action::RestructureTraversal { .. } => "restructure-traversal",
        }
    }

    /// Ranking tiebreak order among actions with equal bounds.
    fn order(&self) -> usize {
        match self {
            Action::PadAllocation { .. } => 0,
            Action::HomeAlign { .. } => 1,
            Action::MigrateHome { .. } => 2,
            Action::SingleWriterHandoff { .. } => 3,
            Action::SplitLock { .. } => 4,
            Action::BatchLock { .. } => 5,
            Action::RestructureTraversal { .. } => 6,
        }
    }

    /// The allocation label the action targets, if any.
    pub fn label(&self) -> Option<&str> {
        match self {
            Action::PadAllocation { label }
            | Action::HomeAlign { label }
            | Action::MigrateHome { label }
            | Action::SingleWriterHandoff { label } => Some(label),
            _ => None,
        }
    }

    /// Human description of the transformation.
    pub fn describe(&self) -> String {
        let name = |l: &str| {
            if l.is_empty() {
                "unlabeled data".to_string()
            } else {
                format!("`{l}`")
            }
        };
        match self {
            Action::PadAllocation { label } => format!(
                "pad and align {} records to the coherence grain",
                name(label)
            ),
            Action::HomeAlign { label } => format!(
                "reorganize {} into contiguous page-aligned per-writer partitions homed at their writers",
                name(label)
            ),
            Action::MigrateHome { label } => format!(
                "shard {} by owner, home each shard at its owner, route work by affinity",
                name(label)
            ),
            Action::SingleWriterHandoff { label } => format!(
                "hand {} off between its turn-taking writers instead of faulting whole pages across",
                name(label)
            ),
            Action::SplitLock { lock } => {
                format!("split lock {lock} into finer-grained locks")
            }
            Action::BatchLock { lock } => {
                format!("batch work per acquisition of lock {lock}")
            }
            Action::RestructureTraversal { phase } => {
                format!("restructure the traversal/partitioning of phase {phase}")
            }
        }
    }
}

/// How urgent a recommendation is, from its critical-path share.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Under 2% of the critical path.
    Low,
    /// 2–10% of the critical path.
    Moderate,
    /// 10–25% of the critical path.
    High,
    /// Over 25% of the critical path.
    Critical,
}

impl Severity {
    /// Severity from a critical-path share in `[0, 1]`.
    pub fn of_share(share: f64) -> Severity {
        if share >= 0.25 {
            Severity::Critical
        } else if share >= 0.10 {
            Severity::High
        } else if share >= 0.02 {
            Severity::Moderate
        } else {
            Severity::Low
        }
    }

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Moderate => "moderate",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }
}

/// The telemetry a recommendation rests on, fused from the three layers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Evidence {
    /// Example page bases (hottest first, capped).
    pub pages: Vec<u64>,
    /// Phases whose critical-path segments touch the target, ascending.
    pub phases: Vec<usize>,
    /// Interval-metrics trajectory of the target label, if metrics ran.
    pub trajectory: Option<PageTrajectory>,
    /// Whole-run false-sharing diff fraction, if the sharing profile ran.
    pub false_share: Option<f64>,
    /// Distinct writer nodes over the target's pages.
    pub writers: u64,
    /// Lock hand-offs observed (lock rules; from metrics when present,
    /// else critical-path stall count).
    pub handoffs: u64,
    /// Human-readable facts, one per line, in layer order.
    pub notes: Vec<String>,
}

/// One ranked, typed restructuring recommendation.
#[derive(Clone, Debug, PartialEq)]
pub struct Recommendation {
    /// The transformation to apply.
    pub action: Action,
    /// The paper tier it belongs to.
    pub family: Family,
    /// Urgency, from the target's critical-path share.
    pub severity: Severity,
    /// Critical-path cycles attributed to the target.
    pub path_cycles: u64,
    /// `path_cycles / total path` (0 when the trace layer is absent).
    pub path_share: f64,
    /// Projected end-to-end time with the target's stalls zeroed.
    pub projected: u64,
    /// Upper-bound speedup `end / projected` (always `>= 1.0`).
    pub speedup: f64,
    /// What the bound rests on.
    pub evidence: Evidence,
}

/// The combined upper bound for applying one whole tier of
/// recommendations at once (the union of their what-if targets).
#[derive(Clone, Debug, PartialEq)]
pub struct FamilyBound {
    /// The tier.
    pub family: Family,
    /// Number of recommendations in the tier.
    pub recs: usize,
    /// Critical-path cycles attributed to the union of targets.
    pub path_cycles: u64,
    /// Projected end-to-end time with every member target zeroed.
    pub projected: u64,
    /// Upper-bound speedup `end / projected`; dominates every member's
    /// individual bound because the union zeroes a superset of edges.
    pub speedup: f64,
}

/// The advisor's ranked report for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct AdvisorReport {
    /// The run label (from the trace when present).
    pub label: String,
    /// End-to-end virtual time the bounds are relative to.
    pub end: u64,
    /// Whether the sharing-profile layer was present.
    pub has_sharing: bool,
    /// Whether the trace layer was present (bounds require it).
    pub has_trace: bool,
    /// Whether the interval-metrics layer was present.
    pub has_metrics: bool,
    /// Recommendations, best projected speedup first.
    pub recs: Vec<Recommendation>,
    /// Per-tier union bounds, tier order; only tiers with members.
    pub families: Vec<FamilyBound>,
}

// ---------------------------------------------------------------------------
// The label/phase-keyed join model.

/// Everything the three layers know about one allocation label.
#[derive(Default)]
struct LabelJoin {
    // Trace/critpath layer.
    fetch_cycles: u64,
    diff_cycles: u64,
    miss_cycles: u64,
    phases: Vec<usize>,
    // Sharing layer.
    sharing_pages: u64,
    false_pages: u64,
    true_pages: u64,
    multi_writer_pages: u64,
    false_share: Option<f64>,
    diff_words: u64,
    fetches: u64,
    hot_pages: Vec<(u64, u64)>, // (traffic, page_base)
    writers: Vec<u16>,
    overlap: bool,
    // Metrics layer.
    trajectory: Option<PageTrajectory>,
    // Geometry (trace allocation spans).
    bytes: u64,
}

impl LabelJoin {
    fn path_cycles(&self) -> u64 {
        self.fetch_cycles + self.diff_cycles + self.miss_cycles
    }

    fn add_writer(&mut self, w: u16) {
        if let Err(i) = self.writers.binary_search(&w) {
            self.writers.insert(i, w);
        }
    }

    fn evidence_pages(&self) -> Vec<u64> {
        let mut hot = self.hot_pages.clone();
        hot.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        hot.truncate(EVIDENCE_PAGES);
        let mut pages: Vec<u64> = hot.into_iter().map(|(_, p)| p).collect();
        pages.sort_unstable();
        pages
    }
}

/// Per-processor `(begin_ts, phase)` timelines from the trace events.
fn phase_timelines(tr: &RunTrace) -> Vec<Vec<(u64, usize)>> {
    tr.procs
        .iter()
        .map(|p| {
            p.events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::PhaseBegin { phase } => Some((e.ts, phase)),
                    _ => None,
                })
                .collect()
        })
        .collect()
}

/// The phase active on one timeline at time `t` (0 before any begin).
fn phase_at(tl: &[(u64, usize)], t: u64) -> usize {
    match tl.partition_point(|&(ts, _)| ts <= t) {
        0 => 0,
        i => tl[i - 1].1,
    }
}

fn push_sorted(v: &mut Vec<usize>, x: usize) {
    if let Err(i) = v.binary_search(&x) {
        v.insert(i, x);
    }
}

/// Join the three reports into per-label entries, keyed by label in
/// first-seen-by-the-critical-path order, then sharing order, then
/// metrics order (deterministic: all three sources are themselves
/// deterministically ordered).
fn join_labels(
    sharing: Option<&SharingProfile>,
    trace: Option<&(&RunTrace, CritPath)>,
    metrics: Option<&MetricsReport>,
) -> Vec<(String, LabelJoin)> {
    let mut out: Vec<(String, LabelJoin)> = Vec::new();
    fn entry<'a>(out: &'a mut Vec<(String, LabelJoin)>, label: &str) -> &'a mut LabelJoin {
        if let Some(i) = out.iter().position(|(l, _)| l == label) {
            return &mut out[i].1;
        }
        out.push((label.to_string(), LabelJoin::default()));
        &mut out.last_mut().unwrap().1
    }

    if let Some((tr, cp)) = trace {
        for r in &cp.resources {
            if let WhatIf::Label(lbl) = &r.target {
                let e = entry(&mut out, lbl);
                match r.cat {
                    PathCat::PageFetch => e.fetch_cycles += r.cycles,
                    PathCat::Diff => e.diff_cycles += r.cycles,
                    PathCat::RemoteMiss => e.miss_cycles += r.cycles,
                    _ => {}
                }
            }
        }
        let timelines = phase_timelines(tr);
        for s in &cp.steps {
            let Some(ei) = s.edge else { continue };
            let page = match tr.edges[ei].kind {
                DepKind::PageFetch { page, .. } => page,
                DepKind::Diff { page } => page,
                DepKind::RemoteMiss { line } => line,
                _ => continue,
            };
            let lbl = tr.label_of(page).to_string();
            let phase = timelines
                .get(s.pid)
                .map(|tl| phase_at(tl, s.t0))
                .unwrap_or(0);
            push_sorted(&mut entry(&mut out, &lbl).phases, phase);
        }
        for a in &tr.allocs {
            entry(&mut out, a.label).bytes += a.last - a.first + 1;
        }
    }

    if let Some(sp) = sharing {
        for ls in sp.labels() {
            let e = entry(&mut out, ls.label);
            e.sharing_pages = ls.pages;
            e.false_pages = ls.false_pages;
            e.true_pages = ls.true_pages;
            e.false_share = Some(ls.false_share());
            e.diff_words = ls.diff_words;
            e.fetches = ls.fetches;
        }
        for pg in &sp.pages {
            let e = entry(&mut out, pg.label);
            if pg.writers.len() >= 2 {
                e.multi_writer_pages += 1;
            }
            for &w in &pg.writers {
                e.add_writer(w as u16);
            }
            e.hot_pages
                .push((pg.diff_words.max(pg.fetches), pg.page_base));
            if matches!(pg.class, SharingClass::TrueSharing) {
                e.overlap = true;
            }
        }
    }

    if let Some(m) = metrics {
        for pg in &m.pages {
            let e = entry(&mut out, pg.label);
            for &w in &pg.writers {
                e.add_writer(w);
            }
            if pg.overlap {
                e.overlap = true;
            }
            if e.hot_pages.iter().all(|&(_, p)| p != pg.page_base) {
                e.hot_pages
                    .push((pg.total_diff_words().max(pg.total_fetches()), pg.page_base));
            }
        }
        let labels: Vec<String> = out.iter().map(|(l, _)| l.clone()).collect();
        for lbl in labels {
            let t = m.label_trajectory(&lbl);
            entry(&mut out, &lbl).trajectory = t;
        }
    }

    out
}

// ---------------------------------------------------------------------------
// The rule engine.

/// What a recommendation's bound zeroes: either a real what-if target, or
/// the protocol stalls landing in one phase.
enum BoundTarget {
    Target(WhatIf),
    PhaseProtocol(usize),
}

/// Run the advisor on a finished run. Tolerates missing layers — the
/// report records which were present — but bounds (and most rules) need
/// the trace; with no layers at all the report is empty.
pub fn advise(stats: &RunStats) -> AdvisorReport {
    let trace = stats.trace.as_ref();
    let cp = trace.map(analyze);
    let end = trace
        .map(|t| t.end())
        .unwrap_or_else(|| stats.total_cycles());
    let total_path = cp.as_ref().map(|c| c.total).unwrap_or(0);
    let tr_cp = match (trace, cp.as_ref()) {
        (Some(t), Some(c)) => Some((t, c.clone())),
        _ => None,
    };
    let joined = join_labels(
        stats.sharing.as_ref(),
        tr_cp.as_ref(),
        stats.metrics.as_ref(),
    );

    let share = |cycles: u64| {
        if total_path == 0 {
            0.0
        } else {
            cycles as f64 / total_path as f64
        }
    };

    let mut pending: Vec<(Action, u64, BoundTarget, Evidence)> = Vec::new();

    // --- Label rules -------------------------------------------------------
    for (label, j) in &joined {
        let cycles = j.path_cycles();
        let significant = if total_path > 0 {
            share(cycles) >= MIN_PATH_SHARE
        } else {
            // No trace: fall back to raw traffic presence.
            j.diff_words + j.fetches > 0
        };
        if !significant {
            continue;
        }

        let mut ev = Evidence {
            pages: j.evidence_pages(),
            phases: j.phases.clone(),
            trajectory: j.trajectory,
            false_share: j.false_share,
            writers: j.writers.len() as u64,
            ..Evidence::default()
        };
        let name = if label.is_empty() { "unlabeled" } else { label };
        if cycles > 0 {
            ev.notes.push(format!(
                "critpath: {} protocol cycles on `{name}` ({:.1}% of path; fetch {}, diff {}, miss {})",
                cycles,
                100.0 * share(cycles),
                j.fetch_cycles,
                j.diff_cycles,
                j.miss_cycles
            ));
        }
        if j.sharing_pages > 0 {
            ev.notes.push(format!(
                "sharing: {} active pages ({} false, {} true, {} multi-writer), {} writers, false-share {:.0}%",
                j.sharing_pages,
                j.false_pages,
                j.true_pages,
                j.multi_writer_pages,
                j.writers.len(),
                100.0 * j.false_share.unwrap_or(0.0)
            ));
        }
        if let Some(t) = j.trajectory {
            ev.notes
                .push(format!("metrics: dominant trajectory {}", t.label()));
        }

        let false_evidence = j.trajectory == Some(PageTrajectory::SteadyFalse)
            || (j.false_share.unwrap_or(0.0) >= FALSE_SHARE_MIN && j.false_pages >= 1);
        // Many writers' records packed into fewer grains than writers:
        // padding can give each record its own grain.
        let crowded = j.writers.len() >= 2
            && j.bytes > 0
            && (j.bytes / j.writers.len() as u64) < crate::PAGE_SIZE;
        let concurrent_multi =
            j.multi_writer_pages > 0 || matches!(j.trajectory, Some(PageTrajectory::SteadyTrue));

        let target = BoundTarget::Target(WhatIf::Label(label.clone()));
        let action = match j.trajectory {
            Some(PageTrajectory::Migratory) => {
                ev.notes.push(
                    "writers take turns rewriting whole pages: ownership migrates".to_string(),
                );
                Some(Action::SingleWriterHandoff {
                    label: label.clone(),
                })
            }
            Some(PageTrajectory::PhaseShifting) => {
                ev.notes.push(
                    "sharing regime shifts between single-writer and concurrent intervals: \
                     padding fixes only one regime"
                        .to_string(),
                );
                Some(Action::HomeAlign {
                    label: label.clone(),
                })
            }
            _ if false_evidence => {
                ev.notes
                    .push("concurrent writers touch disjoint words of the same grain".to_string());
                Some(Action::PadAllocation {
                    label: label.clone(),
                })
            }
            _ if crowded && concurrent_multi => {
                ev.notes.push(format!(
                    "{} bytes across {} writers: many records share one coherence grain",
                    j.bytes,
                    j.writers.len()
                ));
                Some(Action::PadAllocation {
                    label: label.clone(),
                })
            }
            Some(PageTrajectory::SingleWriter)
            | Some(PageTrajectory::ReadShared)
            | Some(PageTrajectory::SteadyTrue)
            | None
                if j.writers.len() <= 1 && cycles > 0 =>
            {
                ev.notes.push(
                    "at most one writer, still paying remote traffic: the home is misplaced"
                        .to_string(),
                );
                Some(Action::HomeAlign {
                    label: label.clone(),
                })
            }
            _ if cycles > 0 => {
                ev.notes
                    .push("fetch-dominated label with writers spread across nodes".to_string());
                Some(Action::MigrateHome {
                    label: label.clone(),
                })
            }
            _ => None,
        };

        let primary_is_pad = matches!(action, Some(Action::PadAllocation { .. }));
        if let Some(a) = action {
            pending.push((a, cycles, target, ev.clone()));
        }
        // Padding fixes grain amplification, but records genuinely
        // communicated through by many nodes (word overlap / true
        // sharing) also want affinity homes: the DS tier.
        if primary_is_pad && j.overlap && j.fetch_cycles > 0 {
            let mut ev2 = ev.clone();
            ev2.notes.push(
                "writers overlap on the same words: padding alone keeps the communication; \
                 shard records by owner and route work by affinity"
                    .to_string(),
            );
            pending.push((
                Action::MigrateHome {
                    label: label.clone(),
                },
                cycles,
                BoundTarget::Target(WhatIf::Label(label.clone())),
                ev2,
            ));
        }
    }

    // --- Lock rules --------------------------------------------------------
    if let Some((tr, cp)) = &tr_cp {
        // The critical path only carries the cross-processor *lag* of each
        // handoff; the convoy-vs-chatter call needs the full wait
        // durations, which every recorded handoff edge carries.
        struct LockWaits {
            lock: u64,
            stalls: u64,
            cycles: u64,
            first_grant: u64,
            last_grant: u64,
        }
        let mut waits: Vec<LockWaits> = Vec::new();
        for e in &tr.edges {
            if let DepKind::LockHandoff { lock } = e.kind {
                match waits.iter_mut().find(|w| w.lock == lock) {
                    Some(w) => {
                        w.stalls += 1;
                        w.cycles += e.t1 - e.t0;
                        w.first_grant = w.first_grant.min(e.t1);
                        w.last_grant = w.last_grant.max(e.t1);
                    }
                    None => waits.push(LockWaits {
                        lock,
                        stalls: 1,
                        cycles: e.t1 - e.t0,
                        first_grant: e.t1,
                        last_grant: e.t1,
                    }),
                }
            }
        }
        for r in &cp.resources {
            let WhatIf::Lock(lock) = r.target else {
                continue;
            };
            if share(r.cycles) < MIN_PATH_SHARE {
                continue;
            }
            let handoffs = stats
                .metrics
                .as_ref()
                .and_then(|m| m.locks.iter().find(|l| l.lock as u64 == lock))
                .map(|l| l.total())
                .unwrap_or(r.count);
            let w = waits.iter().find(|w| w.lock == lock);
            let (stalls, wait_cycles) = w
                .map(|w| (w.stalls, w.cycles))
                .unwrap_or((r.count, r.cycles));
            let mean_wait = wait_cycles / stalls.max(1);
            // Under saturation queueing inflates every wait, cheap holds
            // included; the spacing of consecutive grants estimates the
            // true per-service (hold + transfer) time instead. Take the
            // smaller of the two as the effective service estimate.
            let mean_gap = match w {
                Some(w) if w.stalls >= 2 => (w.last_grant - w.first_grant) / (w.stalls - 1),
                _ => mean_wait,
            };
            let service = mean_wait.min(mean_gap);
            let mut ev = Evidence {
                handoffs,
                ..Evidence::default()
            };
            ev.notes.push(format!(
                "critpath: {} lock-wait cycles on lock {lock} ({:.1}% of path); \
                 {} waits of mean {} cycles, ~{} cycles per service",
                r.cycles,
                100.0 * share(r.cycles),
                stalls,
                mean_wait,
                service
            ));
            let action = if service >= CONVOY_STALL_CYCLES {
                ev.notes
                    .push("long per-handoff waits: holders convoy behind one lock".to_string());
                Action::SplitLock { lock }
            } else {
                ev.notes.push(format!(
                    "{handoffs} cheap hand-offs: per-item locking overhead dominates"
                ));
                Action::BatchLock { lock }
            };
            pending.push((
                action,
                r.cycles,
                BoundTarget::Target(WhatIf::Lock(lock)),
                ev,
            ));
        }
    }

    // --- Phase rule --------------------------------------------------------
    if let Some((tr, cp)) = &tr_cp {
        for (phase, cats) in &cp.by_phase {
            let phase_total: u64 = cats.iter().sum();
            let protocol = cats[PathCat::PageFetch.index()]
                + cats[PathCat::Diff.index()]
                + cats[PathCat::RemoteMiss.index()];
            if share(phase_total) < PHASE_PATH_SHARE
                || (protocol as f64) < PHASE_PROTOCOL_SHARE * phase_total as f64
            {
                continue;
            }
            // Is there a single-allocation fix? Check the best per-label
            // bound among labels whose path segments touch this phase.
            let best_label_speedup = joined
                .iter()
                .filter(|(_, j)| j.phases.contains(phase))
                .map(|(l, _)| what_if_edges(tr, |e| WhatIf::Label(l.clone()).matches(tr, e)))
                .map(|proj| end as f64 / proj.max(1) as f64)
                .fold(1.0f64, f64::max);
            if best_label_speedup >= SINGLE_FIX_SPEEDUP {
                continue;
            }
            let mut ev = Evidence {
                phases: vec![*phase],
                ..Evidence::default()
            };
            ev.notes.push(format!(
                "critpath: phase `{}` is {:.0}% protocol stalls ({:.1}% of the whole path) \
                 with best single-label bound only {:.2}x",
                tr.phase_name(*phase),
                100.0 * protocol as f64 / phase_total.max(1) as f64,
                100.0 * share(phase_total),
                best_label_speedup
            ));
            ev.notes.push(
                "no one allocation dominates: the traversal itself communicates too much"
                    .to_string(),
            );
            pending.push((
                Action::RestructureTraversal { phase: *phase },
                protocol,
                BoundTarget::PhaseProtocol(*phase),
                ev,
            ));
        }
    }

    // --- Bounds, ranking, family aggregation -------------------------------
    let timelines = tr_cp.as_ref().map(|(tr, _)| phase_timelines(tr));
    let project = |bt: &BoundTarget| -> u64 {
        let Some((tr, _)) = &tr_cp else { return end };
        match bt {
            BoundTarget::Target(w) => what_if_edges(tr, |e| w.matches(tr, e)),
            BoundTarget::PhaseProtocol(phase) => {
                let tls = timelines.as_ref().unwrap();
                what_if_edges(tr, |e| {
                    matches!(
                        PathCat::of(&e.kind),
                        PathCat::PageFetch | PathCat::Diff | PathCat::RemoteMiss
                    ) && tls
                        .get(e.dst)
                        .map(|tl| phase_at(tl, e.t0) == *phase)
                        .unwrap_or(false)
                })
            }
        }
    };

    let mut recs: Vec<(Recommendation, BoundTarget)> = pending
        .into_iter()
        .map(|(action, path_cycles, bt, evidence)| {
            let projected = project(&bt);
            let speedup = end as f64 / projected.max(1) as f64;
            let path_share = share(path_cycles);
            (
                Recommendation {
                    family: action.family(),
                    severity: Severity::of_share(path_share),
                    action,
                    path_cycles,
                    path_share,
                    projected,
                    speedup,
                    evidence,
                },
                bt,
            )
        })
        .collect();
    recs.sort_by(|(a, _), (b, _)| {
        b.speedup
            .total_cmp(&a.speedup)
            .then(b.path_cycles.cmp(&a.path_cycles))
            .then(a.action.order().cmp(&b.action.order()))
            .then(a.action.describe().cmp(&b.action.describe()))
    });

    let mut families: Vec<FamilyBound> = Vec::new();
    for fam in Family::ALL {
        let members: Vec<&(Recommendation, BoundTarget)> =
            recs.iter().filter(|(r, _)| r.family == fam).collect();
        if members.is_empty() {
            continue;
        }
        let projected = match &tr_cp {
            Some((tr, _)) => {
                let tls = timelines.as_ref().unwrap();
                what_if_edges(tr, |e| {
                    members.iter().any(|(_, bt)| match bt {
                        BoundTarget::Target(w) => w.matches(tr, e),
                        BoundTarget::PhaseProtocol(phase) => {
                            matches!(
                                PathCat::of(&e.kind),
                                PathCat::PageFetch | PathCat::Diff | PathCat::RemoteMiss
                            ) && tls
                                .get(e.dst)
                                .map(|tl| phase_at(tl, e.t0) == *phase)
                                .unwrap_or(false)
                        }
                    })
                })
            }
            None => end,
        };
        // Distinct targets only: two recs on one label share the cycles.
        let mut seen: Vec<&BoundTarget> = Vec::new();
        let mut path_cycles = 0u64;
        for (r, bt) in &recs {
            if r.family != fam {
                continue;
            }
            let dup = seen.iter().any(|s| match (s, bt) {
                (BoundTarget::Target(a), BoundTarget::Target(b)) => a == b,
                (BoundTarget::PhaseProtocol(a), BoundTarget::PhaseProtocol(b)) => a == b,
                _ => false,
            });
            if !dup {
                path_cycles += r.path_cycles;
                seen.push(bt);
            }
        }
        families.push(FamilyBound {
            family: fam,
            recs: members.len(),
            path_cycles,
            projected,
            speedup: end as f64 / projected.max(1) as f64,
        });
    }

    AdvisorReport {
        label: trace.map(|t| t.label.clone()).unwrap_or_default(),
        end,
        has_sharing: stats.sharing.is_some(),
        has_trace: trace.is_some(),
        has_metrics: stats.metrics.is_some(),
        recs: recs.into_iter().map(|(r, _)| r).collect(),
        families,
    }
}

// ---------------------------------------------------------------------------
// Rendering.

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl AdvisorReport {
    /// The tier of the top-ranked recommendation — the advisor's answer to
    /// "which class should this application move to next?".
    pub fn next_family(&self) -> Option<Family> {
        self.recs.first().map(|r| r.family)
    }

    /// All recommendations targeting one allocation label.
    pub fn for_label(&self, label: &str) -> Vec<&Recommendation> {
        self.recs
            .iter()
            .filter(|r| r.action.label() == Some(label))
            .collect()
    }

    /// The union bound for one tier, if any of its rules fired.
    pub fn family(&self, fam: Family) -> Option<&FamilyBound> {
        self.families.iter().find(|f| f.family == fam)
    }

    /// Human-readable ranked report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let layers = [
            ("sharing", self.has_sharing),
            ("trace/critpath", self.has_trace),
            ("metrics", self.has_metrics),
        ]
        .iter()
        .filter(|(_, on)| *on)
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(" + ");
        let _ = writeln!(
            out,
            "advisor [{}]: {} recommendations from {} over {} cycles",
            self.label,
            self.recs.len(),
            if layers.is_empty() {
                "no layers"
            } else {
                &layers
            },
            self.end
        );
        if self.recs.is_empty() {
            let _ = writeln!(out, "  nothing to recommend: the run looks healthy");
            return out;
        }
        for (i, r) in self.recs.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<2} [{}] {:<8} {:>6.2}x bound  {:>5.1}% path  {}",
                i + 1,
                r.family.label(),
                r.severity.label(),
                r.speedup,
                100.0 * r.path_share,
                r.action.describe()
            );
            for n in &r.evidence.notes {
                let _ = writeln!(out, "        - {n}");
            }
            if !r.evidence.pages.is_empty() {
                let pages = r
                    .evidence
                    .pages
                    .iter()
                    .map(|p| format!("{p:#x}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "        - example pages: {pages}");
            }
            if !r.evidence.phases.is_empty() {
                let phases = r
                    .evidence
                    .phases
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "        - phases touched: {phases}");
            }
        }
        let _ = writeln!(out, "  combined per-tier bounds:");
        for f in &self.families {
            let _ = writeln!(
                out,
                "    {:<4} {:>2} recs  {:>6.2}x bound  ({} -> {} cycles)",
                f.family.label(),
                f.recs,
                f.speedup,
                self.end,
                f.projected
            );
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; byte-deterministic for a given
    /// report).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&self.label));
        let _ = writeln!(out, "  \"end\": {},", self.end);
        let _ = writeln!(
            out,
            "  \"layers\": {{\"sharing\": {}, \"trace\": {}, \"metrics\": {}}},",
            self.has_sharing, self.has_trace, self.has_metrics
        );
        out.push_str("  \"recommendations\": [");
        for (i, r) in self.recs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {");
            let _ = write!(
                out,
                "\"kind\": \"{}\", \"family\": \"{}\", \"severity\": \"{}\", ",
                r.action.kind(),
                r.family.label(),
                r.severity.label()
            );
            match &r.action {
                Action::SplitLock { lock } | Action::BatchLock { lock } => {
                    let _ = write!(out, "\"lock\": {lock}, ");
                }
                Action::RestructureTraversal { phase } => {
                    let _ = write!(out, "\"phase\": {phase}, ");
                }
                a => {
                    let _ = write!(
                        out,
                        "\"target\": \"{}\", ",
                        json_escape(a.label().unwrap_or(""))
                    );
                }
            }
            let _ = write!(
                out,
                "\"path_cycles\": {}, \"path_share\": {:.6}, \"projected\": {}, \"speedup\": {:.4}, ",
                r.path_cycles, r.path_share, r.projected, r.speedup
            );
            let _ = write!(
                out,
                "\"describe\": \"{}\", ",
                json_escape(&r.action.describe())
            );
            let pages = r
                .evidence
                .pages
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let phases = r
                .evidence
                .phases
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let notes = r
                .evidence
                .notes
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "\"evidence\": {{\"pages\": [{pages}], \"phases\": [{phases}], \
                 \"writers\": {}, \"handoffs\": {}, ",
                r.evidence.writers, r.evidence.handoffs
            );
            match r.evidence.trajectory {
                Some(t) => {
                    let _ = write!(out, "\"trajectory\": \"{}\", ", t.label());
                }
                None => out.push_str("\"trajectory\": null, "),
            }
            match r.evidence.false_share {
                Some(f) => {
                    let _ = write!(out, "\"false_share\": {f:.4}, ");
                }
                None => out.push_str("\"false_share\": null, "),
            }
            let _ = write!(out, "\"notes\": [{notes}]}}}}");
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"families\": [");
        for (i, f) in self.families.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"family\": \"{}\", \"recs\": {}, \"path_cycles\": {}, \
                 \"projected\": {}, \"speedup\": {:.4}}}",
                f.family.label(),
                f.recs,
                f.path_cycles,
                f.projected,
                f.speedup
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_thresholds() {
        assert_eq!(Severity::of_share(0.30), Severity::Critical);
        assert_eq!(Severity::of_share(0.15), Severity::High);
        assert_eq!(Severity::of_share(0.05), Severity::Moderate);
        assert_eq!(Severity::of_share(0.001), Severity::Low);
    }

    #[test]
    fn families_are_stable() {
        assert_eq!(
            Action::PadAllocation { label: "x".into() }.family(),
            Family::PadAlign
        );
        assert_eq!(
            Action::MigrateHome { label: "x".into() }.family(),
            Family::DataStruct
        );
        assert_eq!(Action::SplitLock { lock: 0 }.family(), Family::Algorithm);
        assert_eq!(
            Action::RestructureTraversal { phase: 1 }.family(),
            Family::Algorithm
        );
    }

    #[test]
    fn empty_stats_give_empty_report() {
        let stats = RunStats {
            procs: Vec::new(),
            clocks: Vec::new(),
            races: Vec::new(),
            sharing: None,
            trace: None,
            metrics: None,
            phase_names: Vec::new(),
        };
        let rep = advise(&stats);
        assert!(rep.recs.is_empty());
        assert!(!rep.has_sharing && !rep.has_trace && !rep.has_metrics);
        assert!(rep.report().contains("nothing to recommend"));
    }
}
