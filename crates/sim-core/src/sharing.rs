//! Per-page sharing profiles: the paper's diagnostic for *why* restructuring
//! helps on SVM.
//!
//! Page-grained coherence turns word-disjoint writes into false sharing; the
//! paper attributes diff/fetch/invalidation traffic to data structures before
//! and after each P/A, DS and Alg transformation to show which structure each
//! restructuring fixed. [`SharingProfile`] is that attribution: per protocol
//! page, the traffic counters, the writer/reader sets, and a true-vs-false
//! sharing classification computed from word-granularity write footprints —
//! two nodes diffing *disjoint* word sets of the same page is pure false
//! sharing (the race detector proves it is not a race; here it is surfaced
//! as cost, not error).
//!
//! Profiles are produced by the page-based platforms (`svm-hlrc`, `lrc-tmk`)
//! when a run is configured with
//! [`RunConfig::with_sharing_profile`](crate::RunConfig::with_sharing_profile),
//! and attached to [`RunStats::sharing`](crate::RunStats). The profiler never
//! charges cycles: statistics are bit-identical with it on or off.

/// How a page was shared during the profiled region, judged from the
/// word-granularity write footprints of the diffs it generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SharingClass {
    /// No node ever diffed the page: read-only (or home-write-only) traffic.
    ReadShared,
    /// Exactly one node diffed the page: migratory/private traffic; any cost
    /// is placement, not sharing.
    SingleWriter,
    /// Two or more nodes diffed **disjoint** word sets: all coherence traffic
    /// on this page is an artifact of page granularity.
    FalseSharing,
    /// Two or more nodes diffed at least one common word: the processors
    /// genuinely communicate through this page.
    TrueSharing,
}

impl SharingClass {
    /// Short label used by reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SharingClass::ReadShared => "read-shared",
            SharingClass::SingleWriter => "single-writer",
            SharingClass::FalseSharing => "false-sharing",
            SharingClass::TrueSharing => "true-sharing",
        }
    }
}

/// Sharing record for one protocol page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSharing {
    /// First byte address of the page.
    pub page_base: u64,
    /// Label of the allocation containing the page (see
    /// `Proc::alloc_shared_labeled`); empty if unlabeled.
    pub label: &'static str,
    /// Remote page fetches (faults served over the wire).
    pub fetches: u64,
    /// Total 4-byte words carried by diffs of this page.
    pub diff_words: u64,
    /// Total contiguous runs across those diffs (scattered diffs cost more
    /// wire per word).
    pub diff_runs: u64,
    /// Bytes this page moved over the interconnect (pages + diffs + control).
    pub wire_bytes: u64,
    /// Write-notice invalidations applied to copies of this page.
    pub invalidations: u64,
    /// Nodes that diffed the page, ascending.
    pub writers: Vec<u32>,
    /// Nodes that fetched the page, ascending.
    pub readers: Vec<u32>,
    /// True/false sharing classification.
    pub class: SharingClass,
}

/// Per-allocation-label aggregate of [`PageSharing`] records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelSharing {
    /// The allocation label ("" for unlabeled allocations).
    pub label: &'static str,
    /// Pages of this label that saw protocol activity.
    pub pages: u64,
    /// Pages classified [`SharingClass::FalseSharing`].
    pub false_pages: u64,
    /// Pages classified [`SharingClass::TrueSharing`].
    pub true_pages: u64,
    /// Sum of fetches over the label's pages.
    pub fetches: u64,
    /// Sum of diff words over the label's pages.
    pub diff_words: u64,
    /// Diff words on pages classified as pure false sharing.
    pub false_diff_words: u64,
    /// Diff words on pages classified as true sharing.
    pub true_diff_words: u64,
    /// Sum of wire bytes over the label's pages.
    pub wire_bytes: u64,
    /// Sum of invalidations over the label's pages.
    pub invalidations: u64,
}

impl LabelSharing {
    /// Fraction of this label's diff traffic that is pure false sharing
    /// (0.0 when the label produced no diffs).
    pub fn false_share(&self) -> f64 {
        if self.diff_words == 0 {
            0.0
        } else {
            self.false_diff_words as f64 / self.diff_words as f64
        }
    }
}

/// The complete sharing profile of one run on a page-based platform.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharingProfile {
    /// Protocol page size in bytes.
    pub page_bytes: u64,
    /// One record per page with protocol activity, ascending by address.
    pub pages: Vec<PageSharing>,
}

impl SharingProfile {
    /// Aggregate the profile by allocation label, hottest (most diff words,
    /// then most wire bytes) first.
    pub fn labels(&self) -> Vec<LabelSharing> {
        let mut agg: Vec<LabelSharing> = Vec::new();
        for p in &self.pages {
            let e = match agg.iter_mut().find(|l| l.label == p.label) {
                Some(e) => e,
                None => {
                    agg.push(LabelSharing {
                        label: p.label,
                        ..LabelSharing::default()
                    });
                    agg.last_mut().unwrap()
                }
            };
            e.pages += 1;
            e.fetches += p.fetches;
            e.diff_words += p.diff_words;
            e.wire_bytes += p.wire_bytes;
            e.invalidations += p.invalidations;
            match p.class {
                SharingClass::FalseSharing => {
                    e.false_pages += 1;
                    e.false_diff_words += p.diff_words;
                }
                SharingClass::TrueSharing => {
                    e.true_pages += 1;
                    e.true_diff_words += p.diff_words;
                }
                _ => {}
            }
        }
        agg.sort_by(|a, b| {
            (b.diff_words, b.wire_bytes, a.label).cmp(&(a.diff_words, a.wire_bytes, b.label))
        });
        agg
    }

    /// The aggregate for one label, if any of its pages saw activity.
    pub fn label(&self, label: &str) -> Option<LabelSharing> {
        self.labels().into_iter().find(|l| l.label == label)
    }

    /// Total diff words across all pages.
    pub fn total_diff_words(&self) -> u64 {
        self.pages.iter().map(|p| p.diff_words).sum()
    }

    /// Human-readable report: hottest pages by wire traffic, then the
    /// per-label true/false-sharing table.
    pub fn report(&self) -> String {
        let mut s = format!(
            "sharing profile: {} active pages of {} bytes\n",
            self.pages.len(),
            self.page_bytes
        );
        let mut hot: Vec<&PageSharing> = self.pages.iter().collect();
        hot.sort_by_key(|p| (std::cmp::Reverse(p.wire_bytes), p.page_base));
        s.push_str(
            "hottest pages by wire bytes:\n      page_base label                 class  wire_B  fetches  diff_wd  invals  writers\n",
        );
        for p in hot.iter().take(16) {
            s.push_str(&format!(
                "{:#014x} {:<16} {:>13} {:>7} {:>8} {:>8} {:>7}  {:?}\n",
                p.page_base,
                if p.label.is_empty() { "-" } else { p.label },
                p.class.label(),
                p.wire_bytes,
                p.fetches,
                p.diff_words,
                p.invalidations,
                p.writers,
            ));
        }
        s.push_str(
            "by allocation label:\nlabel                 pages  false  true  fetches  diff_wd  false_wd  false%   wire_B\n",
        );
        for l in self.labels() {
            s.push_str(&format!(
                "{:<20} {:>6} {:>6} {:>5} {:>8} {:>8} {:>9} {:>6.1}% {:>8}\n",
                if l.label.is_empty() { "-" } else { l.label },
                l.pages,
                l.false_pages,
                l.true_pages,
                l.fetches,
                l.diff_words,
                l.false_diff_words,
                100.0 * l.false_share(),
                l.wire_bytes,
            ));
        }
        s
    }

    /// Machine-readable JSON (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"page_bytes\": {},\n", self.page_bytes));
        s.push_str("  \"pages\": [\n");
        for (i, p) in self.pages.iter().enumerate() {
            let writers: Vec<String> = p.writers.iter().map(|w| w.to_string()).collect();
            let readers: Vec<String> = p.readers.iter().map(|r| r.to_string()).collect();
            s.push_str(&format!(
                "    {{\"page_base\": {}, \"label\": \"{}\", \"class\": \"{}\", \"fetches\": {}, \"diff_words\": {}, \"diff_runs\": {}, \"wire_bytes\": {}, \"invalidations\": {}, \"writers\": [{}], \"readers\": [{}]}}{}\n",
                p.page_base,
                p.label,
                p.class.label(),
                p.fetches,
                p.diff_words,
                p.diff_runs,
                p.wire_bytes,
                p.invalidations,
                writers.join(", "),
                readers.join(", "),
                if i + 1 < self.pages.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n  \"labels\": [\n");
        let labels = self.labels();
        for (i, l) in labels.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"pages\": {}, \"false_pages\": {}, \"true_pages\": {}, \"fetches\": {}, \"diff_words\": {}, \"false_diff_words\": {}, \"true_diff_words\": {}, \"false_share\": {:.4}, \"wire_bytes\": {}, \"invalidations\": {}}}{}\n",
                l.label,
                l.pages,
                l.false_pages,
                l.true_pages,
                l.fetches,
                l.diff_words,
                l.false_diff_words,
                l.true_diff_words,
                l.false_share(),
                l.wire_bytes,
                l.invalidations,
                if i + 1 < labels.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(base: u64, label: &'static str, class: SharingClass, diff_words: u64) -> PageSharing {
        PageSharing {
            page_base: base,
            label,
            fetches: 2,
            diff_words,
            diff_runs: 1,
            wire_bytes: diff_words * 4 + 8,
            invalidations: 1,
            writers: vec![0, 1],
            readers: vec![2],
            class,
        }
    }

    #[test]
    fn label_aggregation_and_false_share() {
        let prof = SharingProfile {
            page_bytes: 4096,
            pages: vec![
                page(0x1000, "grid", SharingClass::FalseSharing, 30),
                page(0x2000, "grid", SharingClass::TrueSharing, 10),
                page(0x3000, "tasks", SharingClass::SingleWriter, 5),
            ],
        };
        let grid = prof.label("grid").unwrap();
        assert_eq!(grid.pages, 2);
        assert_eq!(grid.false_pages, 1);
        assert_eq!(grid.diff_words, 40);
        assert_eq!(grid.false_diff_words, 30);
        assert!((grid.false_share() - 0.75).abs() < 1e-12);
        let tasks = prof.label("tasks").unwrap();
        assert_eq!(tasks.false_diff_words, 0);
        assert_eq!(tasks.false_share(), 0.0);
        // Hottest label first.
        assert_eq!(prof.labels()[0].label, "grid");
    }

    #[test]
    fn report_and_json_render() {
        let prof = SharingProfile {
            page_bytes: 4096,
            pages: vec![page(0x1000, "grid", SharingClass::FalseSharing, 8)],
        };
        let rep = prof.report();
        assert!(rep.contains("false-sharing"));
        assert!(rep.contains("grid"));
        let json = prof.to_json();
        assert!(json.contains("\"label\": \"grid\""));
        assert!(json.contains("\"false_share\": 1.0000"));
    }
}
