//! Per-processor execution time breakdowns and event counters.
//!
//! The six buckets mirror the paper's figures exactly (Figure 3 caption):
//! Compute, Data Wait, Lock Wait, Barrier Wait, Handler Compute, and
//! CPU-Cache Stall time. Times are virtual cycles. Each bucket is also
//! recorded per application *phase* so harnesses can report statements like
//! "tree building takes 43% of the time under SVM".

/// Maximum number of application phases tracked per run.
pub const MAX_PHASES: usize = 8;

/// Execution time categories, matching the paper's breakdown figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Bucket {
    /// Time executing application instructions.
    Compute = 0,
    /// Time waiting for data at remote faults / misses (communication).
    DataWait = 1,
    /// Time waiting at lock acquires, including protocol overhead.
    LockWait = 2,
    /// Time waiting at barriers, including protocol overhead.
    BarrierWait = 3,
    /// Time spent in protocol processing (twins, diffs, request service).
    HandlerCompute = 4,
    /// Time stalled on local cache misses.
    CacheStall = 5,
}

impl Bucket {
    /// All buckets in display order.
    pub const ALL: [Bucket; 6] = [
        Bucket::Compute,
        Bucket::DataWait,
        Bucket::LockWait,
        Bucket::BarrierWait,
        Bucket::HandlerCompute,
        Bucket::CacheStall,
    ];

    /// Short label used by the figure harness.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Compute => "Compute",
            Bucket::DataWait => "DataWait",
            Bucket::LockWait => "LockWait",
            Bucket::BarrierWait => "BarrierWait",
            Bucket::HandlerCompute => "HandlerCompute",
            Bucket::CacheStall => "CacheStall",
        }
    }
}

/// Event counters useful for diagnosing protocol behaviour (the paper's
/// discussion of "number of pages fetched is balanced but cost is not" is
/// made checkable through these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    /// Remote page faults serviced (SVM) or remote L2 misses (hardware).
    pub remote_fetches: u64,
    /// Local cache misses (any level causing stall).
    pub cache_misses: u64,
    /// Lock acquires performed.
    pub lock_acquires: u64,
    /// Barrier episodes participated in.
    pub barriers: u64,
    /// Diffs created (SVM only).
    pub diffs_created: u64,
    /// Diffs applied at this node's homes (SVM only).
    pub diffs_applied: u64,
    /// Twins created (SVM only).
    pub twins_created: u64,
    /// Bytes moved over the interconnect on behalf of this processor.
    pub bytes_transferred: u64,
    /// Write notices received and applied (SVM only).
    pub invalidations: u64,
    /// Shared loads+stores issued.
    pub accesses: u64,
}

impl Counter {
    fn add(&mut self, o: &Counter) {
        self.remote_fetches += o.remote_fetches;
        self.cache_misses += o.cache_misses;
        self.lock_acquires += o.lock_acquires;
        self.barriers += o.barriers;
        self.diffs_created += o.diffs_created;
        self.diffs_applied += o.diffs_applied;
        self.twins_created += o.twins_created;
        self.bytes_transferred += o.bytes_transferred;
        self.invalidations += o.invalidations;
        self.accesses += o.accesses;
    }
}

/// Statistics for one simulated processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcStats {
    buckets: [u64; 6],
    per_phase: [[u64; 6]; MAX_PHASES],
    phase: usize,
    phase_overflows: u64,
    /// Protocol/communication event counters.
    pub counters: Counter,
}

impl Default for ProcStats {
    fn default() -> Self {
        Self {
            buckets: [0; 6],
            per_phase: [[0; 6]; MAX_PHASES],
            phase: 0,
            phase_overflows: 0,
            counters: Counter::default(),
        }
    }
}

impl ProcStats {
    /// Add `cycles` to `bucket` (and the current phase's copy).
    #[inline]
    pub fn add(&mut self, bucket: Bucket, cycles: u64) {
        self.buckets[bucket as usize] += cycles;
        self.per_phase[self.phase][bucket as usize] += cycles;
    }

    /// Set the current application phase. Phases at or beyond
    /// [`MAX_PHASES`] saturate into the last ("overflow") phase and bump
    /// [`ProcStats::phase_overflows`] instead of aborting the run — this is
    /// reachable from application code via `Proc::set_phase`, and a bad
    /// phase index should mislabel accounting, not kill a simulation.
    #[inline]
    pub fn set_phase(&mut self, phase: usize) {
        if phase >= MAX_PHASES {
            self.phase_overflows += 1;
            self.phase = MAX_PHASES - 1;
        } else {
            self.phase = phase;
        }
    }

    /// Current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Number of `set_phase` calls that saturated because the requested
    /// phase was `>= MAX_PHASES` (their time is accounted to the last
    /// phase).
    pub fn phase_overflows(&self) -> u64 {
        self.phase_overflows
    }

    /// Cycles recorded in `bucket`.
    pub fn get(&self, bucket: Bucket) -> u64 {
        self.buckets[bucket as usize]
    }

    /// Cycles recorded in `bucket` during `phase`.
    pub fn get_phase(&self, phase: usize, bucket: Bucket) -> u64 {
        self.per_phase[phase][bucket as usize]
    }

    /// Total cycles across all buckets for `phase`.
    pub fn phase_total(&self, phase: usize) -> u64 {
        self.per_phase[phase].iter().sum()
    }

    /// Sum of all buckets (this processor's busy+wait time).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Reset all times and counters (used by `start_timing`). Keeps the
    /// current phase.
    pub fn reset(&mut self) {
        let phase = self.phase;
        *self = ProcStats::default();
        self.phase = phase;
    }
}

/// The result of a simulated run: per-processor breakdowns plus final
/// virtual clocks.
///
/// Derives `PartialEq` so replay tests can assert bit-identical runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Per-processor time breakdowns.
    pub procs: Vec<ProcStats>,
    /// Final virtual clock of each processor (cycles in the timed region).
    pub clocks: Vec<u64>,
    /// Race reports, when the run was configured with
    /// [`crate::RunConfig::detect_races`] (empty otherwise). One report per
    /// racy word, capped; see [`crate::detector`].
    pub races: Vec<crate::detector::RaceReport>,
    /// Per-page sharing profile, when the run was configured with
    /// [`crate::RunConfig::with_sharing_profile`] (`None` otherwise, keeping
    /// the off path bit-identical to builds without the profiler). Empty on
    /// platforms that are not page-based. See [`crate::sharing`].
    pub sharing: Option<crate::sharing::SharingProfile>,
    /// Virtual-time event trace with per-proc wait-latency histograms, when
    /// the run was configured with [`crate::RunConfig::with_trace`] (`None`
    /// otherwise; traced runs are bit-identical apart from this field). See
    /// [`crate::trace`].
    pub trace: Option<crate::trace::RunTrace>,
    /// Virtual-time interval metrics report, when the run was configured
    /// with [`crate::RunConfig::with_metrics`] (`None` otherwise; metrics
    /// runs are bit-identical apart from this field). See
    /// [`crate::metrics`].
    pub metrics: Option<crate::metrics::MetricsReport>,
    /// Application-registered phase names
    /// ([`crate::RunConfig::with_phase_names`]); empty when the app
    /// registered none. Present on traced and untraced runs alike so figure
    /// harnesses can label per-phase breakdowns.
    pub phase_names: Vec<String>,
}

impl RunStats {
    /// Number of distinct racy words reported (0 unless the run enabled
    /// race detection and the program raced).
    pub fn races(&self) -> usize {
        self.races.len()
    }

    /// Render all race reports, one per line (empty string if none).
    pub fn race_summary(&self) -> String {
        self.races
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Execution time of the run: the maximum final clock.
    pub fn total_cycles(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Aggregate a bucket across processors.
    pub fn sum(&self, bucket: Bucket) -> u64 {
        self.procs.iter().map(|p| p.get(bucket)).sum()
    }

    /// Aggregate counters across processors.
    pub fn sum_counters(&self) -> Counter {
        let mut c = Counter::default();
        for p in &self.procs {
            c.add(&p.counters);
        }
        c
    }

    /// Human name for phase `i`: the app-registered name when present
    /// ("tree-build"), otherwise "phase i".
    pub fn phase_name(&self, i: usize) -> String {
        self.phase_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("phase {i}"))
    }

    /// Fraction of total (summed-over-processors) time spent in `phase`.
    pub fn phase_fraction(&self, phase: usize) -> f64 {
        let phase_sum: u64 = self.procs.iter().map(|p| p.phase_total(phase)).sum();
        let total: u64 = self.procs.iter().map(|p| p.total()).sum();
        if total == 0 {
            0.0
        } else {
            phase_sum as f64 / total as f64
        }
    }

    /// Speedup of this run relative to a baseline (uniprocessor) cycle count.
    pub fn speedup_vs(&self, baseline_cycles: u64) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            baseline_cycles as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_accumulation_and_phases() {
        let mut s = ProcStats::default();
        s.add(Bucket::Compute, 10);
        s.set_phase(2);
        s.add(Bucket::Compute, 5);
        s.add(Bucket::LockWait, 7);
        assert_eq!(s.get(Bucket::Compute), 15);
        assert_eq!(s.get_phase(0, Bucket::Compute), 10);
        assert_eq!(s.get_phase(2, Bucket::Compute), 5);
        assert_eq!(s.get_phase(2, Bucket::LockWait), 7);
        assert_eq!(s.phase_total(2), 12);
        assert_eq!(s.total(), 22);
    }

    #[test]
    fn reset_clears_but_keeps_phase() {
        let mut s = ProcStats::default();
        s.set_phase(3);
        s.add(Bucket::DataWait, 100);
        s.counters.remote_fetches = 4;
        s.reset();
        assert_eq!(s.total(), 0);
        assert_eq!(s.counters.remote_fetches, 0);
        assert_eq!(s.phase(), 3);
    }

    #[test]
    fn run_stats_totals_and_speedup() {
        let mut a = ProcStats::default();
        a.add(Bucket::Compute, 50);
        let mut b = ProcStats::default();
        b.add(Bucket::BarrierWait, 20);
        let rs = RunStats {
            procs: vec![a, b],
            clocks: vec![50, 70],
            races: Vec::new(),
            sharing: None,
            trace: None,
            metrics: None,
            phase_names: Vec::new(),
        };
        assert_eq!(rs.total_cycles(), 70);
        assert_eq!(rs.sum(Bucket::Compute), 50);
        assert!((rs.speedup_vs(140) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_out_of_range_saturates() {
        let mut s = ProcStats::default();
        s.set_phase(MAX_PHASES);
        assert_eq!(s.phase(), MAX_PHASES - 1);
        assert_eq!(s.phase_overflows(), 1);
        s.set_phase(MAX_PHASES + 100);
        assert_eq!(s.phase(), MAX_PHASES - 1);
        assert_eq!(s.phase_overflows(), 2);
        // Time keeps accumulating (in the overflow phase) instead of the
        // run aborting.
        s.add(Bucket::Compute, 5);
        assert_eq!(s.get_phase(MAX_PHASES - 1, Bucket::Compute), 5);
        // A valid phase still works afterwards.
        s.set_phase(1);
        assert_eq!(s.phase(), 1);
        assert_eq!(s.phase_overflows(), 2);
    }
}
