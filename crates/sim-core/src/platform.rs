//! The [`Platform`] trait: a pluggable memory-system + synchronization cost
//! model, and [`Timing`], the charging context handed to it on every event.
//!
//! Platform implementations (in the `svm-hlrc`, `cc-numa`, and `smp-bus`
//! crates) are *passive*: they never block. Blocking — lock queueing and
//! barrier membership — is orchestrated generically by the scheduler in
//! [`crate::sched`]; the platform only prices the protocol actions and
//! mutates its own coherence state.

use crate::alloc::PlacementMap;
use crate::stats::{Bucket, ProcStats};
use crate::Addr;

/// Charging context for one processor during one simulated event.
pub struct Timing<'a> {
    /// Processor id performing the event.
    pub pid: usize,
    /// The processor's virtual clock (advanced by [`Timing::charge`]).
    pub now: &'a mut u64,
    /// The processor's statistics.
    pub stats: &'a mut ProcStats,
    /// Data-placement map (page homes).
    pub placement: &'a mut PlacementMap,
    /// False while the application initializes: protocol *state* changes
    /// still happen (so page copies and cache contents are warmed exactly as
    /// in the paper's serial-init discussion for Raytrace), but no cycles are
    /// charged and no resources are occupied.
    pub timing_on: bool,
}

impl Timing<'_> {
    /// Charge `cycles` to `bucket` and advance the virtual clock.
    #[inline]
    pub fn charge(&mut self, bucket: Bucket, cycles: u64) {
        if self.timing_on && cycles > 0 {
            *self.now += cycles;
            self.stats.add(bucket, cycles);
        }
    }

    /// Account time without advancing the clock (e.g. overlap accounting).
    #[inline]
    pub fn account(&mut self, bucket: Bucket, cycles: u64) {
        if self.timing_on && cycles > 0 {
            self.stats.add(bucket, cycles);
        }
    }

    /// Advance the clock to `t` (if in the future), charging the wait to
    /// `bucket`.
    #[inline]
    pub fn advance_to(&mut self, bucket: Bucket, t: u64) {
        if self.timing_on && t > *self.now {
            let d = t - *self.now;
            self.stats.add(bucket, d);
            *self.now = t;
        }
    }
}

/// A memory-system and synchronization model.
///
/// All methods are called with the global scheduler lock held and are
/// non-blocking. Times are virtual cycles on the platform's own clock
/// frequency — speedups (the paper's metric) are frequency-independent.
pub trait Platform: Send {
    /// Number of processors this platform instance models.
    fn nprocs(&self) -> usize;

    /// Perform a load of `len` (1/2/4/8) bytes; returns the value
    /// (little-endian, zero-extended).
    fn load(&mut self, t: &mut Timing, addr: Addr, len: u8) -> u64;

    /// Perform a store of the low `len` bytes of `val`.
    fn store(&mut self, t: &mut Timing, addr: Addr, len: u8, val: u64);

    /// Bulk load: perform loads of `len` bytes at `addr + i*stride` for
    /// `i = 0..out.len()`, writing each value into `out[i]`, and return how
    /// many were performed.
    ///
    /// Contract (shared with [`Platform::store_bulk`]): the batch must be
    /// *observably identical* to calling [`Platform::load`] once per word in
    /// order, and must perform **at least one** word, stopping after the
    /// first word that leaves `*t.now > budget`. The scheduler computes
    /// `budget` as the virtual time up to which this processor may run
    /// without yielding; stopping there lets it interleave processors at
    /// exactly the same points as the scalar path, which is what makes bulk
    /// runs bit-identical to word-at-a-time runs.
    ///
    /// The default implementation is the scalar loop; platforms override it
    /// to walk their tag arrays and page tables once per line/page run
    /// instead of once per word.
    fn load_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        out: &mut [u64],
        budget: u64,
    ) -> usize {
        let mut done = 0;
        for slot in out.iter_mut() {
            *slot = self.load(t, addr + done as u64 * stride, len);
            done += 1;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    /// Bulk store: the store-side twin of [`Platform::load_bulk`], storing
    /// `vals[i]` at `addr + i*stride`. Same budget contract; returns how many
    /// words were performed.
    fn store_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        vals: &[u64],
        budget: u64,
    ) -> usize {
        let mut done = 0;
        for &v in vals {
            self.store(t, addr + done as u64 * stride, len, v);
            done += 1;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    /// Processor `t.pid` issues an acquire request for `lock`. Charges the
    /// local send overhead and returns the virtual time at which the request
    /// reaches the arbitration point (manager/owner/home).
    fn acquire_request(&mut self, t: &mut Timing, lock: u32) -> u64;

    /// `pid` is granted `lock` at `grant_at` (already the max of lock
    /// availability and request arrival). Performs grant-side protocol work
    /// (e.g. HLRC consumes write notices and invalidates pages) and returns
    /// the time at which the grantee resumes execution.
    fn acquire_grant(
        &mut self,
        pid: usize,
        lock: u32,
        grant_at: u64,
        stats: &mut ProcStats,
        placement: &mut PlacementMap,
        timing_on: bool,
    ) -> u64;

    /// Processor `t.pid` releases `lock` (performing e.g. HLRC diff flushes).
    /// Returns the time at which the lock becomes available to the next
    /// grantee.
    fn release(&mut self, t: &mut Timing, lock: u32) -> u64;

    /// Processor `t.pid` arrives at `barrier`, flushing what its protocol
    /// requires. Returns the time its arrival notification reaches the
    /// barrier manager.
    fn barrier_arrive(&mut self, t: &mut Timing, barrier: u32) -> u64;

    /// All processors have arrived (`arrivals[pid]` = arrival-at-manager
    /// time). Performs release-side protocol work for everyone and returns
    /// each processor's resume time.
    fn barrier_release(
        &mut self,
        barrier: u32,
        arrivals: &[u64],
        stats: &mut [ProcStats],
        placement: &mut PlacementMap,
        timing_on: bool,
    ) -> Vec<u64>;

    /// Reset all resource clocks and protocol counters for the start of the
    /// timed region (`start_timing`). Coherence *state* (page copies, cache
    /// contents) is preserved — warm state at timing start is part of what
    /// the paper measures.
    fn reset_timing(&mut self);

    /// Optional human-readable diagnostic report (e.g. the SVM platform's
    /// per-page hot-spot profile — the performance-debugging facility the
    /// paper wishes real SVM systems offered). `None` if the platform has
    /// nothing to report.
    fn profile(&self) -> Option<String> {
        None
    }

    /// Enable or disable word-granularity sharing profiling for the run
    /// (called once, before any simulated processor starts). Platforms with
    /// nothing to profile ignore it. Profiling must never charge cycles:
    /// statistics stay bit-identical either way.
    fn set_sharing_profile(&mut self, _on: bool) {}

    /// Install (or remove, with `None`) the shared event-trace sink for the
    /// run. Called once before any simulated processor starts (and once
    /// with `None` at the end of the run, so the scheduler regains sole
    /// ownership of the sink). Platforms emit protocol events —
    /// page fetches, diffs, invalidations, remote misses — through the
    /// handle via [`crate::trace::emit`]; emission must never charge
    /// cycles: statistics stay bit-identical either way.
    fn set_trace(&mut self, _trace: Option<crate::trace::TraceHandle>) {}

    /// Install (or remove, with `None`) the shared interval-metrics sink
    /// for the run (see [`crate::metrics`]). Same contract as
    /// [`Platform::set_trace`]: called once before any simulated processor
    /// starts and once with `None` at the end of the run; platforms record
    /// per-page protocol rates — fetches, diff words with writer
    /// footprints, invalidations — through the handle via the
    /// [`crate::metrics`] helpers, and recording must never charge cycles:
    /// statistics stay bit-identical either way.
    fn set_metrics(&mut self, _metrics: Option<crate::metrics::MetricsHandle>) {}

    /// The per-page sharing profile gathered since the last
    /// [`Platform::reset_timing`], if this platform produces one. Labels are
    /// attributed by the scheduler (the platform does not see the allocator).
    fn sharing_profile(&self) -> Option<crate::sharing::SharingProfile> {
        None
    }

    /// Called once after every simulated processor has finished, with the
    /// full statistics slice: the platform drains protocol counters that
    /// accrue at nodes other than the event initiator (e.g. diffs applied at
    /// a page's home) into the owning node's statistics. Deterministic and
    /// path-independent — it runs at the same point for scalar and bulk
    /// runs, so the equivalence sweeps still hold.
    fn finalize(&mut self, _stats: &mut [ProcStats]) {}

    /// The minimum virtual latency, in cycles, of any cross-processor
    /// interaction on this platform (lock grant, barrier notification,
    /// page fetch, remote miss, bus transfer — whichever is cheapest).
    ///
    /// Returning `Some` certifies that *every* way one simulated processor
    /// can affect another is a protocol action priced through this trait:
    /// the conservative lower bound the sharded engine
    /// ([`crate::RunConfig::with_shards`]) relies on when it lets
    /// application threads run ahead of the replayed virtual-time order —
    /// see [`crate::shard`] for how the bound and the event-bounded
    /// lookahead window interact. Platforms that keep hidden
    /// zero-latency side channels must return `None` (the default), which
    /// pins them to the classic sequential engine.
    fn min_cross_node_latency(&self) -> Option<u64> {
        None
    }
}

/// A trivial platform: every access costs one cycle, synchronization is
/// free and instantaneous. Useful for framework tests and as the simplest
/// possible reference implementation of the trait.
pub struct NullPlatform {
    nprocs: usize,
    mem: crate::mem::FlatMem,
    lock_avail: crate::util::FxMap<u32, u64>,
}

impl NullPlatform {
    /// A null platform for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        Self {
            nprocs,
            mem: crate::mem::FlatMem::new(),
            lock_avail: Default::default(),
        }
    }
}

impl Platform for NullPlatform {
    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn load(&mut self, t: &mut Timing, addr: Addr, len: u8) -> u64 {
        t.charge(Bucket::Compute, 1);
        t.stats.counters.accesses += 1;
        self.mem.load(addr, len)
    }

    fn store(&mut self, t: &mut Timing, addr: Addr, len: u8, val: u64) {
        t.charge(Bucket::Compute, 1);
        t.stats.counters.accesses += 1;
        self.mem.store(addr, len, val);
    }

    fn acquire_request(&mut self, t: &mut Timing, _lock: u32) -> u64 {
        *t.now
    }

    fn acquire_grant(
        &mut self,
        _pid: usize,
        _lock: u32,
        grant_at: u64,
        _stats: &mut ProcStats,
        _placement: &mut PlacementMap,
        _timing_on: bool,
    ) -> u64 {
        grant_at
    }

    fn release(&mut self, t: &mut Timing, lock: u32) -> u64 {
        self.lock_avail.insert(lock, *t.now);
        *t.now
    }

    fn barrier_arrive(&mut self, t: &mut Timing, _barrier: u32) -> u64 {
        *t.now
    }

    fn barrier_release(
        &mut self,
        _barrier: u32,
        arrivals: &[u64],
        _stats: &mut [ProcStats],
        _placement: &mut PlacementMap,
        _timing_on: bool,
    ) -> Vec<u64> {
        let t = arrivals.iter().copied().max().unwrap_or(0);
        vec![t; arrivals.len()]
    }

    fn reset_timing(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::GlobalAlloc;

    #[test]
    fn timing_charge_respects_timing_flag() {
        let mut now = 0u64;
        let mut stats = ProcStats::default();
        let mut alloc = GlobalAlloc::new(2);
        {
            let mut t = Timing {
                pid: 0,
                now: &mut now,
                stats: &mut stats,
                placement: alloc.map(),
                timing_on: false,
            };
            t.charge(Bucket::Compute, 100);
        }
        assert_eq!(now, 0);
        assert_eq!(stats.total(), 0);
        {
            let mut t = Timing {
                pid: 0,
                now: &mut now,
                stats: &mut stats,
                placement: alloc.map(),
                timing_on: true,
            };
            t.charge(Bucket::Compute, 100);
            t.advance_to(Bucket::DataWait, 150);
            t.advance_to(Bucket::DataWait, 50); // past: no-op
        }
        assert_eq!(now, 150);
        assert_eq!(stats.get(Bucket::Compute), 100);
        assert_eq!(stats.get(Bucket::DataWait), 50);
    }

    #[test]
    fn null_platform_round_trips_data() {
        let mut p = NullPlatform::new(2);
        let mut now = 0u64;
        let mut stats = ProcStats::default();
        let mut alloc = GlobalAlloc::new(2);
        let mut t = Timing {
            pid: 0,
            now: &mut now,
            stats: &mut stats,
            placement: alloc.map(),
            timing_on: true,
        };
        p.store(&mut t, crate::addr::HEAP_BASE, 8, 0xdead_beef);
        assert_eq!(p.load(&mut t, crate::addr::HEAP_BASE, 8), 0xdead_beef);
        assert_eq!(now, 2);
    }
}
