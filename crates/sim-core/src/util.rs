//! Small utilities: a fast deterministic hasher for hot protocol tables and
//! a seedable xorshift RNG used by workload generators that must not depend
//! on global state.
//!
//! We re-implement the well-known Fx hash function (as used by rustc) rather
//! than pulling in an extra dependency; protocol page tables and directories
//! are looked up on every simulated memory access, and SipHash is measurably
//! too slow there (see `benches/` in the `bench` crate).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (Firefox/rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for integer-keyed maps.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline(always)]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline(always)]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline(always)]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline(always)]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// HashMap with the fast deterministic hasher.
pub type FxMap<K2, V> = HashMap<K2, V, BuildHasherDefault<FxHasher>>;
/// HashSet with the fast deterministic hasher.
pub type FxSet<K2> = HashSet<K2, BuildHasherDefault<FxHasher>>;

/// A tiny, seedable xorshift64* RNG. Used only for deterministic workload
/// generation inside the simulator where pulling `rand` into the hot path is
/// unnecessary; statistical quality is more than sufficient for workloads.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create from a nonzero seed (zero is mapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxMap<u64, u64> = FxMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn xorshift_is_deterministic_and_covers_range() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut seen_low = false;
        let mut seen_high = false;
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            if v < 0.1 {
                seen_low = true;
            }
            if v > 0.9 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = XorShift64::new(99);
        for n in 1..100u64 {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
    }
}
