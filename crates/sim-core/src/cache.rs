//! Tag-only set-associative cache models.
//!
//! The caches never hold data — the simulator's backing memory is
//! authoritative — but they model geometry (capacity, associativity, line
//! size) and LRU replacement faithfully. This matters: the paper's
//! superlinear speedups for LU and Ocean come from *conflict misses* in the
//! 2-d array layouts that disappear with 4-d blocked layouts, an effect that
//! only a real tag array with real associativity reproduces.
//!
//! Lines carry a [`LineState`] so the hardware-coherent platforms can model
//! MESI-style upgrades and invalidations with the same structure.

use crate::addr::Addr;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheGeom {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size / (self.line * self.ways as u64)
    }
}

/// Coherence state of a cached line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum LineState {
    /// Not present.
    Invalid = 0,
    /// Present, read-only, possibly shared by other caches.
    Shared = 1,
    /// Present, writable, clean (this cache is the only holder).
    Exclusive = 2,
    /// Present, writable, dirty.
    Modified = 3,
}

/// Result of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Line present with sufficient permission.
    Hit,
    /// Line present but read-only and the access was a write.
    UpgradeMiss,
    /// Line absent. Contains the victim line (base address + was-dirty) if a
    /// valid line was evicted to make room.
    Miss { victim: Option<(Addr, bool)> },
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    state: LineState,
    lru: u32,
}

const INVALID_TAG: u64 = u64::MAX;

/// A set-associative, tag-only cache with true LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeom,
    line_shift: u32,
    set_mask: u64,
    ways: Vec<Way>,
    tick: u32,
    /// Total hits (for hit-rate reporting).
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(geom: CacheGeom) -> Self {
        assert!(
            geom.line.is_power_of_two(),
            "line size must be power of two"
        );
        let sets = geom.sets();
        assert!(sets.is_power_of_two(), "set count must be power of two");
        assert!(sets >= 1 && geom.ways >= 1);
        Self {
            geom,
            line_shift: geom.line.trailing_zeros(),
            set_mask: sets - 1,
            ways: vec![
                Way {
                    tag: INVALID_TAG,
                    state: LineState::Invalid,
                    lru: 0
                };
                (sets * geom.ways as u64) as usize
            ],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry of this cache.
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }

    /// Base address of the line containing `a`.
    #[inline(always)]
    pub fn line_base(&self, a: Addr) -> Addr {
        a & !(self.geom.line - 1)
    }

    #[inline(always)]
    fn set_of(&self, a: Addr) -> usize {
        (((a >> self.line_shift) & self.set_mask) * self.geom.ways as u64) as usize
    }

    #[inline(always)]
    fn tag_of(&self, a: Addr) -> u64 {
        a >> self.line_shift
    }

    /// Access the line containing `a`. On a hit the LRU stamp is refreshed
    /// and (for writes to writable lines) the state is promoted to Modified.
    /// On a miss the LRU victim way is *not* yet replaced — call [`Cache::fill`]
    /// to install the line, so the caller can charge costs first.
    #[inline]
    pub fn access(&mut self, a: Addr, write: bool) -> Lookup {
        self.tick = self.tick.wrapping_add(1);
        let set = self.set_of(a);
        let tag = self.tag_of(a);
        let ways = self.geom.ways as usize;
        for w in &mut self.ways[set..set + ways] {
            if w.tag == tag && w.state != LineState::Invalid {
                w.lru = self.tick;
                if write {
                    match w.state {
                        LineState::Shared => {
                            self.hits += 1; // present, but needs ownership
                            return Lookup::UpgradeMiss;
                        }
                        LineState::Exclusive | LineState::Modified => {
                            w.state = LineState::Modified;
                        }
                        LineState::Invalid => unreachable!(),
                    }
                }
                self.hits += 1;
                return Lookup::Hit;
            }
        }
        self.misses += 1;
        // Find the victim: an invalid way if any, else true LRU.
        let mut victim: Option<(Addr, bool)> = None;
        let mut best: Option<(usize, u32)> = None;
        for (i, w) in self.ways[set..set + ways].iter().enumerate() {
            if w.state == LineState::Invalid {
                best = None;
                victim = None;
                break;
            }
            let age = self.tick.wrapping_sub(w.lru);
            if best.is_none_or(|(_, b)| age > b) {
                best = Some((i, age));
            }
        }
        if let Some((i, _)) = best {
            let w = &self.ways[set + i];
            victim = Some((w.tag << self.line_shift, w.state == LineState::Modified));
        }
        Lookup::Miss { victim }
    }

    /// Batch equivalent of `k` consecutive [`Cache::access`] hits to the line
    /// containing `a`, which the caller has already proven present with
    /// sufficient permission (read: any valid state; write: Exclusive or
    /// Modified — a write to a Shared line would be an upgrade miss and must
    /// not use this path). Semantically identical to calling `access` `k`
    /// times: the tick advances by `k`, the LRU stamp lands on the final
    /// tick, `hits` grows by `k`, and writes leave the line Modified.
    #[inline]
    pub fn hit_run(&mut self, a: Addr, write: bool, k: u64) {
        debug_assert!(k > 0);
        self.tick = self.tick.wrapping_add(k as u32);
        let set = self.set_of(a);
        let tag = self.tag_of(a);
        let ways = self.geom.ways as usize;
        for w in &mut self.ways[set..set + ways] {
            if w.tag == tag && w.state != LineState::Invalid {
                w.lru = self.tick;
                if write {
                    debug_assert!(
                        matches!(w.state, LineState::Exclusive | LineState::Modified),
                        "hit_run write requires ownership"
                    );
                    w.state = LineState::Modified;
                }
                self.hits += k;
                return;
            }
        }
        debug_assert!(false, "hit_run on absent line");
    }

    /// Install the line containing `a` with `state`, evicting the LRU (or an
    /// invalid) way. Returns the victim `(line_base, was_dirty)` if a valid
    /// line was displaced.
    pub fn fill(&mut self, a: Addr, state: LineState) -> Option<(Addr, bool)> {
        self.tick = self.tick.wrapping_add(1);
        let set = self.set_of(a);
        let tag = self.tag_of(a);
        let ways = self.geom.ways as usize;
        let mut victim_idx = 0usize;
        let mut victim_age = 0u32;
        let mut found_invalid = false;
        for (i, w) in self.ways[set..set + ways].iter().enumerate() {
            if w.state == LineState::Invalid {
                victim_idx = i;
                found_invalid = true;
                break;
            }
            let age = self.tick.wrapping_sub(w.lru);
            if i == 0 || age > victim_age {
                victim_idx = i;
                victim_age = age;
            }
        }
        let w = &mut self.ways[set + victim_idx];
        let evicted = if found_invalid || w.state == LineState::Invalid {
            None
        } else {
            Some((w.tag << self.line_shift, w.state == LineState::Modified))
        };
        *w = Way {
            tag,
            state,
            lru: self.tick,
        };
        evicted
    }

    /// Current state of the line containing `a`.
    pub fn state_of(&self, a: Addr) -> LineState {
        let set = self.set_of(a);
        let tag = self.tag_of(a);
        for w in &self.ways[set..set + self.geom.ways as usize] {
            if w.tag == tag && w.state != LineState::Invalid {
                return w.state;
            }
        }
        LineState::Invalid
    }

    /// Change the state of the line containing `a` if present. Setting
    /// `Invalid` removes it. Returns whether the line was present.
    pub fn set_state(&mut self, a: Addr, state: LineState) -> bool {
        let set = self.set_of(a);
        let tag = self.tag_of(a);
        for w in &mut self.ways[set..set + self.geom.ways as usize] {
            if w.tag == tag && w.state != LineState::Invalid {
                w.state = state;
                if state == LineState::Invalid {
                    w.tag = INVALID_TAG;
                }
                return true;
            }
        }
        false
    }

    /// Invalidate every cached line inside `[base, base+len)` — used when a
    /// virtual memory page is refetched under SVM, since the new page
    /// contents supersede anything cached from the stale copy.
    pub fn invalidate_range(&mut self, base: Addr, len: u64) {
        let mut a = self.line_base(base);
        while a < base + len {
            self.set_state(a, LineState::Invalid);
            a += self.geom.line;
        }
    }

    /// Drop all lines (used by `start_timing` on request, or tests).
    pub fn clear(&mut self) {
        for w in &mut self.ways {
            w.tag = INVALID_TAG;
            w.state = LineState::Invalid;
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256B.
        Cache::new(CacheGeom {
            size: 256,
            line: 32,
            ways: 2,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(matches!(c.access(0x100, false), Lookup::Miss { .. }));
        c.fill(0x100, LineState::Shared);
        assert_eq!(c.access(0x100, false), Lookup::Hit);
        assert_eq!(c.access(0x11f, false), Lookup::Hit); // same line
        assert!(matches!(c.access(0x120, false), Lookup::Miss { .. })); // next line
    }

    #[test]
    fn write_to_shared_is_upgrade_miss() {
        let mut c = small();
        c.fill(0x40, LineState::Shared);
        assert_eq!(c.access(0x40, true), Lookup::UpgradeMiss);
        c.set_state(0x40, LineState::Modified);
        assert_eq!(c.access(0x40, true), Lookup::Hit);
        assert_eq!(c.state_of(0x40), LineState::Modified);
    }

    #[test]
    fn write_promotes_exclusive_to_modified() {
        let mut c = small();
        c.fill(0x40, LineState::Exclusive);
        assert_eq!(c.access(0x40, true), Lookup::Hit);
        assert_eq!(c.state_of(0x40), LineState::Modified);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = small();
        // Set index = (addr>>5) & 3. Addresses 0x000, 0x080, 0x100 share set 0.
        c.fill(0x000, LineState::Shared);
        c.fill(0x080, LineState::Shared);
        // Touch 0x000 so 0x080 becomes LRU.
        assert_eq!(c.access(0x000, false), Lookup::Hit);
        let evicted = c.fill(0x100, LineState::Shared);
        assert_eq!(evicted, Some((0x080, false)));
        assert_eq!(c.access(0x000, false), Lookup::Hit);
        assert!(matches!(c.access(0x080, false), Lookup::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = small();
        c.fill(0x000, LineState::Modified);
        c.fill(0x080, LineState::Shared);
        let evicted = c.fill(0x100, LineState::Shared);
        assert_eq!(evicted, Some((0x000, true)));
    }

    #[test]
    fn invalidate_range_covers_page() {
        let mut c = small();
        c.fill(0x000, LineState::Shared);
        c.fill(0x020, LineState::Shared);
        c.fill(0x040, LineState::Modified);
        c.invalidate_range(0x000, 0x60);
        assert_eq!(c.state_of(0x000), LineState::Invalid);
        assert_eq!(c.state_of(0x020), LineState::Invalid);
        assert_eq!(c.state_of(0x040), LineState::Invalid);
    }

    #[test]
    fn hit_run_matches_repeated_access() {
        let mut a = small();
        let mut b = small();
        for c in [&mut a, &mut b] {
            c.fill(0x000, LineState::Exclusive);
            c.fill(0x080, LineState::Shared);
        }
        // k scalar accesses on `a`, one batched hit_run on `b`.
        for _ in 0..5 {
            assert_eq!(a.access(0x000, true), Lookup::Hit);
        }
        b.hit_run(0x000, true, 5);
        for _ in 0..3 {
            assert_eq!(a.access(0x080, false), Lookup::Hit);
        }
        b.hit_run(0x080, false, 3);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.state_of(0x000), b.state_of(0x000));
        // LRU stamps agree: the same subsequent fill evicts the same victim.
        assert_eq!(
            a.fill(0x100, LineState::Shared),
            b.fill(0x100, LineState::Shared)
        );
    }

    #[test]
    fn conflict_misses_depend_on_associativity() {
        // Direct-mapped: two addresses mapping to the same set thrash.
        let mut dm = Cache::new(CacheGeom {
            size: 256,
            line: 32,
            ways: 1,
        });
        // 8 sets; 0x000 and 0x100 share set 0.
        dm.fill(0x000, LineState::Shared);
        dm.fill(0x100, LineState::Shared);
        assert!(matches!(dm.access(0x000, false), Lookup::Miss { .. }));

        // 2-way: both fit.
        let mut sa = small(); // 4 sets x 2 ways; 0x000 & 0x100 both set 0? (0x100>>5)&3 = 0 yes
        sa.fill(0x000, LineState::Shared);
        sa.fill(0x100, LineState::Shared);
        assert_eq!(sa.access(0x000, false), Lookup::Hit);
        assert_eq!(sa.access(0x100, false), Lookup::Hit);
    }
}
