//! Virtual-time interval metrics: time-series diagnostics (layer 4).
//!
//! The three earlier diagnostic layers (sharing profile, protocol traces,
//! critical path) are whole-run aggregates. This layer samples the same
//! counters *over virtual time*: when a run is configured with
//! [`crate::RunConfig::with_metrics`], the scheduler snapshots per-processor
//! cycle breakdowns every `interval_cycles` of that processor's own virtual
//! clock (plus forced samples at phase transitions, barrier releases and
//! `stop_timing`), the page-based platforms bin page fetch / diff /
//! invalidation activity and per-interval *writer footprints* into the same
//! interval grid, the hardware platforms bin remote-miss line activity, the
//! scheduler bins lock handoffs, and applications can contribute named
//! event counters (e.g. KV requests served) via `Proc::metric_add`.
//!
//! On top of the per-interval writer footprints the module classifies each
//! page's sharing *trajectory* ([`PageTrajectory`]): a page whose writers
//! take turns across intervals is **migratory** — a single coherence
//! hand-off per turn, fixable by aligning data with its current writer —
//! while a page with several concurrent writers every interval is under
//! **steady** false (disjoint words) or true (overlapping words) sharing.
//! The whole-run [`crate::sharing::SharingClass`] cannot tell these apart;
//! the ROADMAP's optimization advisor needs the distinction.
//!
//! Like every other diagnostic layer, metrics are **off by default** and
//! **invisible**: sampling never charges cycles and never perturbs
//! scheduling, so a metrics-on run produces a `RunStats` bit-identical to
//! the metrics-off run apart from the [`crate::RunStats::metrics`] field,
//! and — because samples are taken inside the shared step API at virtual
//! times all three engines reproduce exactly — reports are identical across
//! the sequential, sharded-classic and fused engines (asserted in
//! `tests/metrics.rs`). All buffers are fixed-capacity and drop-counted.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::util::FxMap;

/// Default sampling interval in virtual cycles
/// ([`crate::RunConfig::with_metrics`] takes an explicit one; figure
/// harnesses and tests use this).
pub const DEFAULT_INTERVAL: u64 = 1 << 16;

/// Default per-collection capacity (samples per proc, intervals per page,
/// pages, locks, event names). Override with
/// [`crate::RunConfig::with_metrics_cap`].
pub const DEFAULT_SERIES_CAP: usize = 1 << 12;

/// Handle through which the scheduler and platforms record samples.
pub type MetricsHandle = Arc<Mutex<MetricsSink>>;

/// One cumulative per-processor snapshot. Consecutive samples differenced
/// give per-interval rates; keeping the raw cumulative values makes the
/// series cap-robust (a dropped sample widens one delta instead of losing
/// counts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcSample {
    /// Interval index: `ts / interval`.
    pub interval: u64,
    /// The processor's virtual clock when the sample was taken.
    pub ts: u64,
    /// Cumulative compute cycles ([`crate::Bucket::Compute`]).
    pub compute: u64,
    /// Cumulative data-wait (fetch) cycles ([`crate::Bucket::DataWait`]).
    pub data_wait: u64,
    /// Cumulative lock-wait cycles ([`crate::Bucket::LockWait`]).
    pub lock_wait: u64,
    /// Cumulative barrier-wait cycles ([`crate::Bucket::BarrierWait`]).
    pub barrier_wait: u64,
    /// Cumulative remote fetches (pages on SVM, lines on hardware).
    pub remote_fetches: u64,
}

/// The finished sample series of one processor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcSeries {
    /// Samples in ascending `ts` order (first is the all-zero sample at
    /// `start_timing`).
    pub samples: Vec<ProcSample>,
    /// Samples discarded because the per-proc cap was reached.
    pub dropped: u64,
}

/// Page (or cache-line) protocol activity binned into one virtual-time
/// interval.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageInterval {
    /// Interval index (`ts / interval` of the acting processor).
    pub interval: u64,
    /// Remote fetches of this page/line completed in the interval.
    pub fetches: u64,
    /// Diff words flushed for this page in the interval (SVM only).
    pub diff_words: u64,
    /// Invalidations applied to copies of this page in the interval.
    pub invalidations: u64,
    /// Nodes that diffed the page in this interval, ascending — the
    /// *per-interval writer footprint* the trajectory classifier reads.
    pub writers: Vec<u16>,
}

/// How a page's sharing behaviour evolved over the run — the
/// interval-aware upgrade of the whole-run
/// [`crate::sharing::SharingClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageTrajectory {
    /// No node ever diffed the page.
    ReadShared,
    /// Exactly one node diffed the page over the whole run.
    SingleWriter,
    /// Several nodes diffed the page, but (almost) never in the same
    /// interval: ownership migrates — a hand-off, not a fight.
    Migratory,
    /// Several nodes diff the page concurrently interval after interval,
    /// on disjoint words: steady false sharing, an artifact of page
    /// granularity.
    SteadyFalse,
    /// Several nodes diff the page concurrently, touching common words:
    /// genuine steady communication through the page.
    SteadyTrue,
    /// The page alternates between single-writer and multi-writer regimes
    /// across the run (e.g. per-phase ownership changes).
    PhaseShifting,
}

impl PageTrajectory {
    /// Short label used by reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            PageTrajectory::ReadShared => "read-shared",
            PageTrajectory::SingleWriter => "single-writer",
            PageTrajectory::Migratory => "migratory",
            PageTrajectory::SteadyFalse => "steady-false",
            PageTrajectory::SteadyTrue => "steady-true",
            PageTrajectory::PhaseShifting => "phase-shifting",
        }
    }

    /// Severity rank for deterministic tie-breaking when aggregating
    /// (higher = more costly to leave unfixed).
    pub fn rank(self) -> u8 {
        match self {
            PageTrajectory::ReadShared => 0,
            PageTrajectory::SingleWriter => 1,
            PageTrajectory::Migratory => 2,
            PageTrajectory::SteadyFalse => 3,
            PageTrajectory::SteadyTrue => 4,
            PageTrajectory::PhaseShifting => 5,
        }
    }
}

/// Classify a page's trajectory from its interval summary: `nwriters`
/// distinct writers over the run, `single`/`multi` intervals that saw
/// exactly-one / two-or-more writers, and whether two writers ever touched
/// the same word within one interval.
pub fn classify(nwriters: usize, single: u64, multi: u64, overlap: bool) -> PageTrajectory {
    if nwriters == 0 {
        PageTrajectory::ReadShared
    } else if nwriters == 1 {
        PageTrajectory::SingleWriter
    } else if multi == 0 {
        PageTrajectory::Migratory
    } else if single > 0 && 4 * single.min(multi) >= single + multi {
        // Both regimes substantially present (the minority regime is at
        // least a quarter of the write intervals).
        PageTrajectory::PhaseShifting
    } else if multi >= single {
        if overlap {
            PageTrajectory::SteadyTrue
        } else {
            PageTrajectory::SteadyFalse
        }
    } else {
        // Mostly single-writer with a rare concurrent blip: still
        // migratory for the advisor's purposes.
        PageTrajectory::Migratory
    }
}

/// The finished interval series of one page (SVM) or cache line
/// (hardware; fetch counts only, no writer footprints).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSeries {
    /// First byte address of the page/line.
    pub page_base: u64,
    /// Label of the allocation containing the page (empty if unlabeled).
    pub label: &'static str,
    /// Interval bins in ascending interval order (only intervals with
    /// activity are stored).
    pub intervals: Vec<PageInterval>,
    /// Interval bins discarded because the per-page cap was reached.
    pub dropped: u64,
    /// Distinct writer nodes over the run, ascending.
    pub writers: Vec<u16>,
    /// Intervals in which exactly one node diffed the page.
    pub single_intervals: u64,
    /// Intervals in which two or more nodes diffed the page.
    pub multi_intervals: u64,
    /// Two writers touched the same word within one interval.
    pub overlap: bool,
    /// The interval-aware classification.
    pub trajectory: PageTrajectory,
}

impl PageSeries {
    /// Total diff words across all stored intervals.
    pub fn total_diff_words(&self) -> u64 {
        self.intervals.iter().map(|i| i.diff_words).sum()
    }

    /// Total fetches across all stored intervals.
    pub fn total_fetches(&self) -> u64 {
        self.intervals.iter().map(|i| i.fetches).sum()
    }
}

/// The finished lock hand-off series of one lock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockSeries {
    /// The application lock id.
    pub lock: u32,
    /// `(interval, handoffs)` pairs in ascending interval order.
    pub intervals: Vec<(u64, u64)>,
    /// Interval bins discarded because the per-lock cap was reached.
    pub dropped: u64,
}

impl LockSeries {
    /// Total hand-offs across all stored intervals.
    pub fn total(&self) -> u64 {
        self.intervals.iter().map(|&(_, n)| n).sum()
    }
}

/// A named application event counter (`Proc::metric_add`), binned per
/// processor per interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSeries {
    /// The event name the application registered.
    pub name: &'static str,
    /// Per-processor `(interval, count)` pairs in ascending interval order.
    pub procs: Vec<Vec<(u64, u64)>>,
    /// Interval bins discarded because a cap was reached.
    pub dropped: u64,
}

impl EventSeries {
    /// Total count across all processors and intervals.
    pub fn total(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| p.iter().map(|&(_, n)| n).sum::<u64>())
            .sum()
    }
}

// ---------------------------------------------------------------------------
// The live sink.

struct PageState {
    ivals: FxMap<u64, PageInterval>,
    dropped: u64,
    // word index -> (last writer, last interval): within-interval overlap
    // detection. Bounded by words-per-page.
    words: FxMap<u32, (u16, u64)>,
    overlap: bool,
    writers: Vec<u16>,
}

struct LockState {
    ivals: FxMap<u64, u64>,
    dropped: u64,
}

struct EventState {
    name: &'static str,
    procs: Vec<FxMap<u64, u64>>,
    dropped: u64,
}

struct SinkProc {
    samples: Vec<ProcSample>,
    dropped: u64,
    last_iv: u64,
}

/// Shared, mutable metrics state while a run is in flight: one instance per
/// metrics-on run, shared between the scheduler and the platform via
/// [`MetricsHandle`] (the mutex is uncontended — everything already runs
/// under the global scheduler lock — and exists only to keep the handle
/// `Send`, mirroring [`crate::trace::TraceSink`]).
pub struct MetricsSink {
    interval: u64,
    cap: usize,
    procs: Vec<SinkProc>,
    pages: FxMap<u64, PageState>,
    pages_dropped: u64,
    locks: FxMap<u32, LockState>,
    locks_dropped: u64,
    events: Vec<EventState>,
    events_dropped: u64,
}

impl MetricsSink {
    /// Create a sink for `nprocs` processors sampling every `interval`
    /// virtual cycles, with per-collection capacity `cap`.
    pub fn new(nprocs: usize, interval: u64, cap: usize) -> Self {
        assert!(interval > 0, "metrics interval must be nonzero");
        Self {
            interval,
            cap: cap.max(1),
            procs: (0..nprocs)
                .map(|_| SinkProc {
                    samples: Vec::new(),
                    dropped: 0,
                    last_iv: 0,
                })
                .collect(),
            pages: FxMap::default(),
            pages_dropped: 0,
            locks: FxMap::default(),
            locks_dropped: 0,
            events: Vec::new(),
            events_dropped: 0,
        }
    }

    /// The sampling interval in virtual cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Clear all series (called at `start_timing` so the series cover
    /// exactly the timed region).
    pub fn reset(&mut self) {
        for p in &mut self.procs {
            p.samples.clear();
            p.dropped = 0;
            p.last_iv = 0;
        }
        self.pages = FxMap::default();
        self.pages_dropped = 0;
        self.locks = FxMap::default();
        self.locks_dropped = 0;
        self.events.clear();
        self.events_dropped = 0;
    }

    /// Record a cumulative snapshot for `s.ts`'s processor. Non-`forced`
    /// calls only materialize a sample when the clock has crossed into a
    /// new interval since the last one; `forced` calls (phase transitions,
    /// barrier releases, timing boundaries) always do. A forced sample at
    /// the same virtual instant as the previous sample replaces it (the
    /// counters may have advanced at equal `ts`).
    pub fn sample_proc(&mut self, pid: usize, mut s: ProcSample, forced: bool) {
        let iv = s.ts / self.interval;
        s.interval = iv;
        let p = &mut self.procs[pid];
        if let Some(last) = p.samples.last_mut() {
            // One sample per interval: a newer snapshot for the interval
            // already at the tail (a forced boundary sample, or the same
            // timestamp re-offered) replaces it in place, keeping the
            // latest cumulative counts for that interval.
            if last.interval == iv && (forced || last.ts == s.ts) {
                *last = s;
                p.last_iv = iv;
                return;
            }
        }
        if !forced && !p.samples.is_empty() && iv <= p.last_iv {
            return;
        }
        if p.samples.len() < self.cap {
            p.samples.push(s);
        } else {
            p.dropped += 1;
        }
        p.last_iv = iv;
    }

    fn page_entry(&mut self, page: u64) -> Option<&mut PageState> {
        if !self.pages.contains_key(&page) {
            if self.pages.len() >= self.cap {
                self.pages_dropped += 1;
                return None;
            }
            self.pages.insert(
                page,
                PageState {
                    ivals: FxMap::default(),
                    dropped: 0,
                    words: FxMap::default(),
                    overlap: false,
                    writers: Vec::new(),
                },
            );
        }
        self.pages.get_mut(&page)
    }

    fn page_ival(st: &mut PageState, cap: usize, iv: u64) -> Option<&mut PageInterval> {
        if !st.ivals.contains_key(&iv) {
            if st.ivals.len() >= cap {
                st.dropped += 1;
                return None;
            }
            st.ivals.insert(
                iv,
                PageInterval {
                    interval: iv,
                    ..PageInterval::default()
                },
            );
        }
        st.ivals.get_mut(&iv)
    }

    /// Record a completed remote fetch of `page` at virtual time `now`.
    pub fn page_fetch(&mut self, now: u64, page: u64) {
        let (iv, cap) = (now / self.interval, self.cap);
        if let Some(st) = self.page_entry(page) {
            if let Some(e) = Self::page_ival(st, cap, iv) {
                e.fetches += 1;
            }
        }
    }

    /// Record a diff of `page` flushed by `writer` at virtual time `now`,
    /// carrying the given within-page word indices.
    pub fn page_diff(
        &mut self,
        now: u64,
        page: u64,
        writer: u16,
        words: impl IntoIterator<Item = u32>,
    ) {
        let (iv, cap) = (now / self.interval, self.cap);
        if let Some(st) = self.page_entry(page) {
            if let Err(i) = st.writers.binary_search(&writer) {
                st.writers.insert(i, writer);
            }
            let mut nwords = 0u64;
            for w in words {
                nwords += 1;
                match st.words.get_mut(&w) {
                    Some(prev) => {
                        if prev.0 != writer && prev.1 == iv {
                            st.overlap = true;
                        }
                        *prev = (writer, iv);
                    }
                    None => {
                        st.words.insert(w, (writer, iv));
                    }
                }
            }
            if let Some(e) = Self::page_ival(st, cap, iv) {
                e.diff_words += nwords;
                if let Err(i) = e.writers.binary_search(&writer) {
                    e.writers.insert(i, writer);
                }
            }
        }
    }

    /// Record an invalidation applied to a copy of `page` at virtual time
    /// `now`.
    pub fn page_inval(&mut self, now: u64, page: u64) {
        let (iv, cap) = (now / self.interval, self.cap);
        if let Some(st) = self.page_entry(page) {
            if let Some(e) = Self::page_ival(st, cap, iv) {
                e.invalidations += 1;
            }
        }
    }

    /// Record one hand-off of `lock` (a grant enabled by another
    /// processor's release) at the grantee's virtual time `now`.
    pub fn lock_handoff(&mut self, now: u64, lock: u32) {
        let iv = now / self.interval;
        let cap = self.cap;
        if !self.locks.contains_key(&lock) {
            if self.locks.len() >= cap {
                self.locks_dropped += 1;
                return;
            }
            self.locks.insert(
                lock,
                LockState {
                    ivals: FxMap::default(),
                    dropped: 0,
                },
            );
        }
        let st = self.locks.get_mut(&lock).unwrap();
        if let Some(n) = st.ivals.get_mut(&iv) {
            *n += 1;
        } else if st.ivals.len() < cap {
            st.ivals.insert(iv, 1);
        } else {
            st.dropped += 1;
        }
    }

    /// Record `n` occurrences of the named application event on `pid` at
    /// virtual time `now`.
    pub fn event(&mut self, name: &'static str, pid: usize, now: u64, n: u64) {
        let iv = now / self.interval;
        let cap = self.cap;
        let nprocs = self.procs.len();
        let st = match self.events.iter_mut().find(|e| e.name == name) {
            Some(st) => st,
            None => {
                if self.events.len() >= cap {
                    self.events_dropped += 1;
                    return;
                }
                self.events.push(EventState {
                    name,
                    procs: (0..nprocs).map(|_| FxMap::default()).collect(),
                    dropped: 0,
                });
                self.events.last_mut().unwrap()
            }
        };
        let m = &mut st.procs[pid];
        if let Some(c) = m.get_mut(&iv) {
            *c += n;
        } else if m.len() < cap {
            m.insert(iv, n);
        } else {
            st.dropped += 1;
        }
    }

    /// Freeze into a [`MetricsReport`], attributing page addresses to
    /// allocation labels via `label_of`.
    pub fn into_report(self, label_of: impl Fn(u64) -> &'static str) -> MetricsReport {
        let mut pages: Vec<PageSeries> = self
            .pages
            .into_iter()
            .map(|(base, st)| {
                let mut intervals: Vec<PageInterval> = st.ivals.into_values().collect();
                intervals.sort_by_key(|i| i.interval);
                let single = intervals.iter().filter(|i| i.writers.len() == 1).count() as u64;
                let multi = intervals.iter().filter(|i| i.writers.len() >= 2).count() as u64;
                PageSeries {
                    page_base: base,
                    label: label_of(base),
                    trajectory: classify(st.writers.len(), single, multi, st.overlap),
                    intervals,
                    dropped: st.dropped,
                    writers: st.writers,
                    single_intervals: single,
                    multi_intervals: multi,
                    overlap: st.overlap,
                }
            })
            .collect();
        pages.sort_by_key(|p| p.page_base);
        let mut locks: Vec<LockSeries> = self
            .locks
            .into_iter()
            .map(|(lock, st)| {
                let mut intervals: Vec<(u64, u64)> = st.ivals.into_iter().collect();
                intervals.sort_by_key(|&(iv, _)| iv);
                LockSeries {
                    lock,
                    intervals,
                    dropped: st.dropped,
                }
            })
            .collect();
        locks.sort_by_key(|l| l.lock);
        let mut events: Vec<EventSeries> = self
            .events
            .into_iter()
            .map(|st| EventSeries {
                name: st.name,
                procs: st
                    .procs
                    .into_iter()
                    .map(|m| {
                        let mut v: Vec<(u64, u64)> = m.into_iter().collect();
                        v.sort_by_key(|&(iv, _)| iv);
                        v
                    })
                    .collect(),
                dropped: st.dropped,
            })
            .collect();
        events.sort_by_key(|e| e.name);
        MetricsReport {
            interval: self.interval,
            procs: self
                .procs
                .into_iter()
                .map(|p| ProcSeries {
                    samples: p.samples,
                    dropped: p.dropped,
                })
                .collect(),
            pages,
            pages_dropped: self.pages_dropped,
            locks,
            locks_dropped: self.locks_dropped,
            events,
            events_dropped: self.events_dropped,
        }
    }
}

// ---------------------------------------------------------------------------
// Gated helpers for platform code (mirror `crate::trace::emit`): no-ops
// unless metrics are on *and* the timed region is active, and never charge
// cycles.

/// Record a completed remote page/line fetch (platform code).
#[inline]
pub fn page_fetch(m: &Option<MetricsHandle>, timing_on: bool, now: u64, page: u64) {
    if timing_on {
        if let Some(h) = m {
            h.lock().unwrap().page_fetch(now, page);
        }
    }
}

/// Record a flushed diff with its word footprint (platform code). The
/// iterator is only consumed when metrics are live.
#[inline]
pub fn page_diff(
    m: &Option<MetricsHandle>,
    timing_on: bool,
    now: u64,
    page: u64,
    writer: u16,
    words: impl IntoIterator<Item = u32>,
) {
    if timing_on {
        if let Some(h) = m {
            h.lock().unwrap().page_diff(now, page, writer, words);
        }
    }
}

/// Record an applied invalidation (platform code).
#[inline]
pub fn page_inval(m: &Option<MetricsHandle>, timing_on: bool, now: u64, page: u64) {
    if timing_on {
        if let Some(h) = m {
            h.lock().unwrap().page_inval(now, page);
        }
    }
}

// ---------------------------------------------------------------------------
// The frozen report.

/// The finished interval metrics of one run, attached to
/// [`crate::RunStats::metrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsReport {
    /// Sampling interval in virtual cycles.
    pub interval: u64,
    /// Per-processor cumulative sample series, indexed by pid.
    pub procs: Vec<ProcSeries>,
    /// Per-page (SVM) or per-line (hardware) activity series, ascending by
    /// address.
    pub pages: Vec<PageSeries>,
    /// Page records discarded because the page cap was reached.
    pub pages_dropped: u64,
    /// Per-lock hand-off series, ascending by lock id.
    pub locks: Vec<LockSeries>,
    /// Hand-off records discarded because the lock cap was reached.
    pub locks_dropped: u64,
    /// Named application event series, ascending by name.
    pub events: Vec<EventSeries>,
    /// Event records discarded because the name cap was reached.
    pub events_dropped: u64,
}

impl MetricsReport {
    /// Highest interval index appearing anywhere in the report.
    pub fn max_interval(&self) -> u64 {
        let mut m = 0u64;
        for p in &self.procs {
            if let Some(s) = p.samples.last() {
                m = m.max(s.interval);
            }
        }
        for p in &self.pages {
            if let Some(i) = p.intervals.last() {
                m = m.max(i.interval);
            }
        }
        for l in &self.locks {
            if let Some(&(iv, _)) = l.intervals.last() {
                m = m.max(iv);
            }
        }
        m
    }

    /// Total samples/bins discarded across every collection (0 unless a
    /// cap was hit).
    pub fn total_dropped(&self) -> u64 {
        self.procs.iter().map(|p| p.dropped).sum::<u64>()
            + self.pages.iter().map(|p| p.dropped).sum::<u64>()
            + self.pages_dropped
            + self.locks.iter().map(|l| l.dropped).sum::<u64>()
            + self.locks_dropped
            + self.events.iter().map(|e| e.dropped).sum::<u64>()
            + self.events_dropped
    }

    /// The series for one page base address, if it saw activity.
    pub fn page(&self, page_base: u64) -> Option<&PageSeries> {
        self.pages
            .binary_search_by_key(&page_base, |p| p.page_base)
            .ok()
            .map(|i| &self.pages[i])
    }

    /// The dominant trajectory of an allocation label: the trajectory
    /// carrying the most diff words among the label's pages (falling back
    /// to fetches, then severity rank, for read-mostly labels). `None`
    /// when no page of the label saw activity.
    pub fn label_trajectory(&self, label: &str) -> Option<PageTrajectory> {
        let mut weights: Vec<(PageTrajectory, u64, u64)> = Vec::new();
        for p in self.pages.iter().filter(|p| p.label == label) {
            let (dw, f) = (p.total_diff_words(), p.total_fetches());
            match weights.iter_mut().find(|(t, _, _)| *t == p.trajectory) {
                Some(w) => {
                    w.1 += dw;
                    w.2 += f;
                }
                None => weights.push((p.trajectory, dw, f)),
            }
        }
        weights
            .into_iter()
            .max_by_key(|&(t, dw, f)| (dw, f, t.rank()))
            .map(|(t, _, _)| t)
    }

    /// Machine-readable JSON (hand-rolled; the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"interval\": {},", self.interval);
        let _ = writeln!(s, "  \"total_dropped\": {},", self.total_dropped());
        s.push_str("  \"procs\": [\n");
        for (pid, p) in self.procs.iter().enumerate() {
            let samples: Vec<String> = p
                .samples
                .iter()
                .map(|x| {
                    format!(
                        "[{},{},{},{},{},{},{}]",
                        x.interval,
                        x.ts,
                        x.compute,
                        x.data_wait,
                        x.lock_wait,
                        x.barrier_wait,
                        x.remote_fetches
                    )
                })
                .collect();
            let _ = writeln!(
                s,
                "    {{\"pid\": {}, \"dropped\": {}, \"samples\": [{}]}}{}",
                pid,
                p.dropped,
                samples.join(", "),
                if pid + 1 < self.procs.len() { "," } else { "" },
            );
        }
        s.push_str("  ],\n  \"pages\": [\n");
        for (i, p) in self.pages.iter().enumerate() {
            let ivals: Vec<String> = p
                .intervals
                .iter()
                .map(|x| {
                    let w: Vec<String> = x.writers.iter().map(|w| w.to_string()).collect();
                    format!(
                        "[{},{},{},{},[{}]]",
                        x.interval,
                        x.fetches,
                        x.diff_words,
                        x.invalidations,
                        w.join(",")
                    )
                })
                .collect();
            let writers: Vec<String> = p.writers.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(
                s,
                "    {{\"page_base\": {}, \"label\": \"{}\", \"trajectory\": \"{}\", \
                 \"single_intervals\": {}, \"multi_intervals\": {}, \"overlap\": {}, \
                 \"writers\": [{}], \"dropped\": {}, \"intervals\": [{}]}}{}",
                p.page_base,
                p.label,
                p.trajectory.label(),
                p.single_intervals,
                p.multi_intervals,
                p.overlap,
                writers.join(", "),
                p.dropped,
                ivals.join(", "),
                if i + 1 < self.pages.len() { "," } else { "" },
            );
        }
        s.push_str("  ],\n  \"locks\": [\n");
        for (i, l) in self.locks.iter().enumerate() {
            let ivals: Vec<String> = l
                .intervals
                .iter()
                .map(|&(iv, n)| format!("[{iv},{n}]"))
                .collect();
            let _ = writeln!(
                s,
                "    {{\"lock\": {}, \"total\": {}, \"dropped\": {}, \"intervals\": [{}]}}{}",
                l.lock,
                l.total(),
                l.dropped,
                ivals.join(", "),
                if i + 1 < self.locks.len() { "," } else { "" },
            );
        }
        s.push_str("  ],\n  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let procs: Vec<String> = e
                .procs
                .iter()
                .map(|p| {
                    let v: Vec<String> = p.iter().map(|&(iv, n)| format!("[{iv},{n}]")).collect();
                    format!("[{}]", v.join(","))
                })
                .collect();
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"total\": {}, \"dropped\": {}, \"procs\": [{}]}}{}",
                e.name,
                e.total(),
                e.dropped,
                procs.join(", "),
                if i + 1 < self.events.len() { "," } else { "" },
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Render `vals` as a one-line unicode sparkline of `width` columns
/// (values are max-pooled into columns, then scaled to eight block
/// heights). Empty input renders as `"(empty)"`.
pub fn sparkline(vals: &[u64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return "(empty)".to_string();
    }
    let width = width.max(1).min(vals.len());
    let mut cols = vec![0u64; width];
    for (i, &v) in vals.iter().enumerate() {
        let c = i * width / vals.len();
        cols[c] = cols[c].max(v);
    }
    let top = cols.iter().copied().max().unwrap_or(0).max(1);
    cols.iter()
        .map(|&v| BLOCKS[((v * 7).div_ceil(top) as usize).min(7)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_trajectories() {
        use PageTrajectory::*;
        assert_eq!(classify(0, 0, 0, false), ReadShared);
        assert_eq!(classify(1, 10, 0, false), SingleWriter);
        assert_eq!(classify(4, 12, 0, false), Migratory);
        assert_eq!(classify(4, 0, 12, false), SteadyFalse);
        assert_eq!(classify(4, 0, 12, true), SteadyTrue);
        assert_eq!(classify(4, 10, 10, false), PhaseShifting);
        assert_eq!(classify(4, 6, 12, true), PhaseShifting);
        // Rare concurrent blip on a migratory page stays migratory.
        assert_eq!(classify(4, 100, 1, true), Migratory);
        // Rare solo blip on a steady page stays steady.
        assert_eq!(classify(4, 1, 100, false), SteadyFalse);
    }

    #[test]
    fn proc_sampling_rolls_over_and_forces() {
        let mut s = MetricsSink::new(1, 100, 16);
        let snap = |ts, compute| ProcSample {
            ts,
            compute,
            ..ProcSample::default()
        };
        s.sample_proc(0, snap(0, 0), true); // start_timing baseline
        s.sample_proc(0, snap(50, 50), false); // same interval: skipped
        s.sample_proc(0, snap(150, 150), false); // rollover: kept
        s.sample_proc(0, snap(160, 160), false); // same interval: skipped
        s.sample_proc(0, snap(160, 161), true); // forced, same ts: replaces
        s.sample_proc(0, snap(420, 400), false); // skips intervals 2..3: kept
        let r = s.into_report(|_| "");
        let ivs: Vec<(u64, u64, u64)> = r.procs[0]
            .samples
            .iter()
            .map(|x| (x.interval, x.ts, x.compute))
            .collect();
        assert_eq!(ivs, vec![(0, 0, 0), (1, 160, 161), (4, 420, 400)]);
        assert_eq!(r.procs[0].dropped, 0);
    }

    #[test]
    fn proc_sampling_caps_and_counts() {
        let mut s = MetricsSink::new(1, 10, 3);
        for i in 0..6u64 {
            s.sample_proc(
                0,
                ProcSample {
                    ts: i * 10,
                    ..ProcSample::default()
                },
                true,
            );
        }
        let r = s.into_report(|_| "");
        assert_eq!(r.procs[0].samples.len(), 3);
        assert_eq!(r.procs[0].dropped, 3);
        assert_eq!(r.total_dropped(), 3);
    }

    #[test]
    fn page_series_footprints_and_overlap() {
        let mut s = MetricsSink::new(2, 100, 64);
        // Interval 0: writer 0 alone; interval 1: writers 0 and 1 on
        // disjoint words; interval 2: writer 1 re-touches writer 0's word.
        s.page_diff(10, 0x1000, 0, [0u32, 1]);
        s.page_diff(110, 0x1000, 0, [0u32]);
        s.page_diff(120, 0x1000, 1, [5u32]);
        assert!(!s.pages.get(&0x1000).unwrap().overlap);
        s.page_diff(210, 0x1000, 0, [7u32]);
        s.page_diff(220, 0x1000, 1, [7u32]);
        s.page_fetch(15, 0x1000);
        s.page_inval(115, 0x1000);
        let r = s.into_report(|a| if a == 0x1000 { "grid" } else { "" });
        let p = r.page(0x1000).unwrap();
        assert_eq!(p.label, "grid");
        assert_eq!(p.writers, vec![0, 1]);
        assert_eq!(p.single_intervals, 1);
        assert_eq!(p.multi_intervals, 2);
        assert!(p.overlap);
        assert_eq!(p.intervals.len(), 3);
        assert_eq!(p.intervals[0].fetches, 1);
        assert_eq!(p.intervals[0].writers, vec![0]);
        assert_eq!(p.intervals[1].invalidations, 1);
        assert_eq!(p.intervals[1].writers, vec![0, 1]);
        assert_eq!(p.trajectory, PageTrajectory::PhaseShifting);
    }

    #[test]
    fn lock_and_event_series() {
        let mut s = MetricsSink::new(2, 100, 8);
        s.lock_handoff(10, 7);
        s.lock_handoff(20, 7);
        s.lock_handoff(150, 7);
        s.event("kv_requests", 1, 10, 4);
        s.event("kv_requests", 1, 20, 2);
        s.event("kv_requests", 0, 250, 1);
        let r = s.into_report(|_| "");
        assert_eq!(r.locks.len(), 1);
        assert_eq!(r.locks[0].intervals, vec![(0, 2), (1, 1)]);
        assert_eq!(r.locks[0].total(), 3);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].name, "kv_requests");
        assert_eq!(r.events[0].procs[0], vec![(2, 1)]);
        assert_eq!(r.events[0].procs[1], vec![(0, 6)]);
        assert_eq!(r.events[0].total(), 7);
    }

    #[test]
    fn caps_are_enforced_everywhere() {
        let mut s = MetricsSink::new(1, 10, 2);
        for p in 0..4u64 {
            s.page_fetch(5, p * 0x1000);
        }
        for iv in 0..4u64 {
            s.page_fetch(iv * 10, 0);
        }
        for l in 0..4u32 {
            s.lock_handoff(5, l);
        }
        let r = s.into_report(|_| "");
        assert_eq!(r.pages.len(), 2);
        assert_eq!(r.pages_dropped, 2);
        assert_eq!(r.pages[0].intervals.len(), 2);
        assert_eq!(r.pages[0].dropped, 2);
        assert_eq!(r.locks.len(), 2);
        assert_eq!(r.locks_dropped, 2);
        assert!(r.total_dropped() >= 6);
    }

    #[test]
    fn label_trajectory_weighs_diff_words() {
        let mut s = MetricsSink::new(2, 100, 64);
        // Page A (label g): heavy steady-false traffic.
        for iv in 0..4u64 {
            s.page_diff(iv * 100, 0x1000, 0, [0u32, 1, 2, 3]);
            s.page_diff(iv * 100 + 1, 0x1000, 1, [8u32, 9, 10, 11]);
        }
        // Page B (label g): light single-writer traffic.
        s.page_diff(10, 0x2000, 0, [0u32]);
        let r = s.into_report(|a| if a < 0x3000 { "g" } else { "" });
        assert_eq!(r.label_trajectory("g"), Some(PageTrajectory::SteadyFalse));
        assert_eq!(r.label_trajectory("absent"), None);
    }

    #[test]
    fn json_shape_and_sparkline() {
        let mut s = MetricsSink::new(1, 100, 8);
        s.sample_proc(0, ProcSample::default(), true);
        s.page_diff(10, 0x1000, 0, [0u32]);
        s.lock_handoff(10, 1);
        s.event("reqs", 0, 10, 2);
        let r = s.into_report(|_| "psi");
        let json = r.to_json();
        assert!(json.contains("\"interval\": 100"));
        assert!(json.contains("\"trajectory\": \"single-writer\""));
        assert!(json.contains("\"label\": \"psi\""));
        assert!(json.contains("\"name\": \"reqs\""));
        // Balanced braces/brackets outside strings.
        let (mut depth, mut in_str) = (0i64, false);
        for c in json.chars() {
            match c {
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);

        assert_eq!(sparkline(&[], 8), "(empty)");
        let line = sparkline(&[0, 1, 2, 3, 4, 5, 6, 7], 8);
        assert_eq!(line.chars().count(), 8);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        assert_eq!(sparkline(&[5], 8).chars().count(), 1);
    }
}
