//! # sim-core — deterministic direct-execution multiprocessor simulation
//!
//! This crate is the execution vehicle for the PPoPP'97 reproduction of
//! *Application Restructuring and Performance Portability on Shared Virtual
//! Memory and Hardware-Coherent Multiprocessors* (Jiang, Shan & Singh).
//!
//! Applications are ordinary Rust code. Every access to the simulated shared
//! address space, and every synchronization operation, goes through a
//! [`Proc`] handle, which charges virtual cycles according to a pluggable
//! [`Platform`] model (SVM, CC-NUMA, or bus-based SMP — implemented in
//! sibling crates).
//!
//! ## Execution model
//!
//! Each simulated processor is an OS thread, but **exactly one thread runs at
//! a time**: a cooperative scheduler hands the "turn" to the runnable
//! processor with the minimum virtual clock. Cache hits advance only the
//! local clock without a hand-off; a run-ahead quantum bounds virtual-time
//! skew. Because all supported applications are data-race-free at the word
//! level, bounded skew can only perturb timings (never results), and the
//! scheduler itself is deterministic, so repeated runs produce identical
//! statistics.
//!
//! ## Main entry point
//!
//! ```no_run
//! use sim_core::{run, RunConfig, NullPlatform};
//!
//! let cfg = RunConfig::new(4);
//! let stats = run(Box::new(NullPlatform::new(4)), cfg, |p| {
//!     let a = p.alloc_shared(4096, 8, sim_core::Placement::Node(0));
//!     p.barrier(0);
//!     p.write_f64(a + 8 * p.pid() as u64, p.pid() as f64);
//!     p.barrier(0);
//! });
//! println!("total cycles: {}", stats.total_cycles());
//! ```

// Indexed loops over fixed coordinate dimensions are clearer than
// iterator adaptors in this numeric code.
#![allow(clippy::needless_range_loop)]
pub mod addr;
pub mod advisor;
pub mod alloc;
pub mod cache;
pub mod critpath;
pub mod detector;
pub(crate) mod fused;
pub mod mem;
pub mod metrics;
pub mod platform;
pub mod resource;
pub mod sched;
pub mod shard;
pub mod sharing;
pub mod stats;
pub mod trace;
pub mod util;
pub mod view;

pub use addr::{Addr, HEAP_BASE, PAGE_SHIFT, PAGE_SIZE};
pub use advisor::{
    advise, Action, AdvisorReport, Evidence, Family, FamilyBound, Recommendation, Severity,
};
pub use alloc::{GlobalAlloc, Placement, PlacementMap};
pub use cache::{Cache, CacheGeom, LineState, Lookup};
pub use critpath::{
    analyze, what_if, what_if_all, what_if_edges, what_if_report, CritPath, PathCat, PathStep,
    WhatIf,
};
pub use detector::{RaceDetector, RaceKind, RaceReport, VectorClock};
pub use mem::FlatMem;
pub use metrics::{
    EventSeries, LockSeries, MetricsHandle, MetricsReport, MetricsSink, PageInterval, PageSeries,
    PageTrajectory, ProcSample, ProcSeries,
};
pub use platform::{NullPlatform, Platform, Timing};
pub use resource::Resource;
pub use sched::{run, run_profiled, Proc, RunConfig, MAX_SHARDS, MAX_SHARD_BATCH};
pub use sharing::{LabelSharing, PageSharing, SharingClass, SharingProfile};
pub use stats::{Bucket, Counter, ProcStats, RunStats, MAX_PHASES};
pub use trace::{
    AllocSpan, DepEdge, DepKind, Event, EventKind, ProcTrace, RunTrace, TraceHandle, TraceSink,
    WaitHist,
};
pub use view::{GArr, Grid2, Grid4, Word};
