//! Shared-heap allocator with explicit data placement.
//!
//! The paper performs "data distribution ... as suggested in SPLASH-2" on the
//! SVM and DSM platforms; this allocator is how applications express it.
//! Each allocation chooses a [`Placement`] policy; the resulting page→home
//! mapping is recorded in a [`PlacementMap`] that the platform models query
//! (the SVM platform for page homes, the DSM platform for line homes).
//!
//! The allocator is a bump allocator: simulated programs never free, exactly
//! like the SPLASH-2 `G_MALLOC` arena.

use crate::addr::{align_up, page_of, Addr, HEAP_BASE, PAGE_SIZE};

/// Where the pages of an allocation should live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// All pages homed on one node (e.g. a processor's partition).
    Node(usize),
    /// Pages homed round-robin across nodes starting at page 0 of the
    /// allocation (the default SPLASH-2 distribution for shared globals).
    RoundRobin,
    /// Pages homed in contiguous chunks: page `i` goes to node
    /// `i / chunk_pages % nprocs`. `Blocked { chunk_pages: 1 }` equals
    /// `RoundRobin`.
    Blocked { chunk_pages: u64 },
    /// First-touch: homed on the first node that accesses the page
    /// (hardware-DSM style). Until touched, reads resolve to the allocating
    /// node.
    FirstTouch,
}

#[derive(Clone, Debug)]
struct Region {
    first_page: u64,
    last_page: u64,
    policy: Placement,
    /// Diagnostic name (`alloc_labeled`); the race detector attaches it to
    /// reports so a race reads "in `hist`" rather than a bare address.
    label: &'static str,
}

/// Page → home-node map built up from allocations.
#[derive(Clone, Debug)]
pub struct PlacementMap {
    nprocs: usize,
    regions: Vec<Region>,
    first_touch: crate::util::FxMap<u64, usize>,
}

impl PlacementMap {
    fn new(nprocs: usize) -> Self {
        Self {
            nprocs,
            regions: Vec::new(),
            first_touch: Default::default(),
        }
    }

    /// Home node of the page containing `addr`. `toucher` is the node
    /// performing the access (used only to resolve first-touch pages).
    pub fn home_of(&mut self, addr: Addr, toucher: usize) -> usize {
        let page = page_of(addr);
        // Regions are sorted by construction (bump allocator): binary search.
        let idx = self.regions.partition_point(|r| r.last_page < page);
        if let Some(r) = self.regions.get(idx) {
            if page >= r.first_page && page <= r.last_page {
                return match r.policy {
                    Placement::Node(n) => n % self.nprocs,
                    Placement::RoundRobin => ((page - r.first_page) % self.nprocs as u64) as usize,
                    Placement::Blocked { chunk_pages } => {
                        (((page - r.first_page) / chunk_pages.max(1)) % self.nprocs as u64) as usize
                    }
                    Placement::FirstTouch => *self.first_touch.entry(page).or_insert(toucher),
                };
            }
        }
        // Address outside any allocation (e.g. tests poking raw addresses):
        // deterministic round-robin fallback.
        (page % self.nprocs as u64) as usize
    }

    /// Non-mutating query for a page that is known to be resolved (tests).
    pub fn home_of_resolved(&self, addr: Addr) -> Option<usize> {
        let page = page_of(addr);
        let idx = self.regions.partition_point(|r| r.last_page < page);
        let r = self.regions.get(idx)?;
        if page < r.first_page || page > r.last_page {
            return None;
        }
        match r.policy {
            Placement::Node(n) => Some(n % self.nprocs),
            Placement::RoundRobin => Some(((page - r.first_page) % self.nprocs as u64) as usize),
            Placement::Blocked { chunk_pages } => {
                Some((((page - r.first_page) / chunk_pages.max(1)) % self.nprocs as u64) as usize)
            }
            Placement::FirstTouch => self.first_touch.get(&page).copied(),
        }
    }
}

/// The shared-heap bump allocator.
#[derive(Clone, Debug)]
pub struct GlobalAlloc {
    next: Addr,
    map: PlacementMap,
}

impl GlobalAlloc {
    /// New heap for `nprocs` nodes.
    pub fn new(nprocs: usize) -> Self {
        Self {
            next: HEAP_BASE,
            map: PlacementMap::new(nprocs),
        }
    }

    /// Allocate `bytes` with `align` (power of two) under `policy`, for the
    /// allocating node `owner`. Placement policies are page-granular, so the
    /// allocation is padded out to page boundaries whenever the policy cares
    /// about pages and the allocation spans any.
    pub fn alloc(&mut self, bytes: u64, align: u64, policy: Placement, owner: usize) -> Addr {
        self.alloc_labeled("", bytes, align, policy, owner)
    }

    /// Like [`GlobalAlloc::alloc`], tagging the region with a diagnostic
    /// `label` reported by the race detector.
    pub fn alloc_labeled(
        &mut self,
        label: &'static str,
        bytes: u64,
        align: u64,
        policy: Placement,
        _owner: usize,
    ) -> Addr {
        assert!(bytes > 0, "zero-size shared allocation");
        let align = align.max(1);
        // Distinct placement regions must start on fresh pages, otherwise two
        // regions would share a page and the home would be ambiguous.
        let start = match policy {
            Placement::Node(_) if self.page_compatible(policy) => align_up(self.next, align),
            _ => align_up(align_up(self.next, PAGE_SIZE), align),
        };
        let end = start + bytes;
        self.next = end;
        let first_page = page_of(start);
        let last_page = page_of(end - 1);
        // Merge with previous region if identical policy & contiguous pages;
        // otherwise the next region must begin on a fresh page.
        if let Some(last) = self.map.regions.last_mut() {
            if last.policy == policy
                && last.label == label
                && matches!(policy, Placement::Node(_))
                && first_page <= last.last_page + 1
            {
                last.last_page = last.last_page.max(last_page);
                return start;
            }
        }
        self.map.regions.push(Region {
            first_page,
            last_page,
            policy,
            label,
        });
        self.enforce_sorted();
        start
    }

    /// Label of the allocation containing `addr` (empty if unlabeled or
    /// outside every allocation).
    pub fn label_of(&self, addr: Addr) -> &'static str {
        let page = page_of(addr);
        let idx = self.map.regions.partition_point(|r| r.last_page < page);
        match self.map.regions.get(idx) {
            Some(r) if page >= r.first_page && page <= r.last_page => r.label,
            _ => "",
        }
    }

    fn page_compatible(&self, policy: Placement) -> bool {
        // A Node(..) allocation may share a page with a previous allocation
        // only if that page already belongs to the same node.
        match (self.map.regions.last(), policy) {
            (Some(last), Placement::Node(n)) => {
                matches!(last.policy, Placement::Node(m) if m == n)
                    && page_of(self.next) <= last.last_page
            }
            _ => false,
        }
    }

    fn enforce_sorted(&mut self) {
        debug_assert!(self
            .map
            .regions
            .windows(2)
            .all(|w| w[0].last_page < w[1].first_page));
    }

    /// Snapshot of the labeled allocation spans as `(first byte, last byte
    /// inclusive, label)` triples in address order — the page-granular view
    /// post-hoc analysis (the critical-path analyzer) attributes protocol
    /// traffic against.
    pub fn labeled_spans(&self) -> Vec<crate::trace::AllocSpan> {
        self.map
            .regions
            .iter()
            .map(|r| crate::trace::AllocSpan {
                first: r.first_page * PAGE_SIZE,
                last: (r.last_page + 1) * PAGE_SIZE - 1,
                label: r.label,
            })
            .collect()
    }

    /// High-water mark of the heap.
    pub fn high_water(&self) -> Addr {
        self.next
    }

    /// The placement map (for platforms).
    pub fn map(&mut self) -> &mut PlacementMap {
        &mut self.map
    }

    /// Immutable placement map view.
    pub fn map_ref(&self) -> &PlacementMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_never_overlap_and_respect_alignment() {
        let mut a = GlobalAlloc::new(4);
        let mut prev_end = 0u64;
        for i in 1..50u64 {
            let align = 1u64 << (i % 7);
            let p = a.alloc(i * 13, align, Placement::RoundRobin, 0);
            assert_eq!(p % align, 0, "misaligned");
            assert!(p >= prev_end, "overlap");
            prev_end = p + i * 13;
        }
    }

    #[test]
    fn node_placement_homes_everything_on_that_node() {
        let mut a = GlobalAlloc::new(8);
        let p = a.alloc(10 * PAGE_SIZE, 8, Placement::Node(5), 0);
        for i in 0..10 {
            assert_eq!(a.map().home_of(p + i * PAGE_SIZE, 0), 5);
        }
    }

    #[test]
    fn round_robin_rotates_homes() {
        let mut a = GlobalAlloc::new(4);
        let p = a.alloc(8 * PAGE_SIZE, 8, Placement::RoundRobin, 0);
        let homes: Vec<usize> = (0..8)
            .map(|i| a.map().home_of(p + i * PAGE_SIZE, 0))
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn blocked_placement_chunks() {
        let mut a = GlobalAlloc::new(2);
        let p = a.alloc(8 * PAGE_SIZE, 8, Placement::Blocked { chunk_pages: 2 }, 0);
        let homes: Vec<usize> = (0..8)
            .map(|i| a.map().home_of(p + i * PAGE_SIZE, 0))
            .collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn first_touch_sticks() {
        let mut a = GlobalAlloc::new(4);
        let p = a.alloc(2 * PAGE_SIZE, 8, Placement::FirstTouch, 0);
        assert_eq!(a.map().home_of(p, 3), 3);
        assert_eq!(a.map().home_of(p, 1), 3, "first touch must stick");
        assert_eq!(a.map().home_of(p + PAGE_SIZE, 2), 2);
    }

    #[test]
    fn distinct_policies_never_share_a_page() {
        let mut a = GlobalAlloc::new(4);
        let p1 = a.alloc(100, 8, Placement::Node(1), 0);
        let p2 = a.alloc(100, 8, Placement::Node(2), 0);
        assert_ne!(page_of(p1), page_of(p2));
        assert_eq!(a.map().home_of(p1, 0), 1);
        assert_eq!(a.map().home_of(p2, 0), 2);
    }

    #[test]
    fn same_node_small_allocs_can_share_a_page() {
        let mut a = GlobalAlloc::new(4);
        let p1 = a.alloc(64, 8, Placement::Node(1), 0);
        let p2 = a.alloc(64, 8, Placement::Node(1), 0);
        assert_eq!(page_of(p1), page_of(p2));
    }
}
