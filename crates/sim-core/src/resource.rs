//! FCFS busy-until resources used to model contention.
//!
//! Every shared hardware component — a node's protocol handler, an I/O bus,
//! the SMP snooping bus, a DSM home directory — is modelled as a [`Resource`]
//! with a single `free_at` timestamp. A request arriving at virtual time `t`
//! with service duration `d` is serviced during `[max(t, free_at),
//! max(t, free_at) + d)`; the queueing delay `max(t, free_at) - t` is the
//! contention the paper repeatedly identifies as the source of
//! "contention-induced imbalance" (Barnes, Radix, Shear-Warp).

/// A first-come-first-served resource with one server.
#[derive(Clone, Debug, Default)]
pub struct Resource {
    free_at: u64,
    /// Total busy cycles (service time granted), for utilization reporting.
    pub busy: u64,
    /// Total queueing delay imposed on requests.
    pub queued: u64,
    /// Number of requests serviced.
    pub requests: u64,
}

impl Resource {
    /// New, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Service a request arriving at `arrive` for `dur` cycles.
    /// Returns `(start, end)` of the service interval.
    #[inline]
    pub fn serve(&mut self, arrive: u64, dur: u64) -> (u64, u64) {
        let start = self.free_at.max(arrive);
        let end = start + dur;
        self.queued += start - arrive;
        self.busy += dur;
        self.requests += 1;
        self.free_at = end;
        (start, end)
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Reset for a new timed region (clears the clock but keeps nothing).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = Resource::new();
        let (s1, e1) = r.serve(100, 10);
        assert_eq!((s1, e1), (100, 110));
        // Arrives while busy: queues.
        let (s2, e2) = r.serve(105, 10);
        assert_eq!((s2, e2), (110, 120));
        assert_eq!(r.queued, 5);
        // Arrives after idle: no queueing.
        let (s3, _) = r.serve(500, 10);
        assert_eq!(s3, 500);
        assert_eq!(r.queued, 5);
        assert_eq!(r.busy, 30);
        assert_eq!(r.requests, 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new();
        r.serve(0, 1000);
        r.reset();
        assert_eq!(r.free_at(), 0);
        assert_eq!(r.busy, 0);
    }
}
