//! Environment wiring of `RunConfig::new`: unset variables fall back to
//! defaults, well-formed values take effect, malformed values fail fast
//! with an error naming the variable (the bugfix — they used to be
//! silently swallowed, so a typoed `SIM_SHARDS` could run a different
//! engine than CI believed it was exercising).
//!
//! Mutating the process environment races with any concurrently running
//! test, so every test here takes one global mutex and restores the prior
//! values before releasing it (the CI sharded leg exports `SIM_SHARDS=4`
//! for the whole suite — clobbering it would corrupt unrelated tests).

use sim_core::{RunConfig, MAX_SHARD_BATCH};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

const VARS: [&str; 6] = [
    "SIM_SHARDS",
    "SIM_SHARD_FUSED",
    "SIM_SHARD_BATCH",
    "SIM_SHARING",
    "SIM_TRACE",
    "SIM_METRICS",
];

/// Run `f` with the `SIM_*` variables set exactly to `vars`
/// (everything else unset), restoring the previous environment after.
fn with_env<R>(vars: &[(&str, &str)], f: impl FnOnce() -> R + std::panic::UnwindSafe) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved: Vec<(&str, Option<String>)> =
        VARS.iter().map(|&v| (v, std::env::var(v).ok())).collect();
    for &v in &VARS {
        std::env::remove_var(v);
    }
    for &(k, val) in vars {
        std::env::set_var(k, val);
    }
    let out = std::panic::catch_unwind(f);
    for (v, old) in saved {
        match old {
            Some(val) => std::env::set_var(v, val),
            None => std::env::remove_var(v),
        }
    }
    match out {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Panic message of `f`, which must panic.
fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("expected a panic");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn unset_variables_use_defaults() {
    with_env(&[], || {
        let cfg = RunConfig::new(4);
        assert_eq!(cfg.shards, 1);
        assert!(cfg.shard_fused);
        assert!((1..=MAX_SHARD_BATCH).contains(&cfg.shard_batch));
        assert!(!cfg.sharing_profile);
        assert!(!cfg.trace);
        assert_eq!(cfg.metrics, 0);
    });
}

#[test]
fn well_formed_values_take_effect() {
    with_env(
        &[
            ("SIM_SHARDS", "4"),
            ("SIM_SHARD_FUSED", "0"),
            ("SIM_SHARD_BATCH", "128"),
        ],
        || {
            let cfg = RunConfig::new(4);
            assert_eq!(cfg.shards, 4);
            assert!(!cfg.shard_fused);
            assert_eq!(cfg.shard_batch, 128);
        },
    );
}

#[test]
fn diagnostics_variables_take_effect() {
    with_env(
        &[
            ("SIM_SHARING", "1"),
            ("SIM_TRACE", "1"),
            ("SIM_METRICS", "65536"),
        ],
        || {
            let cfg = RunConfig::new(4);
            assert!(cfg.sharing_profile);
            assert!(cfg.trace);
            assert_eq!(cfg.metrics, 65536);
        },
    );
}

#[test]
fn diagnostics_variables_turn_on_the_layers() {
    // End-to-end: a run launched with the env set actually attaches the
    // reports, so diagnostics can be flipped on without touching code.
    with_env(
        &[
            ("SIM_SHARING", "1"),
            ("SIM_TRACE", "1"),
            ("SIM_METRICS", "65536"),
        ],
        || {
            let cfg = RunConfig::new(2);
            let platform = Box::new(sim_core::NullPlatform::new(2));
            let stats = sim_core::run(platform, cfg, |p| {
                p.start_timing();
                p.work(100);
                p.barrier(0);
                p.stop_timing();
            });
            assert!(stats.sharing.is_some(), "SIM_SHARING=1 attaches sharing");
            assert!(stats.trace.is_some(), "SIM_TRACE=1 attaches the trace");
            let m = stats
                .metrics
                .as_ref()
                .expect("SIM_METRICS attaches metrics");
            assert_eq!(m.interval, 65536);
        },
    );
}

#[test]
fn malformed_shards_panics_naming_variable_and_value() {
    for bad in ["", "four", "0", "-1", "1e3", "999999999999"] {
        let msg = with_env(&[("SIM_SHARDS", bad)], || {
            panic_message(|| {
                let _ = RunConfig::new(4);
            })
        });
        assert!(
            msg.contains("SIM_SHARDS") && msg.contains(bad),
            "SIM_SHARDS={bad:?}: unhelpful panic message {msg:?}"
        );
    }
}

#[test]
fn malformed_fused_panics_naming_variable_and_value() {
    for bad in ["", "2", "yes please", "fused"] {
        let msg = with_env(&[("SIM_SHARD_FUSED", bad)], || {
            panic_message(|| {
                let _ = RunConfig::new(4);
            })
        });
        assert!(
            msg.contains("SIM_SHARD_FUSED") && msg.contains(bad),
            "SIM_SHARD_FUSED={bad:?}: unhelpful panic message {msg:?}"
        );
    }
}

#[test]
fn malformed_batch_panics_naming_variable_and_value() {
    for bad in ["", "lots", "0", "1048577"] {
        let msg = with_env(&[("SIM_SHARD_BATCH", bad)], || {
            panic_message(|| {
                let _ = RunConfig::new(4);
            })
        });
        assert!(
            msg.contains("SIM_SHARD_BATCH") && msg.contains(bad),
            "SIM_SHARD_BATCH={bad:?}: unhelpful panic message {msg:?}"
        );
    }
}

#[test]
fn malformed_diagnostics_panics_naming_variable_and_value() {
    for (var, bad) in [
        ("SIM_SHARING", "2"),
        ("SIM_SHARING", "shared"),
        ("SIM_TRACE", ""),
        ("SIM_TRACE", "yes please"),
        ("SIM_METRICS", "often"),
        ("SIM_METRICS", "-1"),
        ("SIM_METRICS", "1e6"),
    ] {
        let msg = with_env(&[(var, bad)], || {
            panic_message(|| {
                let _ = RunConfig::new(4);
            })
        });
        assert!(
            msg.contains(var) && msg.contains(bad),
            "{var}={bad:?}: unhelpful panic message {msg:?}"
        );
    }
}

#[test]
fn boolean_spellings_are_case_insensitive() {
    for (raw, want) in [
        ("1", true),
        ("true", true),
        ("ON", true),
        ("Yes", true),
        ("0", false),
        ("FALSE", false),
        ("off", false),
        ("no", false),
    ] {
        with_env(&[("SIM_SHARD_FUSED", raw)], || {
            assert_eq!(RunConfig::new(4).shard_fused, want, "raw = {raw:?}");
        });
        with_env(&[("SIM_SHARING", raw), ("SIM_TRACE", raw)], || {
            let cfg = RunConfig::new(4);
            assert_eq!(cfg.sharing_profile, want, "SIM_SHARING = {raw:?}");
            assert_eq!(cfg.trace, want, "SIM_TRACE = {raw:?}");
        });
    }
}
