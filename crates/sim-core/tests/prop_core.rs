#![allow(clippy::needless_range_loop)]
//! Property-based tests of the simulation substrate: the allocator never
//! hands out overlapping or misaligned memory, the cache model agrees with
//! a naive reference implementation, and FlatMem behaves like a byte array.

use proptest::prelude::*;
use sim_core::cache::{Cache, CacheGeom, LineState, Lookup};
use sim_core::{FlatMem, GlobalAlloc, Placement, HEAP_BASE};
use std::collections::HashMap;

fn placement_strategy() -> impl Strategy<Value = Placement> {
    prop_oneof![
        (0usize..8).prop_map(Placement::Node),
        Just(Placement::RoundRobin),
        (1u64..16).prop_map(|c| Placement::Blocked { chunk_pages: c }),
        Just(Placement::FirstTouch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocations_never_overlap(
        allocs in prop::collection::vec(
            (1u64..10_000, 0u32..12, placement_strategy()),
            1..40,
        )
    ) {
        let mut a = GlobalAlloc::new(8);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (bytes, align_pow, policy) in allocs {
            let align = 1u64 << align_pow;
            let addr = a.alloc(bytes, align, policy, 0);
            prop_assert_eq!(addr % align, 0, "misaligned");
            prop_assert!(addr >= HEAP_BASE);
            for &(s, e) in &regions {
                prop_assert!(addr >= e || addr + bytes <= s, "overlap");
            }
            regions.push((addr, addr + bytes));
        }
    }

    #[test]
    fn homes_are_always_in_range(
        allocs in prop::collection::vec((1u64..50_000, placement_strategy()), 1..20),
        probes in prop::collection::vec((0usize..20, 0u64..50_000), 1..50),
    ) {
        let nprocs = 8;
        let mut a = GlobalAlloc::new(nprocs);
        let mut bases = Vec::new();
        for (bytes, policy) in &allocs {
            bases.push((a.alloc(*bytes, 8, *policy, 0), *bytes));
        }
        for (idx, off) in probes {
            let (base, bytes) = bases[idx % bases.len()];
            let addr = base + off % bytes;
            let home = a.map().home_of(addr, (off % nprocs as u64) as usize);
            prop_assert!(home < nprocs);
            // Homes are stable.
            let again = a.map().home_of(addr, 0);
            prop_assert_eq!(home, again);
        }
    }

    #[test]
    fn flat_mem_behaves_like_bytes(
        ops in prop::collection::vec(
            (0u64..10_000, prop::sample::select(vec![1u8, 2, 4, 8]), any::<u64>()),
            1..200,
        )
    ) {
        let mut m = FlatMem::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (off, len, val) in ops {
            let addr = HEAP_BASE + off;
            m.store(addr, len, val);
            for (k, b) in val.to_le_bytes().iter().enumerate().take(len as usize) {
                model.insert(addr + k as u64, *b);
            }
            // Read back through the model.
            let got = m.load(addr, len);
            let mut want = [0u8; 8];
            for k in 0..len as usize {
                want[k] = *model.get(&(addr + k as u64)).unwrap_or(&0);
            }
            prop_assert_eq!(got, u64::from_le_bytes(want));
        }
    }

    #[test]
    fn cache_agrees_with_reference_lru(
        addrs in prop::collection::vec((0u64..4096u64, any::<bool>()), 1..400)
    ) {
        // 4-set, 2-way, 32B lines.
        let geom = CacheGeom { size: 256, line: 32, ways: 2 };
        let mut cache = Cache::new(geom);
        // Reference: per set, an LRU list of tags.
        let mut sets: HashMap<u64, Vec<u64>> = HashMap::new();
        for (addr, write) in addrs {
            let line = addr / 32;
            let set = line % 4;
            let lru = sets.entry(set).or_default();
            let hit_ref = lru.contains(&line);
            let lookup = cache.access(addr, write);
            let hit_got = !matches!(lookup, Lookup::Miss { .. });
            prop_assert_eq!(hit_got, hit_ref, "hit/miss divergence at {:#x}", addr);
            if hit_ref {
                lru.retain(|&t| t != line);
                lru.push(line);
            } else {
                cache.fill(addr, LineState::Exclusive);
                if lru.len() == 2 {
                    lru.remove(0);
                }
                lru.push(line);
            }
        }
    }
}
