#![allow(clippy::needless_range_loop)]
//! Randomized tests of the simulation substrate: the allocator never hands
//! out overlapping or misaligned memory, the cache model agrees with a
//! naive reference implementation, and FlatMem behaves like a byte array.
//!
//! These were originally `proptest` properties; they now run as seeded
//! [`XorShift64`] sweeps so the workspace builds with no external crates
//! (tier-1 verify runs with no crates.io access). Each test fixes its seeds,
//! so failures reproduce exactly.

use sim_core::cache::{Cache, CacheGeom, LineState, Lookup};
use sim_core::util::XorShift64;
use sim_core::{FlatMem, GlobalAlloc, Placement, HEAP_BASE};
use std::collections::HashMap;

const CASES: u64 = 64;

fn random_placement(rng: &mut XorShift64) -> Placement {
    match rng.below(4) {
        0 => Placement::Node(rng.below(8) as usize),
        1 => Placement::RoundRobin,
        2 => Placement::Blocked {
            chunk_pages: 1 + rng.below(15),
        },
        _ => Placement::FirstTouch,
    }
}

#[test]
fn allocations_never_overlap() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xA110C ^ (case << 8));
        let mut a = GlobalAlloc::new(8);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for _ in 0..(1 + rng.below(39)) {
            let bytes = 1 + rng.below(9_999);
            let align = 1u64 << rng.below(12);
            let policy = random_placement(&mut rng);
            let addr = a.alloc(bytes, align, policy, 0);
            assert_eq!(addr % align, 0, "misaligned (case {case})");
            assert!(addr >= HEAP_BASE);
            for &(s, e) in &regions {
                assert!(addr >= e || addr + bytes <= s, "overlap (case {case})");
            }
            regions.push((addr, addr + bytes));
        }
    }
}

#[test]
fn homes_are_always_in_range() {
    let nprocs = 8;
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x40E5 ^ (case << 8));
        let mut a = GlobalAlloc::new(nprocs);
        let mut bases = Vec::new();
        for _ in 0..(1 + rng.below(19)) {
            let bytes = 1 + rng.below(49_999);
            let policy = random_placement(&mut rng);
            bases.push((a.alloc(bytes, 8, policy, 0), bytes));
        }
        for _ in 0..(1 + rng.below(49)) {
            let (base, bytes) = bases[rng.below(bases.len() as u64) as usize];
            let off = rng.below(50_000);
            let addr = base + off % bytes;
            let home = a.map().home_of(addr, (off % nprocs as u64) as usize);
            assert!(home < nprocs);
            // Homes are stable.
            let again = a.map().home_of(addr, 0);
            assert_eq!(home, again);
        }
    }
}

#[test]
fn flat_mem_behaves_like_bytes() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF1A7 ^ (case << 8));
        let mut m = FlatMem::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for _ in 0..(1 + rng.below(199)) {
            let addr = HEAP_BASE + rng.below(10_000);
            let len = [1u8, 2, 4, 8][rng.below(4) as usize];
            let val = rng.next_u64();
            m.store(addr, len, val);
            for (k, b) in val.to_le_bytes().iter().enumerate().take(len as usize) {
                model.insert(addr + k as u64, *b);
            }
            // Read back through the model.
            let got = m.load(addr, len);
            let mut want = [0u8; 8];
            for k in 0..len as usize {
                want[k] = *model.get(&(addr + k as u64)).unwrap_or(&0);
            }
            assert_eq!(got, u64::from_le_bytes(want), "case {case}");
        }
    }
}

#[test]
fn cache_agrees_with_reference_lru() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xCAC4E ^ (case << 8));
        // 4-set, 2-way, 32B lines.
        let geom = CacheGeom {
            size: 256,
            line: 32,
            ways: 2,
        };
        let mut cache = Cache::new(geom);
        // Reference: per set, an LRU list of tags.
        let mut sets: HashMap<u64, Vec<u64>> = HashMap::new();
        for _ in 0..(1 + rng.below(399)) {
            let addr = rng.below(4096);
            let write = rng.below(2) == 1;
            let line = addr / 32;
            let set = line % 4;
            let lru = sets.entry(set).or_default();
            let hit_ref = lru.contains(&line);
            let lookup = cache.access(addr, write);
            let hit_got = !matches!(lookup, Lookup::Miss { .. });
            assert_eq!(hit_got, hit_ref, "hit/miss divergence at {addr:#x}");
            if hit_ref {
                lru.retain(|&t| t != line);
                lru.push(line);
            } else {
                cache.fill(addr, LineState::Exclusive);
                if lru.len() == 2 {
                    lru.remove(0);
                }
                lru.push(line);
            }
        }
    }
}
