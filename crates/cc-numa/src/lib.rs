//! # cc-numa — a directory-based, cache-coherent NUMA platform model
//!
//! Models the paper's hardware DSM simulator: an aggressive CC-NUMA machine
//! in the DASH tradition — one 300 MHz processor per node, 16 KB
//! direct-mapped L1s, 1 MB 4-way L2s with 64-byte lines, and a distributed
//! full-bit-vector directory kept at each line's home node.
//!
//! The data itself lives in one [`FlatMem`] (coherence guarantees a single
//! logical value); the model tracks per-processor cache tags and directory
//! state to price hits, local misses, clean/dirty remote misses (2- and
//! 3-hop), upgrades with sharer invalidation, and home-directory occupancy
//! (the contention term). Synchronization is hardware-cheap: an uncontended
//! lock costs about a remote miss, and barriers are tens-of-cycles per
//! processor — the key contrast with SVM that drives the paper's
//! performance-portability findings.

// Indexed loops over fixed coordinate dimensions are clearer than
// iterator adaptors in this numeric code.
#![allow(clippy::needless_range_loop)]
use sim_core::cache::{Cache, CacheGeom, LineState, Lookup};
use sim_core::platform::{Platform, Timing};
use sim_core::stats::{Bucket, ProcStats};
use sim_core::util::FxMap;
use sim_core::{Addr, FlatMem, PlacementMap, Resource};

/// Tunable parameters of the CC-NUMA platform (cycles at 300 MHz).
#[derive(Clone, Debug)]
pub struct DsmConfig {
    /// Number of nodes (one processor each).
    pub nprocs: usize,
    /// L1 geometry (paper: 16 KB direct-mapped).
    pub l1: CacheGeom,
    /// L2 geometry (paper: 1 MB 4-way, 64 B lines).
    pub l2: CacheGeom,
    /// Stall for an L1 miss that hits in L2.
    pub l2_hit: u64,
    /// Stall for an L2 miss satisfied from local memory.
    pub local_mem: u64,
    /// Extra latency for one network hop (request or reply).
    pub hop: u64,
    /// Directory/home memory occupancy per transaction (contention term).
    pub dir_occupancy: u64,
    /// Cycles to invalidate one sharer on a write/upgrade.
    pub inval_per_sharer: u64,
    /// Base cost of an uncontended lock acquire (beyond queueing).
    pub lock_base: u64,
    /// Per-processor cost component of a barrier episode.
    pub barrier_per_proc: u64,
    /// Fixed barrier release latency.
    pub barrier_latency: u64,
}

impl DsmConfig {
    /// The paper's configuration.
    pub fn paper(nprocs: usize) -> Self {
        Self {
            nprocs,
            l1: CacheGeom {
                size: 16 << 10,
                line: 64,
                ways: 1,
            },
            l2: CacheGeom {
                size: 1 << 20,
                line: 64,
                ways: 4,
            },
            l2_hit: 10,
            local_mem: 60,
            hop: 50,
            dir_occupancy: 20,
            inval_per_sharer: 25,
            lock_base: 120,
            barrier_per_proc: 40,
            barrier_latency: 200,
        }
    }
}

/// Directory entry for one cache line.
#[derive(Clone, Copy, Debug, Default)]
struct DirEnt {
    /// Bitmask of sharers (valid copies).
    sharers: u32,
    /// Exclusive/modified owner, if any.
    owner: Option<u8>,
}

struct Node {
    l1: Cache,
    l2: Cache,
    dir: Resource,
}

/// The CC-NUMA platform.
pub struct DsmPlatform {
    cfg: DsmConfig,
    mem: FlatMem,
    nodes: Vec<Node>,
    directory: FxMap<u64, DirEnt>,
    line_mask: u64,
    /// Shared event-trace sink for the run (None when tracing is off).
    trace: Option<sim_core::TraceHandle>,
    /// Shared interval-metrics sink for the run (None when metrics are off).
    metrics: Option<sim_core::MetricsHandle>,
}

impl DsmPlatform {
    /// Build the platform.
    pub fn new(cfg: DsmConfig) -> Self {
        assert!(cfg.nprocs <= 32, "sharer bitmask is 32 bits");
        let nodes = (0..cfg.nprocs)
            .map(|_| Node {
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
                dir: Resource::new(),
            })
            .collect();
        let line_mask = !(cfg.l2.line - 1);
        Self {
            cfg,
            mem: FlatMem::new(),
            nodes,
            directory: FxMap::default(),
            line_mask,
            trace: None,
            metrics: None,
        }
    }

    /// Boxed, type-erased platform.
    pub fn boxed(cfg: DsmConfig) -> Box<dyn Platform> {
        Box::new(Self::new(cfg))
    }

    /// The configuration in use.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    #[inline]
    fn line_of(&self, addr: Addr) -> u64 {
        addr & self.line_mask
    }

    /// Full miss handling: price the transaction and update directory +
    /// remote caches. Returns stall cycles (beyond L1/L2 lookup costs).
    fn service_miss(&mut self, t: &mut Timing, line: u64, write: bool) -> u64 {
        let pid = t.pid;
        let home = t.placement.home_of(line, pid);
        let remote = home != pid;
        let mut stall = if remote { 2 * self.cfg.hop } else { 0 };
        // Home directory occupancy (queueing under contention).
        if t.timing_on {
            let arrive = *t.now + stall;
            let (_, end) = self.nodes[home].dir.serve(arrive, self.cfg.dir_occupancy);
            stall = (end - *t.now).max(stall);
        } else {
            stall += self.cfg.dir_occupancy;
        }
        let ent = *self.directory.entry(line).or_default();
        // Dirty at a third node: 3-hop transfer + writeback.
        if let Some(owner) = ent.owner {
            let owner = owner as usize;
            if owner != pid {
                stall += 2 * self.cfg.hop; // forward + cache-to-cache reply
                                           // Owner's copy downgrades (read) or invalidates (write).
                let la = line;
                if write {
                    self.nodes[owner].l1.set_state(la, LineState::Invalid);
                    self.nodes[owner].l2.set_state(la, LineState::Invalid);
                } else {
                    self.nodes[owner].l1.set_state(la, LineState::Shared);
                    self.nodes[owner].l2.set_state(la, LineState::Shared);
                }
            }
        } else if !remote {
            stall += self.cfg.local_mem;
        } else {
            stall += self.cfg.local_mem; // memory access at the remote home
        }
        // Invalidate sharers on a write.
        let mut ent = ent;
        if write {
            let mut others = 0u64;
            for q in 0..self.cfg.nprocs {
                if q != pid && (ent.sharers >> q) & 1 == 1 {
                    self.nodes[q].l1.set_state(line, LineState::Invalid);
                    self.nodes[q].l2.set_state(line, LineState::Invalid);
                    others += 1;
                }
            }
            stall += others * self.cfg.inval_per_sharer;
            ent.sharers = 1 << pid;
            ent.owner = Some(pid as u8);
        } else {
            ent.sharers |= 1 << pid;
            if ent.owner == Some(pid as u8) {
                // kept
            } else {
                ent.owner = None;
            }
        }
        self.directory.insert(line, ent);
        if remote {
            t.stats.counters.remote_fetches += 1;
            t.stats.counters.bytes_transferred += self.cfg.l2.line;
            sim_core::trace::emit(
                &self.trace,
                t.timing_on,
                pid,
                *t.now,
                sim_core::EventKind::RemoteMiss { line, home },
            );
            sim_core::trace::sample_fetch(&self.trace, t.timing_on, pid, stall);
            sim_core::metrics::page_fetch(&self.metrics, t.timing_on, *t.now, line);
            // Critical-path provenance: the caller charges `stall` from
            // `now`, so the service interval is (now, now + stall]; the
            // home directory stands in as the serving side.
            sim_core::trace::emit_edge(
                &self.trace,
                t.timing_on,
                sim_core::DepKind::RemoteMiss { line },
                pid,
                *t.now,
                *t.now + stall,
                home,
                *t.now,
            );
        }
        stall
    }

    fn access(&mut self, t: &mut Timing, addr: Addr, write: bool) {
        t.stats.counters.accesses += 1;
        t.charge(Bucket::Compute, 1);
        let line = self.line_of(addr);
        let pid = t.pid;
        let l1 = self.nodes[pid].l1.access(addr, write);
        if l1 == Lookup::Hit {
            // L1 state must not be more permissive than L2; writes that hit
            // exclusive lines in L1 are fine.
            return;
        }
        let l2 = self.nodes[pid].l2.access(addr, write);
        match l2 {
            Lookup::Hit => {
                t.charge(Bucket::CacheStall, self.cfg.l2_hit);
                t.stats.counters.cache_misses += 1;
                let st = self.nodes[pid].l2.state_of(addr);
                self.nodes[pid].l1.fill(addr, st);
            }
            Lookup::UpgradeMiss => {
                // Present shared, needs ownership: directory upgrade.
                let stall = self.service_miss(t, line, true);
                let home = t.placement.home_of(line, pid);
                let bucket = if home == pid {
                    Bucket::CacheStall
                } else {
                    Bucket::DataWait
                };
                t.charge(bucket, stall);
                t.stats.counters.cache_misses += 1;
                self.nodes[pid].l2.set_state(addr, LineState::Modified);
                self.nodes[pid].l1.fill(addr, LineState::Modified);
            }
            Lookup::Miss { .. } => {
                let stall = self.cfg.l2_hit + self.service_miss(t, line, write);
                let home = t.placement.home_of(line, pid);
                let bucket = if home == pid {
                    Bucket::CacheStall
                } else {
                    Bucket::DataWait
                };
                t.charge(bucket, stall);
                t.stats.counters.cache_misses += 1;
                let state = if write {
                    LineState::Modified
                } else {
                    // Exclusive when no other sharer: silent upgrades later.
                    let ent = self.directory.get(&line).copied().unwrap_or_default();
                    if ent.sharers & !(1u32 << pid) == 0 {
                        LineState::Exclusive
                    } else {
                        LineState::Shared
                    }
                };
                if let Some((victim, dirty)) = self.nodes[pid].l2.fill(addr, state) {
                    // Dirty eviction writes back; directory drops the owner.
                    if dirty {
                        if let Some(ent) = self.directory.get_mut(&victim) {
                            if ent.owner == Some(pid as u8) {
                                ent.owner = None;
                                ent.sharers &= !(1u32 << pid);
                            }
                        }
                    }
                    self.nodes[pid].l1.set_state(victim, LineState::Invalid);
                }
                self.nodes[pid].l1.fill(addr, state);
            }
        }
    }
}

impl Platform for DsmPlatform {
    fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    fn min_cross_node_latency(&self) -> Option<u64> {
        // The cheapest cross-processor interaction crosses the network
        // once and touches the directory at the home.
        Some(self.cfg.hop + self.cfg.dir_occupancy)
    }

    fn load(&mut self, t: &mut Timing, addr: Addr, len: u8) -> u64 {
        self.access(t, addr, false);
        self.mem.load(addr, len)
    }

    fn store(&mut self, t: &mut Timing, addr: Addr, len: u8, val: u64) {
        self.access(t, addr, true);
        self.mem.store(addr, len, val);
    }

    // Bulk fast path: a word whose L1 line is present with sufficient
    // permission (any valid state for reads, Exclusive/Modified for writes
    // — a Shared write needs a directory upgrade) costs exactly Compute 1
    // and touches nothing but the L1 LRU state, so a run of k such words in
    // one line batches to counters + Compute k + one `hit_run` + k backing-
    // memory moves. Other words fall back to the scalar path.
    fn load_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        out: &mut [u64],
        budget: u64,
    ) -> usize {
        let pid = t.pid;
        let l1_line = self.nodes[pid].l1.geom().line;
        let mut done = 0usize;
        while done < out.len() {
            let a = addr + done as u64 * stride;
            if self.nodes[pid].l1.state_of(a) == LineState::Invalid {
                out[done] = self.load(t, a, len);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.nodes[pid].l1.line_base(a) + l1_line;
            let mut k = (out.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.nodes[pid].l1.hit_run(a, false, k);
            for i in 0..k {
                out[done + i as usize] = self.mem.load(a + i * stride, len);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn store_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        vals: &[u64],
        budget: u64,
    ) -> usize {
        let pid = t.pid;
        let l1_line = self.nodes[pid].l1.geom().line;
        let mut done = 0usize;
        while done < vals.len() {
            let a = addr + done as u64 * stride;
            if !matches!(
                self.nodes[pid].l1.state_of(a),
                LineState::Exclusive | LineState::Modified
            ) {
                self.store(t, a, len, vals[done]);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.nodes[pid].l1.line_base(a) + l1_line;
            let mut k = (vals.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.nodes[pid].l1.hit_run(a, true, k);
            for i in 0..k {
                self.mem.store(a + i * stride, len, vals[done + i as usize]);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn acquire_request(&mut self, t: &mut Timing, lock: u32) -> u64 {
        t.charge(Bucket::LockWait, self.cfg.lock_base / 2);
        if !t.timing_on {
            return *t.now;
        }
        let home = (lock as usize) % self.cfg.nprocs;
        let arrive = *t.now + self.cfg.hop;
        let (_, end) = self.nodes[home].dir.serve(arrive, self.cfg.dir_occupancy);
        end
    }

    fn acquire_grant(
        &mut self,
        _pid: usize,
        _lock: u32,
        grant_at: u64,
        _stats: &mut ProcStats,
        _placement: &mut PlacementMap,
        timing_on: bool,
    ) -> u64 {
        if !timing_on {
            return grant_at;
        }
        grant_at + self.cfg.hop + self.cfg.lock_base / 2
    }

    fn release(&mut self, t: &mut Timing, _lock: u32) -> u64 {
        // Hardware release: write the lock word; roughly one remote write.
        t.charge(Bucket::LockWait, self.cfg.lock_base / 2);
        *t.now
    }

    fn barrier_arrive(&mut self, t: &mut Timing, barrier: u32) -> u64 {
        if !t.timing_on {
            return *t.now;
        }
        // Atomic increment at the barrier's home: serialized at the home
        // directory.
        let home = (barrier as usize) % self.cfg.nprocs;
        let arrive = *t.now + self.cfg.hop;
        let (_, end) = self.nodes[home]
            .dir
            .serve(arrive, self.cfg.barrier_per_proc);
        end
    }

    fn barrier_release(
        &mut self,
        _barrier: u32,
        arrivals: &[u64],
        _stats: &mut [ProcStats],
        _placement: &mut PlacementMap,
        timing_on: bool,
    ) -> Vec<u64> {
        let last = arrivals.iter().copied().max().unwrap_or(0);
        if !timing_on {
            return arrivals.to_vec();
        }
        vec![last + self.cfg.barrier_latency; arrivals.len()]
    }

    fn reset_timing(&mut self) {
        for n in &mut self.nodes {
            n.dir.reset();
        }
    }

    fn set_trace(&mut self, trace: Option<sim_core::TraceHandle>) {
        self.trace = trace;
    }

    fn set_metrics(&mut self, metrics: Option<sim_core::MetricsHandle>) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{run, Placement, RunConfig, HEAP_BASE};

    fn dsm_run<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
        run(
            DsmPlatform::boxed(DsmConfig::paper(n)),
            RunConfig::new(n),
            f,
        )
    }

    #[test]
    fn data_round_trips_across_processors() {
        let got = std::sync::Mutex::new(0u64);
        dsm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 0 {
                p.store(HEAP_BASE, 8, 99);
            }
            p.barrier(1);
            if p.pid() == 1 {
                *got.lock().unwrap() = p.load(HEAP_BASE, 8);
            }
            p.barrier(2);
        });
        assert_eq!(*got.lock().unwrap(), 99);
    }

    #[test]
    fn repeated_access_hits_in_cache() {
        let stats = dsm_run(1, |p| {
            p.alloc_shared(4096, 8, Placement::Node(0));
            p.start_timing();
            for _ in 0..100 {
                p.load(HEAP_BASE, 8);
            }
        });
        // 1 miss, 99 hits: stall must be far below 100 * miss cost.
        assert!(stats.procs[0].counters.cache_misses <= 2);
    }

    #[test]
    fn remote_miss_costs_more_than_local() {
        let cfg = DsmConfig::paper(2);
        let local_total = {
            let stats = dsm_run(1, |p| {
                p.alloc_shared(4096, 8, Placement::Node(0));
                p.start_timing();
                p.load(HEAP_BASE, 8);
            });
            stats.total_cycles()
        };
        let remote_stats = dsm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                p.load(HEAP_BASE, 8);
            }
            p.barrier(1);
        });
        let remote_dw = remote_stats.procs[1].get(Bucket::DataWait);
        assert!(
            remote_dw >= 2 * cfg.hop,
            "remote load should pay hops, got {remote_dw}"
        );
        assert!(local_total > 0);
    }

    #[test]
    fn write_invalidates_sharers() {
        // p1 caches a line; p0 writes it; p1's next read misses again.
        let stats = dsm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                p.load(HEAP_BASE, 8); // p1 caches the line
            }
            p.barrier(1);
            if p.pid() == 0 {
                p.store(HEAP_BASE, 8, 5); // invalidates p1
            }
            p.barrier(2);
            if p.pid() == 1 {
                assert_eq!(p.load(HEAP_BASE, 8), 5); // must re-miss & see new value
            }
            p.barrier(3);
        });
        // p1: at least two misses on that line (initial + post-invalidate).
        assert!(stats.procs[1].counters.cache_misses >= 2);
    }

    #[test]
    fn barriers_are_cheap_compared_to_svm() {
        let stats = dsm_run(16, |p| {
            p.start_timing();
            p.barrier(1);
        });
        assert!(
            stats.total_cycles() < 3_000,
            "hardware barrier should be cheap, got {}",
            stats.total_cycles()
        );
    }

    #[test]
    fn deterministic() {
        let go = || {
            dsm_run(4, |p| {
                if p.pid() == 0 {
                    p.alloc_shared(1 << 16, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                for i in 0..64u64 {
                    p.store(HEAP_BASE + (i * 64 + p.pid() as u64 * 8) % 4096, 8, i);
                }
                p.barrier(1);
            })
        };
        assert_eq!(go().clocks, go().clocks);
    }
}
