//! Race detection through the DSM platform's access stream: the detector
//! sees line-grained hardware-coherent traffic exactly as it sees SVM page
//! traffic, because it hooks the generic scheduler paths every platform
//! shares.

use cc_numa::{DsmConfig, DsmPlatform};
use sim_core::{run, Placement, RunConfig, HEAP_BASE};

#[test]
fn unsynchronized_sharing_is_flagged_on_dsm() {
    let stats = run(
        DsmPlatform::boxed(DsmConfig::paper(2)),
        RunConfig::new(2).with_race_detection().named("dsm-racy"),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("shared", 64, 8, Placement::Node(0));
            }
            p.barrier(0);
            // Both processors write the same line, no synchronization.
            p.store(HEAP_BASE, 8, p.pid() as u64);
            p.barrier(1);
        },
    );
    assert!(stats.races() > 0);
    assert!(stats.race_summary().contains("shared"));
}

#[test]
fn lock_protected_sharing_is_clean_on_dsm() {
    let stats = run(
        DsmPlatform::boxed(DsmConfig::paper(4)),
        RunConfig::new(4).with_race_detection().named("dsm-clean"),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("shared", 64, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.lock(1);
            let v = p.load(HEAP_BASE, 8);
            p.store(HEAP_BASE, 8, v + 1);
            p.unlock(1);
            p.barrier(1);
        },
    );
    assert_eq!(stats.races(), 0, "{}", stats.race_summary());
}
