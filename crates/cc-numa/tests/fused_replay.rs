//! Differential check of the fused replay engine on the DSM platform:
//! a sharded run — under both the fused (single-thread event-loop) replay
//! engine and the classic (thread-per-processor) one — must produce
//! bit-identical `RunStats`, traces included, to the sequential oracle.
//!
//! The cross-platform grid lives in `tests/shard_equivalence.rs`; this is
//! the platform crate's own smoke check so a protocol change that breaks
//! replay determinism fails here, next to the code that caused it.

use cc_numa::{DsmConfig, DsmPlatform};
use sim_core::{run, Placement, Proc, RunConfig, HEAP_BASE};

const WORDS: u64 = 2048;
const ACC: u64 = HEAP_BASE + 4000 * 8;

fn kernel(p: &mut Proc) {
    let n = p.nprocs() as u64;
    let pid = p.pid() as u64;
    if p.pid() == 0 {
        p.alloc_shared_labeled("grid", 4096 * 8, 8, Placement::RoundRobin);
    }
    p.barrier(0);
    p.start_timing();
    for it in 0..3u64 {
        let mut i = pid;
        while i < WORDS {
            p.store(HEAP_BASE + i * 8, 8, i ^ it);
            i += n;
        }
        p.barrier(1 + it as u32);
        let mut buf = vec![0u64; (WORDS / n) as usize];
        p.load_slice(HEAP_BASE + ((pid + 1) % n) * 8, n * 8, 8, &mut buf);
        p.work_fused(3, buf.len() as u64);
        p.lock(7);
        let v = p.load(ACC, 8);
        p.store(ACC, 8, v.wrapping_add(buf.iter().sum()));
        p.unlock(7);
        p.barrier(100 + it as u32);
    }
    p.stop_timing();
    p.barrier(999);
}

fn cfg(shards: usize, fused: bool) -> RunConfig {
    RunConfig::new(4)
        .with_shards(shards)
        .with_shard_fused(fused)
        .with_trace()
}

#[test]
fn fused_replay_is_bit_identical_on_dsm() {
    let mk = || DsmPlatform::boxed(DsmConfig::paper(4));
    let oracle = run(mk(), cfg(1, true), kernel);
    let fused = run(mk(), cfg(4, true), kernel);
    let classic = run(mk(), cfg(4, false), kernel);
    assert_eq!(oracle, fused, "fused replay diverged on dsm");
    assert_eq!(oracle, classic, "classic sharded replay diverged on dsm");
}
