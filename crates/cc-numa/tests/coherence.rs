//! Directory-protocol behaviour tests: MESI-style transitions, 3-hop dirty
//! misses, sharer invalidation costs, home-directory contention, and
//! first-touch placement interactions.

use cc_numa::{DsmConfig, DsmPlatform};
use sim_core::{run, Bucket, Placement, RunConfig, HEAP_BASE};

fn dsm_run<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
    run(
        DsmPlatform::boxed(DsmConfig::paper(n)),
        RunConfig::new(n),
        f,
    )
}

#[test]
fn exclusive_lines_upgrade_silently() {
    // A processor that read a line nobody else holds pays nothing extra to
    // write it (E -> M), whereas a shared line costs an upgrade.
    let solo = dsm_run(1, |p| {
        p.alloc_shared(4096, 8, Placement::Node(0));
        p.start_timing();
        p.load(HEAP_BASE, 8); // E
        p.store(HEAP_BASE, 8, 1); // silent E->M
    });
    // Compute+first miss only: the store after the load must not miss again.
    assert!(solo.procs[0].counters.cache_misses <= 2);
}

#[test]
fn three_hop_dirty_miss_costs_more_than_clean() {
    let cfg = DsmConfig::paper(3);
    // Clean remote read: data at home memory.
    let clean = dsm_run(3, |p| {
        if p.pid() == 0 {
            p.alloc_shared(4096, 8, Placement::Node(0));
        }
        p.barrier(0);
        p.start_timing();
        if p.pid() == 1 {
            p.load(HEAP_BASE, 8);
        }
        p.barrier(1);
    });
    // Dirty at a third node: p2 wrote it; p1 reads -> 3-hop.
    let dirty = dsm_run(3, |p| {
        if p.pid() == 0 {
            p.alloc_shared(4096, 8, Placement::Node(0));
        }
        p.barrier(0);
        p.start_timing();
        if p.pid() == 2 {
            p.store(HEAP_BASE, 8, 9);
        }
        p.barrier(1);
        if p.pid() == 1 {
            p.load(HEAP_BASE, 8);
        }
        p.barrier(2);
    });
    let dw_clean = clean.procs[1].get(Bucket::DataWait);
    let dw_dirty = dirty.procs[1].get(Bucket::DataWait);
    // The forward+reply hops outweigh the memory access the cache-to-cache
    // transfer saves.
    let saved_mem = 60; // cfg.local_mem
    assert!(
        dw_dirty + saved_mem >= dw_clean + 2 * cfg.hop,
        "3-hop should cost more: clean={dw_clean} dirty={dw_dirty}"
    );
    assert!(dw_dirty > dw_clean);
}

#[test]
fn write_invalidation_cost_scales_with_sharers() {
    // One sharer vs seven sharers: the writer pays per-sharer invalidation.
    let cost = |nshare: usize| {
        let stats = dsm_run(8, move |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() >= 1 && p.pid() <= nshare {
                p.load(HEAP_BASE, 8);
            }
            p.barrier(1);
            if p.pid() == 0 {
                p.store(HEAP_BASE, 8, 5);
            }
            p.barrier(2);
        });
        stats.procs[0].get(Bucket::CacheStall) + stats.procs[0].get(Bucket::DataWait)
    };
    assert!(
        cost(7) > cost(1),
        "more sharers must cost more to invalidate"
    );
}

#[test]
fn first_touch_places_pages_at_the_toucher() {
    // With first-touch placement, a processor that initializes its own
    // partition reads it later without remote misses.
    let stats = dsm_run(4, |p| {
        if p.pid() == 0 {
            p.alloc_shared(4 * 4096, 8, Placement::FirstTouch);
        }
        p.barrier(0);
        // Parallel first touch (untimed).
        let mine = HEAP_BASE + p.pid() as u64 * 4096;
        for i in 0..512u64 {
            p.store(mine + i * 8, 8, i);
        }
        p.barrier(1);
        p.start_timing();
        for i in 0..512u64 {
            p.load(mine + i * 8, 8);
        }
        p.barrier(2);
    });
    for q in 0..4 {
        assert_eq!(
            stats.procs[q].counters.remote_fetches, 0,
            "p{q} should only hit local memory"
        );
    }
}

#[test]
fn directory_contention_queues_requests() {
    // All processors hammer lines homed at node 0: home-directory occupancy
    // must make this slower than spreading homes round-robin.
    let hot = dsm_run(8, |p| {
        if p.pid() == 0 {
            p.alloc_shared(1 << 20, 8, Placement::Node(0));
        }
        p.barrier(0);
        p.start_timing();
        let base = HEAP_BASE + (p.pid() as u64) * (64 << 10);
        for i in 0..512u64 {
            p.load(base + i * 64, 8);
        }
        p.barrier(1);
    })
    .total_cycles();
    let spread = dsm_run(8, |p| {
        if p.pid() == 0 {
            p.alloc_shared(1 << 20, 8, Placement::RoundRobin);
        }
        p.barrier(0);
        p.start_timing();
        let base = HEAP_BASE + (p.pid() as u64) * (64 << 10);
        for i in 0..512u64 {
            p.load(base + i * 64, 8);
        }
        p.barrier(1);
    })
    .total_cycles();
    assert!(
        hot > spread,
        "single hot home should queue: hot={hot} spread={spread}"
    );
}
