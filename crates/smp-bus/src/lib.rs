//! # smp-bus — a bus-based, centralized-memory SMP platform model
//!
//! Models the paper's real machine: a 16-processor SGI Challenge — 150 MHz
//! processors, 16 KB first-level caches, unified 1 MB second-level caches
//! with 128-byte lines, and a 1.2 GB/s shared snooping bus in front of
//! centralized memory.
//!
//! All misses and upgrade transactions cross the single bus, which is
//! modelled as a shared FCFS [`Resource`]: its saturation is what makes
//! Radix "heavy communication and capacity traffic hurt ... due to the bus
//! bandwidth limitation" on this platform. Invalidation is by snooping, so a
//! write transaction invalidates every other cache's copy at no extra
//! per-sharer message cost. Synchronization is cheap: locks and barriers are
//! a handful of bus transactions.

// Indexed loops over fixed coordinate dimensions are clearer than
// iterator adaptors in this numeric code.
#![allow(clippy::needless_range_loop)]
use sim_core::cache::{Cache, CacheGeom, LineState, Lookup};
use sim_core::platform::{Platform, Timing};
use sim_core::stats::{Bucket, ProcStats};
use sim_core::util::FxMap;
use sim_core::{Addr, FlatMem, PlacementMap, Resource};

/// Tunable parameters of the SMP platform (cycles at 150 MHz).
#[derive(Clone, Debug)]
pub struct SmpConfig {
    /// Number of processors.
    pub nprocs: usize,
    /// L1 geometry (16 KB direct-mapped).
    pub l1: CacheGeom,
    /// L2 geometry (1 MB 4-way, 128 B lines).
    pub l2: CacheGeom,
    /// Stall for an L1 miss that hits in L2.
    pub l2_hit: u64,
    /// DRAM access latency beyond bus occupancy.
    pub mem_latency: u64,
    /// Bus arbitration cycles per transaction.
    pub bus_arb: u64,
    /// Bus occupancy for a full line transfer (128 B at 1.2 GB/s ≈ 16 cy
    /// at 150 MHz).
    pub bus_line: u64,
    /// Bus occupancy for an address-only transaction (upgrade, lock).
    pub bus_addr: u64,
    /// Cost of an uncontended lock acquire beyond its bus transaction.
    pub lock_base: u64,
    /// Fixed barrier release cost.
    pub barrier_latency: u64,
}

impl SmpConfig {
    /// The paper's SGI Challenge configuration.
    pub fn paper(nprocs: usize) -> Self {
        Self {
            nprocs,
            l1: CacheGeom {
                size: 16 << 10,
                line: 128,
                ways: 1,
            },
            l2: CacheGeom {
                size: 1 << 20,
                line: 128,
                ways: 4,
            },
            l2_hit: 8,
            mem_latency: 40,
            bus_arb: 6,
            bus_line: 16,
            bus_addr: 4,
            lock_base: 30,
            barrier_latency: 100,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct SnoopEnt {
    sharers: u32,
    owner: Option<u8>,
}

/// The bus-based SMP platform.
pub struct SmpPlatform {
    cfg: SmpConfig,
    mem: FlatMem,
    caches: Vec<(Cache, Cache)>,
    bus: Resource,
    snoop: FxMap<u64, SnoopEnt>,
    line_mask: u64,
    /// Shared event-trace sink for the run (None when tracing is off).
    trace: Option<sim_core::TraceHandle>,
    /// Shared interval-metrics sink for the run (None when metrics are off).
    metrics: Option<sim_core::MetricsHandle>,
}

impl SmpPlatform {
    /// Build the platform.
    pub fn new(cfg: SmpConfig) -> Self {
        assert!(cfg.nprocs <= 32);
        let caches = (0..cfg.nprocs)
            .map(|_| (Cache::new(cfg.l1), Cache::new(cfg.l2)))
            .collect();
        let line_mask = !(cfg.l2.line - 1);
        Self {
            cfg,
            mem: FlatMem::new(),
            caches,
            bus: Resource::new(),
            snoop: FxMap::default(),
            line_mask,
            trace: None,
            metrics: None,
        }
    }

    /// Boxed, type-erased platform.
    pub fn boxed(cfg: SmpConfig) -> Box<dyn Platform> {
        Box::new(Self::new(cfg))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SmpConfig {
        &self.cfg
    }

    /// One bus transaction: arbitration + occupancy, with queueing.
    fn bus_txn(&mut self, t: &mut Timing, occupancy: u64) -> u64 {
        if !t.timing_on {
            return 0;
        }
        let (_, end) = self.bus.serve(*t.now, self.cfg.bus_arb + occupancy);
        end - *t.now
    }

    fn service_miss(&mut self, t: &mut Timing, line: u64, write: bool) -> u64 {
        let pid = t.pid;
        let ent = *self.snoop.entry(line).or_default();
        let mut stall;
        let mut src = pid;
        if let Some(owner) = ent.owner {
            let owner = owner as usize;
            if owner != pid {
                src = owner;
                // Cache-to-cache: one line transfer on the bus. The closest
                // thing a snooping bus has to a "remote" miss — trace it
                // with the supplying cache as the home.
                sim_core::trace::emit(
                    &self.trace,
                    t.timing_on,
                    pid,
                    *t.now,
                    sim_core::EventKind::RemoteMiss { line, home: owner },
                );
                stall = self.bus_txn(t, self.cfg.bus_line);
                if write {
                    self.caches[owner].0.set_state(line, LineState::Invalid);
                    self.caches[owner].1.set_state(line, LineState::Invalid);
                } else {
                    self.caches[owner].0.set_state(line, LineState::Shared);
                    self.caches[owner].1.set_state(line, LineState::Shared);
                }
            } else {
                stall = self.bus_txn(t, self.cfg.bus_addr);
            }
        } else {
            // From memory.
            stall = self.bus_txn(t, self.cfg.bus_line) + self.cfg.mem_latency;
        }
        let mut ent = ent;
        if write {
            // Snooping invalidation: every other copy drops at once (no
            // per-sharer messages on a broadcast bus).
            for q in 0..self.cfg.nprocs {
                if q != pid && (ent.sharers >> q) & 1 == 1 {
                    self.caches[q].0.set_state(line, LineState::Invalid);
                    self.caches[q].1.set_state(line, LineState::Invalid);
                }
            }
            ent.sharers = 1 << pid;
            ent.owner = Some(pid as u8);
        } else {
            ent.sharers |= 1 << pid;
            if ent.owner != Some(pid as u8) {
                ent.owner = None;
            }
        }
        self.snoop.insert(line, ent);
        if t.timing_on {
            stall += 0;
        }
        t.stats.counters.bytes_transferred += self.cfg.l2.line;
        // Every bus-serviced miss is a data-latency sample on this platform.
        sim_core::trace::sample_fetch(&self.trace, t.timing_on, t.pid, stall);
        sim_core::metrics::page_fetch(&self.metrics, t.timing_on, *t.now, line);
        // Critical-path provenance: the caller charges `stall` from `now`,
        // so the service interval is (now, now + stall]; the supplying
        // cache (if any) is the serving side, otherwise memory (self).
        sim_core::trace::emit_edge(
            &self.trace,
            t.timing_on,
            sim_core::DepKind::RemoteMiss { line },
            pid,
            *t.now,
            *t.now + stall,
            src,
            *t.now,
        );
        stall
    }

    fn access(&mut self, t: &mut Timing, addr: Addr, write: bool) {
        t.stats.counters.accesses += 1;
        t.charge(Bucket::Compute, 1);
        let line = addr & self.line_mask;
        let pid = t.pid;
        if self.caches[pid].0.access(addr, write) == Lookup::Hit {
            return;
        }
        match self.caches[pid].1.access(addr, write) {
            Lookup::Hit => {
                t.charge(Bucket::CacheStall, self.cfg.l2_hit);
                t.stats.counters.cache_misses += 1;
                let st = self.caches[pid].1.state_of(addr);
                self.caches[pid].0.fill(addr, st);
            }
            Lookup::UpgradeMiss => {
                let mut stall = self.service_miss(t, line, true);
                if stall == 0 {
                    stall = self.cfg.bus_arb + self.cfg.bus_addr;
                }
                t.charge(Bucket::DataWait, stall);
                t.stats.counters.cache_misses += 1;
                self.caches[pid].1.set_state(addr, LineState::Modified);
                self.caches[pid].0.fill(addr, LineState::Modified);
            }
            Lookup::Miss { .. } => {
                let stall = self.cfg.l2_hit + self.service_miss(t, line, write);
                // On a centralized-memory machine every miss is "local", but
                // coherence misses (someone else held the line) are the
                // communication the paper tracks; approximate by bucketing
                // cache-to-cache transfers as DataWait inside service_miss
                // via the snoop owner check — here we charge CacheStall.
                t.charge(Bucket::CacheStall, stall);
                t.stats.counters.cache_misses += 1;
                let ent = self.snoop.get(&line).copied().unwrap_or_default();
                let state = if write {
                    LineState::Modified
                } else if ent.sharers & !(1u32 << pid) == 0 {
                    LineState::Exclusive
                } else {
                    LineState::Shared
                };
                if let Some((victim, dirty)) = self.caches[pid].1.fill(addr, state) {
                    if dirty {
                        // Write-back occupies the bus.
                        self.bus_txn(t, self.cfg.bus_line);
                        if let Some(e) = self.snoop.get_mut(&victim) {
                            if e.owner == Some(pid as u8) {
                                e.owner = None;
                                e.sharers &= !(1u32 << pid);
                            }
                        }
                    }
                    self.caches[pid].0.set_state(victim, LineState::Invalid);
                }
                self.caches[pid].0.fill(addr, state);
            }
        }
    }
}

impl Platform for SmpPlatform {
    fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    fn min_cross_node_latency(&self) -> Option<u64> {
        // Processors interact only through bus transactions: the cheapest
        // is an arbitration plus an address-only (upgrade/lock) cycle.
        Some(self.cfg.bus_arb + self.cfg.bus_addr)
    }

    fn load(&mut self, t: &mut Timing, addr: Addr, len: u8) -> u64 {
        self.access(t, addr, false);
        self.mem.load(addr, len)
    }

    fn store(&mut self, t: &mut Timing, addr: Addr, len: u8, val: u64) {
        self.access(t, addr, true);
        self.mem.store(addr, len, val);
    }

    // Bulk fast path: an L1 hit (valid line for reads, owned line for
    // writes — Shared writes need a bus upgrade) costs exactly Compute 1
    // and never touches the bus or snoop state, so a run of k such words
    // within one line batches to counters + Compute k + one `hit_run` + k
    // backing-memory moves. Other words fall back to the scalar path.
    fn load_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        out: &mut [u64],
        budget: u64,
    ) -> usize {
        let pid = t.pid;
        let l1_line = self.caches[pid].0.geom().line;
        let mut done = 0usize;
        while done < out.len() {
            let a = addr + done as u64 * stride;
            if self.caches[pid].0.state_of(a) == LineState::Invalid {
                out[done] = self.load(t, a, len);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.caches[pid].0.line_base(a) + l1_line;
            let mut k = (out.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.caches[pid].0.hit_run(a, false, k);
            for i in 0..k {
                out[done + i as usize] = self.mem.load(a + i * stride, len);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn store_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        vals: &[u64],
        budget: u64,
    ) -> usize {
        let pid = t.pid;
        let l1_line = self.caches[pid].0.geom().line;
        let mut done = 0usize;
        while done < vals.len() {
            let a = addr + done as u64 * stride;
            if !matches!(
                self.caches[pid].0.state_of(a),
                LineState::Exclusive | LineState::Modified
            ) {
                self.store(t, a, len, vals[done]);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.caches[pid].0.line_base(a) + l1_line;
            let mut k = (vals.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.caches[pid].0.hit_run(a, true, k);
            for i in 0..k {
                self.mem.store(a + i * stride, len, vals[done + i as usize]);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn acquire_request(&mut self, t: &mut Timing, _lock: u32) -> u64 {
        t.charge(Bucket::LockWait, self.cfg.lock_base);
        if !t.timing_on {
            return *t.now;
        }
        let stall = self.bus_txn(t, self.cfg.bus_addr);
        *t.now + stall
    }

    fn acquire_grant(
        &mut self,
        _pid: usize,
        _lock: u32,
        grant_at: u64,
        _stats: &mut ProcStats,
        _placement: &mut PlacementMap,
        timing_on: bool,
    ) -> u64 {
        if !timing_on {
            return grant_at;
        }
        grant_at + self.cfg.lock_base
    }

    fn release(&mut self, t: &mut Timing, _lock: u32) -> u64 {
        t.charge(Bucket::LockWait, self.cfg.lock_base / 2);
        if t.timing_on {
            self.bus_txn(t, self.cfg.bus_addr);
        }
        *t.now
    }

    fn barrier_arrive(&mut self, t: &mut Timing, _barrier: u32) -> u64 {
        if !t.timing_on {
            return *t.now;
        }
        // Atomic increment: one bus transaction (serializes arrivals).
        let stall = self.bus_txn(t, self.cfg.bus_addr);
        *t.now + stall
    }

    fn barrier_release(
        &mut self,
        _barrier: u32,
        arrivals: &[u64],
        _stats: &mut [ProcStats],
        _placement: &mut PlacementMap,
        timing_on: bool,
    ) -> Vec<u64> {
        let last = arrivals.iter().copied().max().unwrap_or(0);
        if !timing_on {
            return arrivals.to_vec();
        }
        vec![last + self.cfg.barrier_latency; arrivals.len()]
    }

    fn reset_timing(&mut self) {
        self.bus.reset();
    }

    fn set_trace(&mut self, trace: Option<sim_core::TraceHandle>) {
        self.trace = trace;
    }

    fn set_metrics(&mut self, metrics: Option<sim_core::MetricsHandle>) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{run, Placement, RunConfig, HEAP_BASE};

    fn smp_run<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
        run(
            SmpPlatform::boxed(SmpConfig::paper(n)),
            RunConfig::new(n),
            f,
        )
    }

    #[test]
    fn data_round_trips() {
        let got = std::sync::Mutex::new(0u64);
        smp_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 0 {
                p.store(HEAP_BASE, 8, 123);
            }
            p.barrier(1);
            if p.pid() == 1 {
                *got.lock().unwrap() = p.load(HEAP_BASE, 8);
            }
            p.barrier(2);
        });
        assert_eq!(*got.lock().unwrap(), 123);
    }

    #[test]
    fn bus_contention_slows_everyone() {
        // 8 procs streaming through memory: bus queueing should make the
        // parallel run take much longer than 1/8 of serial traffic time.
        let serial = smp_run(1, |p| {
            p.alloc_shared(1 << 20, 8, Placement::Node(0));
            p.start_timing();
            for i in 0..2048u64 {
                p.load(HEAP_BASE + i * 128, 8);
            }
        })
        .total_cycles();
        let par = smp_run(8, |p| {
            if p.pid() == 0 {
                p.alloc_shared(8 << 20, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            let base = HEAP_BASE + p.pid() as u64 * (1 << 20);
            for i in 0..2048u64 {
                p.load(base + i * 128, 8);
            }
            p.barrier(1);
        })
        .total_cycles();
        // Perfect scaling would give par == serial (each does the same work).
        // The shared bus must make it measurably slower.
        assert!(
            par as f64 > serial as f64 * 1.5,
            "expected bus contention: serial={serial} par={par}"
        );
    }

    #[test]
    fn snooping_invalidation_works() {
        let got = std::sync::Mutex::new(0u64);
        smp_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                p.load(HEAP_BASE, 8);
            }
            p.barrier(1);
            if p.pid() == 0 {
                p.store(HEAP_BASE, 8, 7);
            }
            p.barrier(2);
            if p.pid() == 1 {
                *got.lock().unwrap() = p.load(HEAP_BASE, 8);
            }
            p.barrier(3);
        });
        assert_eq!(*got.lock().unwrap(), 7);
    }

    #[test]
    fn barriers_and_locks_are_cheap() {
        let stats = smp_run(16, |p| {
            p.start_timing();
            p.lock(0);
            p.unlock(0);
            p.barrier(1);
        });
        assert!(
            stats.total_cycles() < 5_000,
            "hardware sync should be cheap, got {}",
            stats.total_cycles()
        );
    }

    #[test]
    fn deterministic() {
        let go = || {
            smp_run(4, |p| {
                if p.pid() == 0 {
                    p.alloc_shared(1 << 16, 8, Placement::Node(0));
                }
                p.barrier(0);
                p.start_timing();
                for i in 0..128u64 {
                    p.store(HEAP_BASE + (i * 128 + p.pid() as u64 * 16) % 8192, 8, i);
                }
                p.barrier(1);
            })
        };
        assert_eq!(go().clocks, go().clocks);
    }
}
