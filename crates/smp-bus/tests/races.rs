//! Race detection through the SMP platform's access stream: bus-based
//! snooping changes the *cost* of sharing, never its happens-before
//! structure, so the same detector verdicts hold here.

use sim_core::{run, Placement, RunConfig, HEAP_BASE};
use smp_bus::{SmpConfig, SmpPlatform};

#[test]
fn unsynchronized_sharing_is_flagged_on_smp() {
    let stats = run(
        SmpPlatform::boxed(SmpConfig::paper(2)),
        RunConfig::new(2).with_race_detection().named("smp-racy"),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("shared", 64, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.store(HEAP_BASE, 8, p.pid() as u64);
            p.barrier(1);
        },
    );
    assert!(stats.races() > 0);
    assert!(stats.race_summary().contains("shared"));
}

#[test]
fn barrier_phased_sharing_is_clean_on_smp() {
    let stats = run(
        SmpPlatform::boxed(SmpConfig::paper(4)),
        RunConfig::new(4).with_race_detection().named("smp-clean"),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("shared", 4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            // Disjoint writes, then barrier, then everyone reads everything.
            p.store(HEAP_BASE + 8 * p.pid() as u64, 8, p.pid() as u64);
            p.barrier(1);
            for q in 0..p.nprocs() {
                p.load(HEAP_BASE + 8 * q as u64, 8);
            }
            p.barrier(2);
        },
    );
    assert_eq!(stats.races(), 0, "{}", stats.race_summary());
}
