//! Bus-platform behaviour tests: snooping invalidation, cache-to-cache
//! transfers, bus saturation, and write-back traffic.

use sim_core::{run, Bucket, Placement, RunConfig, HEAP_BASE};
use smp_bus::{SmpConfig, SmpPlatform};

fn smp_run<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
    run(
        SmpPlatform::boxed(SmpConfig::paper(n)),
        RunConfig::new(n),
        f,
    )
}

#[test]
fn bus_utilization_grows_with_processors() {
    let miss_storm = |nprocs: usize| {
        smp_run(nprocs, move |p| {
            if p.pid() == 0 {
                p.alloc_shared(16 << 20, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            let base = HEAP_BASE + (p.pid() as u64) * (1 << 20);
            for i in 0..1024u64 {
                p.load(base + i * 128, 8); // one miss per access
            }
            p.barrier(1);
        })
        .total_cycles()
    };
    let t1 = miss_storm(1);
    let t8 = miss_storm(8);
    // With a saturated bus, 8 processors doing the same per-processor work
    // take much longer than one (no bus sharing would give t8 ~= t1).
    assert!(
        t8 as f64 > 2.0 * t1 as f64,
        "bus must saturate: t1={t1} t8={t8}"
    );
}

#[test]
fn snooping_invalidation_is_flat_in_sharers() {
    // On a broadcast bus, invalidating 7 sharers costs the writer the same
    // single transaction as invalidating 1 (unlike the directory machine).
    let cost = |nshare: usize| {
        let stats = smp_run(8, move |p| {
            if p.pid() == 0 {
                p.alloc_shared(4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() >= 1 && p.pid() <= nshare {
                p.load(HEAP_BASE, 8);
            }
            p.barrier(1);
            if p.pid() == 0 {
                p.store(HEAP_BASE, 8, 5);
            }
            p.barrier(2);
        });
        stats.procs[0].get(Bucket::DataWait) + stats.procs[0].get(Bucket::CacheStall)
    };
    let c1 = cost(1);
    let c7 = cost(7);
    assert!(
        c7 <= c1 + 8,
        "snoop invalidation should not scale with sharers: c1={c1} c7={c7}"
    );
}

#[test]
fn cache_to_cache_supplies_dirty_lines() {
    let got = std::sync::Mutex::new(0u64);
    smp_run(2, |p| {
        if p.pid() == 0 {
            p.alloc_shared(4096, 8, Placement::Node(0));
        }
        p.barrier(0);
        p.start_timing();
        if p.pid() == 0 {
            p.store(HEAP_BASE, 8, 77); // dirty in p0's cache
        }
        p.barrier(1);
        if p.pid() == 1 {
            let v = p.load(HEAP_BASE, 8); // cache-to-cache
            *got.lock().unwrap() = v;
        }
        p.barrier(2);
    });
    assert_eq!(*got.lock().unwrap(), 77);
}

#[test]
fn dirty_evictions_write_back_over_the_bus() {
    // Write far more dirty lines than L2 capacity: evictions must add bus
    // traffic beyond the initial fills.
    let stats = smp_run(1, |p| {
        p.alloc_shared(4 << 20, 8, Placement::Node(0));
        p.start_timing();
        for i in 0..(2 << 20) / 128u64 {
            p.store(HEAP_BASE + i * 128, 8, i); // 2 MB of dirty lines, 1 MB L2
        }
    });
    // At least half the stores must have evicted a dirty victim.
    let c = &stats.procs[0].counters;
    assert!(c.cache_misses as f64 > 0.9 * (2 << 20) as f64 / 128.0);
}

#[test]
fn deterministic_under_contention() {
    let go = || {
        smp_run(8, |p| {
            if p.pid() == 0 {
                p.alloc_shared(1 << 20, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            for i in 0..256u64 {
                p.store(
                    HEAP_BASE + ((i * 128 + p.pid() as u64 * 8192) % (1 << 20)),
                    8,
                    i,
                );
                if i % 64 == 0 {
                    p.lock(3);
                    p.work(5);
                    p.unlock(3);
                }
            }
            p.barrier(1);
        })
        .clocks
    };
    assert_eq!(go(), go());
}
