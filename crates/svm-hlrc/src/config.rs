//! Cost model for the SVM platform.
//!
//! Cycle counts are at the paper's 200 MHz node clock (1 cycle = 5 ns).
//! The paper's communication parameters: Myrinet-class interconnect,
//! 400 MB/s memory buses, 100 MB/s I/O buses (through which network packets
//! flow), 4 KB pages, 8 KB direct-mapped L1 + 512 KB 2-way L2 with 32-byte
//! lines. The derived unloaded page-fetch cost is ≈ 20 K cycles ≈ 100 µs,
//! in the range reported for mid-90s SVM systems.

use sim_core::CacheGeom;

/// All tunable parameters of the HLRC SVM platform.
#[derive(Clone, Debug)]
pub struct SvmConfig {
    /// Number of processors in total.
    pub nprocs: usize,
    /// Processors per SVM node (1 = the paper's configuration; >1 models
    /// the paper's future-work platform of SMP nodes connected by SVM:
    /// processors within a node share page frames hardware-coherently and
    /// exchange protocol messages at intra-node cost).
    pub procs_per_node: usize,
    /// Cycles for an intra-node protocol interaction (bus transaction
    /// class, replacing the wire+I/O path between co-located processors).
    pub intra_node_cost: u64,
    /// First-level cache geometry (paper: 8 KB direct-mapped, 32 B lines).
    pub l1: CacheGeom,
    /// Second-level cache geometry (paper: 512 KB 2-way, 32 B lines).
    pub l2: CacheGeom,
    /// Stall cycles for an L1 miss that hits in L2.
    pub l2_hit: u64,
    /// Stall cycles for an L2 miss serviced from local memory.
    pub mem_latency: u64,
    /// Protocol page size in bytes (4 KB in the paper; powers of two from
    /// 1 KB to 16 KB are supported for the page-size ablation study —
    /// coherence units larger than the allocator's 4 KB placement pages
    /// take the home of their first placement page).
    pub page_size: u64,

    /// Cycles to take a page fault / protection trap and enter the handler.
    pub fault_trap: u64,
    /// Cycles of protocol handler processing per incoming/outgoing message.
    pub handler_cost: u64,
    /// Wire latency of one network hop.
    pub wire_latency: u64,
    /// I/O bus occupancy in cycles per byte (100 MB/s at 200 MHz = 2 cy/B).
    pub io_cyc_per_byte: u64,
    /// Memory-bus copy cost in cycles per byte (400 MB/s = 0.5 cy/B; we use
    /// cycles per 2 bytes to stay in integers).
    pub memcpy_cyc_per_2bytes: u64,
    /// Control-message payload bytes (requests, lock grants, barrier msgs).
    pub ctrl_msg_bytes: u64,

    /// Cycles to compare one 4-byte word when creating a diff.
    pub diff_scan_per_word: u64,
    /// Cycles to apply one 4-byte word of a diff at the home.
    pub diff_apply_per_word: u64,
    /// Cycles to mprotect/invalidate one page mapping.
    pub inval_per_page: u64,
    /// Per-processor bookkeeping cycles when the barrier manager merges
    /// interval information.
    pub barrier_merge_per_proc: u64,
    /// Base offset added to barrier ids when choosing the manager node, so
    /// the manager of the application's main barrier is not always node 0
    /// (the paper's LU discussion: "processor 10 is chosen as the manager of
    /// the most important barrier").
    pub barrier_manager_salt: u32,
}

impl SvmConfig {
    /// The paper's configuration for `nprocs` processors.
    pub fn paper(nprocs: usize) -> Self {
        Self {
            nprocs,
            procs_per_node: 1,
            intra_node_cost: 120,
            l1: CacheGeom {
                size: 8 << 10,
                line: 32,
                ways: 1,
            },
            l2: CacheGeom {
                size: 512 << 10,
                line: 32,
                ways: 2,
            },
            l2_hit: 8,
            mem_latency: 30,
            page_size: sim_core::PAGE_SIZE,
            fault_trap: 1_000,
            handler_cost: 400,
            wire_latency: 200,
            io_cyc_per_byte: 2,
            memcpy_cyc_per_2bytes: 1,
            ctrl_msg_bytes: 64,
            diff_scan_per_word: 1,
            diff_apply_per_word: 2,
            inval_per_page: 150,
            barrier_merge_per_proc: 200,
            barrier_manager_salt: 10,
        }
    }

    /// Diff words (4-byte) per page.
    pub fn words_per_page(&self) -> u64 {
        self.page_size / 4
    }

    /// log2 of the protocol page size.
    pub fn page_shift(&self) -> u32 {
        self.page_size.trailing_zeros()
    }

    /// Check the node-grouping parameters for consistency. Platform
    /// constructors call this so a bad configuration fails at build time
    /// with a named message instead of a bare divide-by-zero or a
    /// misassigned last node deep inside the protocol.
    ///
    /// # Panics
    /// If `procs_per_node` is zero, or does not evenly divide `nprocs`
    /// (a remainder would leave the last node with fewer processors than
    /// the home/manager arithmetic assumes).
    pub fn validate(&self) {
        assert!(
            self.nprocs >= 1,
            "SvmConfig: nprocs must be at least 1, got {}",
            self.nprocs
        );
        assert!(
            self.procs_per_node >= 1,
            "SvmConfig: procs_per_node must be at least 1, got 0 \
             (use 1 for the paper's uniprocessor-node configuration)"
        );
        assert!(
            self.nprocs.is_multiple_of(self.procs_per_node),
            "SvmConfig: procs_per_node = {} does not divide nprocs = {} \
             (the last node would be left with {} processors)",
            self.procs_per_node,
            self.nprocs,
            self.nprocs % self.procs_per_node
        );
    }

    /// Number of SVM nodes.
    pub fn nnodes(&self) -> usize {
        assert_eq!(self.nprocs % self.procs_per_node, 0);
        self.nprocs / self.procs_per_node
    }

    /// SVM node hosting a processor.
    pub fn node_of(&self, pid: usize) -> usize {
        pid / self.procs_per_node
    }

    /// Manager node for a lock.
    pub fn lock_manager(&self, lock: u32) -> usize {
        (lock as usize) % self.nnodes()
    }

    /// Manager node for a barrier.
    pub fn barrier_manager(&self, barrier: u32) -> usize {
        ((barrier + self.barrier_manager_salt) as usize) % self.nnodes()
    }

    /// The paper's future-work configuration: `nprocs` processors grouped
    /// into SMP nodes of `ppn`.
    pub fn paper_smp_nodes(nprocs: usize, ppn: usize) -> Self {
        let mut c = Self::paper(nprocs);
        c.procs_per_node = ppn;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_sane() {
        let c = SvmConfig::paper(16);
        assert_eq!(c.l1.sets(), 256);
        assert_eq!(c.l2.sets(), 8192);
        assert_eq!(c.words_per_page(), 1024);
        assert_eq!(c.lock_manager(17), 1);
        // Unloaded page fetch should land in the tens-of-microseconds range
        // (> 10k cycles, < 60k cycles at 200 MHz).
        let fetch = c.fault_trap
            + 2 * c.handler_cost
            + 2 * c.wire_latency
            + 2 * c.page_size * c.io_cyc_per_byte
            + c.page_size / 2;
        assert!(fetch > 10_000 && fetch < 60_000, "fetch = {fetch}");
    }

    #[test]
    fn validate_accepts_boundary_groupings() {
        SvmConfig::paper(1).validate(); // uniprocessor
        SvmConfig::paper_smp_nodes(16, 1).validate(); // the paper's config
        SvmConfig::paper_smp_nodes(16, 16).validate(); // one big SMP node
        SvmConfig::paper_smp_nodes(12, 4).validate(); // non-power-of-two
    }

    #[test]
    #[should_panic(expected = "procs_per_node must be at least 1, got 0")]
    fn validate_rejects_zero_procs_per_node() {
        SvmConfig::paper_smp_nodes(8, 0).validate();
    }

    #[test]
    #[should_panic(expected = "procs_per_node = 3 does not divide nprocs = 8")]
    fn validate_rejects_non_divisible_grouping() {
        SvmConfig::paper_smp_nodes(8, 3).validate();
    }

    #[test]
    #[should_panic(expected = "does not divide nprocs")]
    fn validate_rejects_groups_larger_than_the_machine() {
        // 32 does not divide 16: one "node" would need more processors
        // than the run has.
        SvmConfig::paper_smp_nodes(16, 32).validate();
    }

    #[test]
    #[should_panic(expected = "nprocs must be at least 1")]
    fn validate_rejects_zero_procs() {
        SvmConfig::paper(0).validate();
    }
}
