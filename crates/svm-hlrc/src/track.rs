//! Per-page protocol activity tracking, shared by the two page-based
//! platforms (`svm-hlrc` and `lrc-tmk`).
//!
//! The counter half ([`PageTrack`]'s public fields) is always on — it feeds
//! the cheap [`Platform::profile`](sim_core::Platform::profile) text report.
//! The word-granularity sharing footprint (writer/reader sets plus a
//! per-word diff-ownership map) is gathered only when the run enables
//! [`RunConfig::with_sharing_profile`](sim_core::RunConfig::with_sharing_profile);
//! either way, tracking never charges cycles, so timing statistics are
//! bit-identical with profiling on or off.

use crate::page::Diff;
use sim_core::sharing::{PageSharing, SharingClass, SharingProfile};
use sim_core::util::FxMap;

/// Per-word diff-ownership sentinel: written by more than one node.
const MULTI: u16 = u16::MAX;

/// Activity record for one protocol page.
#[derive(Clone, Debug, Default)]
pub struct PageTrack {
    /// Remote fetches of this page.
    pub fetches: u64,
    /// Total diffed 4-byte words.
    pub diff_words: u64,
    /// Total contiguous diff runs.
    pub diff_runs: u64,
    /// Bytes moved over the interconnect for this page.
    pub wire_bytes: u64,
    /// Write-notice invalidations applied to copies of this page.
    pub invalidations: u64,
    /// Word-granularity sharing footprint (profiling runs only).
    share: Option<ShareTrack>,
}

#[derive(Clone, Debug)]
struct ShareTrack {
    /// Nodes that diffed the page, ascending.
    writers: Vec<u32>,
    /// Nodes that fetched the page, ascending.
    readers: Vec<u32>,
    /// Per word: diffing node + 1 (0 = never diffed, [`MULTI`] = several).
    owner: Box<[u16]>,
    /// Two nodes diffed the same word: genuine communication.
    overlap: bool,
}

impl ShareTrack {
    fn new(words_per_page: usize) -> Self {
        Self {
            writers: Vec::new(),
            readers: Vec::new(),
            owner: vec![0u16; words_per_page].into_boxed_slice(),
            overlap: false,
        }
    }
}

fn insert_sorted(v: &mut Vec<u32>, x: u32) {
    if let Err(i) = v.binary_search(&x) {
        v.insert(i, x);
    }
}

impl PageTrack {
    /// Record a remote fetch by node `reader` moving `wire` bytes.
    pub fn record_fetch(&mut self, reader: usize, wire: u64, profiling: bool, words: usize) {
        self.fetches += 1;
        self.wire_bytes += wire;
        if profiling {
            let share = self.share.get_or_insert_with(|| ShareTrack::new(words));
            insert_sorted(&mut share.readers, reader as u32);
        }
    }

    /// Record a diff of this page created by node `writer`, moving `wire`
    /// bytes (0 for protocols that archive diffs locally).
    pub fn record_diff(
        &mut self,
        writer: usize,
        diff: &Diff,
        wire: u64,
        profiling: bool,
        words: usize,
    ) {
        self.diff_words += diff.len() as u64;
        self.diff_runs += diff.run_count() as u64;
        self.wire_bytes += wire;
        if profiling {
            let share = self.share.get_or_insert_with(|| ShareTrack::new(words));
            insert_sorted(&mut share.writers, writer as u32);
            let me = writer as u16 + 1;
            for (w, _) in diff.words() {
                let o = &mut share.owner[w as usize];
                if *o == 0 {
                    *o = me;
                } else if *o != me {
                    *o = MULTI;
                    share.overlap = true;
                }
            }
        }
    }

    /// Record a write-notice invalidation of a copy of this page.
    pub fn record_inval(&mut self) {
        self.invalidations += 1;
    }

    fn classify(&self) -> SharingClass {
        match self.share.as_ref() {
            None => SharingClass::ReadShared,
            Some(s) => match s.writers.len() {
                0 => SharingClass::ReadShared,
                1 => SharingClass::SingleWriter,
                _ if s.overlap => SharingClass::TrueSharing,
                _ => SharingClass::FalseSharing,
            },
        }
    }
}

/// Assemble a [`SharingProfile`] from a page→[`PageTrack`] map. Allocation
/// labels are left empty; the scheduler fills them from the allocator.
pub fn build_profile(
    activity: &FxMap<u64, PageTrack>,
    page_shift: u32,
    page_bytes: u64,
) -> SharingProfile {
    let mut pages: Vec<PageSharing> = activity
        .iter()
        .map(|(&page, t)| {
            let (writers, readers) = match t.share.as_ref() {
                Some(s) => (s.writers.clone(), s.readers.clone()),
                None => (Vec::new(), Vec::new()),
            };
            PageSharing {
                page_base: page << page_shift,
                label: "",
                fetches: t.fetches,
                diff_words: t.diff_words,
                diff_runs: t.diff_runs,
                wire_bytes: t.wire_bytes,
                invalidations: t.invalidations,
                writers,
                readers,
                class: t.classify(),
            }
        })
        .collect();
    pages.sort_by_key(|p| p.page_base);
    SharingProfile { page_bytes, pages }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff_of(words: &[(usize, u32)], size: usize) -> Diff {
        let twin = vec![0u8; size];
        let mut dirty = twin.clone();
        for &(w, v) in words {
            dirty[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        Diff::create(&twin, &dirty)
    }

    #[test]
    fn disjoint_writers_classify_as_false_sharing() {
        let mut t = PageTrack::default();
        t.record_diff(0, &diff_of(&[(0, 1), (1, 2)], 64), 20, true, 16);
        t.record_diff(1, &diff_of(&[(8, 3)], 64), 12, true, 16);
        assert_eq!(t.classify(), SharingClass::FalseSharing);
        assert_eq!(t.diff_words, 3);
        assert_eq!(t.diff_runs, 2);
    }

    #[test]
    fn overlapping_writers_classify_as_true_sharing() {
        let mut t = PageTrack::default();
        t.record_diff(0, &diff_of(&[(4, 1)], 64), 12, true, 16);
        t.record_diff(2, &diff_of(&[(4, 9)], 64), 12, true, 16);
        assert_eq!(t.classify(), SharingClass::TrueSharing);
    }

    #[test]
    fn single_writer_and_read_only_classes() {
        let mut w = PageTrack::default();
        w.record_diff(3, &diff_of(&[(0, 1)], 64), 12, true, 16);
        w.record_diff(3, &diff_of(&[(5, 1)], 64), 12, true, 16);
        assert_eq!(w.classify(), SharingClass::SingleWriter);
        let mut r = PageTrack::default();
        r.record_fetch(1, 4096, true, 16);
        r.record_fetch(2, 4096, true, 16);
        assert_eq!(r.classify(), SharingClass::ReadShared);
    }

    #[test]
    fn profiling_off_keeps_counters_but_no_footprint() {
        let mut t = PageTrack::default();
        t.record_diff(0, &diff_of(&[(0, 1)], 64), 12, false, 16);
        t.record_diff(1, &diff_of(&[(8, 1)], 64), 12, false, 16);
        t.record_fetch(2, 4096, false, 16);
        assert_eq!(t.diff_words, 2);
        assert_eq!(t.fetches, 1);
        assert!(t.share.is_none());
        // Without footprints everything degrades to ReadShared.
        assert_eq!(t.classify(), SharingClass::ReadShared);
    }

    #[test]
    fn build_profile_sorts_pages_by_address() {
        let mut map: FxMap<u64, PageTrack> = FxMap::default();
        map.insert(5, PageTrack::default());
        map.insert(2, PageTrack::default());
        map.insert(9, PageTrack::default());
        let prof = build_profile(&map, 12, 4096);
        let bases: Vec<u64> = prof.pages.iter().map(|p| p.page_base).collect();
        assert_eq!(bases, vec![2 << 12, 5 << 12, 9 << 12]);
        assert_eq!(prof.page_bytes, 4096);
    }
}
