//! Per-node page frames, twins and word-granularity diffs — the data plane
//! of the HLRC protocol.

/// Access state of a page at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PState {
    /// Mapped read-only: reads are local, first write twins the page.
    ReadOnly,
    /// Mapped read-write: a twin exists (except at the home node) and the
    /// page is in the node's current write set.
    ReadWrite,
}

/// A page's local copy at one node.
#[derive(Clone, Debug)]
pub struct PageEntry {
    /// Current access state.
    pub state: PState,
    /// The node's working copy of the page.
    pub frame: Box<[u8]>,
    /// Clean copy captured at the first write of the interval (absent at the
    /// home node, which applies writes in place).
    pub twin: Option<Box<[u8]>>,
}

impl PageEntry {
    /// A fresh zeroed read-only page.
    pub fn zeroed(page_size: u64) -> Self {
        Self {
            state: PState::ReadOnly,
            frame: vec![0u8; page_size as usize].into_boxed_slice(),
            twin: None,
        }
    }

    /// A read-only copy of an existing frame (page fetch).
    pub fn copy_of(frame: &[u8]) -> Self {
        Self {
            state: PState::ReadOnly,
            frame: frame.to_vec().into_boxed_slice(),
            twin: None,
        }
    }
}

/// A word-granularity diff, run-length encoded as real SVM systems encode
/// them on the wire: a `(first_word, word_count)` header per maximal
/// contiguous run of differing 4-byte words, plus the runs' dirty bytes
/// concatenated run-major. Four-byte granularity matches TreadMarks-style
/// SVM systems and is essential for correctness under word-level false
/// sharing (e.g. two processors writing adjacent `u32` sort keys within the
/// same 8-byte span).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diff {
    /// `(first word index, words in run)` per contiguous run, ascending.
    runs: Vec<(u32, u32)>,
    /// The runs' dirty bytes, concatenated in run order (4 bytes per word).
    data: Vec<u8>,
}

impl Diff {
    /// Compute the diff of `dirty` against `twin` (equal-length page
    /// buffers).
    pub fn create(twin: &[u8], dirty: &[u8]) -> Self {
        debug_assert_eq!(twin.len(), dirty.len());
        debug_assert_eq!(twin.len() % 4, 0);
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut data = Vec::new();
        for i in (0..dirty.len()).step_by(4) {
            if twin[i..i + 4] != dirty[i..i + 4] {
                let w = (i / 4) as u32;
                match runs.last_mut() {
                    Some((start, len)) if *start + *len == w => *len += 1,
                    _ => runs.push((w, 1)),
                }
                data.extend_from_slice(&dirty[i..i + 4]);
            }
        }
        Self { runs, data }
    }

    /// Apply this diff to `target` (the home frame): one `copy_from_slice`
    /// per contiguous run.
    pub fn apply(&self, target: &mut [u8]) {
        let mut off = 0usize;
        for &(w, n) in &self.runs {
            let dst = w as usize * 4;
            let bytes = n as usize * 4;
            target[dst..dst + bytes].copy_from_slice(&self.data[off..off + bytes]);
            off += bytes;
        }
    }

    /// Reference apply: one 4-byte copy per word. Kept as the oracle the
    /// randomized unit tests compare [`Diff::apply`] against.
    pub fn apply_word_at_a_time(&self, target: &mut [u8]) {
        for (w, v) in self.words() {
            let i = w as usize * 4;
            target[i..i + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Iterate the differing words as `(word_index, new_value)` pairs, in
    /// ascending word order.
    pub fn words(&self) -> DiffWords<'_> {
        DiffWords {
            diff: self,
            run: 0,
            idx: 0,
            off: 0,
        }
    }

    /// Number of differing words.
    pub fn len(&self) -> usize {
        self.data.len() / 4
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of maximal contiguous runs of differing words.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Wire size in bytes: an 8-byte (offset, length) header per contiguous
    /// run plus 4 bytes per word.
    pub fn wire_bytes(&self) -> u64 {
        (self.runs.len() * 8 + self.data.len()) as u64
    }
}

/// Iterator over a [`Diff`]'s `(word_index, new_value)` pairs.
pub struct DiffWords<'a> {
    diff: &'a Diff,
    run: usize,
    idx: u32,
    off: usize,
}

impl Iterator for DiffWords<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        let &(start, len) = self.diff.runs.get(self.run)?;
        let w = start + self.idx;
        let v = u32::from_le_bytes(self.diff.data[self.off..self.off + 4].try_into().unwrap());
        self.off += 4;
        self.idx += 1;
        if self.idx == len {
            self.run += 1;
            self.idx = 0;
        }
        Some((w, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::util::XorShift64;

    #[test]
    fn diff_of_identical_pages_is_empty() {
        let a = vec![7u8; 64];
        let d = Diff::create(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.run_count(), 0);
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn apply_recreates_dirty_from_twin() {
        let twin = vec![0u8; 128];
        let mut dirty = twin.clone();
        dirty[8..16].copy_from_slice(&123u64.to_le_bytes());
        dirty[120..128].copy_from_slice(&u64::MAX.to_le_bytes());
        let d = Diff::create(&twin, &dirty);
        assert_eq!(d.len(), 3); // 123 fits one u32 word; u64::MAX spans two
        assert_eq!(d.run_count(), 2); // one single-word run + one two-word run
        let mut home = twin.clone();
        d.apply(&mut home);
        assert_eq!(home, dirty);
    }

    #[test]
    fn scattered_words_cost_more_wire_than_contiguous() {
        let twin = vec![0u8; 256];
        let mut scattered = twin.clone();
        let mut contiguous = twin.clone();
        for k in 0..8 {
            scattered[k * 32] = 1; // 8 isolated words
            contiguous[k * 4] = 1; // 8 adjacent words
        }
        let ds = Diff::create(&twin, &scattered);
        let dc = Diff::create(&twin, &contiguous);
        assert_eq!(ds.len(), dc.len());
        assert_eq!(ds.run_count(), 8);
        assert_eq!(dc.run_count(), 1);
        assert!(ds.wire_bytes() > 2 * dc.wire_bytes());
    }

    #[test]
    fn disjoint_diffs_merge_at_home() {
        // Two writers modify different words of the same page; applying both
        // diffs to the home yields the union — the multiple-writer protocol.
        let base = vec![0u8; 64];
        let mut w1 = base.clone();
        w1[0..8].copy_from_slice(&1u64.to_le_bytes());
        let mut w2 = base.clone();
        w2[8..16].copy_from_slice(&2u64.to_le_bytes());
        let d1 = Diff::create(&base, &w1);
        let d2 = Diff::create(&base, &w2);
        assert!(!d1.is_empty() && !d2.is_empty());
        let mut home = base.clone();
        d1.apply(&mut home);
        d2.apply(&mut home);
        assert_eq!(u64::from_le_bytes(home[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(home[8..16].try_into().unwrap()), 2);
    }

    #[test]
    fn run_apply_matches_word_at_a_time_on_random_diffs() {
        // The bulk (one copy per run) apply must be byte-identical to the
        // per-word reference on randomized dirty patterns: isolated words,
        // runs, run ends at the page boundary, everything in between.
        for case in 0..64u64 {
            let mut rng = XorShift64::new(0xA11C ^ (case << 8));
            let npages = 1 + rng.below(3);
            let size = (npages * 256) as usize;
            let twin: Vec<u8> = (0..size).map(|_| rng.next_u64() as u8).collect();
            let mut dirty = twin.clone();
            for _ in 0..rng.below(40) {
                // Dirty a random run of 1..8 words.
                let w = rng.below((size / 4) as u64) as usize;
                let n = (1 + rng.below(8)) as usize;
                for k in 0..n.min(size / 4 - w) {
                    let v = rng.next_u64() as u32;
                    dirty[(w + k) * 4..(w + k) * 4 + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
            let d = Diff::create(&twin, &dirty);
            let mut fast = twin.clone();
            d.apply(&mut fast);
            let mut slow = twin.clone();
            d.apply_word_at_a_time(&mut slow);
            assert_eq!(fast, slow, "case {case}");
            assert_eq!(fast, dirty, "case {case}");
            // The iterator agrees with the encoding's own invariants.
            assert_eq!(d.words().count(), d.len(), "case {case}");
            assert!(
                d.words().zip(d.words().skip(1)).all(|(a, b)| a.0 < b.0),
                "case {case}: words not ascending"
            );
        }
    }
}
