//! Per-node page frames, twins and word-granularity diffs — the data plane
//! of the HLRC protocol.

/// Access state of a page at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PState {
    /// Mapped read-only: reads are local, first write twins the page.
    ReadOnly,
    /// Mapped read-write: a twin exists (except at the home node) and the
    /// page is in the node's current write set.
    ReadWrite,
}

/// A page's local copy at one node.
#[derive(Clone, Debug)]
pub struct PageEntry {
    /// Current access state.
    pub state: PState,
    /// The node's working copy of the page.
    pub frame: Box<[u8]>,
    /// Clean copy captured at the first write of the interval (absent at the
    /// home node, which applies writes in place).
    pub twin: Option<Box<[u8]>>,
}

impl PageEntry {
    /// A fresh zeroed read-only page.
    pub fn zeroed(page_size: u64) -> Self {
        Self {
            state: PState::ReadOnly,
            frame: vec![0u8; page_size as usize].into_boxed_slice(),
            twin: None,
        }
    }

    /// A read-only copy of an existing frame (page fetch).
    pub fn copy_of(frame: &[u8]) -> Self {
        Self {
            state: PState::ReadOnly,
            frame: frame.to_vec().into_boxed_slice(),
            twin: None,
        }
    }
}

/// A word-granularity diff: the 4-byte words at which `dirty` differs from
/// `twin`, as `(word_index, new_value)` pairs. Four-byte granularity matches
/// TreadMarks-style SVM systems and is essential for correctness under
/// word-level false sharing (e.g. two processors writing adjacent `u32`
/// sort keys within the same 8-byte span).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diff {
    /// Differing 4-byte words.
    pub words: Vec<(u32, u32)>,
    /// Number of contiguous runs among `words` (real SVM systems encode
    /// diffs as (offset, length, data...) runs, so scattered single-word
    /// diffs cost far more wire per word than contiguous ones).
    pub runs: u32,
}

impl Diff {
    /// Compute the diff of `dirty` against `twin` (equal-length page
    /// buffers).
    pub fn create(twin: &[u8], dirty: &[u8]) -> Self {
        debug_assert_eq!(twin.len(), dirty.len());
        debug_assert_eq!(twin.len() % 4, 0);
        let mut words = Vec::new();
        let mut runs = 0u32;
        let mut prev: Option<u32> = None;
        for i in (0..dirty.len()).step_by(4) {
            let a = u32::from_le_bytes(twin[i..i + 4].try_into().unwrap());
            let b = u32::from_le_bytes(dirty[i..i + 4].try_into().unwrap());
            if a != b {
                let w = (i / 4) as u32;
                if prev != Some(w.wrapping_sub(1)) {
                    runs += 1;
                }
                prev = Some(w);
                words.push((w, b));
            }
        }
        Self { words, runs }
    }

    /// Apply this diff to `target` (the home frame).
    pub fn apply(&self, target: &mut [u8]) {
        for &(w, v) in &self.words {
            let i = w as usize * 4;
            target[i..i + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Number of differing words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Wire size in bytes: run-length encoded — an 8-byte (offset, length)
    /// header per contiguous run plus 4 bytes per word.
    pub fn wire_bytes(&self) -> u64 {
        (self.runs as usize * 8 + self.words.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_of_identical_pages_is_empty() {
        let a = vec![7u8; 64];
        let d = Diff::create(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.runs, 0);
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn apply_recreates_dirty_from_twin() {
        let twin = vec![0u8; 128];
        let mut dirty = twin.clone();
        dirty[8..16].copy_from_slice(&123u64.to_le_bytes());
        dirty[120..128].copy_from_slice(&u64::MAX.to_le_bytes());
        let d = Diff::create(&twin, &dirty);
        assert_eq!(d.len(), 3); // 123 fits one u32 word; u64::MAX spans two
        assert_eq!(d.runs, 2); // one single-word run + one two-word run
        let mut home = twin.clone();
        d.apply(&mut home);
        assert_eq!(home, dirty);
    }

    #[test]
    fn scattered_words_cost_more_wire_than_contiguous() {
        let twin = vec![0u8; 256];
        let mut scattered = twin.clone();
        let mut contiguous = twin.clone();
        for k in 0..8 {
            scattered[k * 32] = 1; // 8 isolated words
            contiguous[k * 4] = 1; // 8 adjacent words
        }
        let ds = Diff::create(&twin, &scattered);
        let dc = Diff::create(&twin, &contiguous);
        assert_eq!(ds.len(), dc.len());
        assert_eq!(ds.runs, 8);
        assert_eq!(dc.runs, 1);
        assert!(ds.wire_bytes() > 2 * dc.wire_bytes());
    }

    #[test]
    fn disjoint_diffs_merge_at_home() {
        // Two writers modify different words of the same page; applying both
        // diffs to the home yields the union — the multiple-writer protocol.
        let base = vec![0u8; 64];
        let mut w1 = base.clone();
        w1[0..8].copy_from_slice(&1u64.to_le_bytes());
        let mut w2 = base.clone();
        w2[8..16].copy_from_slice(&2u64.to_le_bytes());
        let d1 = Diff::create(&base, &w1);
        let d2 = Diff::create(&base, &w2);
        assert!(!d1.is_empty() && !d2.is_empty());
        let mut home = base.clone();
        d1.apply(&mut home);
        d2.apply(&mut home);
        assert_eq!(u64::from_le_bytes(home[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(home[8..16].try_into().unwrap()), 2);
    }
}
