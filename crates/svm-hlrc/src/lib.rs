//! # svm-hlrc — an all-software, home-based lazy release consistency SVM
//!
//! A faithful implementation of the protocol the paper's SVM platform
//! simulates (Zhou, Iftode & Li's HLRC): a page-grained, multiple-writer
//! shared virtual memory over commodity messaging.
//!
//! * Every page has a **home** node (from the allocator's placement map);
//!   the home copy is kept up to date by applying **diffs** at releases.
//! * A node's first write to a page in an interval creates a **twin**; at a
//!   release, the dirty page is compared against the twin word-by-word and
//!   the resulting diff is sent to the home.
//! * Intervals carry **write notices**; vector timestamps order them. An
//!   acquiring processor invalidates every page written in intervals that
//!   causally precede the acquire; the next access faults and fetches the
//!   whole page from its home.
//! * Locks are manager-queued with a 3-hop grant path; barriers are
//!   centralized at a manager node that serializes arrival processing and
//!   release broadcasts — making barriers expensive, as the paper stresses.
//!
//! This is a *real* protocol, not a timing approximation: application data
//! actually lives in per-node page frames, flows home as diffs, and is
//! re-fetched after invalidation. Data-race-free applications therefore
//! compute correct results **through** the protocol, which the workspace's
//! integration tests exploit by checking application output against
//! sequential references.

// Indexed loops over fixed coordinate dimensions are clearer than
// iterator adaptors in this numeric code.
#![allow(clippy::needless_range_loop)]
mod config;
mod page;
mod track;

pub use config::SvmConfig;
pub use page::{Diff, DiffWords, PState, PageEntry};
pub use track::{build_profile, PageTrack};

use sim_core::cache::{Cache, LineState, Lookup};
use sim_core::platform::{Platform, Timing};
use sim_core::stats::{Bucket, ProcStats};
use sim_core::util::{FxMap, FxSet};
use sim_core::{Addr, PlacementMap, Resource};

/// One SVM node (which hosts `procs_per_node` processors): page table and
/// protocol resources. Caches are per processor, in `SvmPlatform::caches`.
struct Node {
    pages: FxMap<u64, PageEntry>,
    write_set: FxSet<u64>,
    handler: Resource,
    io_in: Resource,
    io_out: Resource,
    /// Protocol processing performed on this node's behalf by incoming
    /// requests; charged to its clock at its next own event (interrupt
    /// dilation).
    debt: u64,
    /// Diffs this node created from paths that have no access to its
    /// statistics (write-notice invalidation flushes); drained into its
    /// counters by [`Platform::finalize`].
    diffs_created_debt: u64,
    /// Diffs applied at this node's homes; the applier is a remote flusher,
    /// so the count accrues here and is drained by [`Platform::finalize`].
    diffs_applied_debt: u64,
}

/// Write-notice interval: the pages one processor dirtied between two
/// releases.
#[derive(Clone, Debug)]
struct Interval {
    pages: Vec<u64>,
}

/// Cost accumulator for grant/barrier-side invalidation processing.
#[derive(Default, Clone, Copy)]
struct Acc {
    cycles: u64,
    invals: u64,
}

/// The home-based lazy release consistency platform.
pub struct SvmPlatform {
    cfg: SvmConfig,
    page_shift: u32,
    nodes: Vec<Node>,
    /// Per-processor cache hierarchies.
    caches: Vec<(Cache, Cache)>,
    activity: FxMap<u64, PageTrack>,
    /// Word-granularity sharing footprints requested for this run (see
    /// [`sim_core::sharing`]); counters in `activity` are always on.
    profiling: bool,
    /// Closed-interval counts (vector timestamp component per processor).
    vt: Vec<u32>,
    /// `vc[g][r]`: how many of r's intervals processor g has consumed.
    vc: Vec<Vec<u32>>,
    /// Un-garbage-collected intervals per processor; `logs[p][i]` is
    /// interval `log_base[p] + i`.
    logs: Vec<Vec<Interval>>,
    log_base: Vec<u32>,
    /// Vector clock at the last release of each lock.
    lock_vc: FxMap<u32, Vec<u32>>,
    /// Shared event-trace sink for the run (None when tracing is off).
    trace: Option<sim_core::TraceHandle>,
    /// Shared interval-metrics sink for the run (None when metrics are off).
    metrics: Option<sim_core::MetricsHandle>,
}

impl SvmPlatform {
    /// Build the platform from a configuration.
    ///
    /// # Panics
    /// If [`SvmConfig::validate`] rejects the node grouping, or the
    /// protocol page size is out of range.
    pub fn new(cfg: SvmConfig) -> Self {
        cfg.validate();
        let nn = cfg.nnodes();
        let nodes = (0..nn)
            .map(|_| Node {
                pages: FxMap::default(),
                write_set: FxSet::default(),
                handler: Resource::new(),
                io_in: Resource::new(),
                io_out: Resource::new(),
                debt: 0,
                diffs_created_debt: 0,
                diffs_applied_debt: 0,
            })
            .collect();
        let caches = (0..cfg.nprocs)
            .map(|_| (Cache::new(cfg.l1), Cache::new(cfg.l2)))
            .collect();
        assert!(
            cfg.page_size.is_power_of_two() && (1024..=16384).contains(&cfg.page_size),
            "protocol page size must be a power of two in [1K, 16K]"
        );
        let page_shift = cfg.page_shift();
        Self {
            cfg,
            page_shift,
            nodes,
            caches,
            activity: FxMap::default(),
            profiling: false,
            vt: vec![0; nn],
            vc: vec![vec![0; nn]; nn],
            logs: vec![Vec::new(); nn],
            log_base: vec![0; nn],
            lock_vc: FxMap::default(),
            trace: None,
            metrics: None,
        }
    }

    /// Boxed, type-erased platform (convenience for `sim_core::run`).
    pub fn boxed(cfg: SvmConfig) -> Box<dyn Platform> {
        Box::new(Self::new(cfg))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SvmConfig {
        &self.cfg
    }

    #[inline]
    fn page_bytes(&self) -> u64 {
        self.cfg.page_size
    }

    /// The SVM node hosting processor `pid`.
    #[inline]
    fn node_of(&self, pid: usize) -> usize {
        pid / self.cfg.procs_per_node
    }

    /// Charge any protocol work done on this node's behalf since its last
    /// own event (handler interrupts dilate the application).
    #[inline]
    fn apply_debt(&mut self, t: &mut Timing) {
        let nd = self.node_of(t.pid);
        let d = std::mem::take(&mut self.nodes[nd].debt);
        t.charge(Bucket::HandlerCompute, d);
    }

    /// Ensure the home node has a frame for `page`; create zeroed if first
    /// touch anywhere.
    fn home_frame_entry(&mut self, home: usize, page: u64) {
        let ps = self.cfg.page_size;
        self.nodes[home]
            .pages
            .entry(page)
            .or_insert_with(|| PageEntry::zeroed(ps));
    }

    /// Fetch `page` from `home` into `pid`'s page table (remote page fault).
    fn fetch_page(&mut self, t: &mut Timing, page: u64, home: usize) {
        let nd = self.node_of(t.pid);
        debug_assert_ne!(nd, home);
        self.home_frame_entry(home, page);
        let t0 = *t.now;
        let wire = self.page_bytes() + self.cfg.ctrl_msg_bytes;
        sim_core::trace::emit(
            &self.trace,
            t.timing_on,
            t.pid,
            t0,
            sim_core::EventKind::PageFetchStart {
                page: page << self.page_shift,
                home,
                bytes: wire,
            },
        );
        // Timing: trap, request message, home service, page transfer.
        t.charge(Bucket::DataWait, self.cfg.fault_trap);
        if t.timing_on {
            let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
            let (_, req_out) = self.nodes[nd].io_out.serve(*t.now, ctrl);
            let req_arr = req_out + self.cfg.wire_latency;
            let (_, svc_end) = self.nodes[home]
                .handler
                .serve(req_arr, self.cfg.handler_cost);
            self.nodes[home].debt += self.cfg.handler_cost;
            let pg = self.page_bytes() * self.cfg.io_cyc_per_byte;
            let (_, out_end) = self.nodes[home].io_out.serve(svc_end, pg);
            let arr = out_end + self.cfg.wire_latency;
            let (_, in_end) = self.nodes[nd].io_in.serve(arr, pg);
            let done = in_end + self.page_bytes() / 2 * self.cfg.memcpy_cyc_per_2bytes;
            t.advance_to(Bucket::DataWait, done);
        }
        sim_core::trace::emit(
            &self.trace,
            t.timing_on,
            t.pid,
            *t.now,
            sim_core::EventKind::PageFetchDone {
                page: page << self.page_shift,
                home,
                bytes: wire,
            },
        );
        sim_core::trace::sample_fetch(&self.trace, t.timing_on, t.pid, *t.now - t0);
        // Critical-path provenance: the fetch stalled `t.pid` over
        // (t0, now]; the serving side is the home node (its first proc
        // stands in for the node in the edge record).
        sim_core::trace::emit_edge(
            &self.trace,
            t.timing_on,
            sim_core::DepKind::PageFetch {
                page: page << self.page_shift,
                bytes: wire,
            },
            t.pid,
            t0,
            *t.now,
            home * self.cfg.procs_per_node,
            t0,
        );
        // State: install a read-only copy of the home frame.
        let entry = PageEntry::copy_of(&self.nodes[home].pages[&page].frame);
        self.nodes[nd].pages.insert(page, entry);
        // The stale copy's cached lines no longer describe memory contents —
        // for every processor of the node.
        let base = page << self.page_shift;
        let len = self.page_bytes();
        for q in self.node_procs(nd) {
            self.caches[q].0.invalidate_range(base, len);
            self.caches[q].1.invalidate_range(base, len);
        }
        t.stats.counters.remote_fetches += 1;
        t.stats.counters.bytes_transferred += wire;
        let (profiling, words) = (self.profiling, self.cfg.words_per_page() as usize);
        self.activity
            .entry(page)
            .or_default()
            .record_fetch(nd, wire, profiling, words);
        sim_core::metrics::page_fetch(&self.metrics, t.timing_on, *t.now, page << self.page_shift);
    }

    /// Processor ids hosted by node `nd`.
    fn node_procs(&self, nd: usize) -> std::ops::Range<usize> {
        nd * self.cfg.procs_per_node..(nd + 1) * self.cfg.procs_per_node
    }

    /// Make `page` readable at `t.pid`'s node, faulting if necessary.
    fn ensure_readable(&mut self, t: &mut Timing, page: u64, home: usize) {
        let nd = self.node_of(t.pid);
        if self.nodes[nd].pages.contains_key(&page) {
            return;
        }
        if nd == home {
            // Zero-fill first touch of an owned page: cheap minor fault.
            self.home_frame_entry(home, page);
        } else {
            self.fetch_page(t, page, home);
        }
    }

    /// Make `page` writable at `t.pid`'s node: fault in if absent, twin on
    /// the node's first write of the interval.
    fn ensure_writable(&mut self, t: &mut Timing, page: u64, home: usize) {
        self.ensure_readable(t, page, home);
        let nd = self.node_of(t.pid);
        let needs_twin = {
            let e = &self.nodes[nd].pages[&page];
            e.state == PState::ReadOnly
        };
        if needs_twin {
            if nd != home {
                // Write-protection trap + twin copy.
                t.charge(
                    Bucket::HandlerCompute,
                    self.cfg.fault_trap + self.page_bytes() / 2 * self.cfg.memcpy_cyc_per_2bytes,
                );
                let e = self.nodes[nd].pages.get_mut(&page).unwrap();
                e.twin = Some(e.frame.clone());
                t.stats.counters.twins_created += 1;
            } else {
                // Home writes in place; only the protection trap.
                t.charge(Bucket::HandlerCompute, self.cfg.fault_trap / 4);
            }
            let e = self.nodes[nd].pages.get_mut(&page).unwrap();
            e.state = PState::ReadWrite;
            self.nodes[nd].write_set.insert(page);
        }
    }

    /// Charge the local cache hierarchy for an access.
    fn cache_access(&mut self, t: &mut Timing, addr: Addr, write: bool) {
        let caches = &mut self.caches[t.pid];
        match caches.0.access(addr, write) {
            Lookup::Hit => {}
            _ => match caches.1.access(addr, write) {
                Lookup::Hit | Lookup::UpgradeMiss => {
                    t.charge(Bucket::CacheStall, self.cfg.l2_hit);
                    caches.0.fill(addr, LineState::Modified);
                    t.stats.counters.cache_misses += 1;
                }
                Lookup::Miss { .. } => {
                    t.charge(Bucket::CacheStall, self.cfg.mem_latency);
                    caches.1.fill(addr, LineState::Modified);
                    caches.0.fill(addr, LineState::Modified);
                    t.stats.counters.cache_misses += 1;
                }
            },
        }
        // Intra-node hardware coherence: a write by one processor of an SMP
        // node invalidates the line in its siblings' caches.
        if write && self.cfg.procs_per_node > 1 {
            let nd = self.node_of(t.pid);
            for q in self.node_procs(nd) {
                if q != t.pid {
                    self.caches[q].0.set_state(addr, LineState::Invalid);
                    self.caches[q].1.set_state(addr, LineState::Invalid);
                }
            }
        }
    }

    fn frame_load(&self, pid: usize, addr: Addr, len: u8) -> u64 {
        let nd = self.node_of(pid);
        let page = addr >> self.page_shift;
        let off = (addr & (self.cfg.page_size - 1)) as usize;
        let frame = &self.nodes[nd].pages[&page].frame;
        let mut w = [0u8; 8];
        w[..len as usize].copy_from_slice(&frame[off..off + len as usize]);
        u64::from_le_bytes(w)
    }

    fn frame_store(&mut self, pid: usize, addr: Addr, len: u8, val: u64) {
        let nd = self.node_of(pid);
        let page = addr >> self.page_shift;
        let off = (addr & (self.cfg.page_size - 1)) as usize;
        let frame = &mut self.nodes[nd].pages.get_mut(&page).unwrap().frame;
        frame[off..off + len as usize].copy_from_slice(&val.to_le_bytes()[..len as usize]);
    }

    /// Flush one dirty page's diff to its home: state transfer plus cost
    /// bookkeeping. Returns `(local_cycles, arrival_at_home)` — the cycles
    /// the flushing processor spends, and when the diff lands at the home.
    /// `now` is the flusher's clock *after* `local_cycles` so far.
    /// `diff_at` is the virtual time the interval metrics attribute the
    /// diff to (the invalidation path prices with `now = 0` but knows the
    /// real consumption time).
    fn flush_page(
        &mut self,
        nd: usize,
        page: u64,
        home: usize,
        now: u64,
        timing_on: bool,
        diff_at: u64,
    ) -> (u64, u64, u64) {
        let scan = self.cfg.words_per_page() * self.cfg.diff_scan_per_word;
        let entry = self.nodes[nd].pages.get_mut(&page).unwrap();
        debug_assert_eq!(entry.state, PState::ReadWrite);
        entry.state = PState::ReadOnly;
        if nd == home {
            // Writes already in place; nothing to transfer.
            return (0, now, 0);
        }
        let twin = entry.twin.take().expect("dirty remote page without twin");
        let diff = Diff::create(&twin, &entry.frame);
        let nwords = diff.len() as u64;
        let nruns = diff.run_count() as u64;
        let wire_bytes = diff.wire_bytes() + self.cfg.ctrl_msg_bytes;
        let (profiling, words) = (self.profiling, self.cfg.words_per_page() as usize);
        self.activity
            .entry(page)
            .or_default()
            .record_diff(nd, &diff, wire_bytes, profiling, words);
        sim_core::metrics::page_diff(
            &self.metrics,
            timing_on,
            diff_at,
            page << self.page_shift,
            nd as u16,
            diff.words().map(|(w, _)| w),
        );
        // Apply to home frame (state). The applier is remote: count the
        // application at the home via its debt counter, drained at finalize.
        self.home_frame_entry(home, page);
        diff.apply(&mut self.nodes[home].pages.get_mut(&page).unwrap().frame);
        self.nodes[home].diffs_applied_debt += 1;
        // The home's processors may hold stale lines for the words just
        // patched; conservatively drop the page's lines there.
        let base = page << self.page_shift;
        let len = self.cfg.page_size;
        for q in self.node_procs(home) {
            self.caches[q].0.invalidate_range(base, len);
            self.caches[q].1.invalidate_range(base, len);
        }
        if !timing_on {
            return (0, now, 0);
        }
        let local = scan + nwords * self.cfg.diff_scan_per_word + nruns * 8;
        let (_, send_end) = self.nodes[nd]
            .io_out
            .serve(now + local, wire_bytes * self.cfg.io_cyc_per_byte);
        let arr = send_end + self.cfg.wire_latency;
        let apply = self.cfg.handler_cost + nwords * self.cfg.diff_apply_per_word + nruns * 8;
        let (_, in_end) = self.nodes[home]
            .io_in
            .serve(arr, wire_bytes * self.cfg.io_cyc_per_byte);
        let (_, applied) = self.nodes[home].handler.serve(in_end, apply);
        self.nodes[home].debt += apply;
        // Attribute the application to the home node's first processor, at
        // the virtual time the home handler finished applying it.
        sim_core::trace::emit(
            &self.trace,
            timing_on,
            home * self.cfg.procs_per_node,
            applied,
            sim_core::EventKind::DiffApplied { page: base },
        );
        (local, applied, wire_bytes)
    }

    /// Close `pid`'s current interval: flush all dirty pages home and log
    /// the write notices. Charges the flusher via `t` and returns the time
    /// at which all diffs have landed at their homes.
    fn close_interval(&mut self, t: &mut Timing) -> u64 {
        let nd = self.node_of(t.pid);
        if self.nodes[nd].write_set.is_empty() {
            return *t.now;
        }
        let mut pages: Vec<u64> = self.nodes[nd].write_set.drain().collect();
        pages.sort_unstable(); // determinism: FxSet iteration order is arbitrary
        let mut all_applied = *t.now;
        for &page in &pages {
            let still_dirty =
                self.nodes[nd].pages.get(&page).map(|e| e.state) == Some(PState::ReadWrite);
            if still_dirty {
                let home =
                    t.placement.home_of(page << self.page_shift, t.pid) / self.cfg.procs_per_node;
                let diff_t0 = *t.now;
                let (local, applied, bytes) =
                    self.flush_page(nd, page, home, *t.now, t.timing_on, *t.now);
                t.charge(Bucket::HandlerCompute, local);
                // Critical-path provenance: the flusher spent (diff_t0, now]
                // creating this page's diff.
                sim_core::trace::emit_edge(
                    &self.trace,
                    t.timing_on,
                    sim_core::DepKind::Diff {
                        page: page << self.page_shift,
                    },
                    t.pid,
                    diff_t0,
                    *t.now,
                    t.pid,
                    diff_t0,
                );
                all_applied = all_applied.max(applied);
                t.stats.counters.bytes_transferred += bytes;
                if nd != home {
                    t.stats.counters.diffs_created += 1;
                    sim_core::trace::emit(
                        &self.trace,
                        t.timing_on,
                        t.pid,
                        *t.now,
                        sim_core::EventKind::DiffCreated {
                            page: page << self.page_shift,
                        },
                    );
                }
            }
        }
        self.logs[nd].push(Interval { pages });
        self.vt[nd] += 1;
        self.vc[nd][nd] = self.vt[nd];
        all_applied
    }

    /// Invalidate `page` at node `g` (consume a write notice). Flushes the
    /// local diff first if the copy is dirty, so no local writes are lost —
    /// the multiple-writer discipline.
    fn invalidate_page(
        &mut self,
        g: usize,
        page: u64,
        at: u64,
        placement: &mut PlacementMap,
        timing_on: bool,
        acc: &mut Acc,
    ) {
        let toucher = g * self.cfg.procs_per_node;
        let home = placement.home_of(page << self.page_shift, toucher) / self.cfg.procs_per_node;
        if g == home {
            return; // the home copy is always current
        }
        let state = self.nodes[g].pages.get(&page).map(|e| e.state);
        match state {
            None => {}
            Some(PState::ReadWrite) => {
                let (local, _, _) = self.flush_page(g, page, home, 0, timing_on, at);
                // The flusher here is the invalidated node, whose statistics
                // this path cannot reach: accrue and drain at finalize.
                self.nodes[g].diffs_created_debt += 1;
                sim_core::trace::emit(
                    &self.trace,
                    timing_on,
                    toucher,
                    at,
                    sim_core::EventKind::DiffCreated {
                        page: page << self.page_shift,
                    },
                );
                acc.cycles += local;
                self.nodes[g].pages.remove(&page);
                acc.cycles += self.cfg.inval_per_page;
                acc.invals += 1;
            }
            Some(PState::ReadOnly) => {
                self.nodes[g].pages.remove(&page);
                acc.cycles += self.cfg.inval_per_page;
                acc.invals += 1;
            }
        }
        if state.is_some() {
            self.activity.entry(page).or_default().record_inval();
            sim_core::metrics::page_inval(&self.metrics, timing_on, at, page << self.page_shift);
            sim_core::trace::emit(
                &self.trace,
                timing_on,
                toucher,
                at,
                sim_core::EventKind::Invalidation {
                    page: page << self.page_shift,
                },
            );
        }
        let base = page << self.page_shift;
        let len = self.cfg.page_size;
        for q in self.node_procs(g) {
            self.caches[q].0.invalidate_range(base, len);
            self.caches[q].1.invalidate_range(base, len);
        }
    }

    /// Consume all of processor `r`'s intervals in `(vc[g][r], upto[r]]` for
    /// every `r`, invalidating the notified pages at `g`.
    fn consume_notices(
        &mut self,
        g: usize,
        upto: &[u32],
        at: u64,
        placement: &mut PlacementMap,
        timing_on: bool,
    ) -> Acc {
        let mut acc = Acc::default();
        for r in 0..self.cfg.nnodes() {
            if r == g {
                self.vc[g][r] = self.vc[g][r].max(upto[r].min(self.vt[r]));
                continue;
            }
            let from = self.vc[g][r];
            let to = upto[r].min(self.vt[r]);
            if to <= from {
                continue;
            }
            for idx in from..to {
                let li = (idx - self.log_base[r]) as usize;
                let pages: Vec<u64> = self.logs[r][li].pages.clone();
                for page in pages {
                    self.invalidate_page(g, page, at, placement, timing_on, &mut acc);
                }
            }
            self.vc[g][r] = to;
        }
        acc
    }
}

impl Platform for SvmPlatform {
    fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    fn min_cross_node_latency(&self) -> Option<u64> {
        // Every cross-processor interaction is a protocol message: at
        // cheapest an intra-node handoff when nodes host several
        // processors, otherwise a wire crossing.
        Some(if self.cfg.procs_per_node > 1 {
            self.cfg.intra_node_cost.min(self.cfg.wire_latency)
        } else {
            self.cfg.wire_latency
        })
    }

    fn load(&mut self, t: &mut Timing, addr: Addr, len: u8) -> u64 {
        self.apply_debt(t);
        t.stats.counters.accesses += 1;
        t.charge(Bucket::Compute, 1);
        let page = addr >> self.page_shift;
        // Resolve the home from the protocol-page base so that coherence
        // units larger than the 4 KB placement granularity have one
        // consistent home; placement homes are processor ids, so divide
        // down to the hosting SVM node.
        let home = t.placement.home_of(page << self.page_shift, t.pid) / self.cfg.procs_per_node;
        self.ensure_readable(t, page, home);
        self.cache_access(t, addr, false);
        self.frame_load(t.pid, addr, len)
    }

    fn store(&mut self, t: &mut Timing, addr: Addr, len: u8, val: u64) {
        self.apply_debt(t);
        t.stats.counters.accesses += 1;
        t.charge(Bucket::Compute, 1);
        let page = addr >> self.page_shift;
        let home = t.placement.home_of(page << self.page_shift, t.pid) / self.cfg.procs_per_node;
        self.ensure_writable(t, page, home);
        self.cache_access(t, addr, true);
        self.frame_store(t.pid, addr, len, val);
    }

    // Bulk fast path: a word is "fast" when the scalar path would do no
    // protocol work for it — no pending interrupt debt, the page already
    // mapped at this node (with write permission for stores: present in the
    // page table as ReadWrite, so no fault/twin), and the word's line in L1
    // with sufficient permission (any valid state for reads; Exclusive or
    // Modified for writes — a Shared write would be an upgrade miss). Such a
    // word costs exactly Compute 1, so a run of k fast words within one L1
    // line batches to: accesses += k, charge(Compute, k), one `hit_run`,
    // k frame moves, and (stores, multi-processor nodes) one sibling-line
    // invalidation — each identical to k scalar iterations. Lines never
    // straddle pages, so one page lookup covers the run. Non-fast words
    // fall back to the scalar `load`/`store` one word at a time.
    fn load_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        out: &mut [u64],
        budget: u64,
    ) -> usize {
        let nd = self.node_of(t.pid);
        let l1_line = self.caches[t.pid].0.geom().line;
        let mut done = 0usize;
        while done < out.len() {
            let a = addr + done as u64 * stride;
            let page = a >> self.page_shift;
            let fast = self.nodes[nd].debt == 0
                && self.nodes[nd].pages.contains_key(&page)
                && self.caches[t.pid].0.state_of(a) != LineState::Invalid;
            if !fast {
                out[done] = self.load(t, a, len);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.caches[t.pid].0.line_base(a) + l1_line;
            let mut k = (out.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                // Each fast word costs exactly one cycle; the scalar path
                // yields after the first word past the budget.
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.caches[t.pid].0.hit_run(a, false, k);
            let page_base = page << self.page_shift;
            let frame = &self.nodes[nd].pages[&page].frame;
            for i in 0..k {
                let off = (a + i * stride - page_base) as usize;
                let mut b = [0u8; 8];
                b[..len as usize].copy_from_slice(&frame[off..off + len as usize]);
                out[done + i as usize] = u64::from_le_bytes(b);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn store_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        vals: &[u64],
        budget: u64,
    ) -> usize {
        let nd = self.node_of(t.pid);
        let l1_line = self.caches[t.pid].0.geom().line;
        let mut done = 0usize;
        while done < vals.len() {
            let a = addr + done as u64 * stride;
            let page = a >> self.page_shift;
            let fast = self.nodes[nd].debt == 0
                && self.nodes[nd]
                    .pages
                    .get(&page)
                    .is_some_and(|e| e.state == PState::ReadWrite)
                && matches!(
                    self.caches[t.pid].0.state_of(a),
                    LineState::Exclusive | LineState::Modified
                );
            if !fast {
                self.store(t, a, len, vals[done]);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.caches[t.pid].0.line_base(a) + l1_line;
            let mut k = (vals.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.caches[t.pid].0.hit_run(a, true, k);
            if self.cfg.procs_per_node > 1 {
                // The scalar path invalidates the sibling copies of this
                // line once per word; repeats are idempotent, so once per
                // run is identical.
                for q in self.node_procs(nd) {
                    if q != t.pid {
                        self.caches[q].0.set_state(a, LineState::Invalid);
                        self.caches[q].1.set_state(a, LineState::Invalid);
                    }
                }
            }
            let page_base = page << self.page_shift;
            let frame = &mut self.nodes[nd].pages.get_mut(&page).unwrap().frame;
            for i in 0..k {
                let off = (a + i * stride - page_base) as usize;
                frame[off..off + len as usize]
                    .copy_from_slice(&vals[done + i as usize].to_le_bytes()[..len as usize]);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn acquire_request(&mut self, t: &mut Timing, lock: u32) -> u64 {
        self.apply_debt(t);
        // Local send overhead.
        t.charge(Bucket::LockWait, self.cfg.handler_cost);
        if !t.timing_on {
            return *t.now;
        }
        let nd = self.node_of(t.pid);
        let mgr = self.cfg.lock_manager(lock);
        if mgr == nd && self.cfg.procs_per_node > 1 {
            // Intra-node request: a bus interaction, not a network message.
            return *t.now + self.cfg.intra_node_cost;
        }
        let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
        let (_, out_end) = self.nodes[nd].io_out.serve(*t.now, ctrl);
        let (_, mgr_end) = self.nodes[mgr]
            .handler
            .serve(out_end + self.cfg.wire_latency, self.cfg.handler_cost);
        if mgr != nd {
            self.nodes[mgr].debt += self.cfg.handler_cost;
        }
        // Forward to the last owner (3-hop protocol).
        mgr_end + self.cfg.wire_latency
    }

    fn acquire_grant(
        &mut self,
        pid: usize,
        lock: u32,
        grant_at: u64,
        stats: &mut ProcStats,
        placement: &mut PlacementMap,
        timing_on: bool,
    ) -> u64 {
        // Consume causally preceding write notices.
        let upto = match self.lock_vc.get(&lock) {
            Some(v) => v.clone(),
            None => vec![0; self.cfg.nprocs],
        };
        let acc = self.consume_notices(self.node_of(pid), &upto, grant_at, placement, timing_on);
        stats.counters.invalidations += acc.invals;
        if !timing_on {
            return grant_at;
        }
        grant_at + self.cfg.wire_latency + self.cfg.handler_cost + acc.cycles
    }

    fn release(&mut self, t: &mut Timing, lock: u32) -> u64 {
        self.apply_debt(t);
        let applied = self.close_interval(t);
        t.charge(Bucket::LockWait, self.cfg.handler_cost);
        let nd = self.node_of(t.pid);
        self.lock_vc.insert(lock, self.vc[nd].clone());
        applied.max(*t.now)
    }

    fn barrier_arrive(&mut self, t: &mut Timing, barrier: u32) -> u64 {
        self.apply_debt(t);
        let applied = self.close_interval(t);
        if !t.timing_on {
            return *t.now;
        }
        let nd = self.node_of(t.pid);
        let mgr = self.cfg.barrier_manager(barrier);
        let send_start = applied.max(*t.now);
        if mgr == nd && self.cfg.procs_per_node > 1 {
            return send_start + self.cfg.intra_node_cost;
        }
        let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
        let (_, out_end) = self.nodes[nd].io_out.serve(send_start, ctrl);
        let (_, mgr_end) = self.nodes[mgr]
            .handler
            .serve(out_end + self.cfg.wire_latency, self.cfg.handler_cost);
        mgr_end
    }

    fn barrier_release(
        &mut self,
        barrier: u32,
        arrivals: &[u64],
        stats: &mut [ProcStats],
        placement: &mut PlacementMap,
        timing_on: bool,
    ) -> Vec<u64> {
        let n = self.cfg.nprocs;
        let ppn = self.cfg.procs_per_node;
        let nn = self.cfg.nnodes();
        let mgr = self.cfg.barrier_manager(barrier);
        let vt = self.vt.clone();
        let mut resumes = vec![0u64; n];
        let start = arrivals.iter().copied().max().unwrap_or(0);
        let merge_end = start
            + if timing_on {
                n as u64 * self.cfg.barrier_merge_per_proc
            } else {
                0
            };
        let mut send_cursor = merge_end;
        let mut mgr_acc = Acc::default();
        for nd in 0..nn {
            let acc = self.consume_notices(nd, &vt, merge_end, placement, timing_on);
            stats[nd * ppn].counters.invalidations += acc.invals;
            if nd == mgr {
                mgr_acc = acc;
                continue;
            }
            if timing_on {
                let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
                let (_, out_end) = self.nodes[mgr].io_out.serve(send_cursor, ctrl);
                send_cursor = out_end;
                let node_resume =
                    out_end + self.cfg.wire_latency + self.cfg.handler_cost + acc.cycles;
                for (k, q) in self.node_procs(nd).enumerate() {
                    // Intra-node release fan-out: one bus hop per sibling.
                    resumes[q] = node_resume + k as u64 * (self.cfg.intra_node_cost / 4);
                }
            }
        }
        // The manager node resumes after finishing all its sends plus its
        // own invalidation work — the paper's "barrier manager" imbalance.
        for (k, q) in self.node_procs(mgr).enumerate() {
            resumes[q] = send_cursor + mgr_acc.cycles + k as u64 * (self.cfg.intra_node_cost / 4);
        }
        if !timing_on {
            return arrivals.to_vec();
        }
        // Garbage-collect: after a barrier everyone has consumed everything.
        for p in 0..nn {
            self.log_base[p] = self.vt[p];
            self.logs[p].clear();
        }
        resumes
    }

    fn reset_timing(&mut self) {
        self.activity.clear();
        for node in &mut self.nodes {
            node.handler.reset();
            node.io_in.reset();
            node.io_out.reset();
            node.debt = 0;
            node.diffs_created_debt = 0;
            node.diffs_applied_debt = 0;
        }
    }

    fn profile(&self) -> Option<String> {
        if self.activity.is_empty() {
            return None;
        }
        // The page-level performance-debugging report the paper says real
        // SVM systems should provide: the hottest pages by fetch count,
        // with their diff and invalidation volume.
        let mut pages: Vec<(&u64, &PageTrack)> = self.activity.iter().collect();
        pages.sort_by_key(|(p, a)| (std::cmp::Reverse(a.fetches), **p));
        let mut s = String::from(
            "SVM page profile (hottest pages by remote fetches):\n             page_base          fetches  diff_words   diff_runs  wire_bytes  invalidations\n",
        );
        let total: u64 = pages.iter().map(|(_, a)| a.fetches).sum();
        for (page, a) in pages.iter().take(16) {
            s.push_str(&format!(
                "{:#014x} {:>10} {:>11} {:>11} {:>11} {:>14}\n",
                **page << self.page_shift,
                a.fetches,
                a.diff_words,
                a.diff_runs,
                a.wire_bytes,
                a.invalidations
            ));
        }
        let top: u64 = pages.iter().take(16).map(|(_, a)| a.fetches).sum();
        s.push_str(&format!(
            "{} pages active; top 16 pages account for {:.0}% of {} fetches\n",
            pages.len(),
            100.0 * top as f64 / total.max(1) as f64,
            total
        ));
        Some(s)
    }

    fn set_sharing_profile(&mut self, on: bool) {
        self.profiling = on;
    }

    fn set_trace(&mut self, trace: Option<sim_core::TraceHandle>) {
        self.trace = trace;
    }

    fn set_metrics(&mut self, metrics: Option<sim_core::MetricsHandle>) {
        self.metrics = metrics;
    }

    fn sharing_profile(&self) -> Option<sim_core::sharing::SharingProfile> {
        Some(track::build_profile(
            &self.activity,
            self.page_shift,
            self.page_bytes(),
        ))
    }

    fn finalize(&mut self, stats: &mut [ProcStats]) {
        // Drain protocol counters that accrued at non-initiator nodes into
        // the node's first processor. Runs once, after all simulated
        // processors have exited, so it cannot perturb the interleaving.
        let ppn = self.cfg.procs_per_node;
        for nd in 0..self.nodes.len() {
            let c = &mut stats[nd * ppn].counters;
            c.diffs_created += self.nodes[nd].diffs_created_debt;
            c.diffs_applied += self.nodes[nd].diffs_applied_debt;
            self.nodes[nd].diffs_created_debt = 0;
            self.nodes[nd].diffs_applied_debt = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{run, Bucket, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};

    fn svm_run<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
        run(
            SvmPlatform::boxed(SvmConfig::paper(n)),
            RunConfig::new(n),
            f,
        )
    }

    #[test]
    fn single_node_data_round_trips() {
        let got = std::sync::Mutex::new(0.0f64);
        svm_run(1, |p| {
            let a = p.alloc_shared(4096, 8, Placement::Node(0));
            p.start_timing();
            p.write_f64(a, 42.5);
            *got.lock().unwrap() = p.read_f64(a);
        });
        assert_eq!(*got.lock().unwrap(), 42.5);
    }

    #[test]
    fn data_flows_through_diffs_across_barrier() {
        // Writer and reader are different nodes; reader must get the value
        // via diff-to-home + page fetch after barrier invalidation.
        let got = std::sync::Mutex::new(vec![0.0f64; 2]);
        svm_run(2, |p| {
            let a = if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0))
            } else {
                0
            };
            p.barrier(0);
            // Share the address through simulated memory itself: node 0
            // writes it at a fixed heap location both can compute? Instead,
            // recompute: allocation order is deterministic, so pid 1
            // allocates nothing and the address equals HEAP_BASE.
            let a = if p.pid() == 0 { a } else { HEAP_BASE };
            p.start_timing();
            if p.pid() == 1 {
                p.write_f64(a + 8, 7.25); // node 1 writes a page homed at 0
            }
            p.barrier(1);
            let v = p.read_f64(a + 8);
            got.lock().unwrap()[p.pid()] = v;
            p.barrier(2);
        });
        assert_eq!(*got.lock().unwrap(), vec![7.25, 7.25]);
    }

    #[test]
    fn false_sharing_multiple_writers_merge() {
        // Both nodes write disjoint words of the SAME page concurrently;
        // after the barrier both see both writes (multiple-writer protocol).
        let got = std::sync::Mutex::new(vec![(0u64, 0u64); 2]);
        svm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
            }
            p.barrier(0);
            let a = HEAP_BASE;
            p.start_timing();
            let off = 8 * p.pid() as u64;
            p.store(a + off, 8, 100 + p.pid() as u64);
            p.barrier(1);
            let v0 = p.load(a, 8);
            let v1 = p.load(a + 8, 8);
            got.lock().unwrap()[p.pid()] = (v0, v1);
            p.barrier(2);
        });
        for &(v0, v1) in got.lock().unwrap().iter() {
            assert_eq!((v0, v1), (100, 101));
        }
    }

    #[test]
    fn lock_propagates_data_causally() {
        // Classic LRC litmus: p0 writes x under lock, p1 acquires the same
        // lock later and must see the write.
        let got = std::sync::Mutex::new(0u64);
        svm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
            }
            p.barrier(0);
            let a = HEAP_BASE;
            p.start_timing();
            if p.pid() == 0 {
                p.lock(1);
                p.store(a, 8, 77);
                p.unlock(1);
                p.barrier(1);
            } else {
                p.barrier(1); // ensure p0's critical section happened
                p.lock(1);
                *got.lock().unwrap() = p.load(a, 8);
                p.unlock(1);
            }
            p.barrier(2);
        });
        assert_eq!(*got.lock().unwrap(), 77);
    }

    #[test]
    fn remote_fetch_costs_much_more_than_local_access() {
        // Node 1 reads data homed at node 0: one remote fault then hits.
        let stats = svm_run(2, |p| {
            if p.pid() == 0 {
                let a = p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
                assert_eq!(a, HEAP_BASE);
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                for i in 0..16u64 {
                    p.load(HEAP_BASE + i * 8, 8);
                }
            }
            p.barrier(1);
        });
        let c = &stats.procs[1];
        assert_eq!(c.counters.remote_fetches, 1, "one page fault expected");
        assert!(
            c.get(Bucket::DataWait) > 10_000,
            "remote fetch should cost >10k cycles, got {}",
            c.get(Bucket::DataWait)
        );
        // Node 0 did not fetch anything.
        assert_eq!(stats.procs[0].counters.remote_fetches, 0);
    }

    #[test]
    fn write_creates_twin_and_release_creates_diff() {
        let stats = svm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                p.lock(0);
                p.store(HEAP_BASE, 8, 5);
                p.unlock(0);
            }
            p.barrier(1);
        });
        assert_eq!(stats.procs[1].counters.twins_created, 1);
        assert_eq!(stats.procs[1].counters.diffs_created, 1);
        // The diff is applied at the home (node 0), counted via finalize.
        assert_eq!(stats.procs[0].counters.diffs_applied, 1);
        assert_eq!(stats.procs[1].counters.diffs_applied, 0);
        // Home node writes never twin.
        assert_eq!(stats.procs[0].counters.twins_created, 0);
    }

    #[test]
    fn home_placement_avoids_remote_fetches() {
        // Each node works on its own partition homed locally: zero fetches.
        let stats = svm_run(4, |p| {
            if p.pid() == 0 {
                for n in 0..4 {
                    p.alloc_shared(PAGE_SIZE, 8, Placement::Node(n));
                }
            }
            p.barrier(0);
            p.start_timing();
            let mine = HEAP_BASE + p.pid() as u64 * PAGE_SIZE;
            for i in 0..64u64 {
                p.store(mine + i * 8, 8, i);
            }
            p.barrier(1);
            for i in 0..64u64 {
                assert_eq!(p.load(mine + i * 8, 8), i);
            }
            p.barrier(2);
        });
        assert_eq!(stats.sum_counters().remote_fetches, 0);
    }

    #[test]
    fn barriers_are_expensive() {
        let stats = svm_run(16, |p| {
            p.start_timing();
            p.barrier(1);
        });
        // A 16-way barrier should cost thousands of cycles even with no data.
        assert!(stats.total_cycles() > 5_000, "got {}", stats.total_cycles());
    }

    #[test]
    fn deterministic_runs() {
        let go = || {
            svm_run(4, |p| {
                if p.pid() == 0 {
                    p.alloc_shared(4 * PAGE_SIZE, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                for i in 0..32u64 {
                    let a = HEAP_BASE + ((i * 37 + p.pid() as u64 * 91) % 512) * 8;
                    if i % 3 == 0 {
                        p.lock(2);
                        p.store(a, 8, i);
                        p.unlock(2);
                    } else {
                        p.load(a, 8);
                    }
                }
                p.barrier(1);
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.clocks, b.clocks);
    }

    #[test]
    fn dirty_page_invalidation_preserves_local_writes() {
        // p1 writes word A of a page; p0 writes word B under a lock that p1
        // then acquires (invalidating p1's dirty copy). p1's own write must
        // survive: flush-before-invalidate.
        let got = std::sync::Mutex::new((0u64, 0u64));
        svm_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 0 {
                p.lock(9);
                p.store(HEAP_BASE, 8, 11);
                p.unlock(9);
                p.barrier(1);
            } else {
                p.store(HEAP_BASE + 8, 8, 22); // dirty word B, unreleased
                p.barrier(1); // closes p1's interval too (flush at arrive)
                p.lock(9);
                let a = p.load(HEAP_BASE, 8);
                let b = p.load(HEAP_BASE + 8, 8);
                *got.lock().unwrap() = (a, b);
                p.unlock(9);
            }
            p.barrier(2);
        });
        assert_eq!(*got.lock().unwrap(), (11, 22));
    }

    #[test]
    #[should_panic(expected = "does not divide nprocs")]
    fn construction_rejects_non_divisible_grouping() {
        let _ = SvmPlatform::new(SvmConfig::paper_smp_nodes(8, 3));
    }
}
