use sim_core::{run, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_hlrc::{SvmConfig, SvmPlatform};

#[test]
fn scattered_multiwriter_readback() {
    let n_words: u64 = 1024; // 2 pages
    let got = std::sync::Mutex::new(vec![0u64; n_words as usize]);
    run(
        SvmPlatform::boxed(SvmConfig::paper(2)),
        RunConfig::new(2),
        |p| {
            if p.pid() == 0 {
                let a = p.alloc_shared(
                    n_words * 8,
                    PAGE_SIZE,
                    Placement::Blocked { chunk_pages: 1 },
                );
                assert_eq!(a, HEAP_BASE);
                for i in 0..n_words {
                    p.store(a + i * 8, 8, 1_000_000 + i);
                }
            }
            p.barrier(0);
            p.start_timing();
            for i in 0..n_words {
                if i % 2 == p.pid() as u64 {
                    p.store(HEAP_BASE + i * 8, 8, 2_000_000 + i);
                }
            }
            p.barrier(1);
            p.stop_timing();
            if p.pid() == 0 {
                let mut g = got.lock().unwrap();
                for i in 0..n_words {
                    g[i as usize] = p.load(HEAP_BASE + i * 8, 8);
                }
            }
        },
    );
    let g = got.into_inner().unwrap();
    for i in 0..n_words {
        assert_eq!(g[i as usize], 2_000_000 + i, "word {i}");
    }
}

#[test]
fn page_profile_records_activity() {
    let (_, profile) = sim_core::run_profiled(
        SvmPlatform::boxed(SvmConfig::paper(2)),
        RunConfig::new(2),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                p.store(HEAP_BASE, 8, 42); // remote write -> twin + diff
            }
            p.barrier(1);
            p.load(HEAP_BASE, 8);
            p.barrier(2);
        },
    );
    let profile = profile.expect("SVM must produce a profile");
    assert!(profile.contains("page profile"), "{profile}");
    // The written page must show a nonzero diff word count.
    let line = profile
        .lines()
        .find(|l| l.starts_with("0x"))
        .expect("at least one page line");
    let fields: Vec<&str> = line.split_whitespace().collect();
    let diff_words: u64 = fields[2].parse().unwrap();
    assert!(diff_words > 0, "diff words missing: {profile}");
}

#[test]
fn smp_nodes_share_frames_hardware_coherently() {
    // 4 processors in 2 SMP nodes: siblings see each other's writes
    // immediately (shared frame), remote nodes only after synchronization.
    let cfg = SvmConfig::paper_smp_nodes(4, 2);
    let got = std::sync::Mutex::new(vec![0u64; 4]);
    sim_core::run(SvmPlatform::boxed(cfg), RunConfig::new(4), |p| {
        if p.pid() == 0 {
            p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
        }
        p.barrier(0);
        p.start_timing();
        if p.pid() == 0 {
            p.store(HEAP_BASE, 8, 11);
        }
        p.barrier(1);
        // Everyone reads; siblings of p0 (p1, same node) read the shared
        // frame locally with no remote fetch.
        let v = p.load(HEAP_BASE, 8);
        got.lock().unwrap()[p.pid()] = v;
        p.barrier(2);
    });
    assert_eq!(*got.lock().unwrap(), vec![11; 4]);
}

#[test]
fn smp_nodes_reduce_page_fetches() {
    // The same all-read-one-page workload: 16x1 fetches the page at 15
    // nodes; 4x4 fetches it at 3.
    let fetches = |ppn: usize| {
        let cfg = SvmConfig::paper_smp_nodes(16, ppn);
        let stats = sim_core::run(SvmPlatform::boxed(cfg), RunConfig::new(16), |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.start_timing();
            p.load(HEAP_BASE + 8 * p.pid() as u64, 8);
            p.barrier(1);
        });
        stats.sum_counters().remote_fetches
    };
    assert_eq!(fetches(1), 15);
    assert_eq!(fetches(4), 3);
}

#[test]
fn smp_node_runs_are_deterministic_and_correct() {
    let go = || {
        let cfg = SvmConfig::paper_smp_nodes(8, 4);
        sim_core::run(SvmPlatform::boxed(cfg), RunConfig::new(8), |p| {
            if p.pid() == 0 {
                p.alloc_shared(2 * PAGE_SIZE, 8, Placement::RoundRobin);
            }
            p.barrier(0);
            p.start_timing();
            for i in 0..24u64 {
                p.store(HEAP_BASE + ((i * 88 + p.pid() as u64 * 128) % 8192), 8, i);
                if i % 6 == 0 {
                    p.lock(2);
                    p.work(4);
                    p.unlock(2);
                }
            }
            p.barrier(1);
        })
        .clocks
    };
    assert_eq!(go(), go());
}
