//! Randomized tests of the HLRC data plane and of end-to-end protocol
//! correctness under randomized data-race-free programs.
//!
//! Originally `proptest` properties, now seeded [`XorShift64`] sweeps so the
//! workspace builds with no external crates. Seeds are fixed: failures
//! reproduce exactly.

use sim_core::util::XorShift64;
use sim_core::{run, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_hlrc::{Diff, SvmConfig, SvmPlatform};

#[test]
fn diff_roundtrip() {
    for case in 0..48u64 {
        let mut rng = XorShift64::new(0xD1FF ^ (case << 8));
        let twin: Vec<u8> = (0..64).map(|_| rng.next_u64() as u8).collect();
        let mut dirty = twin.clone();
        for _ in 0..rng.below(32) {
            let i = rng.below(64) as usize;
            dirty[i] = rng.next_u64() as u8;
        }
        let d = Diff::create(&twin, &dirty);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, dirty, "case {case}");
    }
}

#[test]
fn diff_is_minimal() {
    for case in 0..48u64 {
        let mut rng = XorShift64::new(0x3141 ^ (case << 8));
        let twin: Vec<u8> = (0..128).map(|_| rng.next_u64() as u8).collect();
        let mut dirty = twin.clone();
        for _ in 0..rng.below(16) {
            let w = rng.below(32) as usize;
            let v = rng.next_u64() as u32;
            dirty[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let d = Diff::create(&twin, &dirty);
        // Count truly-differing u32 words.
        let differing = (0..32)
            .filter(|w| dirty[w * 4..w * 4 + 4] != twin[w * 4..w * 4 + 4])
            .count();
        assert_eq!(d.len(), differing);
        // Run count: number of maximal contiguous runs of differing words.
        let mut runs = 0;
        let mut prev = false;
        for w in 0..32 {
            let diff = dirty[w * 4..w * 4 + 4] != twin[w * 4..w * 4 + 4];
            if diff && !prev {
                runs += 1;
            }
            prev = diff;
        }
        assert_eq!(d.run_count(), runs, "case {case}");
    }
}

#[test]
fn disjoint_writers_always_merge() {
    for case in 0..48u64 {
        let mut rng = XorShift64::new(0x3E26E ^ (case << 8));
        // Assign each written word to one of two writers; both diff against
        // the same twin; applying both must produce the union.
        let twin = vec![0u8; 2048];
        let mut w1 = twin.clone();
        let mut w2 = twin.clone();
        let mut expect = twin.clone();
        let mut seen = std::collections::HashSet::new();
        let split = rng.next_u64();
        for k in 0..(1 + rng.below(63)) {
            let w = rng.below(512) as usize;
            let v = rng.next_u64() as u32;
            if !seen.insert(w) {
                continue; // keep writers disjoint per word
            }
            let target = if (split >> (k % 64)) & 1 == 0 {
                &mut w1
            } else {
                &mut w2
            };
            target[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
            expect[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let d1 = Diff::create(&twin, &w1);
        let d2 = Diff::create(&twin, &w2);
        let mut home = twin.clone();
        d1.apply(&mut home);
        d2.apply(&mut home);
        assert_eq!(home, expect, "case {case}");
    }
}

#[test]
fn randomized_drf_program_is_sequentially_consistent_at_sync() {
    // End-to-end runs are slower: fewer cases.
    for case in 0..12u64 {
        let mut rng = XorShift64::new(0xE2E ^ (case << 8));
        let nprocs = 2 + rng.below(3) as usize;
        let epochs = 1 + rng.below(3) as usize;
        let writes_per_epoch = 1 + rng.below(11) as usize;
        let seed = rng.next_u64();
        let placement = match rng.below(3) {
            0 => Placement::RoundRobin,
            1 => Placement::Node(rng.below(4) as usize),
            _ => Placement::Blocked { chunk_pages: 1 },
        };
        // Each epoch, each processor writes `writes_per_epoch` slots from
        // its OWN disjoint region (data-race-free), then a barrier, then
        // every processor reads back every slot written so far and checks
        // the value. Slots are spread over several pages to exercise
        // faults, twins, diffs, and invalidations under the chosen
        // placement.
        let npages = 4u64;
        let slots_per_proc = 64usize;
        let expected = std::sync::Mutex::new(vec![0u64; nprocs * slots_per_proc]);
        run(
            SvmPlatform::boxed(SvmConfig::paper(nprocs)),
            RunConfig::new(nprocs),
            |p| {
                if p.pid() == 0 {
                    p.alloc_shared(npages * PAGE_SIZE, 8, placement);
                }
                p.barrier(0);
                p.start_timing();
                let np = p.nprocs();
                let slot_addr = move |q: usize, s: usize| {
                    // Interleave processors' slots across pages at word
                    // granularity: maximal false sharing.
                    HEAP_BASE + (((s * np + q) * 8) as u64) % (npages * PAGE_SIZE - 8)
                };
                let mut rng = XorShift64::new(seed ^ p.pid() as u64);
                for epoch in 0..epochs {
                    for _ in 0..writes_per_epoch {
                        let s = rng.below(slots_per_proc as u64) as usize;
                        let v = rng.next_u64();
                        p.store(slot_addr(p.pid(), s), 8, v);
                        expected.lock().unwrap()[p.pid() * slots_per_proc + s] = v;
                    }
                    p.barrier(1 + epoch as u32);
                    // Verify everything written so far by everyone.
                    for q in 0..np {
                        for s in 0..slots_per_proc {
                            let want = expected.lock().unwrap()[q * slots_per_proc + s];
                            if want != 0 {
                                let got = p.load(slot_addr(q, s), 8);
                                assert_eq!(got, want, "p{} epoch {epoch} q{q} s{s}", p.pid());
                            }
                        }
                    }
                    p.barrier(100 + epoch as u32);
                }
            },
        );
    }
}
