//! Race detection through the SVM platform's access stream, including the
//! false-sharing case the paper's restructurings revolve around: two
//! processors writing different words of one PAGE is data-race-free (the
//! protocol merges diffs), and the detector agrees — it tracks 4-byte
//! words, not coherence units.

use sim_core::{run, Placement, RunConfig, HEAP_BASE};
use svm_hlrc::{SvmConfig, SvmPlatform};

#[test]
fn unsynchronized_sharing_is_flagged_on_svm() {
    let stats = run(
        SvmPlatform::boxed(SvmConfig::paper(2)),
        RunConfig::new(2).with_race_detection().named("svm-racy"),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("shared", 64, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.store(HEAP_BASE, 8, p.pid() as u64);
            p.barrier(1);
        },
    );
    assert!(stats.races() > 0);
    assert!(stats.race_summary().contains("shared"));
}

#[test]
fn page_false_sharing_is_not_a_race() {
    // The page is heavily write-shared (worst case for HLRC cost) but every
    // word has exactly one writer per epoch: no race, and a cheap witness
    // that the detector's granularity is the word, not the page.
    let stats = run(
        SvmPlatform::boxed(SvmConfig::paper(4)),
        RunConfig::new(4)
            .with_race_detection()
            .named("svm-false-sharing"),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("page", 4096, 8, Placement::Node(0));
            }
            p.barrier(0);
            for i in 0..32u64 {
                p.store(HEAP_BASE + (i * 4 + p.pid() as u64) * 8, 8, i);
            }
            p.barrier(1);
            for i in 0..128u64 {
                p.load(HEAP_BASE + i * 8, 8);
            }
            p.barrier(2);
        },
    );
    assert_eq!(stats.races(), 0, "{}", stats.race_summary());
}

#[test]
fn adjacent_word_writers_race_only_when_overlapping() {
    // Two processors write ADJACENT 4-byte words: clean. The same two
    // writing the SAME word: flagged.
    let clean = run(
        SvmPlatform::boxed(SvmConfig::paper(2)),
        RunConfig::new(2).with_race_detection(),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("words", 64, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.store(HEAP_BASE + 4 * p.pid() as u64, 4, 7);
            p.barrier(1);
        },
    );
    assert_eq!(clean.races(), 0, "{}", clean.race_summary());

    let racy = run(
        SvmPlatform::boxed(SvmConfig::paper(2)),
        RunConfig::new(2).with_race_detection(),
        |p| {
            if p.pid() == 0 {
                p.alloc_shared_labeled("words", 64, 8, Placement::Node(0));
            }
            p.barrier(0);
            p.store(HEAP_BASE, 4, 7);
            p.barrier(1);
        },
    );
    assert_eq!(racy.races(), 1);
}
