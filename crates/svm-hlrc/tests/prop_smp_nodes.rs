//! Randomized DRF programs on SMP-node SVM configurations: hardware-shared
//! frames within a node plus page-grained coherence between nodes must give
//! the same guarantees as one-processor nodes.
//!
//! Seeded [`XorShift64`] sweeps (originally `proptest`): failures reproduce
//! exactly.

use sim_core::util::XorShift64;
use sim_core::{run, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_hlrc::{SvmConfig, SvmPlatform};

#[test]
fn randomized_drf_program_with_smp_nodes() {
    for case in 0..10u64 {
        let mut rng = XorShift64::new(0x50BB ^ (case << 8));
        let ppn = [2usize, 4][rng.below(2) as usize];
        let epochs = 1 + rng.below(3) as usize;
        let writes_per_epoch = 1 + rng.below(9) as usize;
        let seed = rng.next_u64();
        let nprocs = 4;
        let npages = 4u64;
        let slots_per_proc = 48usize;
        let expected = std::sync::Mutex::new(vec![0u64; nprocs * slots_per_proc]);
        run(
            SvmPlatform::boxed(SvmConfig::paper_smp_nodes(nprocs, ppn)),
            RunConfig::new(nprocs),
            |p| {
                if p.pid() == 0 {
                    p.alloc_shared(npages * PAGE_SIZE, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                let np = p.nprocs();
                let slot_addr = move |q: usize, s: usize| {
                    HEAP_BASE + (((s * np + q) * 8) as u64) % (npages * PAGE_SIZE - 8)
                };
                let mut rng = XorShift64::new(seed ^ p.pid() as u64);
                for epoch in 0..epochs {
                    for _ in 0..writes_per_epoch {
                        let s = rng.below(slots_per_proc as u64) as usize;
                        let v = rng.next_u64();
                        p.store(slot_addr(p.pid(), s), 8, v);
                        expected.lock().unwrap()[p.pid() * slots_per_proc + s] = v;
                    }
                    p.barrier(1 + epoch as u32);
                    for q in 0..np {
                        for s in 0..slots_per_proc {
                            let want = expected.lock().unwrap()[q * slots_per_proc + s];
                            if want != 0 {
                                let got = p.load(slot_addr(q, s), 8);
                                assert_eq!(got, want, "ppn={ppn} p{} q{q} s{s}", p.pid());
                            }
                        }
                    }
                    p.barrier(100 + epoch as u32);
                }
            },
        );
    }
}
