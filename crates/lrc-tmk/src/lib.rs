//! # lrc-tmk — a TreadMarks-style, non-home-based lazy release consistency SVM
//!
//! The baseline protocol the paper's §2.1.1 contrasts HLRC against (Keleher
//! et al.'s TreadMarks; the comparison is Zhou, Iftode & Li, OSDI'96). The
//! crucial difference from the home-based protocol in `svm-hlrc`:
//!
//! * There is **no home copy**. Writers create diffs at releases but keep
//!   them; a faulting reader must *gather diffs from every writer* whose
//!   intervals it has not yet applied, then apply them in causal order.
//! * Diffs accumulate until a garbage-collection point. We fold a page's
//!   diff chain into its canonical base copy at barriers (TreadMarks ran
//!   periodic GC for the same reason) — the memory- and message-overhead
//!   this protocol pays for multiple-writer pages is exactly the weakness
//!   HLRC was designed to fix, and it reproduces here: page faults on
//!   multi-writer pages cost one round-trip **per writer** instead of one
//!   fetch from the home.
//!
//! The crate reuses the data-plane primitives (`Diff`, `PageEntry`) from
//! `svm-hlrc`, and is exercised by the same application suite through
//! `apps::Platform::Tmk` — every run is verified against the sequential
//! references, so this is a real working protocol, not a cost model.

// Indexed loops over fixed coordinate dimensions are clearer than
// iterator adaptors in this numeric code.
#![allow(clippy::needless_range_loop)]
use sim_core::cache::{Cache, LineState, Lookup};
use sim_core::platform::{Platform, Timing};
use sim_core::stats::{Bucket, ProcStats};
use sim_core::util::{FxMap, FxSet};
use sim_core::{Addr, PlacementMap, Resource};
use svm_hlrc::{build_profile, Diff, PState, PageEntry, PageTrack, SvmConfig};

/// One archived diff: who wrote it and what changed.
struct ArchivedDiff {
    writer: usize,
    diff: Diff,
}

/// Global (conceptually distributed) per-page diff chain plus the folded
/// base copy.
struct PageLog {
    base: Box<[u8]>,
    chain: Vec<ArchivedDiff>,
}

struct Node {
    pages: FxMap<u64, PageEntry>,
    /// How many chain entries of each page this node has applied.
    applied: FxMap<u64, u32>,
    write_set: FxSet<u64>,
    l1: Cache,
    l2: Cache,
    handler: Resource,
    io_in: Resource,
    io_out: Resource,
    debt: u64,
}

/// Write-notice interval (pages dirtied between releases).
#[derive(Clone)]
struct Interval {
    pages: Vec<u64>,
}

#[derive(Default, Clone, Copy)]
struct Acc {
    cycles: u64,
    invals: u64,
    /// Diffs archived into page chains by write-notice invalidations. The
    /// caller folds these into the invalidated node's `diffs_created` and
    /// `diffs_applied` counters (archival *is* this protocol's application —
    /// there is no home copy to patch).
    archived: u64,
}

/// The non-home-based LRC platform. Reuses [`SvmConfig`] — the machine is
/// identical; only the protocol differs.
pub struct TmkPlatform {
    cfg: SvmConfig,
    page_shift: u32,
    nodes: Vec<Node>,
    logs_by_page: FxMap<u64, PageLog>,
    vt: Vec<u32>,
    vc: Vec<Vec<u32>>,
    intervals: Vec<Vec<Interval>>,
    log_base: Vec<u32>,
    lock_vc: FxMap<u32, Vec<u32>>,
    /// Per-page protocol activity (shared tracker with `svm-hlrc`).
    activity: FxMap<u64, PageTrack>,
    /// Gather word-granularity sharing footprints (never affects timing).
    profiling: bool,
    /// Shared event-trace sink for the run (None when tracing is off).
    trace: Option<sim_core::TraceHandle>,
    /// Shared interval-metrics sink for the run (None when metrics are off).
    metrics: Option<sim_core::MetricsHandle>,
}

impl TmkPlatform {
    /// Build the platform. TreadMarks-style nodes host one processor each,
    /// so the node-grouping knob of the shared [`SvmConfig`] must be left
    /// at 1.
    ///
    /// # Panics
    /// If [`SvmConfig::validate`] rejects the configuration or
    /// `procs_per_node` is not 1.
    pub fn new(cfg: SvmConfig) -> Self {
        cfg.validate();
        assert_eq!(
            cfg.procs_per_node, 1,
            "TmkPlatform models one processor per node; procs_per_node = {} is not supported",
            cfg.procs_per_node
        );
        let n = cfg.nprocs;
        let page_shift = cfg.page_shift();
        let nodes = (0..n)
            .map(|_| Node {
                pages: FxMap::default(),
                applied: FxMap::default(),
                write_set: FxSet::default(),
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
                handler: Resource::new(),
                io_in: Resource::new(),
                io_out: Resource::new(),
                debt: 0,
            })
            .collect();
        Self {
            cfg,
            page_shift,
            nodes,
            logs_by_page: FxMap::default(),
            vt: vec![0; n],
            vc: vec![vec![0; n]; n],
            intervals: vec![Vec::new(); n],
            log_base: vec![0; n],
            lock_vc: FxMap::default(),
            activity: FxMap::default(),
            profiling: false,
            trace: None,
            metrics: None,
        }
    }

    /// Boxed, type-erased platform.
    pub fn boxed(cfg: SvmConfig) -> Box<dyn Platform> {
        Box::new(Self::new(cfg))
    }

    fn page_bytes(&self) -> u64 {
        self.cfg.page_size
    }

    #[inline]
    fn apply_debt(&mut self, t: &mut Timing) {
        let d = std::mem::take(&mut self.nodes[t.pid].debt);
        t.charge(Bucket::HandlerCompute, d);
    }

    fn log_entry(&mut self, page: u64) -> &mut PageLog {
        let ps = self.cfg.page_size as usize;
        self.logs_by_page.entry(page).or_insert_with(|| PageLog {
            base: vec![0u8; ps].into_boxed_slice(),
            chain: Vec::new(),
        })
    }

    /// Reconstruct the current contents of `page` (base + full chain).
    fn current_contents(&mut self, page: u64) -> Box<[u8]> {
        let log = self.log_entry(page);
        let mut buf = log.base.clone();
        for a in &log.chain {
            a.diff.apply(&mut buf);
        }
        buf
    }

    /// Fault `page` in at `pid`: gather the un-applied diff chain suffix
    /// from each distinct writer (one round trip per writer!), apply.
    fn fetch_page(&mut self, t: &mut Timing, page: u64) {
        let pid = t.pid;
        let t0 = *t.now;
        // State first: compute the fresh contents and remember how much of
        // the chain we now reflect.
        let contents = self.current_contents(page);
        let chain_len = self.log_entry(page).chain.len() as u32;
        // Cost: if the node has never had this page, it also needs a full
        // copy of the base from *some* writer/creator; otherwise only the
        // chain suffix it is missing.
        let already = *self.nodes[pid].applied.get(&page).unwrap_or(&0);
        let had_copy = self.nodes[pid].pages.contains_key(&page);
        t.charge(Bucket::DataWait, self.cfg.fault_trap);
        // Distinct writers in the missing suffix (pure reads over the chain,
        // so computing this outside the timing check changes nothing).
        let mut writers: Vec<usize> = Vec::new();
        let mut suffix_words = 0u64;
        let mut suffix_runs = 0u64;
        {
            let log = self.logs_by_page.get(&page).unwrap();
            for a in log.chain.iter().skip(already as usize) {
                if a.writer != pid && !writers.contains(&a.writer) {
                    writers.push(a.writer);
                }
                suffix_words += a.diff.len() as u64;
                suffix_runs += a.diff.run_count() as u64;
            }
        }
        let base_wire = if had_copy { 0 } else { self.page_bytes() };
        let wire = base_wire
            + writers.len() as u64 * (suffix_runs * 8 + suffix_words * 4 + self.cfg.ctrl_msg_bytes);
        let (profiling, wpp) = (self.profiling, self.cfg.words_per_page() as usize);
        self.activity
            .entry(page)
            .or_default()
            .record_fetch(pid, wire, profiling, wpp);
        // No home in this protocol: report the round-robin base-copy source
        // the full-page transfer would come from.
        let src = (page % self.cfg.nprocs as u64) as usize;
        sim_core::trace::emit(
            &self.trace,
            t.timing_on,
            pid,
            t0,
            sim_core::EventKind::PageFetchStart {
                page: page << self.page_shift,
                home: src,
                bytes: wire,
            },
        );
        if t.timing_on {
            let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
            let mut done = *t.now;
            if !had_copy {
                // Full page transfer from one node (round robin choice).
                let (_, req_out) = self.nodes[pid].io_out.serve(*t.now, ctrl);
                let arr = req_out + self.cfg.wire_latency;
                let (_, svc) = self.nodes[src].handler.serve(arr, self.cfg.handler_cost);
                if src != pid {
                    self.nodes[src].debt += self.cfg.handler_cost;
                }
                let pg = self.page_bytes() * self.cfg.io_cyc_per_byte;
                let (_, out_end) = self.nodes[src].io_out.serve(svc, pg);
                let (_, in_end) = self.nodes[pid]
                    .io_in
                    .serve(out_end + self.cfg.wire_latency, pg);
                done = done.max(in_end + self.page_bytes() / 2);
            }
            // One request/response round trip per distinct writer, all
            // issued in sequence (TreadMarks pipelines some of this; we
            // charge the conservative serial cost for requests and let the
            // responses overlap at the I/O bus).
            for w in writers {
                let (_, req_out) = self.nodes[pid].io_out.serve(done, ctrl);
                let arr = req_out + self.cfg.wire_latency;
                let svc_dur = self.cfg.handler_cost + suffix_words * self.cfg.diff_scan_per_word;
                let (_, svc) = self.nodes[w].handler.serve(arr, svc_dur);
                self.nodes[w].debt += svc_dur;
                let bytes = (suffix_runs * 8 + suffix_words * 4 + self.cfg.ctrl_msg_bytes)
                    * self.cfg.io_cyc_per_byte;
                let (_, out_end) = self.nodes[w].io_out.serve(svc, bytes);
                let (_, in_end) = self.nodes[pid]
                    .io_in
                    .serve(out_end + self.cfg.wire_latency, bytes);
                let applied_at =
                    in_end + suffix_words * self.cfg.diff_apply_per_word + suffix_runs * 8;
                done = done.max(applied_at);
                t.stats.counters.bytes_transferred += bytes / self.cfg.io_cyc_per_byte;
            }
            t.advance_to(Bucket::DataWait, done);
        }
        sim_core::trace::emit(
            &self.trace,
            t.timing_on,
            pid,
            *t.now,
            sim_core::EventKind::PageFetchDone {
                page: page << self.page_shift,
                home: src,
                bytes: wire,
            },
        );
        sim_core::trace::sample_fetch(&self.trace, t.timing_on, pid, *t.now - t0);
        sim_core::metrics::page_fetch(&self.metrics, t.timing_on, *t.now, page << self.page_shift);
        // Critical-path provenance: the fault stalled `pid` over (t0, now];
        // the round-robin base source stands in as the serving side.
        sim_core::trace::emit_edge(
            &self.trace,
            t.timing_on,
            sim_core::DepKind::PageFetch {
                page: page << self.page_shift,
                bytes: wire,
            },
            pid,
            t0,
            *t.now,
            src,
            t0,
        );
        self.nodes[pid]
            .pages
            .insert(page, PageEntry::copy_of(&contents));
        self.nodes[pid].applied.insert(page, chain_len);
        let base = page << self.page_shift;
        let len = self.page_bytes();
        self.nodes[pid].l1.invalidate_range(base, len);
        self.nodes[pid].l2.invalidate_range(base, len);
        t.stats.counters.remote_fetches += 1;
        if !had_copy {
            t.stats.counters.bytes_transferred += self.page_bytes();
        }
    }

    fn ensure_readable(&mut self, t: &mut Timing, page: u64) {
        if self.nodes[t.pid].pages.contains_key(&page) {
            return;
        }
        // First touch anywhere: cheap zero-fill only if no diffs exist yet.
        let virgin = self
            .logs_by_page
            .get(&page)
            .is_none_or(|l| l.chain.is_empty());
        if virgin && !self.logs_by_page.contains_key(&page) {
            let ps = self.cfg.page_size;
            self.nodes[t.pid].pages.insert(page, PageEntry::zeroed(ps));
            self.nodes[t.pid].applied.insert(page, 0);
        } else {
            self.fetch_page(t, page);
        }
    }

    fn ensure_writable(&mut self, t: &mut Timing, page: u64) {
        self.ensure_readable(t, page);
        let pid = t.pid;
        let needs_twin = self.nodes[pid].pages[&page].state == PState::ReadOnly;
        if needs_twin {
            t.charge(
                Bucket::HandlerCompute,
                self.cfg.fault_trap + self.page_bytes() / 2 * self.cfg.memcpy_cyc_per_2bytes,
            );
            let e = self.nodes[pid].pages.get_mut(&page).unwrap();
            e.twin = Some(e.frame.clone());
            e.state = PState::ReadWrite;
            self.nodes[pid].write_set.insert(page);
            t.stats.counters.twins_created += 1;
        }
    }

    fn cache_access(&mut self, t: &mut Timing, addr: Addr, write: bool) {
        let node = &mut self.nodes[t.pid];
        match node.l1.access(addr, write) {
            Lookup::Hit => {}
            _ => match node.l2.access(addr, write) {
                Lookup::Hit | Lookup::UpgradeMiss => {
                    t.charge(Bucket::CacheStall, self.cfg.l2_hit);
                    node.l1.fill(addr, LineState::Modified);
                    t.stats.counters.cache_misses += 1;
                }
                Lookup::Miss { .. } => {
                    t.charge(Bucket::CacheStall, self.cfg.mem_latency);
                    node.l2.fill(addr, LineState::Modified);
                    node.l1.fill(addr, LineState::Modified);
                    t.stats.counters.cache_misses += 1;
                }
            },
        }
    }

    /// Close `pid`'s interval: archive a diff per dirty page (kept at the
    /// writer — only local work at release time; this is where the
    /// protocol is *cheaper* than HLRC).
    fn close_interval(&mut self, t: &mut Timing) {
        let pid = t.pid;
        if self.nodes[pid].write_set.is_empty() {
            return;
        }
        let mut pages: Vec<u64> = self.nodes[pid].write_set.drain().collect();
        pages.sort_unstable();
        for &page in &pages {
            let still_dirty =
                self.nodes[pid].pages.get(&page).map(|e| e.state) == Some(PState::ReadWrite);
            if !still_dirty {
                continue;
            }
            let entry = self.nodes[pid].pages.get_mut(&page).unwrap();
            entry.state = PState::ReadOnly;
            let twin = entry.twin.take().expect("dirty page without twin");
            let diff = Diff::create(&twin, &entry.frame);
            let scan = self.cfg.words_per_page() * self.cfg.diff_scan_per_word
                + diff.len() as u64 * self.cfg.diff_scan_per_word;
            let diff_t0 = *t.now;
            t.charge(Bucket::HandlerCompute, scan);
            // Critical-path provenance: the writer spent (diff_t0, now]
            // creating and archiving this page's diff.
            sim_core::trace::emit_edge(
                &self.trace,
                t.timing_on,
                sim_core::DepKind::Diff {
                    page: page << self.page_shift,
                },
                pid,
                diff_t0,
                *t.now,
                pid,
                diff_t0,
            );
            t.stats.counters.diffs_created += 1;
            // Archival into the page chain *is* this protocol's diff
            // application — there is no home copy to patch — so the two
            // counters stay structurally equal.
            t.stats.counters.diffs_applied += 1;
            let pbase = page << self.page_shift;
            sim_core::trace::emit(
                &self.trace,
                t.timing_on,
                pid,
                *t.now,
                sim_core::EventKind::DiffCreated { page: pbase },
            );
            sim_core::trace::emit(
                &self.trace,
                t.timing_on,
                pid,
                *t.now,
                sim_core::EventKind::DiffApplied { page: pbase },
            );
            let (profiling, wpp) = (self.profiling, self.cfg.words_per_page() as usize);
            // Wire cost 0: the chain is kept at the writer; bytes move at
            // the faulting reader's gather, accounted in `fetch_page`.
            self.activity
                .entry(page)
                .or_default()
                .record_diff(pid, &diff, 0, profiling, wpp);
            sim_core::metrics::page_diff(
                &self.metrics,
                t.timing_on,
                *t.now,
                page << self.page_shift,
                pid as u16,
                diff.words().map(|(w, _)| w),
            );
            // The writer's own copy reflects its diff.
            let chain_len = {
                let log = self.log_entry(page);
                log.chain.push(ArchivedDiff { writer: pid, diff });
                log.chain.len() as u32
            };
            self.nodes[pid].applied.insert(page, chain_len);
        }
        self.intervals[pid].push(Interval { pages });
        self.vt[pid] += 1;
        let me = pid;
        self.vc[me][me] = self.vt[me];
    }

    /// Invalidate a page at `g` on receipt of a write notice.
    fn invalidate_page(&mut self, g: usize, page: u64, at: u64, timing_on: bool, acc: &mut Acc) {
        let state = self.nodes[g].pages.get(&page).map(|e| e.state);
        match state {
            None => return,
            Some(PState::ReadWrite) => {
                // Archive our local diff before dropping the copy.
                let entry = self.nodes[g].pages.get_mut(&page).unwrap();
                entry.state = PState::ReadOnly;
                let twin = entry.twin.take().expect("dirty page without twin");
                let diff = Diff::create(&twin, &entry.frame);
                if timing_on {
                    acc.cycles += self.cfg.words_per_page() * self.cfg.diff_scan_per_word;
                }
                acc.archived += 1;
                let (profiling, wpp) = (self.profiling, self.cfg.words_per_page() as usize);
                self.activity
                    .entry(page)
                    .or_default()
                    .record_diff(g, &diff, 0, profiling, wpp);
                sim_core::metrics::page_diff(
                    &self.metrics,
                    timing_on,
                    at,
                    page << self.page_shift,
                    g as u16,
                    diff.words().map(|(w, _)| w),
                );
                let log = self.log_entry(page);
                log.chain.push(ArchivedDiff { writer: g, diff });
                let pbase = page << self.page_shift;
                sim_core::trace::emit(
                    &self.trace,
                    timing_on,
                    g,
                    at,
                    sim_core::EventKind::DiffCreated { page: pbase },
                );
                sim_core::trace::emit(
                    &self.trace,
                    timing_on,
                    g,
                    at,
                    sim_core::EventKind::DiffApplied { page: pbase },
                );
            }
            Some(PState::ReadOnly) => {}
        }
        self.activity.entry(page).or_default().record_inval();
        sim_core::metrics::page_inval(&self.metrics, timing_on, at, page << self.page_shift);
        sim_core::trace::emit(
            &self.trace,
            timing_on,
            g,
            at,
            sim_core::EventKind::Invalidation {
                page: page << self.page_shift,
            },
        );
        self.nodes[g].pages.remove(&page);
        self.nodes[g].applied.remove(&page);
        let base = page << self.page_shift;
        let len = self.cfg.page_size;
        self.nodes[g].l1.invalidate_range(base, len);
        self.nodes[g].l2.invalidate_range(base, len);
        acc.cycles += self.cfg.inval_per_page;
        acc.invals += 1;
    }

    fn consume_notices(&mut self, g: usize, upto: &[u32], at: u64, timing_on: bool) -> Acc {
        let mut acc = Acc::default();
        for r in 0..self.cfg.nprocs {
            if r == g {
                self.vc[g][r] = self.vc[g][r].max(upto[r].min(self.vt[r]));
                continue;
            }
            let from = self.vc[g][r];
            let to = upto[r].min(self.vt[r]);
            if to <= from {
                continue;
            }
            for idx in from..to {
                let li = (idx - self.log_base[r]) as usize;
                let pages: Vec<u64> = self.intervals[r][li].pages.clone();
                for page in pages {
                    self.invalidate_page(g, page, at, timing_on, &mut acc);
                }
            }
            self.vc[g][r] = to;
        }
        acc
    }

    /// Barrier-time garbage collection. TreadMarks collected diffs lazily;
    /// we fold a page's chain into its base copy once it grows past a
    /// threshold (folding eagerly would hide the protocol's signature
    /// multi-writer gather cost, which is exactly what the HLRC comparison
    /// is about). At a barrier every node has consumed every notice, so
    /// surviving copies equal base+chain and folding is safe.
    fn gc_chains(&mut self) {
        const GC_THRESHOLD: usize = 8;
        let pages: Vec<u64> = self
            .logs_by_page
            .iter()
            .filter(|(_, l)| l.chain.len() >= GC_THRESHOLD)
            .map(|(p, _)| *p)
            .collect();
        for page in pages {
            let log = self.logs_by_page.get_mut(&page).unwrap();
            let chain = std::mem::take(&mut log.chain);
            for a in &chain {
                a.diff.apply(&mut log.base);
            }
            // Applied counters now refer to a folded chain: reset them for
            // every node still holding a copy (their frames equal base).
            for node in &mut self.nodes {
                if node.pages.contains_key(&page) {
                    node.applied.insert(page, 0);
                }
            }
        }
    }
}

impl Platform for TmkPlatform {
    fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    fn min_cross_node_latency(&self) -> Option<u64> {
        // TreadMarks-style LRC: uniprocessor nodes, so the cheapest
        // cross-processor interaction is one message over the wire.
        Some(self.cfg.wire_latency)
    }

    fn load(&mut self, t: &mut Timing, addr: Addr, len: u8) -> u64 {
        self.apply_debt(t);
        t.stats.counters.accesses += 1;
        t.charge(Bucket::Compute, 1);
        let page = addr >> self.page_shift;
        self.ensure_readable(t, page);
        self.cache_access(t, addr, false);
        let off = (addr & (self.cfg.page_size - 1)) as usize;
        let frame = &self.nodes[t.pid].pages[&page].frame;
        let mut w = [0u8; 8];
        w[..len as usize].copy_from_slice(&frame[off..off + len as usize]);
        u64::from_le_bytes(w)
    }

    fn store(&mut self, t: &mut Timing, addr: Addr, len: u8, val: u64) {
        self.apply_debt(t);
        t.stats.counters.accesses += 1;
        t.charge(Bucket::Compute, 1);
        let page = addr >> self.page_shift;
        self.ensure_writable(t, page);
        self.cache_access(t, addr, true);
        let off = (addr & (self.cfg.page_size - 1)) as usize;
        let frame = &mut self.nodes[t.pid].pages.get_mut(&page).unwrap().frame;
        frame[off..off + len as usize].copy_from_slice(&val.to_le_bytes()[..len as usize]);
    }

    // Bulk fast path, as in `svm-hlrc`: a word is fast when no interrupt
    // debt is pending, the page is already mapped at this processor (for
    // stores: ReadWrite, so no fault or twin), and the word's L1 line is
    // present with sufficient permission — then k words in one line batch to
    // counters + Compute k + one `hit_run` + k frame moves, identical to k
    // scalar iterations. Other words fall back to scalar `load`/`store`.
    fn load_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        out: &mut [u64],
        budget: u64,
    ) -> usize {
        let pid = t.pid;
        let l1_line = self.nodes[pid].l1.geom().line;
        let mut done = 0usize;
        while done < out.len() {
            let a = addr + done as u64 * stride;
            let page = a >> self.page_shift;
            let fast = self.nodes[pid].debt == 0
                && self.nodes[pid].pages.contains_key(&page)
                && self.nodes[pid].l1.state_of(a) != LineState::Invalid;
            if !fast {
                out[done] = self.load(t, a, len);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.nodes[pid].l1.line_base(a) + l1_line;
            let mut k = (out.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.nodes[pid].l1.hit_run(a, false, k);
            let page_base = page << self.page_shift;
            let frame = &self.nodes[pid].pages[&page].frame;
            for i in 0..k {
                let off = (a + i * stride - page_base) as usize;
                let mut b = [0u8; 8];
                b[..len as usize].copy_from_slice(&frame[off..off + len as usize]);
                out[done + i as usize] = u64::from_le_bytes(b);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn store_bulk(
        &mut self,
        t: &mut Timing,
        addr: Addr,
        stride: u64,
        len: u8,
        vals: &[u64],
        budget: u64,
    ) -> usize {
        let pid = t.pid;
        let l1_line = self.nodes[pid].l1.geom().line;
        let mut done = 0usize;
        while done < vals.len() {
            let a = addr + done as u64 * stride;
            let page = a >> self.page_shift;
            let fast = self.nodes[pid].debt == 0
                && self.nodes[pid]
                    .pages
                    .get(&page)
                    .is_some_and(|e| e.state == PState::ReadWrite)
                && matches!(
                    self.nodes[pid].l1.state_of(a),
                    LineState::Exclusive | LineState::Modified
                );
            if !fast {
                self.store(t, a, len, vals[done]);
                done += 1;
                if *t.now > budget {
                    break;
                }
                continue;
            }
            let line_end = self.nodes[pid].l1.line_base(a) + l1_line;
            let mut k = (vals.len() - done) as u64;
            if stride > 0 {
                k = k.min((line_end - a).div_ceil(stride));
            }
            if t.timing_on {
                k = k.min(budget.saturating_sub(*t.now).saturating_add(1));
            }
            t.stats.counters.accesses += k;
            t.charge(Bucket::Compute, k);
            self.nodes[pid].l1.hit_run(a, true, k);
            let page_base = page << self.page_shift;
            let frame = &mut self.nodes[pid].pages.get_mut(&page).unwrap().frame;
            for i in 0..k {
                let off = (a + i * stride - page_base) as usize;
                frame[off..off + len as usize]
                    .copy_from_slice(&vals[done + i as usize].to_le_bytes()[..len as usize]);
            }
            done += k as usize;
            if *t.now > budget {
                break;
            }
        }
        done
    }

    fn acquire_request(&mut self, t: &mut Timing, lock: u32) -> u64 {
        self.apply_debt(t);
        t.charge(Bucket::LockWait, self.cfg.handler_cost);
        if !t.timing_on {
            return *t.now;
        }
        let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
        let (_, out_end) = self.nodes[t.pid].io_out.serve(*t.now, ctrl);
        let mgr = self.cfg.lock_manager(lock);
        let (_, mgr_end) = self.nodes[mgr]
            .handler
            .serve(out_end + self.cfg.wire_latency, self.cfg.handler_cost);
        if mgr != t.pid {
            self.nodes[mgr].debt += self.cfg.handler_cost;
        }
        mgr_end + self.cfg.wire_latency
    }

    fn acquire_grant(
        &mut self,
        pid: usize,
        lock: u32,
        grant_at: u64,
        stats: &mut ProcStats,
        _placement: &mut PlacementMap,
        timing_on: bool,
    ) -> u64 {
        let upto = match self.lock_vc.get(&lock) {
            Some(v) => v.clone(),
            None => vec![0; self.cfg.nprocs],
        };
        let acc = self.consume_notices(pid, &upto, grant_at, timing_on);
        stats.counters.invalidations += acc.invals;
        stats.counters.diffs_created += acc.archived;
        stats.counters.diffs_applied += acc.archived;
        if !timing_on {
            return grant_at;
        }
        grant_at + self.cfg.wire_latency + self.cfg.handler_cost + acc.cycles
    }

    fn release(&mut self, t: &mut Timing, lock: u32) -> u64 {
        self.apply_debt(t);
        self.close_interval(t);
        t.charge(Bucket::LockWait, self.cfg.handler_cost);
        self.lock_vc.insert(lock, self.vc[t.pid].clone());
        *t.now
    }

    fn barrier_arrive(&mut self, t: &mut Timing, barrier: u32) -> u64 {
        self.apply_debt(t);
        self.close_interval(t);
        if !t.timing_on {
            return *t.now;
        }
        let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
        let (_, out_end) = self.nodes[t.pid].io_out.serve(*t.now, ctrl);
        let mgr = self.cfg.barrier_manager(barrier);
        let (_, mgr_end) = self.nodes[mgr]
            .handler
            .serve(out_end + self.cfg.wire_latency, self.cfg.handler_cost);
        mgr_end
    }

    fn barrier_release(
        &mut self,
        barrier: u32,
        arrivals: &[u64],
        stats: &mut [ProcStats],
        _placement: &mut PlacementMap,
        timing_on: bool,
    ) -> Vec<u64> {
        let n = self.cfg.nprocs;
        let mgr = self.cfg.barrier_manager(barrier);
        let vt = self.vt.clone();
        let mut resumes = vec![0u64; n];
        let start = arrivals.iter().copied().max().unwrap_or(0);
        let merge_end = start
            + if timing_on {
                n as u64 * self.cfg.barrier_merge_per_proc
            } else {
                0
            };
        let mut send_cursor = merge_end;
        let mut mgr_acc = Acc::default();
        for q in 0..n {
            let acc = self.consume_notices(q, &vt, merge_end, timing_on);
            stats[q].counters.invalidations += acc.invals;
            stats[q].counters.diffs_created += acc.archived;
            stats[q].counters.diffs_applied += acc.archived;
            if q == mgr {
                mgr_acc = acc;
                continue;
            }
            if timing_on {
                let ctrl = self.cfg.ctrl_msg_bytes * self.cfg.io_cyc_per_byte;
                let (_, out_end) = self.nodes[mgr].io_out.serve(send_cursor, ctrl);
                send_cursor = out_end;
                resumes[q] = out_end + self.cfg.wire_latency + self.cfg.handler_cost + acc.cycles;
            }
        }
        resumes[mgr] = send_cursor + mgr_acc.cycles;
        // GC: fold chains and release interval logs.
        self.gc_chains();
        for p in 0..n {
            self.log_base[p] = self.vt[p];
            self.intervals[p].clear();
        }
        if !timing_on {
            return arrivals.to_vec();
        }
        resumes
    }

    fn reset_timing(&mut self) {
        self.activity.clear();
        for node in &mut self.nodes {
            node.handler.reset();
            node.io_in.reset();
            node.io_out.reset();
            node.debt = 0;
        }
    }

    fn profile(&self) -> Option<String> {
        if self.activity.is_empty() {
            return None;
        }
        let mut pages: Vec<(&u64, &PageTrack)> = self.activity.iter().collect();
        pages.sort_by_key(|(p, a)| (std::cmp::Reverse(a.fetches), **p));
        let mut s = String::from(
            "TMK page profile (hottest pages by remote fetches):\n             page_base          fetches  diff_words   diff_runs  wire_bytes  invalidations\n",
        );
        let total: u64 = pages.iter().map(|(_, a)| a.fetches).sum();
        for (page, a) in pages.iter().take(16) {
            s.push_str(&format!(
                "{:#014x} {:>10} {:>11} {:>11} {:>11} {:>14}\n",
                **page << self.page_shift,
                a.fetches,
                a.diff_words,
                a.diff_runs,
                a.wire_bytes,
                a.invalidations
            ));
        }
        let top: u64 = pages.iter().take(16).map(|(_, a)| a.fetches).sum();
        s.push_str(&format!(
            "{} pages active; top 16 pages account for {:.0}% of {} fetches\n",
            pages.len(),
            100.0 * top as f64 / total.max(1) as f64,
            total
        ));
        Some(s)
    }

    fn set_sharing_profile(&mut self, on: bool) {
        self.profiling = on;
    }

    fn set_trace(&mut self, trace: Option<sim_core::TraceHandle>) {
        self.trace = trace;
    }

    fn set_metrics(&mut self, metrics: Option<sim_core::MetricsHandle>) {
        self.metrics = metrics;
    }

    fn sharing_profile(&self) -> Option<sim_core::sharing::SharingProfile> {
        Some(build_profile(
            &self.activity,
            self.page_shift,
            self.page_bytes(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{run, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};

    fn tmk_run<F: Fn(&mut sim_core::Proc) + Sync>(n: usize, f: F) -> sim_core::RunStats {
        run(
            TmkPlatform::boxed(SvmConfig::paper(n)),
            RunConfig::new(n),
            f,
        )
    }

    #[test]
    fn data_flows_through_diff_chains() {
        let got = std::sync::Mutex::new(vec![0u64; 2]);
        let stats = tmk_run(2, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::RoundRobin);
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 1 {
                p.store(HEAP_BASE + 8, 8, 7);
            }
            p.barrier(1);
            let v = p.load(HEAP_BASE + 8, 8);
            got.lock().unwrap()[p.pid()] = v;
            p.barrier(2);
        });
        assert_eq!(*got.lock().unwrap(), vec![7, 7]);
        // Archival is application in this protocol: the counters pair up.
        let c = stats.sum_counters();
        assert!(c.diffs_created > 0);
        assert_eq!(c.diffs_created, c.diffs_applied);
    }

    #[test]
    fn multiple_writers_merge_without_a_home() {
        let got = std::sync::Mutex::new(vec![(0u64, 0u64); 4]);
        tmk_run(4, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::RoundRobin);
            }
            p.barrier(0);
            p.start_timing();
            p.store(HEAP_BASE + 8 * p.pid() as u64, 8, 100 + p.pid() as u64);
            p.barrier(1);
            let a = p.load(HEAP_BASE, 8);
            let b = p.load(HEAP_BASE + 24, 8);
            got.lock().unwrap()[p.pid()] = (a, b);
            p.barrier(2);
        });
        for &(a, b) in got.lock().unwrap().iter() {
            assert_eq!((a, b), (100, 103));
        }
    }

    #[test]
    fn lock_chain_carries_causality() {
        let got = std::sync::Mutex::new(0u64);
        tmk_run(3, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::RoundRobin);
            }
            p.barrier(0);
            p.start_timing();
            if p.pid() == 0 {
                p.lock(1);
                p.store(HEAP_BASE, 8, 5);
                p.unlock(1);
            }
            p.barrier(1);
            if p.pid() == 1 {
                p.lock(1);
                let v = p.load(HEAP_BASE, 8);
                p.store(HEAP_BASE + 8, 8, v + 1);
                p.unlock(1);
            }
            p.barrier(2);
            if p.pid() == 2 {
                p.lock(1);
                *got.lock().unwrap() = p.load(HEAP_BASE + 8, 8);
                p.unlock(1);
            }
            p.barrier(3);
        });
        assert_eq!(*got.lock().unwrap(), 6);
    }

    #[test]
    fn multi_writer_fault_costs_more_than_single_writer() {
        // The protocol's signature weakness: a reader faulting on a page
        // with k writers pays ~k round trips.
        let cost = |writers: usize| {
            let stats = tmk_run(8, move |p| {
                if p.pid() == 0 {
                    p.alloc_shared(PAGE_SIZE, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                if p.pid() >= 1 && p.pid() <= writers {
                    p.store(HEAP_BASE + 8 * p.pid() as u64, 8, 1);
                }
                p.barrier(1);
                if p.pid() == 7 {
                    p.load(HEAP_BASE, 8);
                }
                p.barrier(2);
            });
            stats.procs[7].get(Bucket::DataWait)
        };
        let c1 = cost(1);
        let c5 = cost(5);
        assert!(
            c5 > c1 + 1000,
            "5 writers should cost several extra round trips: c1={c1} c5={c5}"
        );
    }

    #[test]
    fn gc_folds_chains_at_barriers() {
        // After a barrier the chains are folded, so a fresh fault needs only
        // the base copy (single transfer) even after heavy multi-writing.
        let stats = tmk_run(4, |p| {
            if p.pid() == 0 {
                p.alloc_shared(PAGE_SIZE, 8, Placement::RoundRobin);
            }
            p.barrier(0);
            p.start_timing();
            for epoch in 0..3u32 {
                p.store(HEAP_BASE + 8 * p.pid() as u64, 8, epoch as u64);
                p.barrier(1 + epoch);
            }
            // Everyone re-reads after the last barrier: single-transfer
            // faults, not 4-writer chain gathers.
            p.load(HEAP_BASE, 8);
            p.barrier(10);
        });
        assert!(stats.total_cycles() > 0);
    }

    #[test]
    fn deterministic() {
        let go = || {
            tmk_run(4, |p| {
                if p.pid() == 0 {
                    p.alloc_shared(4 * PAGE_SIZE, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                for i in 0..32u64 {
                    p.store(HEAP_BASE + ((i * 56 + p.pid() as u64 * 96) % 4096), 8, i);
                    if i % 8 == 0 {
                        p.lock(1);
                        p.work(3);
                        p.unlock(1);
                    }
                }
                p.barrier(1);
            })
            .clocks
        };
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "one processor per node")]
    fn construction_rejects_multi_processor_nodes() {
        let _ = TmkPlatform::new(SvmConfig::paper_smp_nodes(8, 2));
    }
}
