//! Randomized data-race-free programs through the TreadMarks-style protocol
//! (the same harness as `svm-hlrc`'s `prop_protocol`, retargeted): every
//! write must be visible to every processor after the next barrier, under
//! arbitrary interleaving, false sharing and placement.
//!
//! Seeded [`XorShift64`] sweeps (originally `proptest`): failures reproduce
//! exactly.

use lrc_tmk::TmkPlatform;
use sim_core::util::XorShift64;
use sim_core::{run, Placement, RunConfig, HEAP_BASE, PAGE_SIZE};
use svm_hlrc::SvmConfig;

#[test]
fn randomized_drf_program_is_correct_on_tmk() {
    for case in 0..10u64 {
        let mut rng = XorShift64::new(0x7A4B ^ (case << 8));
        let nprocs = 2 + rng.below(3) as usize;
        let epochs = 1 + rng.below(3) as usize;
        let writes_per_epoch = 1 + rng.below(11) as usize;
        let seed = rng.next_u64();
        let npages = 4u64;
        let slots_per_proc = 64usize;
        let expected = std::sync::Mutex::new(vec![0u64; nprocs * slots_per_proc]);
        run(
            TmkPlatform::boxed(SvmConfig::paper(nprocs)),
            RunConfig::new(nprocs),
            |p| {
                if p.pid() == 0 {
                    p.alloc_shared(npages * PAGE_SIZE, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                let np = p.nprocs();
                let slot_addr = move |q: usize, s: usize| {
                    HEAP_BASE + (((s * np + q) * 8) as u64) % (npages * PAGE_SIZE - 8)
                };
                let mut rng = XorShift64::new(seed ^ p.pid() as u64);
                for epoch in 0..epochs {
                    for _ in 0..writes_per_epoch {
                        let s = rng.below(slots_per_proc as u64) as usize;
                        let v = rng.next_u64();
                        p.store(slot_addr(p.pid(), s), 8, v);
                        expected.lock().unwrap()[p.pid() * slots_per_proc + s] = v;
                    }
                    p.barrier(1 + epoch as u32);
                    for q in 0..np {
                        for s in 0..slots_per_proc {
                            let want = expected.lock().unwrap()[q * slots_per_proc + s];
                            if want != 0 {
                                let got = p.load(slot_addr(q, s), 8);
                                assert_eq!(got, want, "p{} epoch {epoch} q{q} s{s}", p.pid());
                            }
                        }
                    }
                    p.barrier(100 + epoch as u32);
                }
            },
        );
    }
}

#[test]
fn randomized_lock_programs_are_correct_on_tmk() {
    for case in 0..10u64 {
        let mut rng = XorShift64::new(0x10CC ^ (case << 8));
        let nprocs = 2 + rng.below(3) as usize;
        let rounds = 1 + rng.below(11) as usize;
        let seed = rng.next_u64();
        // Shared counters incremented under a lock: TMK's diff chains and
        // per-writer gathers must still deliver atomic read-modify-write.
        let total = std::sync::Mutex::new(0u64);
        run(
            TmkPlatform::boxed(SvmConfig::paper(nprocs)),
            RunConfig::new(nprocs),
            |p| {
                if p.pid() == 0 {
                    p.alloc_shared(PAGE_SIZE, 8, Placement::RoundRobin);
                }
                p.barrier(0);
                p.start_timing();
                let mut rng = XorShift64::new(seed ^ (p.pid() as u64) << 8);
                for _ in 0..rounds {
                    let slot = rng.below(4);
                    p.lock(slot as u32);
                    let v = p.load(HEAP_BASE + slot * 8, 8);
                    p.work(rng.below(50));
                    p.store(HEAP_BASE + slot * 8, 8, v + 1);
                    p.unlock(slot as u32);
                }
                p.barrier(1);
                if p.pid() == 0 {
                    let mut sum = 0;
                    for slot in 0..4u64 {
                        sum += p.load(HEAP_BASE + slot * 8, 8);
                    }
                    *total.lock().unwrap() = sum;
                }
                p.barrier(2);
            },
        );
        assert_eq!(total.into_inner().unwrap(), (nprocs * rounds) as u64);
    }
}
