//! Randomized tests over the application suite: layout bijectivity,
//! partition tilings, workload-generator invariants, and end-to-end sorts
//! with randomized inputs.
//!
//! Seeded [`XorShift64`] sweeps (originally `proptest`): failures reproduce
//! exactly.

use apps::common::Platform;
use apps::radix::{self, RadixParams, RadixVersion};
use apps::shearwarp::{self, Geom};
use apps::volrend::{self, VolrendParams};
use sim_core::util::XorShift64;

#[test]
fn rle_round_trips_arbitrary_volumes() {
    for case in 0..32u64 {
        let mut crng = XorShift64::new(0x21E ^ (case << 8));
        let v = [8usize, 12, 16][crng.below(3) as usize];
        let seed = crng.next_u64();
        let density = crng.f64();
        // Random volume with the requested occupancy.
        let mut rng = XorShift64::new(seed);
        let mut vol = vec![0u8; v * v * v];
        for b in vol.iter_mut() {
            if rng.f64() < density {
                *b = 1 + (rng.next_u64() % 255) as u8;
            }
        }
        let rle = shearwarp::encode(&vol, v);
        for z in 0..v {
            for y in 0..v {
                let (r0, rc, v0) = rle.index[z * v + y];
                let mut row = vec![0u8; v];
                let mut x = 0usize;
                let mut vi = v0 as usize;
                for r in r0..r0 + rc {
                    let run = rle.runs[r as usize];
                    x += (run >> 16) as usize;
                    for _ in 0..(run & 0xffff) {
                        row[x] = rle.vox[vi];
                        x += 1;
                        vi += 1;
                    }
                }
                assert_eq!(&row[..], &vol[(z * v + y) * v..(z * v + y + 1) * v]);
            }
        }
    }
}

#[test]
fn shearwarp_geometry_keeps_shifts_in_bounds() {
    let mut rng = XorShift64::new(0x6E0);
    for _ in 0..32 {
        let v = 8 + rng.below(120) as usize;
        let g = Geom::new(v);
        for z in 0..v {
            let (sx, sy) = g.shift(z);
            for y in 0..v {
                let u = y as i64 + g.my as i64 + sy;
                assert!(u >= 0 && (u as usize) < g.iy, "row out of bounds");
            }
            for x in 0..v {
                let xi = x as i64 + g.mx as i64 + sx;
                assert!(xi >= 0 && (xi as usize) < g.ix, "col out of bounds");
            }
        }
    }
}

#[test]
fn volume_zrange_is_tight() {
    let mut crng = XorShift64::new(0x2A46E);
    for _ in 0..32 {
        let seed = crng.next_u64();
        let params = VolrendParams {
            v: 16,
            frames: 1,
            term: 0.95,
            seed,
        };
        let vol = volrend::generate_volume(&params);
        let zr = volrend::zrange_map(&vol, 16);
        for y in 0..16 {
            for x in 0..16 {
                let (lo, hi) = zr[y * 16 + x];
                for z in 0..16 {
                    let d = vol[(z * 16 + y) * 16 + x];
                    if d != 0 {
                        assert!(
                            (lo as usize) <= z && z < hi as usize,
                            "occupied voxel outside range"
                        );
                    }
                }
                if lo as usize <= 15 && (lo as usize) < (hi as usize) {
                    // Range endpoints are occupied (tightness).
                    assert!(vol[((lo as usize) * 16 + y) * 16 + x] != 0);
                    assert!(vol[((hi as usize - 1) * 16 + y) * 16 + x] != 0);
                }
            }
        }
    }
}

#[test]
fn radix_sorts_arbitrary_seeds() {
    // End-to-end simulated sorts: fewer cases.
    let mut crng = XorShift64::new(0x2AD1);
    for _ in 0..6 {
        let seed = crng.next_u64();
        let nprocs = [1usize, 2, 4][crng.below(3) as usize];
        let version = [RadixVersion::Orig, RadixVersion::LocalBuffer][crng.below(2) as usize];
        let params = RadixParams {
            n: 1 << 10,
            passes: 2,
            seed,
        };
        // run_params panics internally if the output is not sorted.
        let r = radix::run_params(Platform::Svm, nprocs, &params, version);
        assert!(r.stats.total_cycles() > 0);
    }
}
