//! Volrend — ray-casting volume renderer (SPLASH-2).
//!
//! A parallel-projection ray caster: for every image pixel a ray marches
//! through a read-only density volume, compositing opacity-weighted
//! intensity with early ray termination. Work per pixel is highly
//! non-uniform (dense regions terminate early; empty regions march the full
//! depth), so the application uses distributed task queues of pixel tiles
//! with task stealing.
//!
//! ## Versions (paper §4.2.1)
//!
//! * [`VolrendVersion::Orig`] — SPLASH-2: the image is divided into `P`
//!   contiguous blocks of tiles; per-processor task queues with stealing.
//!   Queues are packed (false-shared) and the small image's partition pages
//!   interleave owners.
//! * [`VolrendVersion::PadQueues`] — every queue entry padded to a page:
//!   false sharing goes away but fragmentation up, prefetching lost; "not
//!   very beneficial" (paper).
//! * [`VolrendVersion::Image4d`] — the image as a 4-d array (partition
//!   blocks contiguous, page-aligned, owner-homed). **Hurts** performance:
//!   pixel addressing costs more and interacts with stealing (the paper
//!   measured 7.09 → 6.27).
//! * [`VolrendVersion::Balanced`] — the algorithmic fix: many small tile
//!   blocks assigned round-robin (better initial balance), stealing kept.
//! * [`VolrendVersion::BalancedNoSteal`] — same initial assignment, no
//!   stealing: trades barrier imbalance for lock traffic; slightly better
//!   still on SVM (11.42 → 11.70 in the paper).

use crate::common::{read_u32_runs, AppResult, Bcast, Platform, Scale};
use crate::OptClass;
use sim_core::util::XorShift64;
use sim_core::{run as sim_run, Placement, RunConfig, PAGE_SIZE};

/// Tile edge in pixels.
pub const TILE: usize = 8;

/// Volrend problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct VolrendParams {
    /// Volume edge (voxels); the image is `2v x 2v` pixels (two rays per
    /// voxel, as the paper's 256x225 image over a 256-voxel head).
    pub v: usize,
    /// Frames rendered in the timed region (cold page faults on the
    /// read-only volume amortize over frames, as in the paper's runs).
    pub frames: usize,
    /// Opacity threshold for early ray termination.
    pub term: f32,
    /// Workload seed.
    pub seed: u64,
}

impl VolrendParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                v: 24,
                frames: 2,
                term: 0.95,
                seed: 11,
            },
            Scale::Default => Self {
                v: 80,
                frames: 3,
                term: 0.95,
                seed: 11,
            },
            Scale::Paper => Self {
                v: 128,
                frames: 4,
                term: 0.95,
                seed: 11,
            },
        }
    }
}

/// The restructured versions of Volrend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VolrendVersion {
    /// SPLASH-2 blocks + stealing.
    Orig,
    /// Page-padded task-queue entries.
    PadQueues,
    /// 4-d partition-contiguous image (the pessimization).
    Image4d,
    /// Fine-grained round-robin initial assignment + stealing.
    Balanced,
    /// Fine-grained round-robin initial assignment, no stealing.
    BalancedNoSteal,
}

/// Map the paper's optimization class to a Volrend version.
pub fn version_for(class: OptClass) -> VolrendVersion {
    match class {
        OptClass::Orig => VolrendVersion::Orig,
        OptClass::PadAlign => VolrendVersion::PadQueues,
        OptClass::DataStruct => VolrendVersion::Image4d,
        OptClass::Algorithm => VolrendVersion::BalancedNoSteal,
    }
}

/// Procedural density volume: nested ellipsoid shells + sparse noise,
/// mimicking the run-length structure of the paper's CT head.
pub fn generate_volume(params: &VolrendParams) -> Vec<u8> {
    let v = params.v;
    let c = v as f64 / 2.0;
    let mut rng = XorShift64::new(params.seed);
    let mut vol = vec![0u8; v * v * v];
    for z in 0..v {
        for y in 0..v {
            for x in 0..v {
                let dx = (x as f64 - c) / c;
                let dy = (y as f64 - c) / (0.8 * c);
                let dz = (z as f64 - c) / (0.9 * c);
                let r = (dx * dx + dy * dy + dz * dz).sqrt();
                let mut d = 0.0f64;
                if (r - 0.55).abs() < 0.06 {
                    d = 220.0; // outer shell ("skull")
                } else if r < 0.38 {
                    d = 90.0 + 60.0 * ((x / 3 + y / 3 + z / 3) % 2) as f64; // interior
                } else if r < 0.52 && rng.f64() < 0.02 {
                    d = 40.0; // sparse wisps
                }
                vol[(z * v + y) * v + x] = d as u8;
            }
        }
    }
    vol
}

/// Per-column (vy, vx) occupancy range: (zmin, zmax_exclusive). The SPLASH-2
/// Volrend skips empty space with a min-max octree; a per-column range map
/// captures the same effect for axis-aligned rays: rays outside the object
/// cost almost nothing, which is precisely what makes the original block
/// partition so imbalanced.
pub fn zrange_map(vol: &[u8], v: usize) -> Vec<(u8, u8)> {
    let mut map = vec![(255u8, 0u8); v * v];
    for z in 0..v {
        for y in 0..v {
            for x in 0..v {
                if vol[(z * v + y) * v + x] != 0 {
                    let e = &mut map[y * v + x];
                    e.0 = e.0.min(z as u8);
                    e.1 = e.1.max(z as u8 + 1);
                }
            }
        }
    }
    map
}

#[inline]
fn transfer(d: u8) -> (f32, f32) {
    // (opacity, intensity)
    let x = d as f32 / 255.0;
    (x * x * 0.22, x)
}

/// Cast the ray for image pixel (x, y) of the `2v x 2v` image; identical
/// math for reference and parallel versions. `vol` indexes the volume;
/// gradient-based shading reads the two z-neighbours of every
/// non-transparent sample (as SPLASH-2 Volrend shades with gradients).
fn cast(
    mut vol: impl FnMut(usize) -> u8,
    range: (u8, u8),
    v: usize,
    x: usize,
    y: usize,
    term: f32,
) -> f32 {
    let (vx, vy) = (x / 2, y / 2);
    let mut alpha = 0.0f32;
    let mut colour = 0.0f32;
    for z in range.0 as usize..range.1 as usize {
        let d = vol((z * v + vy) * v + vx);
        if d == 0 {
            continue;
        }
        let zm = vol((z.saturating_sub(1) * v + vy) * v + vx);
        let zp = vol(((z + 1).min(v - 1) * v + vy) * v + vx);
        let grad = ((zp as f32 - zm as f32) / 255.0).abs();
        let (op, it) = transfer(d);
        let w = (1.0 - alpha) * op;
        colour += w * it * (0.6 + 0.4 * grad);
        alpha += w;
        if alpha > term {
            break;
        }
    }
    colour
}

/// Sequential reference image (row-major f32, `2v x 2v`).
pub fn reference(params: &VolrendParams) -> Vec<f32> {
    let v = params.v;
    let n = 2 * v;
    let vol = generate_volume(params);
    let zr = zrange_map(&vol, v);
    let mut img = vec![0.0f32; n * n];
    for y in 0..n {
        for x in 0..n {
            img[y * n + x] = cast(|i| vol[i], zr[(y / 2) * v + x / 2], v, x, y, params.term);
        }
    }
    img
}

/// Image layout (2-d row-major or 4-d partition blocks).
#[derive(Clone, Copy)]
enum Img {
    G2 {
        base: u64,
        n: usize,
    },
    G4 {
        base: u64,
        brows: usize,
        bcols: usize,
        bpr: usize,
        bsz: u64,
    },
}

impl Img {
    #[inline(always)]
    fn addr(&self, x: usize, y: usize) -> u64 {
        match *self {
            Img::G2 { base, n } => base + ((y * n + x) as u64) * 4,
            Img::G4 {
                base,
                brows,
                bcols,
                bpr,
                bsz,
            } => {
                let (bi, ri) = (y / brows, y % brows);
                let (bj, cj) = (x / bcols, x % bcols);
                base + (bi * bpr + bj) as u64 * bsz + ((ri * bcols + cj) as u64) * 4
            }
        }
    }
}

fn proc_grid(nprocs: usize) -> (usize, usize) {
    let mut pr = (nprocs as f64).sqrt() as usize;
    while !nprocs.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr, nprocs / pr)
}

/// Initial tile→processor assignment.
fn tile_owner(
    version: VolrendVersion,
    tiles_x: usize,
    tiles_y: usize,
    nprocs: usize,
    tx: usize,
    ty: usize,
) -> usize {
    match version {
        VolrendVersion::Balanced | VolrendVersion::BalancedNoSteal => {
            // Small 2x2-tile groups dealt round-robin.
            let gx = tx / 2;
            let gy = ty / 2;
            let groups_x = tiles_x.div_ceil(2);
            (gy * groups_x + gx) % nprocs
        }
        _ => {
            // P contiguous blocks of tiles.
            let (pr, pc) = proc_grid(nprocs);
            let bi = (ty * pr / tiles_y).min(pr - 1);
            let bj = (tx * pc / tiles_x).min(pc - 1);
            bi * pc + bj
        }
    }
}

const LOCK_QUEUE_BASE: u32 = 500;

/// Run Volrend on a platform; panics unless the image matches the
/// sequential reference bit-for-bit.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &VolrendParams,
    version: VolrendVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &VolrendParams,
    version: VolrendVersion,
    cfg: RunConfig,
) -> AppResult {
    let v = params.v;
    let n = 2 * v; // image edge
    assert_eq!(n % TILE, 0);
    let tiles = n / TILE;
    let total_tiles = tiles * tiles;
    let vol = generate_volume(params);
    let layout_bc: Bcast<(u64, u64, u64, Img, u64, u64)> = Bcast::new();
    let result = std::sync::Mutex::new(Vec::new());
    let steal = !matches!(version, VolrendVersion::BalancedNoSteal);
    // Queue entry stride: packed u32 or one page per entry (PadQueues).
    let estride: u64 = if matches!(version, VolrendVersion::PadQueues) {
        platform.grain()
    } else {
        4
    };

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        let np = p.nprocs();
        if me == 0 {
            // Read-only volume, round-robin pages (all share it).
            let volume = p.alloc_shared_labeled(
                "volume",
                (v * v * v) as u64,
                PAGE_SIZE,
                Placement::RoundRobin,
            );
            let mut bb = [0u64; 256];
            for (ci, ch) in vol.chunks(256).enumerate() {
                for (s, &d) in bb.iter_mut().zip(ch) {
                    *s = d as u64;
                }
                p.store_slice(volume + (ci * 256) as u64, 1, 1, &bb[..ch.len()]);
            }
            // Min-max skip map (read-only): (lo, hi) byte pairs are
            // contiguous, so flatten and bulk-store.
            let zr = zrange_map(&vol, v);
            let zmap = p.alloc_shared((v * v * 2) as u64, PAGE_SIZE, Placement::RoundRobin);
            let zflat: Vec<u8> = zr.iter().flat_map(|&(lo, hi)| [lo, hi]).collect();
            for (ci, ch) in zflat.chunks(256).enumerate() {
                for (s, &d) in bb.iter_mut().zip(ch) {
                    *s = d as u64;
                }
                p.store_slice(zmap + (ci * 256) as u64, 1, 1, &bb[..ch.len()]);
            }
            // Transfer tables (read-only, small): (op, it) f32 pairs are one
            // contiguous word stream.
            let table = p.alloc_shared(256 * 8, PAGE_SIZE, Placement::Node(0));
            let twords: Vec<u32> = (0..256usize)
                .flat_map(|d| {
                    let (op, it) = transfer(d as u8);
                    [op.to_bits(), it.to_bits()]
                })
                .collect();
            p.write_u32_slice(table, 4, &twords);
            // Image.
            let img = match version {
                VolrendVersion::Image4d => {
                    let (pr, pc) = proc_grid(np);
                    let brows = n / pr;
                    let bcols = n / pc;
                    let bsz = ((brows * bcols * 4) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
                    Img::G4 {
                        base: p.alloc_shared(
                            bsz * (pr * pc) as u64,
                            PAGE_SIZE,
                            Placement::Blocked {
                                chunk_pages: bsz / PAGE_SIZE,
                            },
                        ),
                        brows,
                        bcols,
                        bpr: pc,
                        bsz,
                    }
                }
                _ => Img::G2 {
                    base: p.alloc_shared((n * n * 4) as u64, PAGE_SIZE, Placement::RoundRobin),
                    n,
                },
            };
            // Task queues: one contiguous [count | pad | entries...] record
            // per processor, packed back to back (as the SPLASH array-of-
            // structs layout) so neighbouring queues share pages — the
            // false sharing the P/A version attacks by padding entries.
            let qstride = 64 + total_tiles as u64 * estride;
            let queues = p.alloc_shared(np as u64 * qstride, PAGE_SIZE, Placement::RoundRobin);
            layout_bc.put((volume, zmap, table, img, queues, qstride));
        }
        p.barrier(100);
        let (volume, zmap, table, img, queues, qstride) = layout_bc.get();
        let qcount = |q: usize| queues + (q as u64) * qstride;
        let qentry = |q: usize, i: u64| queues + (q as u64) * qstride + 64 + i * estride;
        // My initial tile assignment (fixed across frames).
        let mut mine = Vec::new();
        for ty in 0..tiles {
            for tx in 0..tiles {
                if tile_owner(version, tiles, tiles, np, tx, ty) == me {
                    mine.push((ty * tiles + tx) as u32);
                }
            }
        }
        let mine_u64: Vec<u64> = mine.iter().map(|&t| t as u64).collect();
        for frame in 0..params.frames + 1 {
            // Frame 0 is an untimed warm-up (SPLASH-2 methodology): it faults
            // in the read-only volume so the timed frames measure steady state.
            if frame == 1 {
                p.start_timing();
            }
            p.lock(LOCK_QUEUE_BASE + me as u32);
            p.store_slice(qentry(me, 0), estride, 4, &mine_u64);
            p.write_u32(qcount(me), mine.len() as u32);
            p.unlock(LOCK_QUEUE_BASE + me as u32);
            p.barrier(0);

            // Render loop: pop own queue, then steal.
            let mut victim = me;
            loop {
                // Try to pop from `victim`'s queue.
                p.lock(LOCK_QUEUE_BASE + victim as u32);
                let c = p.read_u32(qcount(victim));
                let task = if c > 0 {
                    let t = p.load(qentry(victim, (c - 1) as u64), 4) as u32;
                    p.write_u32(qcount(victim), c - 1);
                    Some(t)
                } else {
                    None
                };
                p.unlock(LOCK_QUEUE_BASE + victim as u32);
                match task {
                    Some(t) => {
                        let (ty, tx) = ((t as usize) / tiles, (t as usize) % tiles);
                        for py in 0..TILE {
                            for px in 0..TILE {
                                let (x, y) = (tx * TILE + px, ty * TILE + py);
                                let (vx, vy) = (x / 2, y / 2);
                                // Empty-space skip: per-column occupancy range.
                                let mut zpair = [0u64; 2];
                                p.load_slice(zmap + ((vy * v + vx) * 2) as u64, 1, 1, &mut zpair);
                                let (zlo, zhi) = (zpair[0] as usize, zpair[1] as usize);
                                p.work(4);
                                // March the ray through the occupied range.
                                let mut alpha = 0.0f32;
                                let mut colour = 0.0f32;
                                for z in zlo..zhi {
                                    let d =
                                        p.load(volume + ((z * v + vy) * v + vx) as u64, 1) as u8;
                                    p.work(6);
                                    if d == 0 {
                                        continue;
                                    }
                                    // Gradient shading: two neighbour samples.
                                    let zm = p.load(
                                        volume + ((z.saturating_sub(1) * v + vy) * v + vx) as u64,
                                        1,
                                    ) as u8;
                                    let zp = p.load(
                                        volume + (((z + 1).min(v - 1) * v + vy) * v + vx) as u64,
                                        1,
                                    ) as u8;
                                    let grad = ((zp as f32 - zm as f32) / 255.0).abs();
                                    let op =
                                        f32::from_bits(p.load(table + (d as u64) * 8, 4) as u32);
                                    let it = f32::from_bits(
                                        p.load(table + (d as u64) * 8 + 4, 4) as u32
                                    );
                                    let w = (1.0 - alpha) * op;
                                    colour += w * it * (0.6 + 0.4 * grad);
                                    alpha += w;
                                    p.work(30); // interpolation, gradient, shading
                                    if alpha > params.term {
                                        break;
                                    }
                                }
                                if matches!(version, VolrendVersion::Image4d) {
                                    p.work(8); // extra 4-d addressing arithmetic
                                }
                                p.store(img.addr(x, y), 4, colour.to_bits() as u64);
                            }
                        }
                        // After a stolen task, return to the own queue first
                        // (steal one at a time, as SPLASH does).
                        victim = me;
                    }
                    None => {
                        if !steal && victim == me {
                            break; // no stealing: done when own queue drains
                        }
                        // Steal scan: next victim; give up after a full circle.
                        victim = (victim + 1) % np;
                        if victim == me {
                            break;
                        }
                    }
                }
            }
            p.barrier(1);
        } // frames

        p.stop_timing();
        if me == 0 {
            let mut raw = vec![0u32; n * n];
            for y in 0..n {
                read_u32_runs(p, &mut raw[y * n..(y + 1) * n], |x| img.addr(x, y));
            }
            *result.lock().unwrap() = raw.iter().map(|&b| f32::from_bits(b)).collect();
        }
    });

    let out = result.into_inner().unwrap();
    let want = reference(params);
    assert_eq!(out.len(), want.len());
    for (i, (g, w)) in out.iter().zip(&want).enumerate() {
        assert!(
            g == w,
            "Volrend pixel {i} differs: got {g}, want {w} (x={}, y={})",
            i % (2 * v),
            i / (2 * v)
        );
    }
    AppResult {
        stats,
        checksum: crate::common::checksum_f64s(out.iter().map(|&f| f as f64)),
    }
}

/// Run Volrend at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: VolrendVersion) -> AppResult {
    run_params(platform, nprocs, &VolrendParams::at(scale), version)
}

/// Run Volrend at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: VolrendVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &VolrendParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VolrendParams {
        VolrendParams {
            v: 16,
            frames: 2,
            term: 0.95,
            seed: 11,
        }
    }

    #[test]
    fn reference_image_is_nontrivial() {
        let img = reference(&tiny());
        let lit = img.iter().filter(|&&c| c > 0.0).count();
        assert!(lit > img.len() / 10, "too few lit pixels: {lit}");
        assert!(img.iter().all(|c| c.is_finite() && *c >= 0.0));
    }

    #[test]
    fn all_versions_match_reference_on_svm() {
        for ver in [
            VolrendVersion::Orig,
            VolrendVersion::PadQueues,
            VolrendVersion::Image4d,
            VolrendVersion::Balanced,
            VolrendVersion::BalancedNoSteal,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), ver);
            assert!(r.stats.total_cycles() > 0, "{ver:?}");
        }
    }

    #[test]
    fn works_on_all_platforms() {
        let a = run_params(Platform::Svm, 2, &tiny(), VolrendVersion::Orig);
        let b = run_params(Platform::Dsm, 2, &tiny(), VolrendVersion::Orig);
        let c = run_params(Platform::Smp, 2, &tiny(), VolrendVersion::Balanced);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn uniprocessor_works() {
        let r = run_params(Platform::Svm, 1, &tiny(), VolrendVersion::Orig);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn transfer_function_is_monotonic() {
        let mut prev = (0.0f32, 0.0f32);
        for d in 0..=255u8 {
            let (op, it) = transfer(d);
            assert!(op >= prev.0 && it >= prev.1, "non-monotonic at {d}");
            assert!((0.0..=1.0).contains(&op));
            prev = (op, it);
        }
    }

    #[test]
    fn early_termination_shortens_dense_rays() {
        // A fully dense column terminates before the far side.
        let v = 32;
        let dense = vec![255u8; v * v * v];
        let mut samples = 0usize;
        let c = cast(
            |i| {
                samples += 1;
                dense[i]
            },
            (0, v as u8),
            v,
            v,
            v,
            0.95,
        );
        assert!(c > 0.0);
        // 3 reads per sample (value + 2 gradient); the ray crosses the 0.95
        // opacity threshold in ~13 samples and must stop well short of the
        // 32-sample full march.
        assert!(samples < 3 * 16, "no early termination: {samples} reads");
    }

    #[test]
    fn empty_columns_cost_nothing_with_skip_map() {
        let v = 16;
        let vol = vec![0u8; v * v * v];
        let zr = zrange_map(&vol, v);
        assert!(zr.iter().all(|&(lo, hi)| lo == 255 && hi == 0));
        let mut reads = 0usize;
        let c = cast(
            |i| {
                reads += 1;
                vol[i]
            },
            zr[0],
            v,
            0,
            0,
            0.95,
        );
        assert_eq!(c, 0.0);
        assert_eq!(reads, 0, "skip map must avoid all volume reads");
    }

    #[test]
    fn tile_owners_cover_all_procs() {
        for ver in [VolrendVersion::Orig, VolrendVersion::Balanced] {
            let tiles = 16;
            let np = 16;
            let mut counts = vec![0usize; np];
            for ty in 0..tiles {
                for tx in 0..tiles {
                    counts[tile_owner(ver, tiles, tiles, np, tx, ty)] += 1;
                }
            }
            assert!(counts.iter().all(|&c| c > 0), "{ver:?}: {counts:?}");
            assert_eq!(counts.iter().sum::<usize>(), tiles * tiles);
        }
    }

    #[test]
    fn balanced_assignment_interleaves() {
        // Adjacent 2x2 tile groups go to different processors.
        let o1 = tile_owner(VolrendVersion::Balanced, 16, 16, 4, 0, 0);
        let o2 = tile_owner(VolrendVersion::Balanced, 16, 16, 4, 2, 0);
        assert_ne!(o1, o2);
    }
}
