//! Radix — parallel radix sort (SPLASH-2).
//!
//! Each pass histograms a digit, computes global rank offsets from the
//! all-processor histogram matrix, then permutes keys into a destination
//! array. The permutation's writes are scattered across the whole
//! destination array — the induced pattern at page granularity is
//! multiple-producer/one-consumer with massive false sharing and contention,
//! which is why Radix is the suite's hardest case on SVM (and poor even on
//! the bus-based SMP).
//!
//! ## Versions (paper §4.2.5)
//!
//! * [`RadixVersion::Orig`] — SPLASH-2: direct scattered remote writes.
//!   The paper found padding/alignment and data-structure reorganization
//!   impractical for Radix ("very difficult ... due to the highly scattered
//!   and unpredictable remote writes"), so the `P/A` and `DS` classes map
//!   to the original version.
//! * [`RadixVersion::LocalBuffer`] — the algorithmic change: gather keys
//!   into digit-grouped runs in a locally-homed buffer first, then write
//!   each run contiguously into the global array. Better, but still poor —
//!   as in the paper.

use crate::common::{AppResult, Bcast, Platform, Scale};
use crate::OptClass;
use sim_core::util::XorShift64;
use sim_core::{run as sim_run, Placement, RunConfig, PAGE_SIZE};

/// Number of buckets per pass (SPLASH-2 default radix).
pub const RADIX: usize = 1024;
const RBITS: u32 = 10;

/// Radix sort parameters.
#[derive(Clone, Copy, Debug)]
pub struct RadixParams {
    /// Number of keys.
    pub n: usize,
    /// Number of digit passes (keys are < 2^(RBITS*passes)).
    pub passes: u32,
    /// Workload seed.
    pub seed: u64,
}

impl RadixParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                n: 4 << 10,
                passes: 2,
                seed: 99,
            },
            Scale::Default => Self {
                n: 256 << 10,
                passes: 2,
                seed: 99,
            },
            Scale::Paper => Self {
                n: 4 << 20,
                passes: 2,
                seed: 99,
            },
        }
    }

    /// Maximum key value + 1.
    pub fn key_space(&self) -> u64 {
        1u64 << (RBITS * self.passes)
    }
}

/// The versions of Radix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RadixVersion {
    /// SPLASH-2: scattered remote writes in the permutation.
    Orig,
    /// Locally gather digit runs, then write contiguously.
    LocalBuffer,
}

/// Map the paper's optimization class to a Radix version.
pub fn version_for(class: OptClass) -> RadixVersion {
    match class {
        // P/A and DS are explicitly not applicable per the paper.
        OptClass::Orig | OptClass::PadAlign | OptClass::DataStruct => RadixVersion::Orig,
        OptClass::Algorithm => RadixVersion::LocalBuffer,
    }
}

/// Deterministic input keys.
pub fn generate_keys(params: &RadixParams) -> Vec<u32> {
    let mut rng = XorShift64::new(params.seed);
    (0..params.n)
        .map(|_| (rng.next_u64() % params.key_space()) as u32)
        .collect()
}

/// Sequential reference: the sorted key vector.
pub fn reference(params: &RadixParams) -> Vec<u32> {
    let mut keys = generate_keys(params);
    keys.sort_unstable();
    keys
}

/// Run Radix on a platform; panics unless the output is exactly the sorted
/// input.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &RadixParams,
    version: RadixVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &RadixParams,
    version: RadixVersion,
    cfg: RunConfig,
) -> AppResult {
    let n = params.n;
    assert_eq!(n % nprocs, 0, "keys must divide evenly");
    let chunk = n / nprocs;
    let layout_bc: Bcast<(u64, u64, u64, u64)> = Bcast::new();
    let result = std::sync::Mutex::new(Vec::new());
    let input = generate_keys(params);

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        let np = p.nprocs();
        if me == 0 {
            let chunk_pages = ((chunk * 4) as u64).div_ceil(PAGE_SIZE);
            let a = p.alloc_shared_labeled(
                "keys_a",
                (n * 4) as u64,
                PAGE_SIZE,
                Placement::Blocked { chunk_pages },
            );
            let b = p.alloc_shared_labeled(
                "keys_b",
                (n * 4) as u64,
                PAGE_SIZE,
                Placement::Blocked { chunk_pages },
            );
            // Histogram matrix: one row (RADIX u32 = 4 KB = 1 page) per proc.
            let hist = p.alloc_shared_labeled(
                "hist",
                (np * RADIX * 4) as u64,
                PAGE_SIZE,
                Placement::Blocked {
                    chunk_pages: ((RADIX * 4) as u64).div_ceil(PAGE_SIZE),
                },
            );
            p.write_u32_slice(a, 4, &input);
            layout_bc.put((a, b, hist, 0));
        }
        p.barrier(100);
        let (mut src, mut dst, hist, _) = layout_bc.get();
        p.start_timing();

        for pass in 0..params.passes {
            let shift = RBITS * pass;
            let mask = (RADIX - 1) as u64;
            // Phase 1: local histogram. The key reads are a contiguous
            // sweep over this processor's chunk — one bulk read, then the
            // (unshared) binning charged as fused compute.
            let mut keys = vec![0u32; chunk];
            p.read_u32_slice(src + (me * chunk * 4) as u64, 4, &mut keys);
            let mut local_hist = vec![0u32; RADIX];
            for &k in &keys {
                local_hist[((k as u64 >> shift) & mask) as usize] += 1;
            }
            p.work_fused(2, chunk as u64);
            p.write_u32_slice(hist + (me * RADIX * 4) as u64, 4, &local_hist);
            p.barrier(0);
            // Phase 2: every processor reads the full histogram matrix and
            // computes its own per-digit base offsets.
            let mut matrix = vec![0u32; np * RADIX];
            p.read_u32_slice(hist, 4, &mut matrix);
            let mut offsets = vec![0u64; RADIX];
            let mut running = 0u64;
            for d in 0..RADIX {
                let mut mine = running;
                for q in 0..np {
                    if q < me {
                        mine += matrix[q * RADIX + d] as u64;
                    }
                    running += matrix[q * RADIX + d] as u64;
                }
                offsets[d] = mine;
            }
            p.work_fused(np as u64, RADIX as u64);
            // Phase 3: permutation.
            match version {
                RadixVersion::Orig => {
                    // Keys are re-read in bulk (`keys` still holds this
                    // chunk, but SPLASH-2 reloads in the permutation loop and
                    // so do we); the scattered destination writes are the
                    // point of this version and stay word-at-a-time.
                    p.read_u32_slice(src + (me * chunk * 4) as u64, 4, &mut keys);
                    for &k in &keys {
                        let d = ((k as u64 >> shift) & mask) as usize;
                        let pos = offsets[d];
                        offsets[d] += 1;
                        p.store(dst + (pos * 4) as u64, 4, k as u64);
                        p.work(4);
                    }
                }
                RadixVersion::LocalBuffer => {
                    // Gather into digit-grouped runs in a process-private
                    // buffer (unshared memory: charged as compute, as in
                    // the SPLASH-2 variant), then write each run
                    // contiguously into the global array — the same bytes
                    // land in the same places, but sequentially rather than
                    // scattered.
                    let mut lstart = vec![0u64; RADIX];
                    let mut acc = 0u64;
                    for d in 0..RADIX {
                        lstart[d] = acc;
                        acc += local_hist[d] as u64;
                    }
                    let group_base = lstart.clone();
                    let mut buf = vec![0u32; chunk];
                    p.read_u32_slice(src + (me * chunk * 4) as u64, 4, &mut keys);
                    for &k in &keys {
                        let d = ((k as u64 >> shift) & mask) as usize;
                        buf[lstart[d] as usize] = k;
                        lstart[d] += 1;
                    }
                    p.work_fused(4, chunk as u64);
                    // Stagger the starting digit per processor so the
                    // sequential sweeps do not convoy on one home node.
                    let start = me * RADIX / np;
                    for dd in 0..RADIX {
                        let d = (start + dd) % RADIX;
                        let len = local_hist[d] as usize;
                        if len == 0 {
                            continue;
                        }
                        let run = &buf[group_base[d] as usize..group_base[d] as usize + len];
                        p.write_u32_slice(dst + (offsets[d] * 4) as u64, 4, run);
                        p.work_fused(2, len as u64);
                    }
                }
            }
            p.barrier(1);
            std::mem::swap(&mut src, &mut dst);
        }

        p.stop_timing();
        if me == 0 {
            let mut out = vec![0u32; n];
            p.read_u32_slice(src, 4, &mut out);
            *result.lock().unwrap() = out;
        }
    });

    let out = result.into_inner().unwrap();
    let want = reference(params);
    assert_eq!(out, want, "Radix output is not sorted correctly");
    AppResult {
        stats,
        checksum: out
            .iter()
            .fold(0u64, |h, &k| (h ^ k as u64).wrapping_mul(0x100_0000_01b3)),
    }
}

/// Run Radix at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: RadixVersion) -> AppResult {
    run_params(platform, nprocs, &RadixParams::at(scale), version)
}

/// Run Radix at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: RadixVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &RadixParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RadixParams {
        RadixParams {
            n: 1 << 10,
            passes: 2,
            seed: 5,
        }
    }

    #[test]
    fn both_versions_sort_on_svm() {
        for v in [RadixVersion::Orig, RadixVersion::LocalBuffer] {
            let r = run_params(Platform::Svm, 4, &tiny(), v);
            assert!(r.stats.total_cycles() > 0, "{v:?}");
        }
    }

    #[test]
    fn sorts_on_all_platforms() {
        let a = run_params(Platform::Svm, 2, &tiny(), RadixVersion::Orig);
        let b = run_params(Platform::Dsm, 2, &tiny(), RadixVersion::Orig);
        let c = run_params(Platform::Smp, 2, &tiny(), RadixVersion::LocalBuffer);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn uniprocessor_sorts() {
        let r = run_params(Platform::Svm, 1, &tiny(), RadixVersion::Orig);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn keys_cover_the_digit_space() {
        let params = RadixParams {
            n: 1 << 14,
            passes: 2,
            seed: 1,
        };
        let keys = generate_keys(&params);
        let mut seen = vec![false; RADIX];
        for k in keys {
            seen[(k as usize) & (RADIX - 1)] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > RADIX / 2);
    }
}
