//! Shared infrastructure for the application suite: platform selection,
//! problem scales, result containers, and the `Bcast` side channel used to
//! publish shared-memory layouts from the initializing processor to the
//! rest (the analogue of SPLASH-2's C globals).

use cc_numa::{DsmConfig, DsmPlatform};
use lrc_tmk::TmkPlatform;
use sim_core::{Platform as PlatformTrait, RunStats};
use smp_bus::{SmpConfig, SmpPlatform};
use svm_hlrc::{SvmConfig, SvmPlatform};

/// The three platforms of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Page-grained shared virtual memory (HLRC).
    Svm,
    /// Directory-based hardware CC-NUMA.
    Dsm,
    /// Bus-based centralized-memory SMP.
    Smp,
    /// TreadMarks-style non-home-based LRC shared virtual memory (the
    /// protocol HLRC was designed to improve on; same machine parameters).
    Tmk,
    /// The paper's future-work platform: SMP nodes of `ppn` processors
    /// connected by the HLRC SVM (intra-node hardware coherence, inter-node
    /// page-grained software coherence).
    SvmSmpNodes {
        /// Processors per node.
        ppn: u8,
    },
    /// SVM with modified parameters, for ablation studies: protocol page
    /// size `1 << page_shift` and network costs (wire latency and I/O bus
    /// occupancy) scaled to `net_scale_pct` percent of the paper's values.
    SvmTuned {
        /// log2 of the protocol page size (10..=14).
        page_shift: u8,
        /// Network cost scale, percent (100 = paper).
        net_scale_pct: u16,
    },
}

impl Platform {
    /// All platforms, in the paper's ordering.
    pub const ALL: [Platform; 3] = [Platform::Svm, Platform::Smp, Platform::Dsm];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Svm => "SVM",
            Platform::Dsm => "DSM",
            Platform::Smp => "SMP",
            Platform::Tmk => "TMK",
            Platform::SvmSmpNodes { .. } => "SVM-SMP",
            Platform::SvmTuned { .. } => "SVM*",
        }
    }

    /// Coherence granularity in bytes: the unit the paper's P/A class pads
    /// to — "cache line size for hardware cache-coherent machines and page
    /// size for SVM systems" (§3).
    pub fn grain(self) -> u64 {
        match self {
            Platform::Svm | Platform::Tmk | Platform::SvmSmpNodes { .. } => sim_core::PAGE_SIZE,
            Platform::Dsm => 64,
            Platform::Smp => 128,
            Platform::SvmTuned { page_shift, .. } => 1u64 << page_shift,
        }
    }

    /// Instantiate the platform model with the paper's parameters.
    pub fn boxed(self, nprocs: usize) -> Box<dyn PlatformTrait> {
        match self {
            Platform::Svm => SvmPlatform::boxed(SvmConfig::paper(nprocs)),
            Platform::Dsm => DsmPlatform::boxed(DsmConfig::paper(nprocs)),
            Platform::Smp => SmpPlatform::boxed(SmpConfig::paper(nprocs)),
            Platform::Tmk => TmkPlatform::boxed(SvmConfig::paper(nprocs)),
            Platform::SvmSmpNodes { ppn } => {
                // Degrade gracefully for processor counts the grouping does
                // not divide (e.g. uniprocessor baselines).
                let mut ppn = (ppn as usize).clamp(1, nprocs);
                while !nprocs.is_multiple_of(ppn) {
                    ppn -= 1;
                }
                SvmPlatform::boxed(SvmConfig::paper_smp_nodes(nprocs, ppn))
            }
            Platform::SvmTuned {
                page_shift,
                net_scale_pct,
            } => {
                let mut cfg = SvmConfig::paper(nprocs);
                cfg.page_size = 1u64 << page_shift;
                let pct = net_scale_pct as u64;
                cfg.wire_latency = (cfg.wire_latency * pct / 100).max(1);
                cfg.io_cyc_per_byte = (cfg.io_cyc_per_byte * pct / 100).max(1);
                SvmPlatform::boxed(cfg)
            }
        }
    }
}

/// Problem-size presets. Simulation is 3–5 orders of magnitude slower than
/// native execution, so figure sweeps default to [`Scale::Default`];
/// [`Scale::Paper`] selects the paper's original sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (seconds per full sweep).
    Test,
    /// Reduced inputs preserving all qualitative regimes (default).
    Default,
    /// The paper's published problem sizes.
    Paper,
}

/// Outcome of one application run.
pub struct AppResult {
    /// Verified per-processor statistics of the timed region.
    pub stats: RunStats,
    /// A checksum of the application output (useful for cross-version
    /// comparisons in tests).
    pub checksum: u64,
}

/// One-shot broadcast cell: the initializing processor `put`s a value before
/// a barrier, everyone else `get`s it after. This carries *metadata only*
/// (base addresses, sizes) — the analogue of C globals in SPLASH-2 — never
/// application data, which always lives in simulated shared memory.
pub struct Bcast<T> {
    cell: std::sync::Mutex<Option<T>>,
}

impl<T: Clone> Bcast<T> {
    /// Empty cell.
    pub fn new() -> Self {
        Self {
            cell: std::sync::Mutex::new(None),
        }
    }

    /// Publish the value (call once, before the synchronizing barrier).
    pub fn put(&self, v: T) {
        let mut g = self.cell.lock().unwrap();
        assert!(g.is_none(), "Bcast::put called twice");
        *g = Some(v);
    }

    /// Read the value (call after the synchronizing barrier).
    pub fn get(&self) -> T {
        self.cell
            .lock()
            .unwrap()
            .clone()
            .expect("Bcast::get before put")
    }
}

impl<T: Clone> Default for Bcast<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Read `out.len()` `f64`s at addresses `addr_of(0..n)`, splitting the index
/// range into maximal constant-stride runs and issuing one bulk
/// [`sim_core::Proc::read_f64_slice`] per run. Blocked layouts (4-d arrays,
/// grain padding) are piecewise-affine, so blind stride inference over the
/// whole range would be wrong at block boundaries; this helper finds the
/// boundaries instead of assuming them away. Access order (and thus timing)
/// is identical to a scalar `for j { read_f64(addr_of(j)) }` loop.
pub fn read_f64_runs(
    p: &mut sim_core::Proc,
    out: &mut [f64],
    addr_of: impl Fn(usize) -> sim_core::Addr,
) {
    let n = out.len();
    let mut s = 0;
    while s < n {
        let base = addr_of(s);
        if s + 1 == n {
            out[s] = p.read_f64(base);
            break;
        }
        let Some(stride) = addr_of(s + 1).checked_sub(base) else {
            out[s] = p.read_f64(base);
            s += 1;
            continue;
        };
        let mut e = s + 2;
        while e < n && addr_of(e).checked_sub(addr_of(e - 1)) == Some(stride) {
            e += 1;
        }
        p.read_f64_slice(base, stride, &mut out[s..e]);
        s = e;
    }
}

/// Store-side twin of [`read_f64_runs`].
pub fn write_f64_runs(
    p: &mut sim_core::Proc,
    vals: &[f64],
    addr_of: impl Fn(usize) -> sim_core::Addr,
) {
    let n = vals.len();
    let mut s = 0;
    while s < n {
        let base = addr_of(s);
        if s + 1 == n {
            p.write_f64(base, vals[s]);
            break;
        }
        let Some(stride) = addr_of(s + 1).checked_sub(base) else {
            p.write_f64(base, vals[s]);
            s += 1;
            continue;
        };
        let mut e = s + 2;
        while e < n && addr_of(e).checked_sub(addr_of(e - 1)) == Some(stride) {
            e += 1;
        }
        p.write_f64_slice(base, stride, &vals[s..e]);
        s = e;
    }
}

/// u32 twin of [`read_f64_runs`].
pub fn read_u32_runs(
    p: &mut sim_core::Proc,
    out: &mut [u32],
    addr_of: impl Fn(usize) -> sim_core::Addr,
) {
    let n = out.len();
    let mut s = 0;
    while s < n {
        let base = addr_of(s);
        if s + 1 == n {
            out[s] = p.read_u32(base);
            break;
        }
        let Some(stride) = addr_of(s + 1).checked_sub(base) else {
            out[s] = p.read_u32(base);
            s += 1;
            continue;
        };
        let mut e = s + 2;
        while e < n && addr_of(e).checked_sub(addr_of(e - 1)) == Some(stride) {
            e += 1;
        }
        p.read_u32_slice(base, stride, &mut out[s..e]);
        s = e;
    }
}

/// Accumulate a u64 checksum from f64 outputs with a tolerance-insensitive
/// quantization (used to compare versions to each other, not to verify —
/// verification always compares against the sequential reference directly).
pub fn checksum_f64s(values: impl Iterator<Item = f64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        let q = (v * 1e6).round() as i64 as u64;
        h ^= q;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Relative-error comparison for verifying floating-point outputs.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Assert two f64 slices are element-wise close; panics with context.
pub fn assert_close_slice(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            close(*g, *w, tol),
            "{what}: mismatch at {i}: got {g}, want {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_round_trip() {
        let b: Bcast<(u64, usize)> = Bcast::new();
        b.put((42, 7));
        assert_eq!(b.get(), (42, 7));
        assert_eq!(b.get(), (42, 7));
    }

    #[test]
    #[should_panic(expected = "before put")]
    fn bcast_get_before_put_panics() {
        let b: Bcast<u64> = Bcast::new();
        b.get();
    }

    #[test]
    fn close_comparisons() {
        assert!(close(1.0, 1.0 + 1e-9, 1e-6));
        assert!(!close(1.0, 1.1, 1e-6));
        assert!(close(0.0, 1e-9, 1e-6)); // absolute floor at small scale
    }

    #[test]
    fn checksum_distinguishes_outputs() {
        let a = checksum_f64s([1.0, 2.0, 3.0].into_iter());
        let b = checksum_f64s([1.0, 2.0, 3.000001].into_iter());
        let a2 = checksum_f64s([1.0, 2.0, 3.0].into_iter());
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn platforms_instantiate() {
        for p in Platform::ALL {
            let b = p.boxed(4);
            assert_eq!(b.nprocs(), 4);
        }
    }
}
