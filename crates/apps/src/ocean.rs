//! Ocean — regular-grid nearest-neighbour PDE solver (SPLASH-2 style).
//!
//! The computation preserves the structure the paper studies: multiple
//! `n x n` grids, a stencil phase, red-black Gauss-Seidel relaxation sweeps
//! with barriers after every half-sweep, and a lock-accumulated global
//! residual — many barriers per time-step, one-producer/one-consumer
//! near-neighbour communication that is coarse-grained along row-oriented
//! partition boundaries but fine-grained (fragmented) along column-oriented
//! ones. (The full SPLASH-2 Ocean is a deeper multigrid solver; the reduced
//! solver keeps the same grids/phases/communication geometry, which is what
//! the paper's analysis rests on. See DESIGN.md §1.)
//!
//! ## Versions (paper §4.1.2)
//!
//! * [`OceanVersion::Orig2d`] — 2-d arrays, square sub-grid partitions:
//!   partitions are not contiguous in the address space.
//! * [`OceanVersion::PadAlign`] — rows padded to page multiples. The paper:
//!   "simply padding and aligning each sub-row within a sub-grid does not
//!   reduce fragmentation".
//! * [`OceanVersion::Contig4d`] — 4-d arrays: each square partition
//!   contiguous, page-aligned, homed on its owner. Speedup improves a lot
//!   but barriers and column-boundary communication remain.
//! * [`OceanVersion::RowWise`] — the algorithmic change: partition into
//!   blocks of whole rows. Worse inherent communication/computation ratio,
//!   but all communication is coarse-grained on row boundaries; partitions
//!   are contiguous even in a plain 2-d array. The paper's winner on SVM —
//!   while square 4-d stays best on hardware-coherent machines.

use crate::common::{
    assert_close_slice, checksum_f64s, read_f64_runs, write_f64_runs, AppResult, Bcast, Platform,
    Scale,
};
use crate::OptClass;
use sim_core::{run as sim_run, Placement, Proc, RunConfig, PAGE_SIZE};

/// Ocean problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct OceanParams {
    /// Grid dimension (including the fixed boundary ring). Must be divisible
    /// by the square-partition grid.
    pub n: usize,
    /// Time-steps.
    pub steps: usize,
    /// Red-black relaxation sweeps per step.
    pub sweeps: usize,
}

impl OceanParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                n: 32,
                steps: 1,
                sweeps: 2,
            },
            Scale::Default => Self {
                n: 256,
                steps: 2,
                sweeps: 4,
            },
            Scale::Paper => Self {
                n: 512,
                steps: 4,
                sweeps: 6,
            },
        }
    }
}

/// The restructured versions of Ocean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OceanVersion {
    /// 2-d arrays, square partitions, round-robin pages.
    Orig2d,
    /// 2-d arrays with page-padded rows, square partitions.
    PadAlign,
    /// 4-d arrays: page-aligned, owner-homed square partitions.
    Contig4d,
    /// Row-wise partitions on plain 2-d arrays (first-touch homes).
    RowWise,
}

/// Map the paper's optimization class to an Ocean version.
pub fn version_for(class: OptClass) -> OceanVersion {
    match class {
        OptClass::Orig => OceanVersion::Orig2d,
        OptClass::PadAlign => OceanVersion::PadAlign,
        OptClass::DataStruct => OceanVersion::Contig4d,
        OptClass::Algorithm => OceanVersion::RowWise,
    }
}

/// Grid layout: 2-d (with pitch) or 4-d blocked.
#[derive(Clone, Copy)]
enum GL {
    G2 { base: u64, pitch: usize },
    G4 { base: u64, bdim: usize, bpr: usize },
}

impl GL {
    #[inline(always)]
    fn addr(&self, r: usize, c: usize) -> u64 {
        match *self {
            GL::G2 { base, pitch } => base + ((r * pitch + c) as u64) * 8,
            GL::G4 { base, bdim, bpr } => {
                let (bi, ri) = (r / bdim, r % bdim);
                let (bj, cj) = (c / bdim, c % bdim);
                let bsz = ((bdim * bdim * 8) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
                base + (bi * bpr + bj) as u64 * bsz + ((ri * bdim + cj) as u64) * 8
            }
        }
    }
}

/// Initial condition (deterministic, smooth + boundary ring).
fn init_val(i: usize, j: usize, n: usize) -> f64 {
    let x = i as f64 / n as f64;
    let y = j as f64 / n as f64;
    x * (1.0 - x) * y * (1.0 - y) * 4.0 + 0.1 * ((i * 31 + j * 17) % 13) as f64 / 13.0
}

/// Source-term grid value.
fn rhs_val(i: usize, j: usize, n: usize) -> f64 {
    let x = i as f64 / n as f64;
    let y = j as f64 / n as f64;
    (x - 0.5) * (y - 0.5) * 0.01
}

/// Sequential reference: identical arithmetic order (within each colour,
/// element updates are independent, so results are bitwise comparable).
pub fn reference(params: &OceanParams) -> Vec<f64> {
    let n = params.n;
    let mut psi: Vec<f64> = (0..n * n).map(|k| init_val(k / n, k % n, n)).collect();
    let rhs: Vec<f64> = (0..n * n).map(|k| rhs_val(k / n, k % n, n)).collect();
    let mut tmp = vec![0.0f64; n * n];
    for _step in 0..params.steps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                tmp[i * n + j] = psi[(i - 1) * n + j]
                    + psi[(i + 1) * n + j]
                    + psi[i * n + j - 1]
                    + psi[i * n + j + 1]
                    - 4.0 * psi[i * n + j];
            }
        }
        for _sweep in 0..params.sweeps {
            for colour in 0..2usize {
                for i in 1..n - 1 {
                    let jstart = 1 + ((colour + i + 1) % 2);
                    let mut j = jstart;
                    while j <= n - 2 {
                        let nb = psi[(i - 1) * n + j]
                            + psi[(i + 1) * n + j]
                            + psi[i * n + j - 1]
                            + psi[i * n + j + 1];
                        let target = 0.25 * (nb - (rhs[i * n + j] + 0.1 * tmp[i * n + j]));
                        psi[i * n + j] += 0.9 * (target - psi[i * n + j]);
                        j += 2;
                    }
                }
            }
        }
    }
    psi
}

fn square_grid(nprocs: usize) -> usize {
    let sp = (nprocs as f64).sqrt().round() as usize;
    assert_eq!(
        sp * sp,
        nprocs,
        "square partitions need a square proc count"
    );
    sp
}

/// Per-processor iteration space: inclusive row/col ranges of owned interior
/// points.
#[derive(Clone, Copy, Debug)]
struct Part {
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
}

fn partition(version: OceanVersion, n: usize, nprocs: usize, pid: usize) -> Part {
    match version {
        OceanVersion::RowWise => {
            let rows = n - 2;
            let per = rows / nprocs;
            let extra = rows % nprocs;
            let r0 = 1 + pid * per + pid.min(extra);
            let mine = per + usize::from(pid < extra);
            Part {
                r0,
                r1: r0 + mine - 1,
                c0: 1,
                c1: n - 2,
            }
        }
        _ => {
            let sp = square_grid(nprocs);
            let bdim = n / sp;
            let (pi, pj) = (pid / sp, pid % sp);
            let r0 = (pi * bdim).max(1);
            let r1 = ((pi + 1) * bdim - 1).min(n - 2);
            let c0 = (pj * bdim).max(1);
            let c1 = ((pj + 1) * bdim - 1).min(n - 2);
            Part { r0, r1, c0, c1 }
        }
    }
}

/// Run Ocean on a platform; panics if the result diverges from the
/// sequential reference.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &OceanParams,
    version: OceanVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &OceanParams,
    version: OceanVersion,
    cfg: RunConfig,
) -> AppResult {
    let n = params.n;
    if !matches!(version, OceanVersion::RowWise) {
        let sp = square_grid(nprocs);
        assert_eq!(n % sp, 0, "grid dim must divide by partition grid");
    }
    let layout_bc: Bcast<(GL, GL, GL, u64)> = Bcast::new();
    let result = std::sync::Mutex::new(Vec::new());

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        if me == 0 {
            let nprocs = p.nprocs();
            let mk = |p: &mut Proc, label: &'static str| -> GL {
                match version {
                    OceanVersion::Orig2d => GL::G2 {
                        base: p.alloc_shared_labeled(
                            label,
                            (n * n * 8) as u64,
                            PAGE_SIZE,
                            Placement::RoundRobin,
                        ),
                        pitch: n,
                    },
                    OceanVersion::PadAlign => {
                        let grain = platform.grain();
                        let pitch = (((n * 8) as u64).div_ceil(grain) * grain / 8) as usize;
                        GL::G2 {
                            base: p.alloc_shared_labeled(
                                label,
                                (n * pitch * 8) as u64,
                                PAGE_SIZE,
                                Placement::RoundRobin,
                            ),
                            pitch,
                        }
                    }
                    OceanVersion::Contig4d => {
                        let sp = square_grid(nprocs);
                        let bdim = n / sp;
                        let bsz = ((bdim * bdim * 8) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
                        let chunk = bsz / PAGE_SIZE;
                        GL::G4 {
                            base: p.alloc_shared_labeled(
                                label,
                                bsz * (sp * sp) as u64,
                                PAGE_SIZE,
                                Placement::Blocked { chunk_pages: chunk },
                            ),
                            bdim,
                            bpr: sp,
                        }
                    }
                    OceanVersion::RowWise => GL::G2 {
                        base: p.alloc_shared_labeled(
                            label,
                            (n * n * 8) as u64,
                            PAGE_SIZE,
                            Placement::FirstTouch,
                        ),
                        pitch: n,
                    },
                }
            };
            let psi = mk(p, "psi");
            let rhs = mk(p, "rhs");
            let tmp = mk(p, "tmp");
            let resid = p.alloc_shared_labeled("resid", 8, 8, Placement::Node(0));
            layout_bc.put((psi, rhs, tmp, resid));
        }
        p.barrier(100);
        let (psi, rhs, tmp, resid) = layout_bc.get();

        // Parallel initialization (untimed): each processor touches its own
        // partition first — the "data distribution" step; under FirstTouch
        // it also homes the pages.
        let part = partition(version, n, p.nprocs(), me);
        let full_r0 = if part.r0 == 1 { 0 } else { part.r0 };
        let full_r1 = if part.r1 == n - 2 { n - 1 } else { part.r1 };
        let full_c0 = if part.c0 == 1 { 0 } else { part.c0 };
        let full_c1 = if part.c1 == n - 2 { n - 1 } else { part.c1 };
        let fw = full_c1 - full_c0 + 1;
        let mut buf = vec![0.0f64; fw];
        for i in full_r0..=full_r1 {
            for (l, b) in buf.iter_mut().enumerate() {
                *b = init_val(i, full_c0 + l, n);
            }
            write_f64_runs(p, &buf, |l| psi.addr(i, full_c0 + l));
            for (l, b) in buf.iter_mut().enumerate() {
                *b = rhs_val(i, full_c0 + l, n);
            }
            write_f64_runs(p, &buf, |l| rhs.addr(i, full_c0 + l));
            buf.fill(0.0);
            write_f64_runs(p, &buf, |l| tmp.addr(i, full_c0 + l));
        }
        p.barrier(101);
        p.start_timing();

        // Per-row staging buffers for the bulk fast path. Within a half-sweep
        // the four stencil neighbours of an updated cell all have the
        // opposite colour (and the stencil/residual phases only read psi), so
        // hoisting a whole row of reads ahead of the row's writes reads
        // exactly the values the per-point loop would.
        let w = part.c1 - part.c0 + 1;
        let (mut north, mut south) = (vec![0.0f64; w], vec![0.0f64; w]);
        let (mut west, mut east) = (vec![0.0f64; w], vec![0.0f64; w]);
        let (mut centre, mut aux) = (vec![0.0f64; w], vec![0.0f64; w]);
        let mut out_row = vec![0.0f64; w];

        for _step in 0..params.steps {
            // Stencil phase.
            for i in part.r0..=part.r1 {
                read_f64_runs(p, &mut north, |l| psi.addr(i - 1, part.c0 + l));
                read_f64_runs(p, &mut south, |l| psi.addr(i + 1, part.c0 + l));
                read_f64_runs(p, &mut west, |l| psi.addr(i, part.c0 - 1 + l));
                read_f64_runs(p, &mut east, |l| psi.addr(i, part.c0 + 1 + l));
                read_f64_runs(p, &mut centre, |l| psi.addr(i, part.c0 + l));
                for l in 0..w {
                    out_row[l] = north[l] + south[l] + west[l] + east[l] - 4.0 * centre[l];
                }
                write_f64_runs(p, &out_row, |l| tmp.addr(i, part.c0 + l));
                p.work_fused(6, w as u64);
            }
            p.barrier(0);
            // Red-black relaxation.
            for _sweep in 0..params.sweeps {
                for colour in 0..2u32 {
                    for i in part.r0..=part.r1 {
                        let jstart = part.c0 + ((colour as usize + i + part.c0) % 2);
                        if jstart > part.c1 {
                            continue;
                        }
                        let k = (part.c1 - jstart) / 2 + 1;
                        read_f64_runs(p, &mut north[..k], |l| psi.addr(i - 1, jstart + 2 * l));
                        read_f64_runs(p, &mut south[..k], |l| psi.addr(i + 1, jstart + 2 * l));
                        read_f64_runs(p, &mut west[..k], |l| psi.addr(i, jstart - 1 + 2 * l));
                        read_f64_runs(p, &mut east[..k], |l| psi.addr(i, jstart + 1 + 2 * l));
                        read_f64_runs(p, &mut aux[..k], |l| rhs.addr(i, jstart + 2 * l));
                        read_f64_runs(p, &mut out_row[..k], |l| tmp.addr(i, jstart + 2 * l));
                        read_f64_runs(p, &mut centre[..k], |l| psi.addr(i, jstart + 2 * l));
                        for l in 0..k {
                            let nb = north[l] + south[l] + west[l] + east[l];
                            let target = 0.25 * (nb - (aux[l] + 0.1 * out_row[l]));
                            centre[l] += 0.9 * (target - centre[l]);
                        }
                        write_f64_runs(p, &centre[..k], |l| psi.addr(i, jstart + 2 * l));
                        p.work_fused(10, k as u64);
                    }
                    p.barrier(1 + colour);
                }
            }
            // Residual reduction (lock-accumulated, as in SPLASH).
            let mut local = 0.0f64;
            for i in part.r0..=part.r1 {
                read_f64_runs(p, &mut aux, |l| rhs.addr(i, part.c0 + l));
                read_f64_runs(p, &mut centre, |l| psi.addr(i, part.c0 + l));
                for l in 0..w {
                    let d = aux[l] - centre[l];
                    local += d * d;
                }
                p.work_fused(3, w as u64);
            }
            p.lock(0);
            let g = p.read_f64(resid);
            p.write_f64(resid, g + local);
            p.unlock(0);
            p.barrier(3);
        }

        p.stop_timing();
        if me == 0 {
            let mut out = vec![0.0f64; n * n];
            for i in 0..n {
                read_f64_runs(p, &mut out[i * n..(i + 1) * n], |j| psi.addr(i, j));
            }
            *result.lock().unwrap() = out;
        }
    });

    let out = result.into_inner().unwrap();
    let want = reference(params);
    assert_close_slice(&out, &want, 1e-12, "Ocean psi");
    AppResult {
        stats,
        checksum: checksum_f64s(out.into_iter()),
    }
}

/// Run Ocean at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: OceanVersion) -> AppResult {
    run_params(platform, nprocs, &OceanParams::at(scale), version)
}

/// Run Ocean at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: OceanVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &OceanParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OceanParams {
        OceanParams {
            n: 16,
            steps: 1,
            sweeps: 2,
        }
    }

    #[test]
    fn colours_partition_interior() {
        // Every interior cell is updated exactly once per half-sweep pair.
        let n = 10;
        let mut count = vec![0u32; n * n];
        for colour in 0..2usize {
            for i in 1..n - 1 {
                let c0 = 1;
                let jstart = c0 + ((colour + i + c0) % 2);
                let mut j = jstart;
                while j <= n - 2 {
                    count[i * n + j] += 1;
                    j += 2;
                }
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                assert_eq!(count[i * n + j], 1, "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn all_versions_match_reference_on_svm() {
        for v in [
            OceanVersion::Orig2d,
            OceanVersion::PadAlign,
            OceanVersion::Contig4d,
            OceanVersion::RowWise,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), v);
            assert!(r.stats.total_cycles() > 0, "{v:?}");
        }
    }

    #[test]
    fn rowwise_matches_on_all_platforms() {
        let a = run_params(Platform::Svm, 2, &tiny(), OceanVersion::RowWise);
        let b = run_params(Platform::Dsm, 2, &tiny(), OceanVersion::RowWise);
        let c = run_params(Platform::Smp, 2, &tiny(), OceanVersion::RowWise);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn uniprocessor_works() {
        let r = run_params(Platform::Svm, 1, &tiny(), OceanVersion::Orig2d);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn partitions_tile_the_interior() {
        for version in [OceanVersion::Orig2d, OceanVersion::RowWise] {
            let n = 32;
            let nprocs = 4;
            let mut seen = vec![false; n * n];
            for pid in 0..nprocs {
                let pt = partition(version, n, nprocs, pid);
                for i in pt.r0..=pt.r1 {
                    for j in pt.c0..=pt.c1 {
                        assert!(!seen[i * n + j], "{version:?}: overlap at ({i},{j})");
                        seen[i * n + j] = true;
                    }
                }
            }
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    assert!(seen[i * n + j], "{version:?}: hole at ({i},{j})");
                }
            }
        }
    }
}
