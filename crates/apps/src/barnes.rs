//! Barnes — hierarchical N-body simulation (Barnes-Hut).
//!
//! Each time-step: compute the bounding box (lock-accumulated reduction),
//! build an octree over the bodies, then compute forces by tree traversal
//! with the opening criterion `cell_size / distance < θ`, and advance the
//! bodies. The octree's *shape* is position-determined (insertion-order
//! independent), which is what makes the four build algorithms comparable.
//!
//! ## Versions (paper §4.2.4)
//!
//! * [`BarnesVersion::SharedTree`] — the SPLASH algorithm: all processors
//!   insert their bodies into one shared tree, locking each visited cell
//!   and allocating cells from a lock-protected global pool. Enormous
//!   fine-grained lock traffic: the paper counts ~66 K remote locks for
//!   16 K particles in 2 steps.
//! * [`BarnesVersion::LocalHeaps`] — SPLASH-2's data-structure change:
//!   identical algorithm, but cells come from per-processor, locally-homed
//!   pools. Barely helps on SVM (2.76 → 2.94 in the paper).
//! * [`BarnesVersion::Partree`] — build a lock-free local tree per
//!   processor over its own bodies, then merge the trees into the global
//!   root under locks. Merging is highly imbalanced: the first processor
//!   transplants into an empty root; later ones do successively deeper,
//!   lockier merges.
//! * [`BarnesVersion::Spatial`] — the winner: partition *space* into equal
//!   sub-octants (two octree levels = 64), build each sub-octant's subtree
//!   without any synchronization, and link the disjoint subtrees into a
//!   pre-built skeleton. Only the skeleton's center-of-mass pass touches
//!   shared state.

use crate::common::{AppResult, Bcast, Platform, Scale};
use crate::OptClass;
use sim_core::util::XorShift64;
use sim_core::{run as sim_run, Placement, Proc, RunConfig, PAGE_SIZE};

/// Phase indices for per-phase statistics (Figure 13/14 and the paper's
/// "tree building takes 43% of the time" claim).
pub mod phase {
    /// Bounding-box reduction + octree construction.
    pub const TREE_BUILD: usize = 0;
    /// Force computation by tree traversal.
    pub const FORCE: usize = 1;
    /// Position/velocity update.
    pub const UPDATE: usize = 2;
    /// Names, indexed by phase id (registered on the run's `RunConfig` so
    /// figures and traces print "tree-build" instead of "phase 0").
    pub const NAMES: [&str; 3] = ["tree-build", "force", "update"];
}

/// Barnes problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct BarnesParams {
    /// Number of bodies (divisible by the processor count).
    pub n: usize,
    /// Time-steps.
    pub steps: usize,
    /// Opening criterion θ.
    pub theta: f64,
    /// Time-step size.
    pub dt: f64,
    /// Workload seed.
    pub seed: u64,
}

impl BarnesParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                n: 64,
                steps: 2,
                theta: 0.9,
                dt: 0.025,
                seed: 42,
            },
            Scale::Default => Self {
                n: 2048,
                steps: 2,
                theta: 0.8,
                dt: 0.025,
                seed: 42,
            },
            Scale::Paper => Self {
                n: 16384,
                steps: 2,
                theta: 1.0,
                dt: 0.025,
                seed: 42,
            },
        }
    }
}

/// The tree-building algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarnesVersion {
    /// SPLASH: shared tree, global locked cell pool.
    SharedTree,
    /// SPLASH-2: shared tree, per-processor locally-homed cell pools.
    LocalHeaps,
    /// Incremental: keep the tree between steps, remove and re-insert only
    /// the bodies that crossed their leaf-cell boundary (paper: 5.56).
    UpdateTree,
    /// Local trees merged under locks.
    Partree,
    /// Space-partitioned lock-free build (Barnes-Spatial).
    Spatial,
}

/// Map the paper's optimization class to a Barnes version.
pub fn version_for(class: OptClass) -> BarnesVersion {
    match class {
        OptClass::Orig => BarnesVersion::SharedTree,
        // Padding individual particles/cells is a "huge waste of memory"
        // (paper) and was rejected; P/A therefore maps to the original.
        OptClass::PadAlign => BarnesVersion::SharedTree,
        OptClass::DataStruct => BarnesVersion::LocalHeaps,
        OptClass::Algorithm => BarnesVersion::Spatial,
    }
}

const EPS2: f64 = 0.0025; // softening² for force singularities
const BODY_STRIDE: u64 = 128; // bytes per body record
const CELL_STRIDE: u64 = 128; // bytes per cell record

// Body record offsets (f64 fields).
const B_POS: u64 = 0; // 3 f64
const B_VEL: u64 = 24; // 3 f64
const B_ACC: u64 = 48; // 3 f64
const B_MASS: u64 = 72;

// Cell record offsets.
const C_CHILD: u64 = 0; // 8 u32
const C_MASS: u64 = 32;
const C_MOM: u64 = 40; // 3 f64
const C_CENTER: u64 = 64; // 3 f64 (cube centre; used by Update-Tree)
const C_HALF: u64 = 88; // f64 (cube half-extent)

// Child slot encoding.
const EMPTY: u32 = 0;

// Lock namespace.
const LOCK_POOL: u32 = 1;
const LOCK_BBOX: u32 = 2;
const LOCK_CELL_BASE: u32 = 64;

/// Node reference: empty, body index, or cell index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ref {
    Empty,
    Body(u32),
    Cell(u32),
}

fn enc(r: Ref, n: u32) -> u32 {
    match r {
        Ref::Empty => EMPTY,
        Ref::Body(i) => 1 + i,
        Ref::Cell(c) => 1 + n + c,
    }
}

fn dec(v: u32, n: u32) -> Ref {
    if v == EMPTY {
        Ref::Empty
    } else if v <= n {
        Ref::Body(v - 1)
    } else {
        Ref::Cell(v - 1 - n)
    }
}

/// Plummer-like body distribution (deterministic).
pub fn generate_bodies(params: &BarnesParams) -> Vec<[f64; 7]> {
    // [x,y,z, vx,vy,vz, mass]
    let mut rng = XorShift64::new(params.seed);
    let n = params.n;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Plummer radius with cutoff.
        let u = rng.f64().max(1e-9);
        let r = 1.0 / (u.powf(-2.0 / 3.0) - 1.0).max(1e-9).sqrt();
        if r > 8.0 {
            continue;
        }
        // Random direction.
        let ct = rng.range_f64(-1.0, 1.0);
        let st = (1.0 - ct * ct).sqrt();
        let ph = rng.range_f64(0.0, std::f64::consts::TAU);
        let pos = [r * st * ph.cos(), r * st * ph.sin(), r * ct];
        let vel = [
            rng.range_f64(-0.1, 0.1),
            rng.range_f64(-0.1, 0.1),
            rng.range_f64(-0.1, 0.1),
        ];
        out.push([
            pos[0],
            pos[1],
            pos[2],
            vel[0],
            vel[1],
            vel[2],
            1.0 / n as f64,
        ]);
    }
    out
}

// ---------------------------------------------------------------------------
// Sequential reference
// ---------------------------------------------------------------------------

struct SeqTree {
    child: Vec<[u32; 8]>,
    mass: Vec<f64>,
    mom: Vec<[f64; 3]>,
}

impl SeqTree {
    fn alloc(&mut self) -> u32 {
        self.child.push([EMPTY; 8]);
        self.mass.push(0.0);
        self.mom.push([0.0; 3]);
        (self.child.len() - 1) as u32
    }
}

fn octant(center: &[f64; 3], pos: &[f64; 3]) -> usize {
    (usize::from(pos[0] > center[0]) << 2)
        | (usize::from(pos[1] > center[1]) << 1)
        | usize::from(pos[2] > center[2])
}

fn sub_center(center: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
    let q = half / 2.0;
    [
        center[0] + if oct & 4 != 0 { q } else { -q },
        center[1] + if oct & 2 != 0 { q } else { -q },
        center[2] + if oct & 1 != 0 { q } else { -q },
    ]
}

/// Sequential reference for the Update-Tree algorithm: the tree persists
/// between steps with the same removal/re-insertion rules as the parallel
/// version (fixed padded root cube, husk cells left in place), so outputs
/// are comparable within floating-point reassociation tolerance.
pub fn reference_update(params: &BarnesParams) -> Vec<f64> {
    let n = params.n;
    let mut bodies = generate_bodies(params);

    struct UTree {
        child: Vec<[u32; 8]>,
        center: Vec<[f64; 3]>,
        half: Vec<f64>,
        mass: Vec<f64>,
        mom: Vec<[f64; 3]>,
    }
    impl UTree {
        fn alloc(&mut self, center: [f64; 3], half: f64) -> u32 {
            self.child.push([EMPTY; 8]);
            self.center.push(center);
            self.half.push(half);
            self.mass.push(0.0);
            self.mom.push([0.0; 3]);
            (self.child.len() - 1) as u32
        }
    }
    let mut t = UTree {
        child: Vec::new(),
        center: Vec::new(),
        half: Vec::new(),
        mass: Vec::new(),
        mom: Vec::new(),
    };
    let mut bparent = vec![0u32; n];

    // Fixed padded root cube from the initial distribution.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for b in &bodies {
        for d in 0..3 {
            lo[d] = lo[d].min(b[d]);
            hi[d] = hi[d].max(b[d]);
        }
    }
    let root_center = [
        (lo[0] + hi[0]) / 2.0,
        (lo[1] + hi[1]) / 2.0,
        (lo[2] + hi[2]) / 2.0,
    ];
    let mut root_half = 0.0f64;
    for d in 0..3 {
        root_half = root_half.max((hi[d] - lo[d]) / 2.0);
    }
    root_half = root_half * 1.5 + 1e-9;
    let root = t.alloc(root_center, root_half);

    #[allow(clippy::too_many_arguments)]
    fn ins(
        t: &mut UTree,
        bparent: &mut [u32],
        bodies: &[[f64; 7]],
        n: u32,
        i: u32,
        pos: [f64; 3],
        mut cur: u32,
        mut center: [f64; 3],
        mut half: f64,
    ) {
        loop {
            let oct = octant(&center, &pos);
            match dec(t.child[cur as usize][oct], n) {
                Ref::Cell(cc) => {
                    center = sub_center(&center, half, oct);
                    half /= 2.0;
                    cur = cc;
                }
                Ref::Empty => {
                    t.child[cur as usize][oct] = enc(Ref::Body(i), n);
                    bparent[i as usize] = cur * 8 + oct as u32;
                    return;
                }
                Ref::Body(j) => {
                    let bj = &bodies[j as usize];
                    let pj = [bj[0], bj[1], bj[2]];
                    let ncc = sub_center(&center, half, oct);
                    let nc = t.alloc(ncc, half / 2.0);
                    let so = octant(&ncc, &pj);
                    t.child[nc as usize][so] = enc(Ref::Body(j), n);
                    bparent[j as usize] = nc * 8 + so as u32;
                    t.child[cur as usize][oct] = enc(Ref::Cell(nc), n);
                    center = ncc;
                    half /= 2.0;
                    cur = nc;
                }
            }
        }
    }

    for i in 0..n {
        let pos = [bodies[i][0], bodies[i][1], bodies[i][2]];
        ins(
            &mut t,
            &mut bparent,
            &bodies,
            n as u32,
            i as u32,
            pos,
            root,
            root_center,
            root_half,
        );
    }

    fn com(t: &mut UTree, bodies: &[[f64; 7]], n: u32, node: u32) -> (f64, [f64; 3]) {
        match dec(node, n) {
            Ref::Empty => (0.0, [0.0; 3]),
            Ref::Body(j) => {
                let b = &bodies[j as usize];
                (b[6], [b[6] * b[0], b[6] * b[1], b[6] * b[2]])
            }
            Ref::Cell(c) => {
                let mut mass = 0.0;
                let mut mom = [0.0f64; 3];
                for oct in 0..8 {
                    let ch = t.child[c as usize][oct];
                    let (m, mm) = com(t, bodies, n, ch);
                    mass += m;
                    for d in 0..3 {
                        mom[d] += mm[d];
                    }
                }
                t.mass[c as usize] = mass;
                t.mom[c as usize] = mom;
                (mass, mom)
            }
        }
    }

    for step in 0..params.steps {
        if step > 0 {
            // Remove all moved bodies first, then re-insert them.
            let mut moved = Vec::new();
            for i in 0..n {
                let pos = [bodies[i][0], bodies[i][1], bodies[i][2]];
                let bp = bparent[i];
                let (cell, oct) = ((bp / 8) as usize, (bp % 8) as usize);
                let scc = sub_center(&t.center[cell], t.half[cell], oct);
                let sh = t.half[cell] / 2.0;
                if (0..3).all(|d| (pos[d] - scc[d]).abs() <= sh) {
                    continue;
                }
                t.child[cell][oct] = EMPTY;
                moved.push((i as u32, pos));
            }
            for (i, pos) in moved {
                ins(
                    &mut t,
                    &mut bparent,
                    &bodies,
                    n as u32,
                    i,
                    pos,
                    root,
                    root_center,
                    root_half,
                );
            }
        }
        com(&mut t, &bodies, n as u32, enc(Ref::Cell(root), n as u32));
        let snapshot = bodies.clone();
        for (i, b) in bodies.iter_mut().enumerate() {
            let pos = [b[0], b[1], b[2]];
            let mut acc = [0.0f64; 3];
            let mut stack = vec![(enc(Ref::Cell(root), n as u32), root_center, root_half)];
            while let Some((nd, c, h)) = stack.pop() {
                match dec(nd, n as u32) {
                    Ref::Empty => {}
                    Ref::Body(j) => {
                        if j as usize != i {
                            let bj = &snapshot[j as usize];
                            interact(&pos, &[bj[0], bj[1], bj[2]], bj[6], &mut acc);
                        }
                    }
                    Ref::Cell(cc) => {
                        let m = t.mass[cc as usize];
                        if m == 0.0 {
                            continue;
                        }
                        let com = [
                            t.mom[cc as usize][0] / m,
                            t.mom[cc as usize][1] / m,
                            t.mom[cc as usize][2] / m,
                        ];
                        let dx = com[0] - pos[0];
                        let dy = com[1] - pos[1];
                        let dz = com[2] - pos[2];
                        let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                        if 2.0 * h / dist.max(1e-12) < params.theta {
                            interact(&pos, &com, m, &mut acc);
                        } else {
                            for oct in 0..8 {
                                let ch = t.child[cc as usize][oct];
                                if ch != EMPTY {
                                    stack.push((ch, sub_center(&c, h, oct), h / 2.0));
                                }
                            }
                        }
                    }
                }
            }
            for d in 0..3 {
                b[3 + d] += acc[d] * params.dt;
                b[d] += b[3 + d] * params.dt;
            }
        }
    }
    bodies.iter().flat_map(|b| b[..6].iter().copied()).collect()
}

/// Sequential reference: body states after `steps` steps, flattened
/// `[x,y,z,vx,vy,vz]` per body.
pub fn reference(params: &BarnesParams) -> Vec<f64> {
    let n = params.n;
    let mut bodies = generate_bodies(params);
    for _ in 0..params.steps {
        // Bounding cube.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in &bodies {
            for d in 0..3 {
                lo[d] = lo[d].min(b[d]);
                hi[d] = hi[d].max(b[d]);
            }
        }
        let center = [
            (lo[0] + hi[0]) / 2.0,
            (lo[1] + hi[1]) / 2.0,
            (lo[2] + hi[2]) / 2.0,
        ];
        let mut half = 0.0f64;
        for d in 0..3 {
            half = half.max((hi[d] - lo[d]) / 2.0);
        }
        half = half * 1.001 + 1e-9;
        // Build.
        let mut t = SeqTree {
            child: Vec::new(),
            mass: Vec::new(),
            mom: Vec::new(),
        };
        let root = t.alloc();
        for (i, b) in bodies.iter().enumerate() {
            let pos = [b[0], b[1], b[2]];
            let m = b[6];
            let mut cur = root;
            let mut c = center;
            let mut h = half;
            loop {
                t.mass[cur as usize] += m;
                for d in 0..3 {
                    t.mom[cur as usize][d] += m * pos[d];
                }
                let oct = octant(&c, &pos);
                match dec(t.child[cur as usize][oct], n as u32) {
                    Ref::Empty => {
                        t.child[cur as usize][oct] = enc(Ref::Body(i as u32), n as u32);
                        break;
                    }
                    Ref::Cell(cc) => {
                        c = sub_center(&c, h, oct);
                        h /= 2.0;
                        cur = cc;
                    }
                    Ref::Body(j) => {
                        let bj = &bodies[j as usize];
                        let pj = [bj[0], bj[1], bj[2]];
                        let mj = bj[6];
                        let nc = t.alloc();
                        let ncc = sub_center(&c, h, oct);
                        let so = octant(&ncc, &pj);
                        t.child[nc as usize][so] = enc(Ref::Body(j), n as u32);
                        t.mass[nc as usize] = mj;
                        for d in 0..3 {
                            t.mom[nc as usize][d] = mj * pj[d];
                        }
                        t.child[cur as usize][oct] = enc(Ref::Cell(nc), n as u32);
                        c = ncc;
                        h /= 2.0;
                        cur = nc;
                    }
                }
            }
        }
        // Force + update.
        let snapshot = bodies.clone();
        for (i, b) in bodies.iter_mut().enumerate() {
            let pos = [b[0], b[1], b[2]];
            let mut acc = [0.0f64; 3];
            let mut stack = vec![(enc(Ref::Cell(root), n as u32), center, half)];
            while let Some((nd, c, h)) = stack.pop() {
                match dec(nd, n as u32) {
                    Ref::Empty => {}
                    Ref::Body(j) => {
                        if j as usize != i {
                            let bj = &snapshot[j as usize];
                            interact(&pos, &[bj[0], bj[1], bj[2]], bj[6], &mut acc);
                        }
                    }
                    Ref::Cell(cc) => {
                        let m = t.mass[cc as usize];
                        let com = [
                            t.mom[cc as usize][0] / m,
                            t.mom[cc as usize][1] / m,
                            t.mom[cc as usize][2] / m,
                        ];
                        let dx = com[0] - pos[0];
                        let dy = com[1] - pos[1];
                        let dz = com[2] - pos[2];
                        let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                        if 2.0 * h / dist.max(1e-12) < params.theta {
                            interact(&pos, &com, m, &mut acc);
                        } else {
                            for oct in 0..8 {
                                let ch = t.child[cc as usize][oct];
                                if ch != EMPTY {
                                    stack.push((ch, sub_center(&c, h, oct), h / 2.0));
                                }
                            }
                        }
                    }
                }
            }
            for d in 0..3 {
                b[3 + d] += acc[d] * params.dt;
                b[d] += b[3 + d] * params.dt;
            }
        }
    }
    bodies.iter().flat_map(|b| b[..6].iter().copied()).collect()
}

fn interact(pos: &[f64; 3], other: &[f64; 3], m: f64, acc: &mut [f64; 3]) {
    let dx = other[0] - pos[0];
    let dy = other[1] - pos[1];
    let dz = other[2] - pos[2];
    let r2 = dx * dx + dy * dy + dz * dz + EPS2;
    let inv = 1.0 / (r2 * r2.sqrt());
    acc[0] += m * dx * inv;
    acc[1] += m * dy * inv;
    acc[2] += m * dz * inv;
}

// ---------------------------------------------------------------------------
// Parallel implementation
// ---------------------------------------------------------------------------

/// Shared-memory layout published by processor 0.
#[derive(Clone, Copy)]
struct Mem {
    bodies: u64,
    cells: u64,
    /// Global pool next-index (SharedTree only).
    pool_next: u64,
    /// Bounding box: six f64 (lo[3], hi[3]).
    bbox: u64,
    /// Root cell index (u32).
    root: u64,
    /// Body -> (leaf cell * 8 + octant) map (Update-Tree only; 0 = unset).
    bparent: u64,
    /// Per-processor pool base index (cells are one array; proc p allocates
    /// in [pool_lo[p], pool_lo[p+1]) for local-pool versions).
    pool_quota: u32,
    /// Byte stride between consecutive processors' pool regions. Padded by
    /// one page beyond `pool_quota * CELL_STRIDE` so the (hot) fronts of
    /// the per-processor pools do not alias into the same L2 sets — the
    /// classic power-of-two-stride conflict SPLASH-2 warns about.
    pool_stride: u64,
    ncells: u32,
}

impl Mem {
    /// Byte address of cell `c`.
    #[inline]
    fn cell_addr(&self, c: u32) -> u64 {
        let pool = (c / self.pool_quota) as u64;
        let off = (c % self.pool_quota) as u64;
        self.cells + pool * self.pool_stride + off * CELL_STRIDE
    }
}

impl Mem {
    #[inline]
    fn body_f64(&self, p: &mut Proc, i: u32, off: u64) -> f64 {
        f64::from_bits(p.load(self.bodies + i as u64 * BODY_STRIDE + off, 8))
    }

    #[inline]
    fn set_body_f64(&self, p: &mut Proc, i: u32, off: u64, v: f64) {
        p.store(self.bodies + i as u64 * BODY_STRIDE + off, 8, v.to_bits());
    }

    #[inline]
    fn body_pos(&self, p: &mut Proc, i: u32) -> [f64; 3] {
        [
            self.body_f64(p, i, B_POS),
            self.body_f64(p, i, B_POS + 8),
            self.body_f64(p, i, B_POS + 16),
        ]
    }

    #[inline]
    fn child(&self, p: &mut Proc, c: u32, oct: usize) -> u32 {
        p.load(self.cell_addr(c) + C_CHILD + 4 * oct as u64, 4) as u32
    }

    #[inline]
    fn set_child(&self, p: &mut Proc, c: u32, oct: usize, v: u32) {
        p.store(self.cell_addr(c) + C_CHILD + 4 * oct as u64, 4, v as u64);
    }

    #[inline]
    fn cell_mass(&self, p: &mut Proc, c: u32) -> f64 {
        f64::from_bits(p.load(self.cell_addr(c) + C_MASS, 8))
    }

    #[inline]
    fn set_cell_mass(&self, p: &mut Proc, c: u32, v: f64) {
        p.store(self.cell_addr(c) + C_MASS, 8, v.to_bits());
    }

    #[inline]
    fn cell_mom(&self, p: &mut Proc, c: u32, d: u64) -> f64 {
        f64::from_bits(p.load(self.cell_addr(c) + C_MOM + 8 * d, 8))
    }

    #[inline]
    fn set_cell_mom(&self, p: &mut Proc, c: u32, d: u64, v: f64) {
        p.store(self.cell_addr(c) + C_MOM + 8 * d, 8, v.to_bits());
    }

    /// Store a cell's cube bounds (centre + half extent).
    fn set_cell_bounds(&self, p: &mut Proc, c: u32, center: &[f64; 3], half: f64) {
        for d in 0..3u64 {
            p.store(
                self.cell_addr(c) + C_CENTER + 8 * d,
                8,
                center[d as usize].to_bits(),
            );
        }
        p.store(self.cell_addr(c) + C_HALF, 8, half.to_bits());
    }

    /// Load a cell's cube bounds.
    fn cell_bounds(&self, p: &mut Proc, c: u32) -> ([f64; 3], f64) {
        let mut center = [0.0f64; 3];
        for d in 0..3u64 {
            center[d as usize] = f64::from_bits(p.load(self.cell_addr(c) + C_CENTER + 8 * d, 8));
        }
        let half = f64::from_bits(p.load(self.cell_addr(c) + C_HALF, 8));
        (center, half)
    }

    /// Zero a freshly-allocated cell.
    fn init_cell(&self, p: &mut Proc, c: u32) {
        for oct in 0..8 {
            self.set_child(p, c, oct, EMPTY);
        }
        self.set_cell_mass(p, c, 0.0);
        for d in 0..3 {
            self.set_cell_mom(p, c, d, 0.0);
        }
    }
}

/// Per-processor cell allocator.
struct CellAlloc {
    /// Next index for lock-free local pools; `None` means use the locked
    /// global pool.
    local_next: Option<u32>,
    local_end: u32,
}

impl CellAlloc {
    fn alloc(&mut self, p: &mut Proc, mem: &Mem) -> u32 {
        let c = match self.local_next {
            Some(next) => {
                assert!(next < self.local_end, "local cell pool exhausted");
                self.local_next = Some(next + 1);
                next
            }
            None => {
                p.lock(LOCK_POOL);
                let c = p.read_u32(mem.pool_next);
                p.write_u32(mem.pool_next, c + 1);
                p.unlock(LOCK_POOL);
                assert!(c < mem.ncells, "global cell pool exhausted");
                c
            }
        };
        mem.init_cell(p, c);
        c
    }
}

/// Insert body `i` into the subtree rooted at `cur` (covering `center`,
/// `half`). In the shared-tree versions (`locked`), the cell being examined
/// is locked for the whole level — under lazy release consistency the
/// acquire is also what makes the cell's page contents causally fresh, so
/// reading child slots without the lock would be a data race (stale page
/// copies can survive a fetch of the parent). This per-level locking is the
/// SPLASH discipline and costs a few lock acquires per body. Mass is
/// accumulated by the separate lock-free pass ([`com_subtree`]) after the
/// build barrier.
#[allow(clippy::too_many_arguments)]
fn insert(
    p: &mut Proc,
    mem: &Mem,
    alloc: &mut CellAlloc,
    n: u32,
    i: u32,
    pos: [f64; 3],
    mut cur: u32,
    mut center: [f64; 3],
    mut half: f64,
    locked: bool,
    track: bool,
) {
    let mut depth = 0u32;
    loop {
        depth += 1;
        assert!(depth < 128, "runaway octree insertion (coincident bodies?)");
        p.work(10);
        if locked {
            p.lock(LOCK_CELL_BASE + cur);
        }
        let oct = octant(&center, &pos);
        match dec(mem.child(p, cur, oct), n) {
            Ref::Cell(cc) => {
                if locked {
                    p.unlock(LOCK_CELL_BASE + cur);
                }
                center = sub_center(&center, half, oct);
                half /= 2.0;
                cur = cc;
            }
            Ref::Empty => {
                mem.set_child(p, cur, oct, enc(Ref::Body(i), n));
                if track {
                    p.store(mem.bparent + i as u64 * 4, 4, (cur * 8 + oct as u32) as u64);
                }
                if locked {
                    p.unlock(LOCK_CELL_BASE + cur);
                }
                return;
            }
            Ref::Body(j) => {
                // Split: move j into a fresh cell (initialized while the
                // parent lock is held, so the link and the new cell's
                // contents land in the same release interval), then keep
                // descending.
                let pj = mem.body_pos(p, j);
                let nc = alloc.alloc(p, mem);
                let ncc = sub_center(&center, half, oct);
                mem.set_cell_bounds(p, nc, &ncc, half / 2.0);
                let so = octant(&ncc, &pj);
                mem.set_child(p, nc, so, enc(Ref::Body(j), n));
                if track {
                    p.store(mem.bparent + j as u64 * 4, 4, (nc * 8 + so as u32) as u64);
                }
                mem.set_child(p, cur, oct, enc(Ref::Cell(nc), n));
                if locked {
                    p.unlock(LOCK_CELL_BASE + cur);
                }
                center = ncc;
                half /= 2.0;
                cur = nc;
            }
        }
    }
}

/// Merge the subtree rooted at local cell `l` into global cell `g`
/// (both covering `center`/`half`), Partree-style, under cell locks.
#[allow(clippy::too_many_arguments)]
fn merge(
    p: &mut Proc,
    mem: &Mem,
    alloc: &mut CellAlloc,
    n: u32,
    g: u32,
    l: u32,
    center: [f64; 3],
    half: f64,
) {
    p.lock(LOCK_CELL_BASE + g);
    p.work(10);
    for oct in 0..8 {
        let lc = dec(mem.child(p, l, oct), n);
        if lc == Ref::Empty {
            continue;
        }
        let gc = dec(mem.child(p, g, oct), n);
        let sc = sub_center(&center, half, oct);
        match (gc, lc) {
            (Ref::Empty, any) => {
                // Transplant the whole local subtree/body.
                mem.set_child(p, g, oct, enc(any, n));
            }
            (Ref::Cell(gcc), Ref::Cell(lcc)) => {
                // Recurse without holding the parent lock.
                p.unlock(LOCK_CELL_BASE + g);
                merge(p, mem, alloc, n, gcc, lcc, sc, half / 2.0);
                p.lock(LOCK_CELL_BASE + g);
            }
            (Ref::Cell(gcc), Ref::Body(j)) => {
                let pj = mem.body_pos(p, j);
                p.unlock(LOCK_CELL_BASE + g);
                insert(p, mem, alloc, n, j, pj, gcc, sc, half / 2.0, true, false);
                p.lock(LOCK_CELL_BASE + g);
            }
            (Ref::Body(j), Ref::Cell(lcc)) => {
                // Replace with the local cell, then insert the body into it.
                mem.set_child(p, g, oct, enc(Ref::Cell(lcc), n));
                let pj = mem.body_pos(p, j);
                p.unlock(LOCK_CELL_BASE + g);
                insert(p, mem, alloc, n, j, pj, lcc, sc, half / 2.0, true, false);
                p.lock(LOCK_CELL_BASE + g);
            }
            (_, Ref::Empty) => unreachable!("empty local child was skipped above"),
            (Ref::Body(j), Ref::Body(k)) => {
                // Both bodies: make a fresh cell holding j, link it, then
                // insert k through the normal path.
                let pj = mem.body_pos(p, j);
                let nc = alloc.alloc(p, mem);
                let so = octant(&sc, &pj);
                mem.set_child(p, nc, so, enc(Ref::Body(j), n));
                mem.set_child(p, g, oct, enc(Ref::Cell(nc), n));
                let pk = mem.body_pos(p, k);
                p.unlock(LOCK_CELL_BASE + g);
                insert(p, mem, alloc, n, k, pk, nc, sc, half / 2.0, true, false);
                p.lock(LOCK_CELL_BASE + g);
            }
        }
    }
    p.unlock(LOCK_CELL_BASE + g);
}

/// Recursively compute and store mass and first moment for the subtree at
/// `node`; returns `(mass, moment)`.
fn com_subtree(p: &mut Proc, mem: &Mem, n: u32, node: Ref) -> (f64, [f64; 3]) {
    match node {
        Ref::Empty => (0.0, [0.0; 3]),
        Ref::Body(j) => {
            let m = mem.body_f64(p, j, B_MASS);
            let pos = mem.body_pos(p, j);
            p.work(4);
            (m, [m * pos[0], m * pos[1], m * pos[2]])
        }
        Ref::Cell(c) => {
            let mut mass = 0.0f64;
            let mut mom = [0.0f64; 3];
            for oct in 0..8 {
                let ch = dec(mem.child(p, c, oct), n);
                let (m, mm) = com_subtree(p, mem, n, ch);
                mass += m;
                for d in 0..3 {
                    mom[d] += mm[d];
                }
            }
            mem.set_cell_mass(p, c, mass);
            for d in 0..3 {
                mem.set_cell_mom(p, c, d as u64, mom[d]);
            }
            p.work(12);
            (mass, mom)
        }
    }
}

/// Compute the force on body `i` by tree traversal.
#[allow(clippy::too_many_arguments)]
fn force_on(
    p: &mut Proc,
    mem: &Mem,
    n: u32,
    i: u32,
    pos: [f64; 3],
    root: u32,
    center: [f64; 3],
    half: f64,
    theta: f64,
) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    let mut stack = vec![(enc(Ref::Cell(root), n), center, half)];
    while let Some((nd, c, h)) = stack.pop() {
        p.work(8);
        match dec(nd, n) {
            Ref::Empty => {}
            Ref::Body(j) => {
                if j != i {
                    let pj = mem.body_pos(p, j);
                    let mj = mem.body_f64(p, j, B_MASS);
                    interact(&pos, &pj, mj, &mut acc);
                    p.work(60);
                }
            }
            Ref::Cell(cc) => {
                let m = mem.cell_mass(p, cc);
                if m == 0.0 {
                    continue; // husk left behind by Update-Tree removal
                }
                let com = [
                    mem.cell_mom(p, cc, 0) / m,
                    mem.cell_mom(p, cc, 1) / m,
                    mem.cell_mom(p, cc, 2) / m,
                ];
                let dx = com[0] - pos[0];
                let dy = com[1] - pos[1];
                let dz = com[2] - pos[2];
                let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                if 2.0 * h / dist.max(1e-12) < theta {
                    interact(&pos, &com, m, &mut acc);
                    p.work(60);
                } else {
                    for oct in 0..8 {
                        let ch = mem.child(p, cc, oct);
                        if ch != EMPTY {
                            stack.push((ch, sub_center(&c, h, oct), h / 2.0));
                        }
                    }
                }
            }
        }
    }
    acc
}

/// Run Barnes on a platform; panics if final body states diverge from the
/// sequential reference beyond floating-point reassociation tolerance.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &BarnesParams,
    version: BarnesVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &BarnesParams,
    version: BarnesVersion,
    cfg: RunConfig,
) -> AppResult {
    let cfg = if cfg.phase_names.is_empty() {
        cfg.with_phase_names(phase::NAMES)
    } else {
        cfg
    };
    let n = params.n;
    assert_eq!(n % nprocs, 0, "bodies must divide evenly");
    let input = generate_bodies(params);
    let ncells_total: u32 = (8 * n).max(1024) as u32;
    let mem_bc: Bcast<Mem> = Bcast::new();
    let result = std::sync::Mutex::new(Vec::new());

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        let np = p.nprocs();
        let chunk = n / np;
        let nb = n as u32;
        if me == 0 {
            let body_pages = ((chunk as u64 * BODY_STRIDE).div_ceil(PAGE_SIZE)).max(1);
            let bodies = p.alloc_shared_labeled(
                "bodies",
                n as u64 * BODY_STRIDE,
                PAGE_SIZE,
                Placement::Blocked {
                    chunk_pages: body_pages,
                },
            );
            let (pool_quota, pool_stride, cells) = match version {
                BarnesVersion::SharedTree => {
                    // One global pool: no staggering needed.
                    let quota = ncells_total;
                    let stride = ncells_total as u64 * CELL_STRIDE;
                    let cells = p.alloc_shared(stride, PAGE_SIZE, Placement::RoundRobin);
                    (quota, stride, cells)
                }
                _ => {
                    // Per-processor pools, locally homed, staggered by one
                    // page to break L2 set aliasing between pool fronts.
                    let quota = ncells_total / np as u32;
                    let quota_pages = ((quota as u64 * CELL_STRIDE).div_ceil(PAGE_SIZE)).max(1) + 1;
                    let stride = quota_pages * PAGE_SIZE;
                    let cells = p.alloc_shared(
                        np as u64 * stride,
                        PAGE_SIZE,
                        Placement::Blocked {
                            chunk_pages: quota_pages,
                        },
                    );
                    (quota, stride, cells)
                }
            };
            let pool_next = p.alloc_shared(8, 8, Placement::Node(0));
            let bparent = p.alloc_shared(
                (n * 4) as u64,
                PAGE_SIZE,
                Placement::Blocked {
                    chunk_pages: ((chunk as u64 * 4).div_ceil(PAGE_SIZE)).max(1),
                },
            );
            let bbox = p.alloc_shared(64, PAGE_SIZE, Placement::Node(0));
            let root = p.alloc_shared(8, 8, Placement::Node(0));
            let mem = Mem {
                bodies,
                cells,
                pool_next,
                bparent,
                bbox,
                root,
                pool_quota,
                pool_stride,
                ncells: ncells_total,
            };
            // Initialize bodies (untimed). Each field write is 8 bytes.
            for (i, b) in input.iter().enumerate() {
                for d in 0..3 {
                    mem.set_body_f64(p, i as u32, B_POS + 8 * d, b[d as usize]);
                    mem.set_body_f64(p, i as u32, B_VEL + 8 * d, b[3 + d as usize]);
                    mem.set_body_f64(p, i as u32, B_ACC + 8 * d, 0.0);
                }
                mem.set_body_f64(p, i as u32, B_MASS, b[6]);
            }
            mem_bc.put(mem);
        }
        p.barrier(100);
        let mem = mem_bc.get();
        let my_lo = (me * chunk) as u32;
        let my_hi = ((me + 1) * chunk) as u32;
        // Cell allocator: reset per step for rebuild algorithms; persistent
        // for Update-Tree (the tree survives between steps).
        let mut alloc = match version {
            BarnesVersion::SharedTree => CellAlloc {
                local_next: None,
                local_end: 0,
            },
            _ => CellAlloc {
                local_next: Some(me as u32 * mem.pool_quota),
                local_end: (me as u32 + 1) * mem.pool_quota,
            },
        };
        // Update-Tree: (root, centre, half) fixed after the first build.
        let mut fixed: Option<(u32, [f64; 3], f64)> = None;
        p.start_timing();

        for _step in 0..params.steps {
            p.set_phase(phase::TREE_BUILD);
            let incremental = matches!(version, BarnesVersion::UpdateTree) && fixed.is_some();
            if !incremental && !matches!(version, BarnesVersion::UpdateTree) {
                // Rebuild algorithms: fresh pool each step.
                alloc = match version {
                    BarnesVersion::SharedTree => CellAlloc {
                        local_next: None,
                        local_end: 0,
                    },
                    _ => CellAlloc {
                        local_next: Some(me as u32 * mem.pool_quota),
                        local_end: (me as u32 + 1) * mem.pool_quota,
                    },
                };
            }
            // --- Bounding box reduction (skipped by incremental steps) ---
            let (center, half);
            if !incremental {
                if me == 0 {
                    for d in 0..3u64 {
                        p.write_f64(mem.bbox + 8 * d, f64::INFINITY);
                        p.write_f64(mem.bbox + 24 + 8 * d, f64::NEG_INFINITY);
                    }
                    // Reset global pool / root for the new tree.
                    p.write_u32(mem.pool_next, 0);
                    p.write_u32(mem.root, u32::MAX);
                }
                p.barrier(0);
                let mut lo = [f64::INFINITY; 3];
                let mut hi = [f64::NEG_INFINITY; 3];
                for i in my_lo..my_hi {
                    let pos = mem.body_pos(p, i);
                    for d in 0..3 {
                        lo[d] = lo[d].min(pos[d]);
                        hi[d] = hi[d].max(pos[d]);
                    }
                    p.work(6);
                }
                p.lock(LOCK_BBOX);
                for d in 0..3u64 {
                    let gl = p.read_f64(mem.bbox + 8 * d);
                    let gh = p.read_f64(mem.bbox + 24 + 8 * d);
                    p.write_f64(mem.bbox + 8 * d, gl.min(lo[d as usize]));
                    p.write_f64(mem.bbox + 24 + 8 * d, gh.max(hi[d as usize]));
                }
                p.unlock(LOCK_BBOX);
                p.barrier(1);
                let mut glo = [0.0f64; 3];
                let mut ghi = [0.0f64; 3];
                for d in 0..3usize {
                    glo[d] = p.read_f64(mem.bbox + 8 * d as u64);
                    ghi[d] = p.read_f64(mem.bbox + 24 + 8 * d as u64);
                }
                center = [
                    (glo[0] + ghi[0]) / 2.0,
                    (glo[1] + ghi[1]) / 2.0,
                    (glo[2] + ghi[2]) / 2.0,
                ];
                let mut h = 0.0f64;
                for d in 0..3 {
                    h = h.max((ghi[d] - glo[d]) / 2.0);
                }
                // Update-Tree keeps the root cube across steps: pad it so
                // bodies stay inside for the whole run.
                half = if matches!(version, BarnesVersion::UpdateTree) {
                    h * 1.5 + 1e-9
                } else {
                    h * 1.001 + 1e-9
                };
            } else {
                let (_, c, hf) = fixed.unwrap();
                center = c;
                half = hf;
            }

            // --- Tree build ---
            let root = match version {
                BarnesVersion::SharedTree | BarnesVersion::LocalHeaps => {
                    // Processor 0 creates the root; everyone inserts with
                    // cell locking.
                    if me == 0 {
                        let r = alloc.alloc(p, &mem);
                        p.write_u32(mem.root, r);
                    }
                    p.barrier(2);
                    let root = p.read_u32(mem.root);
                    for i in my_lo..my_hi {
                        let pos = mem.body_pos(p, i);
                        insert(
                            p, &mem, &mut alloc, nb, i, pos, root, center, half, true, false,
                        );
                    }
                    p.barrier(3);
                    root
                }
                BarnesVersion::UpdateTree => {
                    if !incremental {
                        // First step: build like LocalHeaps, with tracking.
                        if me == 0 {
                            let r = alloc.alloc(p, &mem);
                            mem.set_cell_bounds(p, r, &center, half);
                            p.write_u32(mem.root, r);
                        }
                        p.barrier(2);
                        let root = p.read_u32(mem.root);
                        for i in my_lo..my_hi {
                            let pos = mem.body_pos(p, i);
                            insert(
                                p, &mem, &mut alloc, nb, i, pos, root, center, half, true, true,
                            );
                        }
                        p.barrier(3);
                        fixed = Some((root, center, half));
                        root
                    } else {
                        // Incremental step, in two phases so that one
                        // processor's re-insertion can never displace a
                        // body another processor is still about to remove:
                        // (1) everyone removes its moved bodies; barrier;
                        // (2) everyone re-inserts them.
                        let (root, _, _) = fixed.unwrap();
                        let mut moved = Vec::new();
                        for i in my_lo..my_hi {
                            let pos = mem.body_pos(p, i);
                            let bp = p.load(mem.bparent + i as u64 * 4, 4) as u32;
                            let (cell, oct) = (bp / 8, (bp % 8) as usize);
                            let (cc, ch) = mem.cell_bounds(p, cell);
                            p.work(8);
                            let scc = sub_center(&cc, ch, oct);
                            let sh = ch / 2.0;
                            let inside = (0..3).all(|d| (pos[d] - scc[d]).abs() <= sh);
                            if inside {
                                continue;
                            }
                            p.lock(LOCK_CELL_BASE + cell);
                            debug_assert_eq!(dec(mem.child(p, cell, oct), nb), Ref::Body(i));
                            mem.set_child(p, cell, oct, EMPTY);
                            p.unlock(LOCK_CELL_BASE + cell);
                            moved.push((i, pos));
                        }
                        p.barrier(2);
                        for (i, pos) in moved {
                            insert(
                                p, &mem, &mut alloc, nb, i, pos, root, center, half, true, true,
                            );
                        }
                        p.barrier(3);
                        root
                    }
                }
                BarnesVersion::Partree => {
                    // Lock-free local tree over my bodies, then merge.
                    if me == 0 {
                        let r = alloc.alloc(p, &mem);
                        p.write_u32(mem.root, r);
                    }
                    let lroot = alloc.alloc(p, &mem);
                    for i in my_lo..my_hi {
                        let pos = mem.body_pos(p, i);
                        insert(
                            p, &mem, &mut alloc, nb, i, pos, lroot, center, half, false, false,
                        );
                    }
                    p.barrier(2); // local trees done; root published
                    let root = p.read_u32(mem.root);
                    merge(p, &mem, &mut alloc, nb, root, lroot, center, half);
                    p.barrier(3);
                    root
                }
                BarnesVersion::Spatial => {
                    // Two-level skeleton: root + 8 children; 64 sub-octants
                    // are built lock-free by their owners.
                    if me == 0 {
                        let r = alloc.alloc(p, &mem);
                        for oct in 0..8 {
                            let c = alloc.alloc(p, &mem);
                            mem.set_child(p, r, oct, enc(Ref::Cell(c), nb));
                        }
                        p.write_u32(mem.root, r);
                    }
                    p.barrier(2);
                    let root = p.read_u32(mem.root);
                    // Sub-octant so = o1*8 + o2 is owned by proc so % np.
                    // One scan over all bodies; insert those in my
                    // sub-octants into their (lock-free) subtrees.
                    let mut sub_root = vec![u32::MAX; 64];
                    for i in 0..nb {
                        let pos = mem.body_pos(p, i);
                        p.work(6);
                        let o1 = octant(&center, &pos);
                        let c1 = sub_center(&center, half, o1);
                        let o2 = octant(&c1, &pos);
                        let so = o1 * 8 + o2;
                        if so % np != me {
                            continue;
                        }
                        let c2 = sub_center(&c1, half / 2.0, o2);
                        if sub_root[so] == u32::MAX {
                            sub_root[so] = alloc.alloc(p, &mem);
                        }
                        insert(
                            p,
                            &mem,
                            &mut alloc,
                            nb,
                            i,
                            pos,
                            sub_root[so],
                            c2,
                            half / 4.0,
                            false,
                            false,
                        );
                    }
                    // Link my subtrees into the skeleton (disjoint slots).
                    for (so, &local_root) in sub_root.iter().enumerate() {
                        if local_root != u32::MAX {
                            if let Ref::Cell(l1c) = dec(mem.child(p, root, so / 8), nb) {
                                mem.set_child(p, l1c, so % 8, enc(Ref::Cell(local_root), nb));
                            }
                        }
                    }
                    p.barrier(3);
                    root
                }
            };

            // --- Centre-of-mass pass (lock-free) ---
            // Level-2 subtrees are distributed (o1*8+o2 mod P); processor 0
            // folds the top two levels afterwards. This is the SPLASH-style
            // separate cofm pass: no locks, each cell written once.
            for o1 in 0..8usize {
                if let Ref::Cell(c1) = dec(mem.child(p, root, o1), nb) {
                    for o2 in 0..8usize {
                        if (o1 * 8 + o2) % np == me {
                            let ch = dec(mem.child(p, c1, o2), nb);
                            com_subtree(p, &mem, nb, ch);
                        }
                    }
                }
            }
            p.barrier(7);
            if me == 0 {
                let mut rm = 0.0f64;
                let mut rmom = [0.0f64; 3];
                for o1 in 0..8usize {
                    match dec(mem.child(p, root, o1), nb) {
                        Ref::Cell(c1) => {
                            let mut m1 = 0.0f64;
                            let mut mom1 = [0.0f64; 3];
                            for o2 in 0..8usize {
                                match dec(mem.child(p, c1, o2), nb) {
                                    Ref::Cell(sc) => {
                                        m1 += mem.cell_mass(p, sc);
                                        for d in 0..3 {
                                            mom1[d] += mem.cell_mom(p, sc, d as u64);
                                        }
                                    }
                                    Ref::Body(j) => {
                                        let mj = mem.body_f64(p, j, B_MASS);
                                        let pj = mem.body_pos(p, j);
                                        m1 += mj;
                                        for d in 0..3 {
                                            mom1[d] += mj * pj[d];
                                        }
                                    }
                                    Ref::Empty => {}
                                }
                                p.work(6);
                            }
                            mem.set_cell_mass(p, c1, m1);
                            for d in 0..3 {
                                mem.set_cell_mom(p, c1, d as u64, mom1[d]);
                            }
                            rm += m1;
                            for d in 0..3 {
                                rmom[d] += mom1[d];
                            }
                        }
                        Ref::Body(j) => {
                            let mj = mem.body_f64(p, j, B_MASS);
                            let pj = mem.body_pos(p, j);
                            rm += mj;
                            for d in 0..3 {
                                rmom[d] += mj * pj[d];
                            }
                        }
                        Ref::Empty => {}
                    }
                }
                mem.set_cell_mass(p, root, rm);
                for d in 0..3 {
                    mem.set_cell_mom(p, root, d as u64, rmom[d]);
                }
            }
            p.barrier(8);

            // --- Force computation ---
            p.set_phase(phase::FORCE);
            for i in my_lo..my_hi {
                let pos = mem.body_pos(p, i);
                let acc = force_on(p, &mem, nb, i, pos, root, center, half, params.theta);
                for d in 0..3u64 {
                    mem.set_body_f64(p, i, B_ACC + 8 * d, acc[d as usize]);
                }
            }
            p.barrier(5);

            // --- Update ---
            p.set_phase(phase::UPDATE);
            for i in my_lo..my_hi {
                for d in 0..3u64 {
                    let a = mem.body_f64(p, i, B_ACC + 8 * d);
                    let v = mem.body_f64(p, i, B_VEL + 8 * d) + a * params.dt;
                    mem.set_body_f64(p, i, B_VEL + 8 * d, v);
                    let x = mem.body_f64(p, i, B_POS + 8 * d) + v * params.dt;
                    mem.set_body_f64(p, i, B_POS + 8 * d, x);
                    p.work(4);
                }
            }
            p.barrier(6);
        }

        p.stop_timing();
        if me == 0 {
            let mut out = Vec::with_capacity(n * 6);
            for i in 0..nb {
                for d in 0..3u64 {
                    out.push(mem.body_f64(p, i, B_POS + 8 * d));
                }
                for d in 0..3u64 {
                    out.push(mem.body_f64(p, i, B_VEL + 8 * d));
                }
            }
            *result.lock().unwrap() = out;
        }
    });

    let out = result.into_inner().unwrap();
    let want = if version == BarnesVersion::UpdateTree {
        reference_update(params)
    } else {
        reference(params)
    };
    assert_eq!(out.len(), want.len());
    let mut worst = 0.0f64;
    for (g, w) in out.iter().zip(&want) {
        let e = (g - w).abs() / (1.0 + w.abs());
        worst = worst.max(e);
    }
    assert!(
        worst < 1e-6,
        "Barnes diverged from reference: worst rel err {worst}"
    );
    AppResult {
        stats,
        checksum: crate::common::checksum_f64s(out.into_iter()),
    }
}

/// Run Barnes at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: BarnesVersion) -> AppResult {
    run_params(platform, nprocs, &BarnesParams::at(scale), version)
}

/// Run Barnes at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: BarnesVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &BarnesParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BarnesParams {
        BarnesParams {
            n: 64,
            steps: 2,
            theta: 0.9,
            dt: 0.025,
            seed: 42,
        }
    }

    #[test]
    fn reference_conserves_reasonable_state() {
        let r = reference(&tiny());
        assert_eq!(r.len(), 64 * 6);
        assert!(r.iter().all(|v| v.is_finite()));
        // Bodies should stay roughly bounded for small dt and 2 steps.
        assert!(r.iter().take(3).all(|v| v.abs() < 100.0));
    }

    #[test]
    fn all_versions_match_reference_on_svm() {
        for v in [
            BarnesVersion::SharedTree,
            BarnesVersion::LocalHeaps,
            BarnesVersion::UpdateTree,
            BarnesVersion::Partree,
            BarnesVersion::Spatial,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), v);
            assert!(r.stats.total_cycles() > 0, "{v:?}");
        }
    }

    #[test]
    fn versions_work_on_all_platforms() {
        for pf in [Platform::Dsm, Platform::Smp] {
            let r = run_params(pf, 4, &tiny(), BarnesVersion::SharedTree);
            assert!(r.stats.total_cycles() > 0);
        }
    }

    #[test]
    fn uniprocessor_works() {
        let r = run_params(Platform::Svm, 1, &tiny(), BarnesVersion::SharedTree);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn shared_tree_uses_many_more_locks_than_spatial() {
        let a = run_params(Platform::Svm, 4, &tiny(), BarnesVersion::SharedTree);
        let b = run_params(Platform::Svm, 4, &tiny(), BarnesVersion::Spatial);
        let la = a.stats.sum_counters().lock_acquires;
        let lb = b.stats.sum_counters().lock_acquires;
        assert!(
            la > 5 * lb,
            "expected lock reduction: shared={la} spatial={lb}"
        );
    }

    #[test]
    fn update_tree_moves_fewer_bodies_than_it_keeps() {
        // With a small dt, most bodies stay inside their leaf cube: the
        // incremental steps must use far fewer lock acquires than a full
        // rebuild of the same problem.
        let params = tiny();
        let full = run_params(Platform::Svm, 4, &params, BarnesVersion::LocalHeaps);
        let upd = run_params(Platform::Svm, 4, &params, BarnesVersion::UpdateTree);
        let lf = full.stats.sum_counters().lock_acquires;
        let lu = upd.stats.sum_counters().lock_acquires;
        assert!(
            lu < lf,
            "update-tree should lock less: update={lu} full={lf}"
        );
    }

    #[test]
    fn plummer_distribution_is_centered_and_bounded() {
        let params = BarnesParams {
            n: 512,
            steps: 1,
            theta: 0.8,
            dt: 0.01,
            seed: 9,
        };
        let bodies = generate_bodies(&params);
        assert_eq!(bodies.len(), 512);
        let mut com = [0.0f64; 3];
        for b in &bodies {
            assert!(b[..3].iter().all(|x| x.abs() <= 8.0), "radius cutoff");
            for d in 0..3 {
                com[d] += b[d] / 512.0;
            }
        }
        // Center of mass near the origin for a symmetric distribution.
        assert!(com.iter().all(|c| c.abs() < 0.5), "{com:?}");
        // Total mass normalized.
        let m: f64 = bodies.iter().map(|b| b[6]).sum();
        assert!((m - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_attracts() {
        // Two bodies accelerate toward each other.
        let mut acc = [0.0f64; 3];
        interact(&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], 1.0, &mut acc);
        assert!(acc[0] > 0.0 && acc[1] == 0.0 && acc[2] == 0.0);
        // Closer pairs pull harder (softened).
        let mut near = [0.0f64; 3];
        interact(&[0.0, 0.0, 0.0], &[0.5, 0.0, 0.0], 1.0, &mut near);
        assert!(near[0] > acc[0]);
    }

    #[test]
    fn reference_update_matches_reference_on_step_one() {
        // With a single step no body has moved yet; the only difference is
        // the padded root cube (x1.5 vs x1.001), which shifts the theta
        // approximation slightly — results agree to approximation accuracy.
        let params = BarnesParams {
            n: 128,
            steps: 1,
            theta: 0.9,
            dt: 0.025,
            seed: 42,
        };
        let a = reference(&params);
        let b = reference_update(&params);
        // Different root cubes mean slightly different theta pruning; the
        // two approximations must agree statistically, not bitwise.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (x, y) in a.iter().zip(&b) {
            num += (x - y) * (x - y);
            den += y * y + 1e-12;
        }
        let rms = (num / den).sqrt();
        assert!(rms < 0.02, "update-tree physics diverged: rms {rms}");
    }

    #[test]
    fn octant_roundtrip() {
        let c = [0.0, 0.0, 0.0];
        for oct in 0..8 {
            let sc = sub_center(&c, 1.0, oct);
            assert_eq!(octant(&c, &sc), oct);
        }
    }

    #[test]
    fn ref_encoding_roundtrip() {
        let n = 100;
        for r in [
            Ref::Empty,
            Ref::Body(0),
            Ref::Body(99),
            Ref::Cell(0),
            Ref::Cell(500),
        ] {
            assert_eq!(dec(enc(r, n), n), r);
        }
    }
}
