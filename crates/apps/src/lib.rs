//! # apps — the paper's seven applications, in every restructured version
//!
//! Six SPLASH/SPLASH-2 codes (LU, Ocean, Volrend, Raytrace, Barnes, Radix)
//! plus the shear-warp volume renderer, re-implemented against the
//! `sim-core` shared-address-space API. Each application module provides:
//!
//! * a deterministic workload generator,
//! * a plain-Rust **sequential reference** used for correctness checking,
//! * one parallel body per **version** — the paper's `Orig`, `P/A`
//!   (padding/alignment), `DS` (data-structure reorganization) and `Alg`
//!   (algorithmic change) optimization classes,
//! * a verifier comparing parallel output against the reference.
//!
//! The applications really compute their results *through* the platform's
//! coherence machinery (page diffs under SVM), so a passing verifier
//! simultaneously validates the app and the protocol.

// Indexed loops over fixed coordinate dimensions are clearer than
// iterator adaptors in this numeric code.
#![allow(clippy::needless_range_loop)]
pub mod barnes;
pub mod common;
pub mod kvstore;
pub mod lu;
pub mod ocean;
pub mod radix;
pub mod raytrace;
pub mod shearwarp;
pub mod volrend;

pub use common::{AppResult, Bcast, Platform, Scale};

use sim_core::{RunConfig, RunStats};

/// Identifies one application for generic harness code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum App {
    /// Blocked dense LU factorization.
    Lu,
    /// Regular-grid nearest-neighbour solver (Ocean).
    Ocean,
    /// Ray-casting volume renderer (Volrend).
    Volrend,
    /// Shear-warp volume renderer.
    ShearWarp,
    /// Recursive ray tracer.
    Raytrace,
    /// Hierarchical N-body (Barnes-Hut).
    Barnes,
    /// Radix sort.
    Radix,
    /// Sharded key-value store serving Zipf request traffic.
    Kv,
}

impl App {
    /// All applications in the paper's presentation order, followed by the
    /// repo's server-shaped extension workload.
    pub const ALL: [App; 8] = [
        App::Lu,
        App::Ocean,
        App::Volrend,
        App::ShearWarp,
        App::Raytrace,
        App::Barnes,
        App::Radix,
        App::Kv,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Lu => "LU",
            App::Ocean => "Ocean",
            App::Volrend => "Volrend",
            App::ShearWarp => "Shear-Warp",
            App::Raytrace => "Raytrace",
            App::Barnes => "Barnes",
            App::Radix => "Radix",
            App::Kv => "KV",
        }
    }
}

/// The paper's optimization classes (Figure 16's x-axis groups).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptClass {
    /// The original program.
    Orig,
    /// Padding and alignment.
    PadAlign,
    /// Data-structure reorganization.
    DataStruct,
    /// Algorithmic change.
    Algorithm,
}

impl OptClass {
    /// All classes in order of increasing effort.
    pub const ALL: [OptClass; 4] = [
        OptClass::Orig,
        OptClass::PadAlign,
        OptClass::DataStruct,
        OptClass::Algorithm,
    ];

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            OptClass::Orig => "Orig",
            OptClass::PadAlign => "P/A",
            OptClass::DataStruct => "DS",
            OptClass::Algorithm => "Alg",
        }
    }
}

/// A fully-specified experiment: application + optimization class.
///
/// `run` executes it on `platform` with `nprocs` processors at `scale` and
/// returns verified statistics. Panics if the application's output does not
/// match its sequential reference — a correctness failure is never silent.
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    /// Which application.
    pub app: App,
    /// Which optimization class to run.
    pub class: OptClass,
}

impl AppSpec {
    /// Display label, `App/Class` — used to tag race reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.app.name(), self.class.label())
    }

    /// Run this experiment and return verified run statistics.
    pub fn run(&self, platform: Platform, nprocs: usize, scale: Scale) -> RunStats {
        self.run_cfg(platform, nprocs, scale, RunConfig::new(nprocs))
    }

    /// Like [`AppSpec::run`] with an explicit scheduler configuration —
    /// e.g. `RunConfig::new(n).with_race_detection()` to assert the run is
    /// data-race-free. An empty `cfg.label` defaults to [`AppSpec::label`].
    pub fn run_cfg(
        &self,
        platform: Platform,
        nprocs: usize,
        scale: Scale,
        mut cfg: RunConfig,
    ) -> RunStats {
        if cfg.label.is_empty() {
            cfg.label = self.label();
        }
        match self.app {
            App::Lu => lu::run_cfg(platform, nprocs, scale, lu::version_for(self.class), cfg).stats,
            App::Ocean => {
                ocean::run_cfg(platform, nprocs, scale, ocean::version_for(self.class), cfg).stats
            }
            App::Volrend => {
                volrend::run_cfg(
                    platform,
                    nprocs,
                    scale,
                    volrend::version_for(self.class),
                    cfg,
                )
                .stats
            }
            App::ShearWarp => {
                shearwarp::run_cfg(
                    platform,
                    nprocs,
                    scale,
                    shearwarp::version_for(self.class),
                    cfg,
                )
                .stats
            }
            App::Raytrace => {
                raytrace::run_cfg(
                    platform,
                    nprocs,
                    scale,
                    raytrace::version_for(self.class),
                    cfg,
                )
                .stats
            }
            App::Barnes => {
                barnes::run_cfg(
                    platform,
                    nprocs,
                    scale,
                    barnes::version_for(self.class),
                    cfg,
                )
                .stats
            }
            App::Radix => {
                radix::run_cfg(platform, nprocs, scale, radix::version_for(self.class), cfg).stats
            }
            App::Kv => {
                kvstore::run_cfg(
                    platform,
                    nprocs,
                    scale,
                    kvstore::version_for(self.class),
                    cfg,
                )
                .stats
            }
        }
    }
}
