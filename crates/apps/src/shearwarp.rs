//! Shear-Warp — two-phase volume renderer (Lacroute factorization).
//!
//! The viewing transformation is factored into a *shear* (composite the
//! run-length-encoded volume slice by slice, with per-slice integer shifts,
//! into a distorted intermediate image) and a *warp* (resample the
//! intermediate image into the final image). Compositing walks RLE runs —
//! coarse-grained reads — and writes intermediate scanlines exclusively;
//! the warp is a per-row remap. (We use integer shears and a per-row
//! horizontal warp: a simplification of the paper's general affine warp
//! that preserves exactly the communication structure under study — who
//! writes which scanlines, and which phase reads whose data. See
//! DESIGN.md §1.)
//!
//! ## Versions (paper §4.2.2)
//!
//! * [`ShearWarpVersion::Orig`] — intermediate scanlines dealt to
//!   processors in small interleaved chunks (load balance); the warp uses a
//!   *different* partition (contiguous blocks of final rows). Between the
//!   phases the intermediate image must be redistributed — most of what a
//!   processor warps was composited by others — behind an expensive
//!   barrier, with heavy contention.
//! * [`ShearWarpVersion::PadAlign`] — intermediate scanlines padded to page
//!   boundaries: kills scanline-level false sharing, worth ~10% (paper).
//! * [`ShearWarpVersion::Repartitioned`] — the algorithmic change:
//!   *contiguous* blocks of scanlines, sized by a per-scanline cost profile
//!   derived from the RLE structure, and the *same* partition for both
//!   phases. A processor warps exactly the rows it composited, so the
//!   inter-phase barrier disappears and redistribution drops to zero
//!   (paper: 3.47 → 9.21).

use crate::common::{AppResult, Bcast, Platform, Scale};
use crate::volrend::generate_volume;
use crate::OptClass;
use sim_core::{run as sim_run, Placement, RunConfig, PAGE_SIZE};

/// Phase indices.
pub mod phase {
    /// RLE compositing into the intermediate image.
    pub const COMPOSITE: usize = 0;
    /// Warping the intermediate image into the final image.
    pub const WARP: usize = 1;
    /// Names, indexed by phase id (registered on the run's `RunConfig` so
    /// figures and traces print "composite" instead of "phase 0").
    pub const NAMES: [&str; 2] = ["composite", "warp"];
}

/// Shear-Warp problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShearWarpParams {
    /// Volume edge (voxels).
    pub v: usize,
    /// Frames rendered in the timed region.
    pub frames: usize,
    /// Early-termination opacity threshold.
    pub term: f32,
    /// Workload seed (volume generation).
    pub seed: u64,
}

impl ShearWarpParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                v: 24,
                frames: 2,
                term: 0.95,
                seed: 11,
            },
            Scale::Default => Self {
                v: 64,
                frames: 3,
                term: 0.95,
                seed: 11,
            },
            Scale::Paper => Self {
                v: 128,
                frames: 4,
                term: 0.95,
                seed: 11,
            },
        }
    }
}

/// The versions of Shear-Warp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShearWarpVersion {
    /// Interleaved scanline chunks; block-partitioned warp; barrier between
    /// phases.
    Orig,
    /// Orig plus page-padded intermediate scanlines.
    PadAlign,
    /// Profile-balanced contiguous blocks shared by both phases; no
    /// inter-phase barrier.
    Repartitioned,
}

/// Map the paper's optimization class to a Shear-Warp version.
pub fn version_for(class: OptClass) -> ShearWarpVersion {
    match class {
        OptClass::Orig => ShearWarpVersion::Orig,
        OptClass::PadAlign => ShearWarpVersion::PadAlign,
        // The paper used no data-structure reorganization for Shear-Warp.
        OptClass::DataStruct => ShearWarpVersion::PadAlign,
        OptClass::Algorithm => ShearWarpVersion::Repartitioned,
    }
}

const SHX: f64 = 0.30;
const SHY: f64 = 0.20;

/// Derived geometry: margins and intermediate-image dimensions.
#[derive(Clone, Copy, Debug)]
pub struct Geom {
    /// Volume edge.
    pub v: usize,
    /// Horizontal margin.
    pub mx: usize,
    /// Vertical margin.
    pub my: usize,
    /// Intermediate/final image width.
    pub ix: usize,
    /// Intermediate/final image height.
    pub iy: usize,
}

impl Geom {
    /// Geometry for a volume edge.
    pub fn new(v: usize) -> Self {
        let mx = (SHX * v as f64 / 2.0).ceil() as usize + 1;
        let my = (SHY * v as f64 / 2.0).ceil() as usize + 1;
        Self {
            v,
            mx,
            my,
            ix: v + 2 * mx,
            iy: v + 2 * my,
        }
    }

    /// Per-slice integer shear shifts.
    pub fn shift(&self, z: usize) -> (i64, i64) {
        let zc = z as f64 - self.v as f64 / 2.0;
        ((SHX * zc).round() as i64, (SHY * zc).round() as i64)
    }

    /// Per-row warp shift for the final image.
    pub fn warp_shift(&self, y: usize) -> i64 {
        (0.25 * (y as f64 - self.iy as f64 / 2.0)).round() as i64
    }
}

/// Run-length encoding of a volume: per (slice, scanline) a list of
/// (skip, literal-length) pairs plus the packed opaque voxel bytes.
pub struct Rle {
    /// (skip << 16) | len, per run.
    pub runs: Vec<u32>,
    /// Per (z*v + y): (first run index, run count, first voxel index).
    pub index: Vec<(u32, u32, u32)>,
    /// Packed non-transparent voxel values.
    pub vox: Vec<u8>,
}

/// Build the RLE from a raw volume.
pub fn encode(vol: &[u8], v: usize) -> Rle {
    let mut runs = Vec::new();
    let mut index = Vec::with_capacity(v * v);
    let mut vox = Vec::new();
    for z in 0..v {
        for y in 0..v {
            let first_run = runs.len() as u32;
            let first_vox = vox.len() as u32;
            let row = &vol[(z * v + y) * v..(z * v + y) * v + v];
            let mut x = 0usize;
            while x < v {
                let skip_start = x;
                while x < v && row[x] == 0 {
                    x += 1;
                }
                let skip = x - skip_start;
                let lit_start = x;
                while x < v && row[x] != 0 {
                    x += 1;
                }
                let len = x - lit_start;
                if skip > 0 || len > 0 {
                    runs.push(((skip as u32) << 16) | len as u32);
                    vox.extend_from_slice(&row[lit_start..lit_start + len]);
                }
            }
            index.push((first_run, runs.len() as u32 - first_run, first_vox));
        }
    }
    Rle { runs, index, vox }
}

#[inline]
fn transfer(d: u8) -> (f32, f32) {
    let x = d as f32 / 255.0;
    (x * x * 0.4, x)
}

/// Sequential reference: the final image, row-major f32.
pub fn reference(params: &ShearWarpParams) -> Vec<f32> {
    let g = Geom::new(params.v);
    let vol = generate_volume(&crate::volrend::VolrendParams {
        v: params.v,
        frames: 1,
        term: params.term,
        seed: params.seed,
    });
    let rle = encode(&vol, params.v);
    let mut inter = vec![(0.0f32, 0.0f32); g.ix * g.iy];
    for u in 0..g.iy {
        for z in 0..params.v {
            let (sx, sy) = g.shift(z);
            let yv = u as i64 - g.my as i64 - sy;
            if yv < 0 || yv >= params.v as i64 {
                continue;
            }
            let (r0, rc, v0) = rle.index[z * params.v + yv as usize];
            let mut x = 0i64;
            let mut vi = v0 as usize;
            for r in r0..r0 + rc {
                let run = rle.runs[r as usize];
                x += (run >> 16) as i64;
                for _ in 0..(run & 0xffff) {
                    let d = rle.vox[vi];
                    vi += 1;
                    let xi = x + g.mx as i64 + sx;
                    x += 1;
                    let px = &mut inter[u * g.ix + xi as usize];
                    if px.1 > params.term {
                        continue;
                    }
                    let (op, it) = transfer(d);
                    let w = (1.0 - px.1) * op;
                    px.0 += w * it;
                    px.1 += w;
                }
            }
        }
    }
    // Warp.
    let mut fin = vec![0.0f32; g.ix * g.iy];
    for y in 0..g.iy {
        let ws = g.warp_shift(y);
        for x in 0..g.ix {
            let sxp = x as i64 - ws;
            if sxp >= 0 && (sxp as usize) < g.ix {
                fin[y * g.ix + x] = inter[y * g.ix + sxp as usize].0;
            }
        }
    }
    fin
}

/// Scanline → owner for the composite phase.
fn scan_owner(version: ShearWarpVersion, bounds: &[usize], nprocs: usize, u: usize) -> usize {
    match version {
        ShearWarpVersion::Repartitioned => {
            // Contiguous cost-balanced blocks: bounds[p] .. bounds[p+1].
            match bounds.binary_search(&u) {
                Ok(p) => p.min(nprocs - 1),
                Err(p) => p - 1,
            }
        }
        _ => (u / 2) % nprocs, // interleaved chunks of 2 scanlines
    }
}

/// Run Shear-Warp; panics unless the final image matches the reference
/// bit-for-bit.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &ShearWarpParams,
    version: ShearWarpVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &ShearWarpParams,
    version: ShearWarpVersion,
    cfg: RunConfig,
) -> AppResult {
    let cfg = if cfg.phase_names.is_empty() {
        cfg.with_phase_names(phase::NAMES)
    } else {
        cfg
    };
    let g = Geom::new(params.v);
    let v = params.v;
    let vol = generate_volume(&crate::volrend::VolrendParams {
        v,
        frames: 1,
        term: params.term,
        seed: params.seed,
    });
    let rle = encode(&vol, v);
    // Cost profile: opaque voxels landing on each intermediate scanline.
    let mut cost = vec![0u64; g.iy];
    for z in 0..v {
        let (_, sy) = g.shift(z);
        for y in 0..v {
            let (r0, rc, _) = rle.index[z * v + y];
            let lit: u64 = (r0..r0 + rc)
                .map(|r| (rle.runs[r as usize] & 0xffff) as u64)
                .sum();
            let u = (y as i64 + g.my as i64 + sy) as usize;
            cost[u] += lit;
        }
    }
    // Cost-balanced contiguous partition bounds (Repartitioned).
    let total: u64 = cost.iter().sum();
    let mut bounds = vec![0usize; nprocs + 1];
    bounds[nprocs] = g.iy;
    {
        let mut acc = 0u64;
        let mut p = 1;
        for (u, c) in cost.iter().enumerate() {
            acc += c;
            while p < nprocs && acc * nprocs as u64 >= total * p as u64 && bounds[p] == 0 {
                bounds[p] = u + 1;
                p += 1;
            }
        }
        for p in 1..nprocs {
            if bounds[p] == 0 {
                bounds[p] = bounds[p - 1].max(1);
            }
        }
    }

    // Intermediate scanline stride in bytes (8 per pixel: colour + alpha).
    let row_bytes = (g.ix * 8) as u64;
    let row_stride = if matches!(version, ShearWarpVersion::Orig) {
        row_bytes
    } else {
        // Scanlines padded to the platform's coherence grain.
        let grain = platform.grain();
        row_bytes.div_ceil(grain) * grain
    };
    let layout_bc: Bcast<(u64, u64, u64, u64, u64, u64)> = Bcast::new();
    let result = std::sync::Mutex::new(Vec::new());

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        let np = p.nprocs();
        if me == 0 {
            // Read-only RLE structures.
            let runs_a = p.alloc_shared(
                (rle.runs.len().max(1) * 4) as u64,
                PAGE_SIZE,
                Placement::RoundRobin,
            );
            p.write_u32_slice(runs_a, 4, &rle.runs);
            let index_a = p.alloc_shared(
                (rle.index.len() * 12) as u64,
                PAGE_SIZE,
                Placement::RoundRobin,
            );
            // One strided bulk store per field of the (r0, rc, v0) triples.
            for (off, field) in [
                (0u64, rle.index.iter().map(|t| t.0).collect::<Vec<u32>>()),
                (4, rle.index.iter().map(|t| t.1).collect()),
                (8, rle.index.iter().map(|t| t.2).collect()),
            ] {
                p.write_u32_slice(index_a + off, 12, &field);
            }
            let vox_a = p.alloc_shared(
                rle.vox.len().max(1) as u64,
                PAGE_SIZE,
                Placement::RoundRobin,
            );
            let mut vb = [0u64; 256];
            for (ci, ch) in rle.vox.chunks(256).enumerate() {
                for (s, &d) in vb.iter_mut().zip(ch) {
                    *s = d as u64;
                }
                p.store_slice(vox_a + (ci * 256) as u64, 1, 1, &vb[..ch.len()]);
            }
            // Intermediate and final images. FirstTouch + parallel init
            // homes scanlines at their composite-phase owners.
            let inter_a =
                p.alloc_shared(g.iy as u64 * row_stride, PAGE_SIZE, Placement::FirstTouch);
            let fin_a = p.alloc_shared((g.iy * g.ix * 4) as u64, PAGE_SIZE, Placement::FirstTouch);
            layout_bc.put((runs_a, index_a, vox_a, inter_a, fin_a, 0));
        }
        p.barrier(100);
        let (runs_a, index_a, vox_a, inter_a, fin_a, _) = layout_bc.get();
        let ipix = |u: usize, x: usize| inter_a + u as u64 * row_stride + (x * 8) as u64;
        // Bulk staging buffers (a literal run spans at most one volume edge).
        let mut vox_buf = vec![0u64; v];
        let mut alpha_buf = vec![0u64; v];
        let mut row_buf = vec![0u64; g.ix];

        // Untimed parallel init: zero my intermediate scanlines and final
        // rows (first touch).
        for u in 0..g.iy {
            if scan_owner(version, &bounds, np, u) == me {
                p.fill(ipix(u, 0), 4, 2 * g.ix as u64, 0);
            }
            // Final image: warp partition (contiguous blocks for Orig/P-A,
            // composite partition for Repartitioned).
            let warp_owner = if matches!(version, ShearWarpVersion::Repartitioned) {
                scan_owner(version, &bounds, np, u)
            } else {
                (u * np / g.iy).min(np - 1)
            };
            if warp_owner == me {
                p.fill(fin_a + (u * g.ix * 4) as u64, 4, g.ix as u64, 0);
            }
        }
        p.barrier(101);

        // One untimed warm-up frame (SPLASH-2 methodology): cold page
        // faults on the read-only RLE structures happen here, so the timed
        // region measures steady-state behaviour.
        for frame in 0..params.frames + 1 {
            if frame == 1 {
                p.start_timing();
            }
            // Clear my intermediate scanlines (each frame recomposites).
            p.set_phase(phase::COMPOSITE);
            for u in 0..g.iy {
                if scan_owner(version, &bounds, np, u) == me {
                    p.fill(ipix(u, 0), 4, 2 * g.ix as u64, 0);
                    p.work(2 * g.ix as u64);
                }
            }

            // --- Composite phase ---
            for u in 0..g.iy {
                if scan_owner(version, &bounds, np, u) != me {
                    continue;
                }
                for z in 0..v {
                    let (sx, sy) = g.shift(z);
                    let yv = u as i64 - g.my as i64 - sy;
                    if yv < 0 || yv >= v as i64 {
                        continue;
                    }
                    let ib = index_a + ((z * v + yv as usize) * 12) as u64;
                    let mut tri = [0u64; 3];
                    p.load_slice(ib, 4, 4, &mut tri);
                    let (r0, rc, v0) = (tri[0] as u32, tri[1] as u32, tri[2] as u32);
                    p.work(6);
                    let mut x = 0i64;
                    let mut vi = v0 as u64;
                    for r in r0..r0 + rc {
                        let run = p.load(runs_a + (r as u64) * 4, 4) as u32;
                        x += (run >> 16) as i64;
                        p.work(3);
                        let len = (run & 0xffff) as usize;
                        if len == 0 {
                            continue;
                        }
                        // A literal run touches `len` *distinct* pixels, so
                        // hoisting the voxel bytes and current alphas ahead
                        // of the run's read-modify-writes reads exactly what
                        // the per-voxel loop would.
                        let xi0 = (x + g.mx as i64 + sx) as usize;
                        p.load_slice(vox_a + vi, 1, 1, &mut vox_buf[..len]);
                        p.load_slice(ipix(u, xi0) + 4, 8, 4, &mut alpha_buf[..len]);
                        p.work_fused(4, len as u64);
                        for k in 0..len {
                            let a = f32::from_bits(alpha_buf[k] as u32);
                            if a > params.term {
                                continue;
                            }
                            let (op, it) = transfer(vox_buf[k] as u8);
                            let w = (1.0 - a) * op;
                            let xi = xi0 + k;
                            let c = f32::from_bits(p.load(ipix(u, xi), 4) as u32);
                            p.store(ipix(u, xi), 4, (c + w * it).to_bits() as u64);
                            p.store(ipix(u, xi) + 4, 4, (a + w).to_bits() as u64);
                            p.work(6);
                        }
                        vi += len as u64;
                        x += len as i64;
                    }
                }
            }
            // The original algorithm must redistribute the intermediate image
            // before warping; the repartitioned algorithm warps its own data.
            if !matches!(version, ShearWarpVersion::Repartitioned) {
                p.barrier(0);
            }

            // --- Warp phase ---
            p.set_phase(phase::WARP);
            for y in 0..g.iy {
                let warp_owner = if matches!(version, ShearWarpVersion::Repartitioned) {
                    scan_owner(version, &bounds, np, y)
                } else {
                    (y * np / g.iy).min(np - 1)
                };
                if warp_owner != me {
                    continue;
                }
                let ws = g.warp_shift(y);
                // Valid source pixels exist for x in [x0, x1); outside that
                // the final row gets zeros.
                let x0 = ws.clamp(0, g.ix as i64) as usize;
                let x1 = (g.ix as i64 + ws).clamp(0, g.ix as i64) as usize;
                row_buf.fill(0);
                if x1 > x0 {
                    p.load_slice(
                        ipix(y, (x0 as i64 - ws) as usize),
                        8,
                        4,
                        &mut row_buf[x0..x1],
                    );
                }
                p.store_slice(fin_a + (y * g.ix * 4) as u64, 4, 4, &row_buf);
                p.work_fused(3, g.ix as u64);
            }
            p.barrier(1);
        } // frames

        p.stop_timing();
        if me == 0 {
            let mut raw = vec![0u32; g.iy * g.ix];
            p.read_u32_slice(fin_a, 4, &mut raw);
            *result.lock().unwrap() = raw.iter().map(|&b| f32::from_bits(b)).collect();
        }
    });

    let out = result.into_inner().unwrap();
    let want = reference(params);
    assert_eq!(out.len(), want.len());
    for (i, (gt, w)) in out.iter().zip(&want).enumerate() {
        assert!(gt == w, "Shear-Warp pixel {i} differs: got {gt}, want {w}");
    }
    AppResult {
        stats,
        checksum: crate::common::checksum_f64s(out.iter().map(|&f| f as f64)),
    }
}

/// Run Shear-Warp at a scale preset.
pub fn run(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: ShearWarpVersion,
) -> AppResult {
    run_params(platform, nprocs, &ShearWarpParams::at(scale), version)
}

/// Run Shear-Warp at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: ShearWarpVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &ShearWarpParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShearWarpParams {
        ShearWarpParams {
            v: 16,
            frames: 2,
            term: 0.95,
            seed: 11,
        }
    }

    #[test]
    fn rle_round_trips() {
        let params = tiny();
        let vol = generate_volume(&crate::volrend::VolrendParams {
            v: params.v,
            frames: 1,
            term: params.term,
            seed: params.seed,
        });
        let rle = encode(&vol, params.v);
        // Decode and compare.
        for z in 0..params.v {
            for y in 0..params.v {
                let (r0, rc, v0) = rle.index[z * params.v + y];
                let mut row = vec![0u8; params.v];
                let mut x = 0usize;
                let mut vi = v0 as usize;
                for r in r0..r0 + rc {
                    let run = rle.runs[r as usize];
                    x += (run >> 16) as usize;
                    for _ in 0..(run & 0xffff) {
                        row[x] = rle.vox[vi];
                        x += 1;
                        vi += 1;
                    }
                }
                assert_eq!(
                    &row[..],
                    &vol[(z * params.v + y) * params.v..(z * params.v + y + 1) * params.v],
                    "scanline ({z},{y})"
                );
            }
        }
    }

    #[test]
    fn reference_image_is_nontrivial() {
        let img = reference(&tiny());
        assert!(img.iter().filter(|&&c| c > 0.0).count() > 20);
    }

    #[test]
    fn all_versions_match_reference_on_svm() {
        for ver in [
            ShearWarpVersion::Orig,
            ShearWarpVersion::PadAlign,
            ShearWarpVersion::Repartitioned,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), ver);
            assert!(r.stats.total_cycles() > 0, "{ver:?}");
        }
    }

    #[test]
    fn works_on_all_platforms() {
        let a = run_params(Platform::Svm, 2, &tiny(), ShearWarpVersion::Orig);
        let b = run_params(Platform::Dsm, 2, &tiny(), ShearWarpVersion::Repartitioned);
        let c = run_params(Platform::Smp, 2, &tiny(), ShearWarpVersion::PadAlign);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn uniprocessor_works() {
        let r = run_params(Platform::Svm, 1, &tiny(), ShearWarpVersion::Orig);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn cost_partition_covers_all_rows() {
        // Construct bounds like run_params does and check they tile 0..iy.
        let g = Geom::new(32);
        let nprocs = 4;
        let cost: Vec<u64> = (0..g.iy).map(|u| (u % 7) as u64 + 1).collect();
        let total: u64 = cost.iter().sum();
        let mut bounds = vec![0usize; nprocs + 1];
        bounds[nprocs] = g.iy;
        let mut acc = 0u64;
        let mut p = 1;
        for (u, c) in cost.iter().enumerate() {
            acc += c;
            while p < nprocs && acc * nprocs as u64 >= total * p as u64 && bounds[p] == 0 {
                bounds[p] = u + 1;
                p += 1;
            }
        }
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[nprocs], g.iy);
    }
}
