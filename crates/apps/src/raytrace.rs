//! Raytrace — recursive ray tracer (SPLASH-2 style).
//!
//! A procedural sphere-flake scene over a checkered ground plane, rendered
//! with shadow rays and specular reflection bounces. Tiles of pixels are
//! dealt round-robin into per-processor task queues with stealing; ray
//! behaviour is far less predictable than Volrend's, so load can still
//! become imbalanced.
//!
//! ## Versions (paper §4.2.3)
//!
//! * [`RaytraceVersion::Orig`] — SPLASH-2: global ray/primitive statistics
//!   counters protected by a lock, **taken once per ray**. Harmless on
//!   hardware coherence; on SVM the lock's protocol traffic and the page
//!   faults dilating the tiny critical section produce the paper's
//!   headline "speedup" of 0.5. Padding and data-structure classes were
//!   judged unhelpful/impractical by the paper, so `P/A` and `DS` map here.
//! * [`RaytraceVersion::NoStatsLock`] — statistics kept per-processor and
//!   merged once at the end: 0.5 → 11.05 in the paper.
//! * [`RaytraceVersion::SplitQueues`] — additionally split each processor's
//!   queue into a lock-free local part refilled in batches from a shared,
//!   steal-able part: 11.05 → 11.72 in the paper.

use crate::common::{AppResult, Bcast, Platform, Scale};
use crate::OptClass;
use sim_core::{run as sim_run, Placement, Proc, RunConfig, PAGE_SIZE};

/// Tile edge in pixels.
pub const TILE: usize = 4;
const MAX_DEPTH: u32 = 3;

/// Raytrace problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct RaytraceParams {
    /// Image edge (pixels).
    pub img: usize,
    /// Sphere-flake recursion depth (0 = one sphere).
    pub flake_depth: u32,
}

impl RaytraceParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                img: 16,
                flake_depth: 1,
            },
            Scale::Default => Self {
                img: 64,
                flake_depth: 3,
            },
            Scale::Paper => Self {
                img: 128,
                flake_depth: 3,
            },
        }
    }
}

/// The versions of Raytrace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaytraceVersion {
    /// Global statistics lock taken per ray.
    Orig,
    /// Statistics privatized; merged once at the end.
    NoStatsLock,
    /// Privatized statistics + split local/steal task queues.
    SplitQueues,
}

/// Map the paper's optimization class to a Raytrace version.
pub fn version_for(class: OptClass) -> RaytraceVersion {
    match class {
        OptClass::Orig | OptClass::PadAlign | OptClass::DataStruct => RaytraceVersion::Orig,
        OptClass::Algorithm => RaytraceVersion::SplitQueues,
    }
}

/// A sphere: center, radius, reflectivity, diffuse shade.
#[derive(Clone, Copy, Debug)]
pub struct Sphere {
    /// Center.
    pub c: [f64; 3],
    /// Radius.
    pub r: f64,
    /// Reflectivity in \[0,1\].
    pub refl: f64,
    /// Diffuse shade in \[0,1\].
    pub shade: f64,
}

/// Build the sphere-flake scene.
pub fn generate_scene(params: &RaytraceParams) -> Vec<Sphere> {
    let mut out = Vec::new();
    fn flake(out: &mut Vec<Sphere>, c: [f64; 3], r: f64, depth: u32) {
        out.push(Sphere {
            c,
            r,
            refl: 0.45,
            shade: 0.7,
        });
        if depth == 0 {
            return;
        }
        let d = r + r / 2.5;
        for (axis, sign) in [
            (0, 1.0),
            (0, -1.0),
            (1, 1.0),
            (2, 1.0),
            (2, -1.0),
            (1, -1.0),
        ] {
            let mut cc = c;
            cc[axis] += sign * d;
            flake(out, cc, r / 2.5, depth - 1);
        }
    }
    flake(&mut out, [0.0, 0.4, 0.0], 1.0, params.flake_depth);
    out
}

const LIGHT: [f64; 3] = [0.5773502691896258, 0.5773502691896258, -0.5773502691896258];
const PLANE_Y: f64 = -1.0;

fn dot(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn norm(a: &[f64; 3]) -> [f64; 3] {
    let l = dot(a, a).sqrt();
    [a[0] / l, a[1] / l, a[2] / l]
}

/// Abstract scene access so the same tracer serves the reference (plain
/// slice) and the parallel version (simulated shared memory with cost
/// accounting).
trait SceneAccess {
    fn nspheres(&mut self) -> usize;
    fn sphere(&mut self, i: usize) -> Sphere;
    fn count_ray(&mut self);
}

struct SliceScene<'a> {
    spheres: &'a [Sphere],
    rays: u64,
}

impl SceneAccess for SliceScene<'_> {
    fn nspheres(&mut self) -> usize {
        self.spheres.len()
    }
    fn sphere(&mut self, i: usize) -> Sphere {
        self.spheres[i]
    }
    fn count_ray(&mut self) {
        self.rays += 1;
    }
}

/// Nearest intersection: (t, normal, refl, shade) if any.
fn intersect(
    sc: &mut dyn SceneAccess,
    orig: &[f64; 3],
    dir: &[f64; 3],
) -> Option<(f64, [f64; 3], f64, f64)> {
    let mut best: Option<(f64, [f64; 3], f64, f64)> = None;
    let n = sc.nspheres();
    for i in 0..n {
        let s = sc.sphere(i);
        let oc = [orig[0] - s.c[0], orig[1] - s.c[1], orig[2] - s.c[2]];
        let b = dot(&oc, dir);
        let c = dot(&oc, &oc) - s.r * s.r;
        let disc = b * b - c;
        if disc <= 0.0 {
            continue;
        }
        let t = -b - disc.sqrt();
        if t > 1e-6 && best.is_none_or(|(bt, ..)| t < bt) {
            let hp = [
                orig[0] + t * dir[0],
                orig[1] + t * dir[1],
                orig[2] + t * dir[2],
            ];
            let nn = norm(&[hp[0] - s.c[0], hp[1] - s.c[1], hp[2] - s.c[2]]);
            best = Some((t, nn, s.refl, s.shade));
        }
    }
    // Ground plane.
    if dir[1] < -1e-9 {
        let t = (PLANE_Y - orig[1]) / dir[1];
        if t > 1e-6 && best.is_none_or(|(bt, ..)| t < bt) {
            let hx = orig[0] + t * dir[0];
            let hz = orig[2] + t * dir[2];
            let check = ((hx.floor() as i64 + hz.floor() as i64) & 1) as f64;
            best = Some((t, [0.0, 1.0, 0.0], 0.15, 0.4 + 0.4 * check));
        }
    }
    best
}

fn occluded(sc: &mut dyn SceneAccess, orig: &[f64; 3], dir: &[f64; 3]) -> bool {
    sc.count_ray();
    let n = sc.nspheres();
    for i in 0..n {
        let s = sc.sphere(i);
        let oc = [orig[0] - s.c[0], orig[1] - s.c[1], orig[2] - s.c[2]];
        let b = dot(&oc, dir);
        let c = dot(&oc, &oc) - s.r * s.r;
        let disc = b * b - c;
        if disc > 0.0 && -b - disc.sqrt() > 1e-6 {
            return true;
        }
    }
    false
}

fn trace(sc: &mut dyn SceneAccess, orig: &[f64; 3], dir: &[f64; 3], depth: u32) -> f64 {
    sc.count_ray();
    match intersect(sc, orig, dir) {
        None => 0.08 + 0.12 * (dir[1].max(0.0)), // sky
        Some((t, n, refl, shade)) => {
            let hp = [
                orig[0] + t * dir[0],
                orig[1] + t * dir[1],
                orig[2] + t * dir[2],
            ];
            let lift = [
                hp[0] + n[0] * 1e-6,
                hp[1] + n[1] * 1e-6,
                hp[2] + n[2] * 1e-6,
            ];
            let lambert = dot(&n, &LIGHT).max(0.0);
            let shadow = if lambert > 0.0 && occluded(sc, &lift, &LIGHT) {
                0.25
            } else {
                1.0
            };
            let mut col = shade * (0.15 + 0.85 * lambert * shadow);
            if refl > 0.0 && depth < MAX_DEPTH {
                let d = dot(dir, &n);
                let rd = [
                    dir[0] - 2.0 * d * n[0],
                    dir[1] - 2.0 * d * n[1],
                    dir[2] - 2.0 * d * n[2],
                ];
                col = col * (1.0 - refl) + refl * trace(sc, &hp, &norm(&rd), depth + 1);
            }
            col
        }
    }
}

/// Primary ray for pixel (x, y).
fn primary(img: usize, x: usize, y: usize) -> ([f64; 3], [f64; 3]) {
    let eye = [0.0, 1.0, -4.5];
    let fx = (x as f64 + 0.5) / img as f64 * 2.0 - 1.0;
    let fy = 1.0 - (y as f64 + 0.5) / img as f64 * 2.0;
    let dir = norm(&[fx * 1.2, fy * 1.2 - 0.2, 1.0]);
    let _ = eye;
    ([0.0, 1.0, -4.5], dir)
}

/// Sequential reference image (row-major f32) and total ray count.
pub fn reference(params: &RaytraceParams) -> (Vec<f32>, u64) {
    let spheres = generate_scene(params);
    let mut sc = SliceScene {
        spheres: &spheres,
        rays: 0,
    };
    let n = params.img;
    let mut out = vec![0.0f32; n * n];
    for y in 0..n {
        for x in 0..n {
            let (o, d) = primary(n, x, y);
            out[y * n + x] = trace(&mut sc, &o, &d, 0) as f32;
        }
    }
    (out, sc.rays)
}

/// Scene access through the simulated memory system, with the per-ray
/// statistics-lock behaviour of the version under test.
struct SimScene<'a> {
    p: &'a mut Proc,
    spheres: u64,
    n: usize,
    stats_addr: u64,
    /// Lock per ray (Orig) or privatize (optimized versions).
    lock_stats: bool,
    local_rays: u64,
}

const LOCK_STATS: u32 = 499;
const SPHERE_STRIDE: u64 = 48;

impl SceneAccess for SimScene<'_> {
    fn nspheres(&mut self) -> usize {
        self.n
    }

    fn sphere(&mut self, i: usize) -> Sphere {
        let b = self.spheres + i as u64 * SPHERE_STRIDE;
        let p = &mut *self.p;
        let s = Sphere {
            c: [p.read_f64(b), p.read_f64(b + 8), p.read_f64(b + 16)],
            r: p.read_f64(b + 24),
            refl: p.read_f64(b + 32),
            shade: p.read_f64(b + 40),
        };
        p.work(30); // intersection arithmetic
        s
    }

    fn count_ray(&mut self) {
        if self.lock_stats {
            // The SPLASH-2 sin: a global counter behind a lock, per ray.
            self.p.lock(LOCK_STATS);
            let v = self.p.load(self.stats_addr, 8);
            self.p.store(self.stats_addr, 8, v + 1);
            self.p.unlock(LOCK_STATS);
        } else {
            self.local_rays += 1;
        }
    }
}

const LOCK_QUEUE_BASE: u32 = 600;

/// Run Raytrace; panics unless the image matches the sequential reference
/// bit-for-bit and the ray statistics are exact.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &RaytraceParams,
    version: RaytraceVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &RaytraceParams,
    version: RaytraceVersion,
    cfg: RunConfig,
) -> AppResult {
    let img = params.img;
    assert_eq!(img % TILE, 0);
    let tiles = img / TILE;
    let total_tiles = tiles * tiles;
    let spheres = generate_scene(params);
    let layout_bc: Bcast<(u64, u64, u64, u64)> = Bcast::new();
    let result = std::sync::Mutex::new((Vec::new(), 0u64));

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        let np = p.nprocs();
        if me == 0 {
            // Scene (read-only after init; serial init by proc 0 gives it
            // local copies of all scene pages — the paper's locality
            // artifact).
            let sbase = p.alloc_shared(
                spheres.len() as u64 * SPHERE_STRIDE,
                PAGE_SIZE,
                Placement::RoundRobin,
            );
            for (i, s) in spheres.iter().enumerate() {
                let b = sbase + i as u64 * SPHERE_STRIDE;
                p.write_f64(b, s.c[0]);
                p.write_f64(b + 8, s.c[1]);
                p.write_f64(b + 16, s.c[2]);
                p.write_f64(b + 24, s.r);
                p.write_f64(b + 32, s.refl);
                p.write_f64(b + 40, s.shade);
            }
            let image = p.alloc_shared((img * img * 4) as u64, PAGE_SIZE, Placement::RoundRobin);
            let stats_addr = p.alloc_shared(64, PAGE_SIZE, Placement::Node(0));
            // Queues: per-proc count (64B stride) + entries.
            let queues = p.alloc_shared(
                (np * 64 + np * total_tiles * 4) as u64,
                PAGE_SIZE,
                Placement::RoundRobin,
            );
            layout_bc.put((sbase, image, stats_addr, queues));
        }
        p.barrier(100);
        let (sbase, image, stats_addr, queues) = layout_bc.get();
        let qcount = |q: usize| queues + (q as u64) * 64;
        let qentries = queues + (np as u64) * 64;
        let qentry = |q: usize, i: u64| qentries + ((q * total_tiles) as u64 + i) * 4;
        p.start_timing();

        // Round-robin initial tile assignment (SPLASH-2 raytrace).
        let mut mine: Vec<u32> = (0..total_tiles as u32)
            .filter(|t| (*t as usize) % np == me)
            .collect();
        p.lock(LOCK_QUEUE_BASE + me as u32);
        for (i, t) in mine.iter().enumerate() {
            p.store(qentry(me, i as u64), 4, *t as u64);
        }
        p.write_u32(qcount(me), mine.len() as u32);
        p.unlock(LOCK_QUEUE_BASE + me as u32);
        mine.clear();
        p.barrier(0);

        let split_queues = matches!(version, RaytraceVersion::SplitQueues);
        let lock_stats = matches!(version, RaytraceVersion::Orig);
        let mut local: Vec<u32> = Vec::new(); // lock-free local queue
        let mut local_rays = 0u64;
        let mut victim = me;
        loop {
            // Local queue first (SplitQueues only).
            let task = if let Some(t) = local.pop() {
                Some(t)
            } else {
                // Pop or batch-refill from `victim`'s shared queue.
                p.lock(LOCK_QUEUE_BASE + victim as u32);
                let c = p.read_u32(qcount(victim));
                let take = if victim == me && split_queues {
                    c.min(8) // refill a batch into the local queue
                } else {
                    c.min(1)
                };
                let mut got = None;
                if take > 0 {
                    for k in 0..take {
                        let t = p.load(qentry(victim, (c - 1 - k) as u64), 4) as u32;
                        if got.is_none() {
                            got = Some(t);
                        } else {
                            local.push(t);
                        }
                    }
                    p.write_u32(qcount(victim), c - take);
                }
                p.unlock(LOCK_QUEUE_BASE + victim as u32);
                got
            };
            match task {
                Some(t) => {
                    let (ty, tx) = ((t as usize) / tiles, (t as usize) % tiles);
                    for py in 0..TILE {
                        for px in 0..TILE {
                            let (x, y) = (tx * TILE + px, ty * TILE + py);
                            let (o, d) = primary(img, x, y);
                            let mut sc = SimScene {
                                p,
                                spheres: sbase,
                                n: spheres.len(),
                                stats_addr,
                                lock_stats,
                                local_rays: 0,
                            };
                            let col = trace(&mut sc, &o, &d, 0) as f32;
                            local_rays += sc.local_rays;
                            p.store(image + ((y * img + x) * 4) as u64, 4, col.to_bits() as u64);
                        }
                    }
                    // Steal one task at a time; drain the own queue first.
                    victim = me;
                }
                None => {
                    victim = (victim + 1) % np;
                    if victim == me {
                        break;
                    }
                }
            }
        }
        // Merge privatized statistics once.
        if !lock_stats {
            p.lock(LOCK_STATS);
            let v = p.load(stats_addr, 8);
            p.store(stats_addr, 8, v + local_rays);
            p.unlock(LOCK_STATS);
        }
        p.barrier(1);

        p.stop_timing();
        if me == 0 {
            let mut out = vec![0.0f32; img * img];
            for (i, o) in out.iter_mut().enumerate() {
                *o = f32::from_bits(p.load(image + (i * 4) as u64, 4) as u32);
            }
            let rays = p.load(stats_addr, 8);
            *result.lock().unwrap() = (out, rays);
        }
    });

    let (out, rays) = result.into_inner().unwrap();
    let (want, want_rays) = reference(params);
    assert_eq!(out.len(), want.len());
    for (i, (g, w)) in out.iter().zip(&want).enumerate() {
        assert!(g == w, "Raytrace pixel {i} differs: got {g}, want {w}");
    }
    assert_eq!(rays, want_rays, "ray statistics mismatch");
    AppResult {
        stats,
        checksum: crate::common::checksum_f64s(out.iter().map(|&f| f as f64)),
    }
}

/// Run Raytrace at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: RaytraceVersion) -> AppResult {
    run_params(platform, nprocs, &RaytraceParams::at(scale), version)
}

/// Run Raytrace at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: RaytraceVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &RaytraceParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RaytraceParams {
        RaytraceParams {
            img: 16,
            flake_depth: 1,
        }
    }

    #[test]
    fn reference_image_has_structure() {
        let (img, rays) = reference(&tiny());
        assert!(rays > (16 * 16) as u64, "primary rays at least");
        let distinct: std::collections::HashSet<u32> = img.iter().map(|f| f.to_bits()).collect();
        assert!(distinct.len() > 10, "image too flat");
    }

    #[test]
    fn scene_size_grows_with_depth() {
        assert_eq!(
            generate_scene(&RaytraceParams {
                img: 16,
                flake_depth: 0
            })
            .len(),
            1
        );
        assert_eq!(generate_scene(&tiny()).len(), 7);
        assert_eq!(
            generate_scene(&RaytraceParams {
                img: 16,
                flake_depth: 2
            })
            .len(),
            43
        );
    }

    #[test]
    fn all_versions_match_reference_on_svm() {
        for ver in [
            RaytraceVersion::Orig,
            RaytraceVersion::NoStatsLock,
            RaytraceVersion::SplitQueues,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), ver);
            assert!(r.stats.total_cycles() > 0, "{ver:?}");
        }
    }

    #[test]
    fn works_on_all_platforms() {
        let a = run_params(Platform::Svm, 2, &tiny(), RaytraceVersion::Orig);
        let b = run_params(Platform::Dsm, 2, &tiny(), RaytraceVersion::SplitQueues);
        let c = run_params(Platform::Smp, 2, &tiny(), RaytraceVersion::NoStatsLock);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn uniprocessor_works() {
        let r = run_params(Platform::Svm, 1, &tiny(), RaytraceVersion::Orig);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn sphere_intersection_geometry() {
        // A ray straight at a unit sphere hits at distance (d - r).
        let spheres = vec![Sphere {
            c: [0.0, 0.0, 5.0],
            r: 1.0,
            refl: 0.0,
            shade: 1.0,
        }];
        let mut sc = SliceScene {
            spheres: &spheres,
            rays: 0,
        };
        let hit = intersect(&mut sc, &[0.0, 0.0, 0.0], &[0.0, 0.0, 1.0]).unwrap();
        assert!((hit.0 - 4.0).abs() < 1e-9, "t = {}", hit.0);
        // Normal points back toward the origin.
        assert!((hit.1[2] + 1.0).abs() < 1e-9);
        // A ray that misses.
        assert!(intersect(&mut sc, &[3.0, 0.0, 0.0], &[0.0, 0.0, 1.0])
            .map(|h| h.1[1] == 1.0) // could still hit the ground plane
            .unwrap_or(true));
    }

    #[test]
    fn shadows_darken_lit_surfaces() {
        // A sphere hovering over the plane casts a shadow: the pixel under
        // the sphere along the light direction is darker than open floor.
        let spheres = vec![Sphere {
            c: [0.0, 0.0, 2.0],
            r: 0.8,
            refl: 0.0,
            shade: 0.9,
        }];
        let mut sc = SliceScene {
            spheres: &spheres,
            rays: 0,
        };
        // Point on the plane directly "anti-light" from the sphere center.
        let shadow_pt = [
            spheres[0].c[0] - LIGHT[0] * 2.0,
            PLANE_Y + 1e-5,
            spheres[0].c[2] - LIGHT[2] * 2.0,
        ];
        let open_pt = [8.0, PLANE_Y + 1e-5, 8.0];
        assert!(occluded(&mut sc, &shadow_pt, &LIGHT));
        assert!(!occluded(&mut sc, &open_pt, &LIGHT));
    }

    #[test]
    fn reflection_depth_is_bounded() {
        // Two mirrors facing each other must still terminate.
        let spheres = vec![
            Sphere {
                c: [0.0, 0.0, 3.0],
                r: 1.0,
                refl: 1.0,
                shade: 0.1,
            },
            Sphere {
                c: [0.0, 0.0, -3.0],
                r: 1.0,
                refl: 1.0,
                shade: 0.1,
            },
        ];
        let mut sc = SliceScene {
            spheres: &spheres,
            rays: 0,
        };
        let v = trace(&mut sc, &[0.0, 0.0, 0.0], &[0.0, 0.0, 1.0], 0);
        assert!(v.is_finite());
        assert!(sc.rays < 100, "runaway recursion: {} rays", sc.rays);
    }

    #[test]
    fn orig_takes_many_more_locks() {
        let a = run_params(Platform::Svm, 2, &tiny(), RaytraceVersion::Orig);
        let b = run_params(Platform::Svm, 2, &tiny(), RaytraceVersion::NoStatsLock);
        let la = a.stats.sum_counters().lock_acquires;
        let lb = b.stats.sum_counters().lock_acquires;
        assert!(la > 10 * lb, "orig={la} nostats={lb}");
    }
}
