//! LU — blocked dense LU factorization (SPLASH-2), without pivoting.
//!
//! The matrix is factored in `B x B` blocks with the standard 2-D scatter
//! decomposition: block `(I, J)` is owned by processor
//! `(I mod pr) * pc + (J mod pc)`. Each step `k` factors the diagonal block,
//! updates the perimeter row and column, then the interior — with barriers
//! between phases. The inherent pattern is one-producer/multiple-consumer.
//!
//! ## Versions (paper §4.1.1)
//!
//! * [`LuVersion::Orig2d`] — the "non-contiguous" 2-d array. A page spans
//!   sub-rows of several blocks owned by different processors: false
//!   sharing and fragmentation.
//! * [`LuVersion::PadAlign`] — every sub-row of every block padded out to
//!   its own page. Kills false sharing but wastes memory, does nothing for
//!   fragmentation, and the paper found it unhelpful.
//! * [`LuVersion::Contig4d`] — the "contiguous" 4-d layout: each block
//!   contiguous in the address space, but blocks packed tightly so blocks
//!   of *different* owners can share a page (the residual bottleneck of
//!   Figure 3).
//! * [`LuVersion::Contig4dAligned`] — blocks grouped by owning processor,
//!   each group page-aligned and homed on its owner. The paper's final LU,
//!   reaching superlinear speedup. (The paper found further algorithmic
//!   change unnecessary for LU, so the `Alg` class maps here too.)

use crate::common::{
    assert_close_slice, checksum_f64s, read_f64_runs, write_f64_runs, AppResult, Bcast, Platform,
    Scale,
};
use crate::OptClass;
use sim_core::util::XorShift64;
use sim_core::{run as sim_run, Placement, Proc, RunConfig, PAGE_SIZE};

/// Phase indices for per-phase statistics.
pub mod phase {
    /// Diagonal block factorization.
    pub const DIAG: usize = 0;
    /// Perimeter block updates.
    pub const PERIMETER: usize = 1;
    /// Interior block updates.
    pub const INTERIOR: usize = 2;
    /// Names, indexed by phase id (registered on the run's `RunConfig` so
    /// figures and traces print "diag" instead of "phase 0").
    pub const NAMES: [&str; 3] = ["diag", "perimeter", "interior"];
}

/// LU problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuParams {
    /// Matrix dimension (divisible by `block`).
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// Workload seed.
    pub seed: u64,
}

impl LuParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                n: 48,
                block: 8,
                seed: 12345,
            },
            Scale::Default => Self {
                n: 512,
                block: 32,
                seed: 12345,
            },
            Scale::Paper => Self {
                n: 1024,
                block: 32,
                seed: 12345,
            },
        }
    }
}

/// The restructured versions of LU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuVersion {
    /// SPLASH-2 "non-contiguous": natural 2-d array.
    Orig2d,
    /// Each block sub-row padded to a page.
    PadAlign,
    /// 4-d blocked layout, unaligned, round-robin homes.
    Contig4d,
    /// 4-d blocked layout, owner-grouped, page-aligned, owner-homed.
    Contig4dAligned,
}

/// Map the paper's optimization class to an LU version.
pub fn version_for(class: OptClass) -> LuVersion {
    match class {
        OptClass::Orig => LuVersion::Orig2d,
        OptClass::PadAlign => LuVersion::PadAlign,
        OptClass::DataStruct => LuVersion::Contig4d,
        // The paper: algorithmic repartitioning "turns out to be not
        // beneficial"; the best LU is the aligned data structure.
        OptClass::Algorithm => LuVersion::Contig4dAligned,
    }
}

/// Address layout of the matrix, parameterized by version.
#[derive(Clone)]
enum Layout {
    /// Row-major 2-d array: `addr = base + (r*n + c)*8`.
    G2 { base: u64, n: usize },
    /// Padded sub-rows: each (row, block-column) sub-row padded out to the
    /// platform's coherence grain (page on SVM, cache line on hardware).
    Pad {
        base: u64,
        nbc: usize,
        b: usize,
        stride: u64,
    },
    /// Blocked row-major: block (I,J) at `(I*nbc + J) * B*B*8`.
    G4 { base: u64, nbc: usize, b: usize },
    /// Owner-grouped blocks: per-block base table.
    Own {
        bases: std::sync::Arc<Vec<u64>>,
        nbc: usize,
        b: usize,
    },
}

impl Layout {
    #[inline(always)]
    fn addr(&self, r: usize, c: usize) -> u64 {
        match self {
            Layout::G2 { base, n } => base + ((r * n + c) as u64) * 8,
            Layout::Pad {
                base,
                nbc,
                b,
                stride,
            } => {
                let (bj, cj) = (c / b, c % b);
                base + ((r * nbc + bj) as u64) * stride + (cj as u64) * 8
            }
            Layout::G4 { base, nbc, b } => {
                let (bi, ri) = (r / b, r % b);
                let (bj, cj) = (c / b, c % b);
                base + ((bi * nbc + bj) * b * b) as u64 * 8 + ((ri * b + cj) as u64) * 8
            }
            Layout::Own { bases, nbc, b } => {
                let (bi, ri) = (r / b, r % b);
                let (bj, cj) = (c / b, c % b);
                bases[bi * nbc + bj] + ((ri * b + cj) as u64) * 8
            }
        }
    }

    #[inline(always)]
    fn get(&self, p: &mut Proc, r: usize, c: usize) -> f64 {
        f64::from_bits(p.load(self.addr(r, c), 8))
    }

    #[inline(always)]
    fn set(&self, p: &mut Proc, r: usize, c: usize, v: f64) {
        p.store(self.addr(r, c), 8, v.to_bits());
    }
}

/// Processor grid: as square as possible.
fn proc_grid(nprocs: usize) -> (usize, usize) {
    let mut pr = (nprocs as f64).sqrt() as usize;
    while !nprocs.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr, nprocs / pr)
}

#[inline]
fn owner(bi: usize, bj: usize, pr: usize, pc: usize) -> usize {
    (bi % pr) * pc + (bj % pc)
}

/// Deterministic diagonally-dominant matrix (row-major order).
pub fn generate_matrix(params: &LuParams) -> Vec<f64> {
    let n = params.n;
    let mut rng = XorShift64::new(params.seed);
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = rng.f64();
        }
        a[i * n + i] += n as f64;
    }
    a
}

/// Sequential blocked LU with exactly the parallel versions' arithmetic
/// order — outputs are bitwise comparable.
pub fn reference(params: &LuParams) -> Vec<f64> {
    let n = params.n;
    let b = params.block;
    let nb = n / b;
    let mut a = generate_matrix(params);
    let idx = |r: usize, c: usize| r * n + c;
    for k in 0..nb {
        let k0 = k * b;
        // Diagonal factorization.
        for j in 0..b {
            let jj = k0 + j;
            for i in (j + 1)..b {
                let ii = k0 + i;
                a[idx(ii, jj)] /= a[idx(jj, jj)];
                let lij = a[idx(ii, jj)];
                for l in (j + 1)..b {
                    a[idx(ii, k0 + l)] -= lij * a[idx(jj, k0 + l)];
                }
            }
        }
        // Perimeter row: A[k][j>k] <- L(k,k)^-1 A[k][j].
        for bj in (k + 1)..nb {
            let j0 = bj * b;
            for jj in 0..b {
                for i in 1..b {
                    let mut v = a[idx(k0 + i, j0 + jj)];
                    for l in 0..i {
                        v -= a[idx(k0 + i, k0 + l)] * a[idx(k0 + l, j0 + jj)];
                    }
                    a[idx(k0 + i, j0 + jj)] = v;
                }
            }
        }
        // Perimeter column: A[i>k][k] <- A[i][k] U(k,k)^-1.
        for bi in (k + 1)..nb {
            let i0 = bi * b;
            for i in 0..b {
                for j in 0..b {
                    let mut v = a[idx(i0 + i, k0 + j)];
                    for l in 0..j {
                        v -= a[idx(i0 + i, k0 + l)] * a[idx(k0 + l, k0 + j)];
                    }
                    a[idx(i0 + i, k0 + j)] = v / a[idx(k0 + j, k0 + j)];
                }
            }
        }
        // Interior: A[i][j] -= A[i][k] * A[k][j].
        for bi in (k + 1)..nb {
            for bj in (k + 1)..nb {
                let (i0, j0) = (bi * b, bj * b);
                for i in 0..b {
                    for j in 0..b {
                        let mut v = a[idx(i0 + i, j0 + j)];
                        for l in 0..b {
                            v -= a[idx(i0 + i, k0 + l)] * a[idx(k0 + l, j0 + j)];
                        }
                        a[idx(i0 + i, j0 + j)] = v;
                    }
                }
            }
        }
    }
    a
}

// The block kernels stream whole `b`-length row/column segments through the
// bulk API (one scheduler entry per run instead of per word). The arithmetic
// order per element is unchanged, so outputs stay bitwise comparable to the
// sequential reference.

fn diag_factor(p: &mut Proc, m: &Layout, k0: usize, b: usize) {
    let mut rowi = vec![0.0f64; b];
    let mut rowj = vec![0.0f64; b];
    for j in 0..b {
        let jj = k0 + j;
        let d = m.get(p, jj, jj);
        for i in (j + 1)..b {
            let ii = k0 + i;
            let lij = m.get(p, ii, jj) / d;
            m.set(p, ii, jj, lij);
            p.work(8); // divide
            let w = b - j - 1;
            read_f64_runs(p, &mut rowi[..w], |l| m.addr(ii, k0 + j + 1 + l));
            read_f64_runs(p, &mut rowj[..w], |l| m.addr(jj, k0 + j + 1 + l));
            for l in 0..w {
                rowi[l] -= lij * rowj[l];
            }
            write_f64_runs(p, &rowi[..w], |l| m.addr(ii, k0 + j + 1 + l));
            p.work(2 * w as u64);
        }
    }
}

fn perim_row(p: &mut Proc, m: &Layout, k0: usize, j0: usize, b: usize) {
    let mut row = vec![0.0f64; b];
    let mut col = vec![0.0f64; b];
    for jj in 0..b {
        for i in 1..b {
            let mut v = m.get(p, k0 + i, j0 + jj);
            read_f64_runs(p, &mut row[..i], |l| m.addr(k0 + i, k0 + l));
            read_f64_runs(p, &mut col[..i], |l| m.addr(k0 + l, j0 + jj));
            for l in 0..i {
                v -= row[l] * col[l];
            }
            m.set(p, k0 + i, j0 + jj, v);
            p.work(2 * i as u64);
        }
    }
}

fn perim_col(p: &mut Proc, m: &Layout, k0: usize, i0: usize, b: usize) {
    let mut row = vec![0.0f64; b];
    let mut col = vec![0.0f64; b];
    for i in 0..b {
        for j in 0..b {
            let mut v = m.get(p, i0 + i, k0 + j);
            read_f64_runs(p, &mut row[..j], |l| m.addr(i0 + i, k0 + l));
            read_f64_runs(p, &mut col[..j], |l| m.addr(k0 + l, k0 + j));
            for l in 0..j {
                v -= row[l] * col[l];
            }
            let d = m.get(p, k0 + j, k0 + j);
            m.set(p, i0 + i, k0 + j, v / d);
            p.work(2 * j as u64 + 8);
        }
    }
}

fn interior(p: &mut Proc, m: &Layout, k0: usize, i0: usize, j0: usize, b: usize) {
    let mut row = vec![0.0f64; b];
    let mut col = vec![0.0f64; b];
    for i in 0..b {
        for j in 0..b {
            let mut v = m.get(p, i0 + i, j0 + j);
            read_f64_runs(p, &mut row, |l| m.addr(i0 + i, k0 + l));
            read_f64_runs(p, &mut col, |l| m.addr(k0 + l, j0 + j));
            for l in 0..b {
                v -= row[l] * col[l];
            }
            m.set(p, i0 + i, j0 + j, v);
            p.work(2 * b as u64);
        }
    }
}

/// Run LU on `platform` with `nprocs` processors; panics if the result does
/// not match the sequential reference.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &LuParams,
    version: LuVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &LuParams,
    version: LuVersion,
    cfg: RunConfig,
) -> AppResult {
    let cfg = if cfg.phase_names.is_empty() {
        cfg.with_phase_names(phase::NAMES)
    } else {
        cfg
    };
    let n = params.n;
    let b = params.block;
    assert_eq!(n % b, 0, "matrix dim must be a multiple of block size");
    let nb = n / b;
    let (pr, pc) = proc_grid(nprocs);
    let grain = platform.grain();
    let layout_bc: Bcast<Layout> = Bcast::new();
    let result = std::sync::Mutex::new(Vec::new());
    let input = generate_matrix(params);

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        if p.pid() == 0 {
            // Allocate the matrix in the version's layout.
            let layout = match version {
                LuVersion::Orig2d => Layout::G2 {
                    base: p.alloc_shared_labeled(
                        "matrix",
                        (n * n * 8) as u64,
                        PAGE_SIZE,
                        Placement::RoundRobin,
                    ),
                    n,
                },
                LuVersion::PadAlign => {
                    let stride = ((b * 8) as u64).div_ceil(grain) * grain;
                    Layout::Pad {
                        base: p.alloc_shared(
                            (n * nb) as u64 * stride,
                            PAGE_SIZE,
                            Placement::RoundRobin,
                        ),
                        nbc: nb,
                        b,
                        stride,
                    }
                }
                LuVersion::Contig4d => {
                    // Emulate a malloc header: the blocked array does NOT
                    // start on a page boundary, so blocks of different
                    // owners straddle shared pages — the residual bottleneck
                    // the paper fixes by page-aligning (Figure 3).
                    let raw = p.alloc_shared(
                        (n * n * 8) as u64 + PAGE_SIZE,
                        PAGE_SIZE,
                        Placement::RoundRobin,
                    );
                    Layout::G4 {
                        base: raw + 1024,
                        nbc: nb,
                        b,
                    }
                }
                LuVersion::Contig4dAligned => {
                    // Group each owner's blocks into one page-aligned,
                    // owner-homed region.
                    let mut bases = vec![0u64; nb * nb];
                    for o in 0..nprocs {
                        let mine: Vec<(usize, usize)> = (0..nb)
                            .flat_map(|bi| (0..nb).map(move |bj| (bi, bj)))
                            .filter(|&(bi, bj)| owner(bi, bj, pr, pc) == o)
                            .collect();
                        if mine.is_empty() {
                            continue;
                        }
                        let bytes = (mine.len() * b * b * 8) as u64;
                        let base = p.alloc_shared(bytes, PAGE_SIZE, Placement::Node(o));
                        for (idx, &(bi, bj)) in mine.iter().enumerate() {
                            bases[bi * nb + bj] = base + (idx * b * b * 8) as u64;
                        }
                    }
                    Layout::Own {
                        bases: std::sync::Arc::new(bases),
                        nbc: nb,
                        b,
                    }
                }
            };
            // Serial initialization (untimed, as in SPLASH-2).
            for i in 0..n {
                write_f64_runs(p, &input[i * n..(i + 1) * n], |j| layout.addr(i, j));
            }
            layout_bc.put(layout);
        }
        p.barrier(100);
        let m = layout_bc.get();
        let me = p.pid();
        p.start_timing();

        for k in 0..nb {
            let k0 = k * b;
            p.set_phase(phase::DIAG);
            if owner(k, k, pr, pc) == me {
                diag_factor(p, &m, k0, b);
            }
            p.barrier(0);
            p.set_phase(phase::PERIMETER);
            for bj in (k + 1)..nb {
                if owner(k, bj, pr, pc) == me {
                    perim_row(p, &m, k0, bj * b, b);
                }
            }
            for bi in (k + 1)..nb {
                if owner(bi, k, pr, pc) == me {
                    perim_col(p, &m, k0, bi * b, b);
                }
            }
            p.barrier(1);
            p.set_phase(phase::INTERIOR);
            for bi in (k + 1)..nb {
                for bj in (k + 1)..nb {
                    if owner(bi, bj, pr, pc) == me {
                        interior(p, &m, k0, bi * b, bj * b, b);
                    }
                }
            }
            p.barrier(2);
        }

        p.stop_timing();
        if me == 0 {
            let mut out = vec![0.0f64; n * n];
            for i in 0..n {
                read_f64_runs(p, &mut out[i * n..(i + 1) * n], |j| m.addr(i, j));
            }
            *result.lock().unwrap() = out;
        }
    });

    let out = result.into_inner().unwrap();
    let want = reference(params);
    assert_close_slice(&out, &want, 1e-9, "LU result");
    AppResult {
        stats,
        checksum: checksum_f64s(out.into_iter()),
    }
}

/// Run LU at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: LuVersion) -> AppResult {
    run_params(platform, nprocs, &LuParams::at(scale), version)
}

/// Run LU at a scale preset with an explicit scheduler configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: LuVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &LuParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LuParams {
        LuParams {
            n: 32,
            block: 8,
            seed: 7,
        }
    }

    #[test]
    fn reference_actually_factors() {
        // Check A = L*U reconstruction against the generated matrix.
        let params = tiny();
        let n = params.n;
        let a0 = generate_matrix(&params);
        let lu = reference(&params);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    if k <= j && k <= i {
                        v += if i == k { u } else { l * u };
                    }
                }
                // Reconstruct: sum_{k<=min(i,j)} L[i][k]*U[k][j], L unit diag.
                let mut r = 0.0;
                for k in 0..=i.min(j) {
                    let lik = if k == i { 1.0 } else { lu[i * n + k] };
                    r += lik * lu[k * n + j];
                }
                let _ = v;
                assert!(
                    (r - a0[i * n + j]).abs() < 1e-6 * (1.0 + a0[i * n + j].abs()),
                    "LU reconstruction mismatch at ({i},{j}): {r} vs {}",
                    a0[i * n + j]
                );
            }
        }
    }

    #[test]
    fn all_versions_match_reference_on_svm() {
        for v in [
            LuVersion::Orig2d,
            LuVersion::PadAlign,
            LuVersion::Contig4d,
            LuVersion::Contig4dAligned,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), v);
            assert!(r.stats.total_cycles() > 0, "{v:?} ran");
        }
    }

    #[test]
    fn versions_agree_across_platforms() {
        let a = run_params(Platform::Svm, 2, &tiny(), LuVersion::Contig4dAligned);
        let b = run_params(Platform::Dsm, 2, &tiny(), LuVersion::Contig4dAligned);
        let c = run_params(Platform::Smp, 2, &tiny(), LuVersion::Orig2d);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn uniprocessor_works() {
        let r = run_params(Platform::Svm, 1, &tiny(), LuVersion::Orig2d);
        assert!(r.stats.total_cycles() > 0);
    }

    #[test]
    fn layouts_are_bijective() {
        let b = 4;
        let nb = 3;
        let n = b * nb;
        let layouts = [
            Layout::G2 {
                base: 0x1000_0000,
                n,
            },
            Layout::Pad {
                base: 0x1000_0000,
                nbc: nb,
                b,
                stride: PAGE_SIZE,
            },
            Layout::G4 {
                base: 0x1000_0000,
                nbc: nb,
                b,
            },
            Layout::Own {
                bases: std::sync::Arc::new(
                    (0..nb * nb)
                        .map(|i| 0x1000_0000 + (i * b * b * 8) as u64)
                        .collect(),
                ),
                nbc: nb,
                b,
            },
        ];
        for (li, l) in layouts.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for r in 0..n {
                for c in 0..n {
                    assert!(
                        seen.insert(l.addr(r, c)),
                        "layout {li}: duplicate address at ({r},{c})"
                    );
                }
            }
        }
    }
}
