//! KV — a sharded in-memory key-value store serving request traffic.
//!
//! The ROADMAP's north star is "heavy traffic from millions of users"; this
//! is the suite's server-shaped member. A closed-loop stream of
//! Zipf-distributed get/put requests (configurable key count, skew and
//! read/write mix) is dealt into per-processor request queues; each request
//! locks its hash bucket, reads or updates the value slot, and bumps the
//! bucket's statistics header — so even a read-mostly mix writes shared
//! metadata, the classic server false-sharing story. Puts are commutative
//! (wrapping adds), which makes the final table state order-independent and
//! exactly checkable against a sequential reference on every platform.
//!
//! ## Versions (the paper's §6 methodology applied to a server)
//!
//! * [`KvVersion::Dense`] (Orig) — dense bucket-header and value arrays,
//!   round-robin pages: dozens of headers per coherence grain, so every
//!   request invalidates state other processors are about to touch.
//! * [`KvVersion::Padded`] (P/A) — each bucket record (header + slots)
//!   padded and aligned to the platform's coherence grain (page on SVM,
//!   cache line on the hardware-coherent machines): false sharing gone,
//!   communication and load imbalance remain.
//! * [`KvVersion::Sharded`] (DS) — the table is split into per-processor
//!   shards, each a contiguous page-aligned region homed on its owner, and
//!   requests are routed to the shard owner (affinity dispatch): value and
//!   header traffic becomes node-local, but the Zipf skew now lands entire
//!   hot shards on one processor.
//! * [`KvVersion::Stealing`] (Alg) — the algorithmic change: per-processor
//!   request queues with batched work stealing. Idle processors pull request
//!   batches from busy queues, absorbing the skew the DS step exposed, at
//!   the price of remote accesses for stolen requests.

use crate::common::{AppResult, Bcast, Platform, Scale};
use crate::OptClass;
use sim_core::util::XorShift64;
use sim_core::{run as sim_run, Placement, Proc, RunConfig, PAGE_SIZE};

/// Application phases, named for figures and traces.
pub mod phase {
    /// Serving requests from the processor's own queue.
    pub const SERVE: usize = 0;
    /// Serving requests stolen from another processor's queue.
    pub const STEAL: usize = 1;
    /// Names, indexed by phase id.
    pub const NAMES: [&str; 2] = ["serve", "steal"];
}

/// Value slots per hash bucket (keys are interleaved across buckets, so
/// bucket `b` holds keys `{b, b + nbuckets, ...}`).
pub const KEYS_PER_BUCKET: usize = 16;

/// Requests an owner takes from its own queue per pop. Large enough that
/// the owner's head updates are a negligible fraction of its queue traffic
/// even when thieves keep invalidating the head/tail line.
const OWN_BATCH: u32 = 64;
/// Upper bound on one steal (thieves take half the victim's remainder, so
/// steals shrink geometrically near the end; the cap stops the first thief
/// from walking off with half of a hot owner's whole backlog).
const STEAL_CAP: u32 = 256;
/// Per-request service compute (parse, dispatch, format the response).
const SERVICE_WORK: u64 = 150;

/// Lock id of a bucket (queue locks sit above the bucket range).
fn bucket_lock(b: usize) -> u32 {
    b as u32
}

/// Lock id of a request queue.
fn queue_lock(nbuckets: usize, q: usize) -> u32 {
    (nbuckets + q) as u32
}

/// KV workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct KvParams {
    /// Key-space size (dense key ids `0..keys`; key 0 is the hottest).
    pub keys: usize,
    /// Closed-loop requests issued per processor.
    pub reqs_per_proc: usize,
    /// Zipf skew exponent (0 = uniform; web caches are typically ~1).
    pub theta: f64,
    /// Percentage of requests that are gets (the rest are puts).
    pub read_pct: u32,
    /// Workload seed.
    pub seed: u64,
    /// Seeded racy twin for race-detector tests: bump the bucket header
    /// *outside* the bucket lock. Header counts are then unverifiable
    /// (lost updates), but values stay lock-protected and exact.
    pub racy_headers: bool,
}

impl KvParams {
    /// Parameters for a scale preset.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self {
                keys: 512,
                reqs_per_proc: 160,
                theta: 0.9,
                read_pct: 70,
                seed: 7,
                racy_headers: false,
            },
            Scale::Default => Self {
                keys: 4096,
                reqs_per_proc: 2048,
                theta: 0.99,
                read_pct: 70,
                seed: 7,
                racy_headers: false,
            },
            Scale::Paper => Self {
                keys: 16384,
                reqs_per_proc: 8192,
                theta: 0.99,
                read_pct: 70,
                seed: 7,
                racy_headers: false,
            },
        }
    }

    /// Number of hash buckets (16 interleaved keys per bucket).
    pub fn nbuckets(&self) -> usize {
        assert_eq!(
            self.keys % KEYS_PER_BUCKET,
            0,
            "key count must be a multiple of {KEYS_PER_BUCKET}"
        );
        self.keys / KEYS_PER_BUCKET
    }
}

/// The restructured versions of the KV store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvVersion {
    /// Dense header/value arrays, round-robin pages, round-robin dispatch.
    Dense,
    /// Bucket records padded/aligned to the coherence grain.
    Padded,
    /// Padded + table sharded into owner-homed regions + affinity dispatch.
    Sharded,
    /// Sharded + batched request stealing between per-processor queues.
    Stealing,
}

/// Map the paper's optimization class to a KV version.
pub fn version_for(class: OptClass) -> KvVersion {
    match class {
        OptClass::Orig => KvVersion::Dense,
        OptClass::PadAlign => KvVersion::Padded,
        OptClass::DataStruct => KvVersion::Sharded,
        OptClass::Algorithm => KvVersion::Stealing,
    }
}

/// Request word: bit 31 = put, bits 24..30 feed the put delta, bits 0..24
/// the key id.
const KEY_BITS: u32 = 24;
const KEY_MASK: u32 = (1 << KEY_BITS) - 1;

/// Decode a request word into `(key, is_put, delta)`.
#[inline]
pub fn decode(req: u32) -> (usize, bool, u32) {
    let key = (req & KEY_MASK) as usize;
    let is_put = req >> 31 == 1;
    let delta = 1 + ((req >> KEY_BITS) & 0x3F);
    (key, is_put, delta)
}

/// Bucket of a key (interleaved: hot low keys land in distinct buckets).
#[inline]
pub fn bucket_of(key: usize, nbuckets: usize) -> usize {
    key % nbuckets
}

/// Owning processor of a bucket (contiguous bucket ranges per owner).
#[inline]
pub fn owner_of(bucket: usize, nbuckets: usize, nprocs: usize) -> usize {
    bucket * nprocs / nbuckets
}

/// Initial ("pre-warmed server") value of a key.
#[inline]
fn init_val(key: usize) -> u32 {
    (key as u32).wrapping_mul(0x9E37_79B9) >> 8
}

/// Cumulative Zipf(θ) distribution over the key space: key `k` has weight
/// `(k+1)^-θ` (key 0 is the hottest).
pub fn zipf_cdf(keys: usize, theta: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(keys);
    let mut acc = 0.0f64;
    for k in 0..keys {
        acc += ((k + 1) as f64).powf(-theta);
        cum.push(acc);
    }
    let total = acc;
    for c in &mut cum {
        *c /= total;
    }
    cum
}

/// The deterministic global request stream (`nprocs * reqs_per_proc` words,
/// in arrival order).
pub fn generate_requests(params: &KvParams, nprocs: usize) -> Vec<u32> {
    assert!(
        params.keys <= KEY_MASK as usize + 1,
        "key space exceeds the {KEY_BITS}-bit request encoding"
    );
    let cdf = zipf_cdf(params.keys, params.theta);
    let mut rng = XorShift64::new(params.seed);
    (0..nprocs * params.reqs_per_proc)
        .map(|_| {
            let u = rng.f64();
            let key = cdf.partition_point(|&c| c < u).min(params.keys - 1) as u32;
            let is_put = rng.below(100) >= params.read_pct as u64;
            let noise = (rng.below(64) as u32) << KEY_BITS;
            key | noise | ((is_put as u32) << 31)
        })
        .collect()
}

/// Deal the request stream into per-processor queues. `Dense`/`Padded`
/// round-robin requests across processors (front-end load balancing);
/// `Sharded`/`Stealing` route each request to its bucket's owner (affinity
/// dispatch), which is where the Zipf skew turns into queue imbalance.
///
/// `Stealing` additionally orders each queue bucket-major, hottest bucket
/// first (the key id *is* the popularity rank and bucket `b`'s hottest
/// resident is key `b`, so the front end can do this without measurement):
/// owners drain from the front, thieves steal batches from the back. Stolen
/// work is therefore always the *cold tail* — hot buckets never migrate
/// away from their home — and a stolen batch is a contiguous run of
/// same-bucket requests, so it touches one or two remote pages instead of
/// one per request. The sort is stable, preserving arrival order per key.
pub fn route_queues(params: &KvParams, nprocs: usize, version: KvVersion) -> Vec<Vec<u32>> {
    let reqs = generate_requests(params, nprocs);
    let nbuckets = params.nbuckets();
    let mut queues = vec![Vec::new(); nprocs];
    for (r, &req) in reqs.iter().enumerate() {
        let q = match version {
            KvVersion::Dense | KvVersion::Padded => r % nprocs,
            KvVersion::Sharded | KvVersion::Stealing => {
                let (key, _, _) = decode(req);
                owner_of(bucket_of(key, nbuckets), nbuckets, nprocs)
            }
        };
        queues[q].push(req);
    }
    if version == KvVersion::Stealing {
        for q in &mut queues {
            q.sort_by_key(|&req| {
                let key = decode(req).0;
                (bucket_of(key, nbuckets), key)
            });
        }
    }
    queues
}

/// Sequential reference: final per-key values and per-bucket operation
/// counts. Puts are wrapping adds and counts are increments — both
/// commutative — so the reference is independent of request interleaving.
pub fn reference(params: &KvParams, nprocs: usize) -> (Vec<u32>, Vec<u32>) {
    let nbuckets = params.nbuckets();
    let mut values: Vec<u32> = (0..params.keys).map(init_val).collect();
    let mut counts = vec![0u32; nbuckets];
    for &req in &generate_requests(params, nprocs) {
        let (key, is_put, delta) = decode(req);
        counts[bucket_of(key, nbuckets)] += 1;
        if is_put {
            values[key] = values[key].wrapping_add(delta);
        }
    }
    (values, counts)
}

/// Shared-memory layout of the table for one version: resolves a bucket to
/// its header address and a slot to its value address.
#[derive(Clone, Copy, Debug)]
enum Layout {
    /// Dense: separate header and value arrays (bucket-major values).
    Dense { headers: u64, values: u64 },
    /// Padded bucket records of `stride` bytes (header, then slots).
    Padded { table: u64, stride: u64 },
    /// Padded records grouped into per-owner page-aligned shard regions.
    Sharded {
        table: u64,
        stride: u64,
        shard_bytes: u64,
        buckets_per_owner: usize,
    },
}

impl Layout {
    fn header_addr(&self, b: usize) -> u64 {
        match *self {
            Layout::Dense { headers, .. } => headers + (b as u64) * 4,
            Layout::Padded { table, stride } => table + (b as u64) * stride,
            Layout::Sharded {
                table,
                stride,
                shard_bytes,
                buckets_per_owner,
            } => {
                let (shard, local) = (b / buckets_per_owner, b % buckets_per_owner);
                table + (shard as u64) * shard_bytes + (local as u64) * stride
            }
        }
    }

    fn value_addr(&self, b: usize, slot: usize) -> u64 {
        match *self {
            Layout::Dense { values, .. } => values + ((b * KEYS_PER_BUCKET + slot) as u64) * 4,
            _ => self.header_addr(b) + 4 + (slot as u64) * 4,
        }
    }
}

/// Bucket-record stride for the padded layouts: header + slots, rounded up
/// to the platform's coherence grain.
fn padded_stride(grain: u64) -> u64 {
    ((4 + KEYS_PER_BUCKET * 4) as u64).div_ceil(grain) * grain
}

/// Serve a batch of requests against the table, one lock acquisition per
/// maximal run of same-bucket requests. Unsorted queues (`Dense`/`Padded`/
/// `Sharded`) produce runs of length ~1, so this degenerates to per-request
/// locking; the `Stealing` version's bucket-major queues produce long runs,
/// amortizing lock traffic and write-notice consumption — the second half
/// of its algorithmic change. Values and the combined header bump are
/// lock-protected; `racy` (the seeded detector twin) moves the header
/// update outside the lock.
fn serve_batch(
    p: &mut Proc,
    reqs: &[u32],
    lay: &Layout,
    nbuckets: usize,
    racy: bool,
    sink: &mut u32,
) {
    let mut i = 0;
    while i < reqs.len() {
        let b = bucket_of(decode(reqs[i]).0, nbuckets);
        let mut j = i + 1;
        while j < reqs.len() && bucket_of(decode(reqs[j]).0, nbuckets) == b {
            j += 1;
        }
        let run = (j - i) as u32;
        let haddr = lay.header_addr(b);
        p.lock(bucket_lock(b));
        for &req in &reqs[i..j] {
            let (key, is_put, delta) = decode(req);
            let vaddr = lay.value_addr(b, key / nbuckets);
            let v = p.read_u32(vaddr);
            if is_put {
                p.write_u32(vaddr, v.wrapping_add(delta));
            } else {
                *sink ^= v;
            }
        }
        if !racy {
            let c = p.read_u32(haddr);
            p.write_u32(haddr, c + run);
        }
        p.unlock(bucket_lock(b));
        if racy {
            let c = p.read_u32(haddr);
            p.write_u32(haddr, c + run);
        }
        p.work(SERVICE_WORK * run as u64);
        p.metric_add("kv_requests", run as u64);
        i = j;
    }
}

/// Run the KV store on a platform; panics unless the final table state
/// matches the sequential reference exactly.
pub fn run_params(
    platform: Platform,
    nprocs: usize,
    params: &KvParams,
    version: KvVersion,
) -> AppResult {
    run_params_cfg(platform, nprocs, params, version, RunConfig::new(nprocs))
}

/// Like [`run_params`] with an explicit scheduler configuration (quantum,
/// race detection, diagnostics, run label).
pub fn run_params_cfg(
    platform: Platform,
    nprocs: usize,
    params: &KvParams,
    version: KvVersion,
    cfg: RunConfig,
) -> AppResult {
    let cfg = if cfg.phase_names.is_empty() {
        cfg.with_phase_names(phase::NAMES)
    } else {
        cfg
    };
    let nbuckets = params.nbuckets();
    assert_eq!(
        nbuckets % nprocs,
        0,
        "bucket count must be a multiple of the processor count"
    );
    let grain = platform.grain();
    let racy = params.racy_headers;
    let queues = route_queues(params, nprocs, version);
    let qlens: Vec<u32> = queues.iter().map(|q| q.len() as u32).collect();
    // One queue block per processor, page-aligned so affinity placement can
    // home each queue on its owner.
    let qcap = qlens.iter().copied().max().unwrap_or(0).max(1) as u64;
    let qblock = (qcap * 4).div_ceil(PAGE_SIZE) * PAGE_SIZE;

    let layout_bc: Bcast<(Layout, u64, u64)> = Bcast::new();
    let outcome = std::sync::Mutex::new((Vec::new(), Vec::new()));

    let stats = sim_run(platform.boxed(nprocs), cfg, |p| {
        let me = p.pid();
        let np = p.nprocs();
        if me == 0 {
            let lay = match version {
                KvVersion::Dense => Layout::Dense {
                    headers: p.alloc_shared_labeled(
                        "kv_headers",
                        (nbuckets * 4) as u64,
                        PAGE_SIZE,
                        Placement::RoundRobin,
                    ),
                    values: p.alloc_shared_labeled(
                        "kv_values",
                        (params.keys * 4) as u64,
                        PAGE_SIZE,
                        Placement::RoundRobin,
                    ),
                },
                KvVersion::Padded => {
                    let stride = padded_stride(grain);
                    Layout::Padded {
                        table: p.alloc_shared_labeled(
                            "kv_table",
                            nbuckets as u64 * stride,
                            PAGE_SIZE,
                            Placement::RoundRobin,
                        ),
                        stride,
                    }
                }
                KvVersion::Sharded | KvVersion::Stealing => {
                    let stride = padded_stride(grain);
                    let bpo = nbuckets / np;
                    let shard_bytes = (bpo as u64 * stride).div_ceil(PAGE_SIZE) * PAGE_SIZE;
                    Layout::Sharded {
                        table: p.alloc_shared_labeled(
                            "kv_table",
                            shard_bytes * np as u64,
                            PAGE_SIZE,
                            Placement::Blocked {
                                chunk_pages: shard_bytes / PAGE_SIZE,
                            },
                        ),
                        stride,
                        shard_bytes,
                        buckets_per_owner: bpo,
                    }
                }
            };
            let qbase = p.alloc_shared_labeled(
                "kv_queues",
                qblock * np as u64,
                PAGE_SIZE,
                Placement::Blocked {
                    chunk_pages: qblock / PAGE_SIZE,
                },
            );
            // Queue head/tail indices, one pair per processor at grain
            // stride (only the Stealing version reads them, but the
            // allocation is version-independent to keep the address map
            // comparable).
            let hbase = p.alloc_shared_labeled(
                "kv_qheads",
                grain * np as u64,
                grain.max(8),
                Placement::Blocked { chunk_pages: 1 },
            );
            layout_bc.put((lay, qbase, hbase));
        }
        p.barrier(100);
        let (lay, qbase, hbase) = layout_bc.get();
        let qentry = |q: usize, i: u64| qbase + (q as u64) * qblock + i * 4;
        let qhead = |q: usize| hbase + (q as u64) * grain;
        let qtail = |q: usize| hbase + (q as u64) * grain + 4;

        // Untimed warm-up: every processor memsets and initializes the
        // buckets it owns (cold-start of a pre-warmed server), and loads its
        // own request queue — the analogue of accepting connections.
        let bpo = nbuckets / np;
        for b in me * bpo..(me + 1) * bpo {
            p.fill(lay.header_addr(b), 4, 1, 0);
            let vals: Vec<u32> = (0..KEYS_PER_BUCKET)
                .map(|s| init_val(s * nbuckets + b))
                .collect();
            p.write_u32_slice(lay.value_addr(b, 0), 4, &vals);
        }
        if !queues[me].is_empty() {
            p.write_u32_slice(qentry(me, 0), 4, &queues[me]);
        }
        p.write_u32(qhead(me), 0);
        p.write_u32(qtail(me), qlens[me]);
        p.barrier(101);
        p.start_timing();
        p.set_phase(phase::SERVE);

        let mut sink = 0u32;
        let mut buf = vec![0u32; OWN_BATCH.max(STEAL_CAP) as usize];
        match version {
            KvVersion::Dense | KvVersion::Padded | KvVersion::Sharded => {
                // Each processor drains its own queue in batches.
                let len = qlens[me];
                let mut h = 0u32;
                while h < len {
                    let take = OWN_BATCH.min(len - h) as usize;
                    p.read_u32_slice(qentry(me, h as u64), 4, &mut buf[..take]);
                    serve_batch(p, &buf[..take], &lay, nbuckets, racy, &mut sink);
                    h += take as u32;
                }
            }
            KvVersion::Stealing => {
                // Deque discipline on popularity-sorted queues: the owner
                // drains hot requests from the front, thieves steal batches
                // of cold-tail requests from the back — so hot buckets are
                // always served by their home processor and never ping-pong.
                // Requests are never re-queued, so a full cycle of empty
                // probes means global completion.
                let mut victim = me;
                loop {
                    p.lock(queue_lock(nbuckets, victim));
                    let h = p.read_u32(qhead(victim));
                    let t = p.read_u32(qtail(victim));
                    let (start, take) = if victim == me {
                        let take = OWN_BATCH.min(t - h);
                        if take > 0 {
                            p.write_u32(qhead(victim), h + take);
                        }
                        (h, take)
                    } else {
                        let take = (t - h).div_ceil(2).min(STEAL_CAP);
                        if take > 0 {
                            p.write_u32(qtail(victim), t - take);
                        }
                        (t - take, take)
                    };
                    p.unlock(queue_lock(nbuckets, victim));
                    if take > 0 {
                        p.set_phase(if victim == me {
                            phase::SERVE
                        } else {
                            phase::STEAL
                        });
                        p.read_u32_slice(
                            qentry(victim, start as u64),
                            4,
                            &mut buf[..take as usize],
                        );
                        serve_batch(p, &buf[..take as usize], &lay, nbuckets, racy, &mut sink);
                        victim = me;
                    } else {
                        victim = (victim + 1) % np;
                        if victim == me {
                            break;
                        }
                    }
                }
                p.set_phase(phase::SERVE);
            }
        }
        p.barrier(0);
        p.stop_timing();

        if me == 0 {
            let mut values = vec![0u32; params.keys];
            crate::common::read_u32_runs(p, &mut values, |k| {
                let key = k; // global slot index == key id under the
                             // bucket-interleaved slot map below
                let b = bucket_of(key, nbuckets);
                lay.value_addr(b, key / nbuckets)
            });
            let mut counts = vec![0u32; nbuckets];
            crate::common::read_u32_runs(p, &mut counts, |b| lay.header_addr(b));
            *outcome.lock().unwrap() = (values, counts);
        }
    });

    let (values, counts) = outcome.into_inner().unwrap();
    let (want_values, want_counts) = reference(params, nprocs);
    assert_eq!(
        values, want_values,
        "KV table state diverged from reference"
    );
    if !racy {
        assert_eq!(
            counts, want_counts,
            "KV bucket operation counts diverged from reference"
        );
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in values.iter().chain(counts.iter()) {
        h = (h ^ v as u64).wrapping_mul(0x100_0000_01b3);
    }
    AppResult { stats, checksum: h }
}

/// Run the KV store at a scale preset.
pub fn run(platform: Platform, nprocs: usize, scale: Scale, version: KvVersion) -> AppResult {
    run_params(platform, nprocs, &KvParams::at(scale), version)
}

/// Run the KV store at a scale preset with an explicit configuration.
pub fn run_cfg(
    platform: Platform,
    nprocs: usize,
    scale: Scale,
    version: KvVersion,
    cfg: RunConfig,
) -> AppResult {
    run_params_cfg(platform, nprocs, &KvParams::at(scale), version, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KvParams {
        KvParams {
            keys: 128,
            reqs_per_proc: 48,
            theta: 0.9,
            read_pct: 70,
            seed: 11,
            racy_headers: false,
        }
    }

    #[test]
    fn zipf_cdf_is_monotonic_and_skewed() {
        let cdf = zipf_cdf(256, 0.99);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // The hottest 10% of keys draw well over 10% of the mass.
        assert!(cdf[25] > 0.4, "cdf[25] = {}", cdf[25]);
    }

    #[test]
    fn request_stream_respects_the_mix() {
        let params = KvParams {
            keys: 512,
            reqs_per_proc: 4096,
            theta: 0.9,
            read_pct: 70,
            seed: 3,
            racy_headers: false,
        };
        let reqs = generate_requests(&params, 2);
        let puts = reqs.iter().filter(|&&r| r >> 31 == 1).count();
        let frac = puts as f64 / reqs.len() as f64;
        assert!((0.25..0.35).contains(&frac), "put fraction {frac}");
        for &r in &reqs {
            let (key, _, delta) = decode(r);
            assert!(key < params.keys);
            assert!((1..=64).contains(&delta));
        }
    }

    #[test]
    fn routing_conserves_requests_and_skews_affinity_queues() {
        let params = KvParams::at(Scale::Default);
        let np = 8;
        let total = np * params.reqs_per_proc;
        let rr = route_queues(&params, np, KvVersion::Dense);
        assert!(rr.iter().all(|q| q.len() == params.reqs_per_proc));
        let aff = route_queues(&params, np, KvVersion::Stealing);
        assert_eq!(aff.iter().map(Vec::len).sum::<usize>(), total);
        let longest = aff.iter().map(Vec::len).max().unwrap();
        // Zipf skew concentrates traffic on the hot shard's owner.
        assert!(
            longest as f64 > 1.5 * params.reqs_per_proc as f64,
            "expected affinity imbalance, longest queue = {longest}"
        );
    }

    #[test]
    fn all_versions_verify_on_svm() {
        for v in [
            KvVersion::Dense,
            KvVersion::Padded,
            KvVersion::Sharded,
            KvVersion::Stealing,
        ] {
            let r = run_params(Platform::Svm, 4, &tiny(), v);
            assert!(r.stats.total_cycles() > 0, "{v:?}");
        }
    }

    #[test]
    fn checksums_agree_across_hardware_platforms() {
        let a = run_params(Platform::Dsm, 2, &tiny(), KvVersion::Stealing);
        let b = run_params(Platform::Smp, 2, &tiny(), KvVersion::Dense);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn uniprocessor_serves() {
        let r = run_params(Platform::Smp, 1, &tiny(), KvVersion::Stealing);
        assert!(r.stats.total_cycles() > 0);
    }
}
